#!/usr/bin/env python3
"""Section 5.3: RARP — diskless workstations discover their IP addresses.

"With the packet filter, however, a RARP implementation was easy; the
work was done in a few weeks by a student who had no experience with
network programming, and who had no need to learn how to modify the
Unix kernel."

A boot server with a MAC-to-IP table answers reverse-ARP broadcasts;
three diskless workstations boot concurrently, one of them through a
lossy cable (the retry loop earns its keep).

Run:  python examples/rarp_server.py
"""

from repro.protocols.ip import format_ip, ip_address
from repro.protocols.rarp import RARPServer, rarp_discover
from repro.sim import World


def main():
    # A mildly lossy Ethernet, to exercise the retry path.
    world = World(loss_rate=0.15, seed=20260707)
    server_host = world.host("boot-server")
    stations = [world.host(f"ws-{index}") for index in range(3)]
    server_host.install_packet_filter()
    for station in stations:
        station.install_packet_filter()

    table = {
        station.address: ip_address(f"10.0.0.{10 + index}")
        for index, station in enumerate(stations)
    }
    server = RARPServer(server_host, table)
    server_host.spawn("rarpd", server.run())

    boots = [
        station.spawn(f"boot-{index}", rarp_discover(station))
        for index, station in enumerate(stations)
    ]
    world.run_until_done(*boots)
    world.run(until=world.now + 0.05)  # let the daemon settle its counters

    results = {}
    for station, boot in zip(stations, boots):
        address = format_ip(boot.result)
        results[station.name] = address
        print(
            f"{station.name} ({station.address.hex()}) booted "
            f"as {address} at t={boot.finished_at * 1000:.1f} ms"
        )
    print(
        f"server answered {server.requests_answered} requests "
        f"({world.segment.frames_lost} frames lost on the wire)"
    )
    return results


if __name__ == "__main__":
    main()
