#!/usr/bin/env python3
"""Quickstart: open a packet-filter port, bind a filter, exchange packets.

This is the paper's whole pitch in forty lines: a user process gets raw
network access, describes the packets it wants with a small predicate,
and the kernel delivers exactly those — no kernel programming, no
protocol code in the kernel.

Run:  python examples/quickstart.py
"""

from repro.core import PFIoctl, compile_expr, word
from repro.sim import Ioctl, Open, Read, Sleep, World, Write

CHAT_ETHERTYPE = 0x0C47  # our own little protocol, no kernel changes needed


def receiver(host):
    """Receive exactly one chat packet, whatever else is on the wire."""
    fd = yield Open("pf")
    # The filter: a predicate compiled at run time by a library
    # procedure (section 3.1).  Accept frames whose type word matches.
    program = compile_expr(word(6) == CHAT_ETHERTYPE, priority=10)
    yield Ioctl(fd, PFIoctl.SETFILTER, program)
    [packet] = yield Read(fd)
    return host.link.payload_of(packet.data)


def sender(host, destination):
    fd = yield Open("pf")
    yield Sleep(0.01)  # let the receiver bind its filter first
    # Noise the receiver's filter must reject:
    noise = host.link.frame(destination, host.address, 0x9999, b"not chat")
    yield Write(fd, noise)
    # The packet it wants (writes take a complete frame, header included):
    frame = host.link.frame(
        destination, host.address, CHAT_ETHERTYPE,
        b"hello from user space!",
    )
    yield Write(fd, frame)


def main() -> str:
    world = World()
    alice = world.host("alice")
    bob = world.host("bob")
    alice.install_packet_filter()
    bob.install_packet_filter()

    rx = bob.spawn("receiver", receiver(bob))
    alice.spawn("sender", sender(alice, bob.address))
    world.run_until_done(rx)

    message = rx.result.decode()
    print(f"bob received: {message!r}")
    print(f"simulated time: {world.now * 1000:.2f} ms")
    print(
        f"bob's kernel: {bob.stats.syscalls} syscalls, "
        f"{bob.stats.context_switches} context switches, "
        f"{bob.stats.copies} copies"
    )
    stats = bob.packet_filter.demux
    print(
        f"demux saw {stats.packets_seen} packets, "
        f"rejected {stats.packets_unclaimed} as unwanted"
    )
    return message


if __name__ == "__main__":
    main()
