#!/usr/bin/env python3
"""Filter playground: author, disassemble, compile, and race filters.

A guided tour of the figure 3-6 language and the section 7 machinery:

1. the paper's own figure 3-8 and 3-9 programs, disassembled;
2. the same predicates built with the high-level compiler;
3. the validator's bind-time report;
4. the generated Python of the JIT ("machine code" compilation);
5. a wall-clock race: checked interpreter vs fast path vs JIT.

Run:  python examples/filter_playground.py
"""

import time

from repro.core import (
    compile_expr,
    compile_filter,
    evaluate,
    figure_3_8_pup_type_range,
    figure_3_9_pup_socket_35,
    validate,
    word,
)
from repro.core.words import pack_words

MATCHING = pack_words([0x0102, 2, 30, 0x0132, 0, 0, 0x0101, 0, 35])
MISSING = pack_words([0x0102, 2, 30, 0x0132, 0, 0, 0x0101, 0, 36])


def race(program, rounds: int = 20_000) -> dict:
    compiled = compile_filter(program)
    timings = {}

    def measure(label, fn):
        start = time.perf_counter()
        for _ in range(rounds):
            fn(MATCHING)
            fn(MISSING)
        timings[label] = time.perf_counter() - start

    measure("checked interpreter", lambda p: evaluate(program, p))
    measure("prevalidated path", lambda p: evaluate(program, p, checked=False))
    measure("compiled closure", compiled.accepts)
    return timings


def main():
    print("=" * 64)
    print("Figure 3-8 (Pup packets with 0 < PupType <= 100):")
    print(figure_3_8_pup_type_range())
    print()
    print("Figure 3-9 (DstSocket == 35, short-circuited):")
    fig39 = figure_3_9_pup_socket_35()
    print(fig39)
    print()

    print("The same predicate via the compiler library:")
    expr = (
        (word(8) == 35).likely(0.05)
        & (word(7) == 0).likely(0.3)
        & (word(1) == 2).likely(0.6)
    )
    compiled_program = compile_expr(expr, priority=10)
    print(compiled_program)
    print()

    print("Bind-time validation report for figure 3-9:")
    report = validate(fig39)
    print(f"  max stack depth:    {report.max_stack_depth}")
    print(f"  min packet bytes:   {report.min_packet_bytes}")
    print(f"  short-circuiting:   {report.uses_short_circuit}")
    print()

    print("What it compiles to (section 7's 'machine code'):")
    print(compile_filter(fig39).source)

    print("Evaluation trace on a matching vs missing packet:")
    hit = evaluate(fig39, MATCHING)
    miss = evaluate(fig39, MISSING)
    print(f"  match:  accepted={hit.accepted} after "
          f"{hit.instructions_executed} instructions")
    print(f"  miss:   accepted={miss.accepted} after "
          f"{miss.instructions_executed} instructions "
          f"(short-circuited={miss.short_circuited})")
    print()

    print("Wall-clock race (this machine, this Python):")
    timings = race(fig39)
    base = timings["checked interpreter"]
    for label, seconds in timings.items():
        print(f"  {label:22} {seconds * 1e6 / 40_000:7.2f} us/eval "
              f"({base / seconds:4.1f}x vs checked)")
    return timings


if __name__ == "__main__":
    main()
