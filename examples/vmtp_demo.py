#!/usr/bin/env python3
"""Section 5.2: VMTP request-response RPC — user-level vs kernel, live.

"The V IKP is a simple protocol and could have been put in the Unix
kernel.  ...  Instead, they were able to devote their attention to
research on the topics that interested them."

Runs the same tiny file-read RPC over both VMTP implementations — the
packet-filter one and the kernel-resident one — and prints the measured
gap next to the paper's table 6-2 factor of two.

Run:  python examples/vmtp_demo.py
"""

from repro.kernelnet import KernelVMTP, SockIoctl
from repro.protocols.vmtp import VMTPClient, VMTPServer
from repro.sim import Ioctl, Open, Read, World, Write

FILE_CONTENTS = {
    b"/etc/motd": b"Welcome to the simulated VAX.\n",
    b"/etc/hosts": b"10.0.0.1 alice\n10.0.0.2 bob\n",
}


def run_user_level(operations: int = 10):
    world = World()
    client_host = world.host("client")
    server_host = world.host("server")
    client_host.install_packet_filter()
    server_host.install_packet_filter()

    def server():
        endpoint = VMTPServer(server_host, server_id=35)
        yield from endpoint.start()
        while True:
            request, reply = yield from endpoint.receive()
            yield from reply(FILE_CONTENTS.get(request, b"ENOENT"))

    def client():
        endpoint = VMTPClient(
            client_host, client_id=7,
            server_station=server_host.address, server_id=35,
        )
        yield from endpoint.start()
        motd = yield from endpoint.call(b"/etc/motd")
        start = world.now
        for _ in range(operations):
            yield from endpoint.call(b"/etc/hosts")
        return motd, (world.now - start) / operations

    server_host.spawn("vmtp-server", server())
    proc = client_host.spawn("vmtp-client", client())
    world.run_until_done(proc)
    return proc.result


def run_kernel(operations: int = 10):
    world = World()
    client_host = world.host("client")
    server_host = world.host("server")
    KernelVMTP(client_host)
    KernelVMTP(server_host)

    def server():
        fd = yield Open("vmtp")
        yield Ioctl(fd, SockIoctl.BIND, 35)
        while True:
            request = yield Read(fd)
            yield Write(fd, FILE_CONTENTS.get(request, b"ENOENT"))

    def client():
        fd = yield Open("vmtp")
        yield Ioctl(fd, SockIoctl.CONNECT, (server_host.address, 35))
        yield Write(fd, b"/etc/motd")
        motd = yield Read(fd)
        start = world.now
        for _ in range(operations):
            yield Write(fd, b"/etc/hosts")
            yield Read(fd)
        return motd, (world.now - start) / operations

    server_host.spawn("vmtp-server", server())
    proc = client_host.spawn("vmtp-client", client())
    world.run_until_done(proc)
    return proc.result


def main():
    motd_user, user_ms = run_user_level()
    motd_kernel, kernel_ms = run_kernel()
    assert motd_user == motd_kernel == FILE_CONTENTS[b"/etc/motd"]

    print(f"RPC result: {motd_user.decode()!r}")
    print(f"user-level VMTP (packet filter): {user_ms * 1000:.2f} ms/op")
    print(f"kernel-resident VMTP:            {kernel_ms * 1000:.2f} ms/op")
    print(
        f"user/kernel ratio: {user_ms / kernel_ms:.2f}x "
        f"(paper: 14.7/7.44 = {14.7 / 7.44:.2f}x)"
    )
    return user_ms / kernel_ms


if __name__ == "__main__":
    main()
