#!/usr/bin/env python3
"""Section 5.1: Pup/BSP bulk file transfer, entirely in user space.

"At Stanford, almost all of the Pup protocols were implemented for
Unix, based entirely on the packet filter."  This is that workload:
a file server streams a file to a client over BSP — windowed,
acknowledged, retransmitting — with every protocol decision made by a
user process through a figure 3-9-style socket filter.  The cable
drops 5% of frames to show the retransmission machinery working.

Run:  python examples/pup_file_transfer.py
"""

import hashlib

from repro.protocols.bsp import BSPEndpoint
from repro.protocols.pup import PupAddress
from repro.sim import World

FILE_SERVER_SOCKET = 0x0441
CLIENT_SOCKET = 0x0442


def make_file(size: int = 60_000) -> bytes:
    """A recognizable 'file' with verifiable contents."""
    block = b"".join(bytes([i & 0xFF]) for i in range(256))
    return (block * (size // 256 + 1))[:size]


def main():
    world = World(loss_rate=0.05, seed=1987)
    server_host = world.host("file-server")
    client_host = world.host("client")
    server_host.install_packet_filter()
    client_host.install_packet_filter()
    contents = make_file()

    def file_server():
        endpoint = BSPEndpoint(server_host, local_socket=FILE_SERVER_SOCKET)
        yield from endpoint.start()
        destination = PupAddress(
            net=1, host=client_host.address[-1], socket=CLIENT_SOCKET
        )
        started = world.now
        yield from endpoint.send_stream(
            client_host.address, destination, contents
        )
        return world.now - started, endpoint.stats

    def client():
        endpoint = BSPEndpoint(client_host, local_socket=CLIENT_SOCKET)
        yield from endpoint.start()
        data = yield from endpoint.recv_all()
        return data

    client_proc = client_host.spawn("pupftp-get", client())
    server_proc = server_host.spawn("pupftp-serve", file_server())
    world.run_until_done(client_proc, server_proc)

    data = client_proc.result
    elapsed, stats = server_proc.result
    rate = len(data) / 1024.0 / elapsed
    intact = hashlib.sha256(data).digest() == hashlib.sha256(contents).digest()

    print(f"transferred {len(data)} bytes in {elapsed:.2f} simulated seconds")
    print(f"rate: {rate:.1f} KB/s (paper's table 6-6: BSP at 38 KB/s)")
    print(f"contents intact: {intact}")
    print(
        f"data packets: {stats.data_packets_sent}, "
        f"retransmission rounds: {stats.retransmissions}, "
        f"frames lost on the wire: {world.segment.frames_lost}"
    )
    assert intact
    return rate


if __name__ == "__main__":
    main()
