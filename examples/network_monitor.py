#!/usr/bin/env python3
"""The section 5.4 integrated network monitor, watching mixed traffic.

Three hosts talk over UDP, VMTP and RARP while a fourth, promiscuous
workstation captures everything through a copy-all packet-filter port,
decodes each frame, and prints a tcpdump-style trace plus a live
traffic summary — "all the tools of the workstation are available for
manipulating and analyzing packet traces."

Run:  python examples/network_monitor.py
"""

from repro.apps.monitor import NetworkMonitor
from repro.kernelnet import KernelUDP, KernelVMTP, SockIoctl, link_stacks
from repro.protocols.ip import ip_address
from repro.protocols.rarp import RARPServer, rarp_discover
from repro.sim import Ioctl, Open, Read, Sleep, World, Write


def main():
    world = World()
    alice = world.host("alice")
    bob = world.host("bob")
    carol = world.host("carol")
    watcher = world.host("watcher", promiscuous=True)

    # Kernel stacks + protocols on the talkers.
    stack_a = alice.install_kernel_stack()
    stack_b = bob.install_kernel_stack()
    link_stacks(stack_a, stack_b)
    KernelUDP(stack_a)
    KernelUDP(stack_b)
    KernelVMTP(alice)
    KernelVMTP(bob)
    carol.install_packet_filter()  # carol's boot client runs on the PF

    # The watcher: packet filter in see-everything mode.
    watcher.install_packet_filter()
    watcher.kernel.pf_sees_all = True
    monitor = NetworkMonitor(watcher, idle_timeout=0.3)
    monitor_proc = watcher.spawn("monitor", monitor.run())

    # Traffic generator 1: UDP chatter.
    def udp_server():
        fd = yield Open("udp")
        yield Ioctl(fd, SockIoctl.BIND, 53)
        while True:
            yield Read(fd)

    def udp_client():
        fd = yield Open("udp")
        yield Ioctl(fd, SockIoctl.CONNECT, (stack_b.ip_address, 53))
        for index in range(3):
            yield Write(fd, f"query {index}".encode())
            yield Sleep(0.02)

    bob.spawn("named", udp_server())
    alice.spawn("resolver", udp_client())

    # Traffic generator 2: a VMTP transaction.
    def vmtp_server():
        fd = yield Open("vmtp")
        yield Ioctl(fd, SockIoctl.BIND, 35)
        while True:
            request = yield Read(fd)
            yield Write(fd, b"served:" + request)

    def vmtp_client():
        fd = yield Open("vmtp")
        yield Sleep(0.03)
        yield Ioctl(fd, SockIoctl.CONNECT, (bob.address, 35))
        yield Write(fd, bytes(2500))  # 3 segments
        yield Read(fd)

    bob.spawn("vmtp-server", vmtp_server())
    alice.spawn("vmtp-client", vmtp_client())

    # Traffic generator 3: carol RARP-boots against a boot server
    # (the RARP daemon is itself a packet-filter program — section 5.3).
    boot_server = world.host("boot-server")
    boot_server.install_packet_filter()
    rarpd = RARPServer(boot_server, {carol.address: ip_address("10.0.0.3")})
    boot_server.spawn("rarpd", rarpd.run())

    def boot():
        yield Sleep(0.05)
        address = yield from rarp_discover(carol)
        return address

    carol.spawn("boot", boot())

    world.run_until_done(monitor_proc)

    print("=== captured trace (first 20 packets) ===")
    print(monitor.format_trace(20))
    print()
    print("=== traffic summary ===")
    print(f"{monitor.summary.packets} packets, {monitor.summary.bytes} bytes")
    for protocol, count in sorted(monitor.summary.by_protocol.items()):
        print(f"  {protocol:>10}: {count}")
    print("top talkers:", monitor.summary.top_talkers(3))
    return monitor


if __name__ == "__main__":
    main()
