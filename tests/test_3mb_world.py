"""End-to-end on the 3 Mb/s Experimental Ethernet — the paper's own turf.

Figures 3-7 through 3-9 are written against the 3 Mb link (one-byte
stations, 4-byte header, Pup at word 2).  These tests run the actual
figure 3-9 filter, the Pup echo protocol, and a BSP transfer on that
link, so the paper's examples execute in their native habitat.
"""

import pytest

from repro.core.ioctl import PFIoctl
from repro.core.paper_filters import figure_3_9_pup_socket_35
from repro.net.ethernet import ETHERNET_3MB
from repro.protocols.bsp import BSPEndpoint, pup_ethertype
from repro.protocols.pup import PupAddress, PupHeader
from repro.protocols.pup_echo import pup_echo_server, pup_ping
from repro.sim import Ioctl, Open, Read, Sleep, World, Write


def make_world(hosts=2, **kwargs):
    world = World(link=ETHERNET_3MB, **kwargs)
    out = [world.host(f"h{index}") for index in range(hosts)]
    for host in out:
        host.install_packet_filter()
    return world, out


class TestFigure39OnItsNativeLink:
    def test_socket_35_delivery(self):
        """The verbatim figure 3-9 program demultiplexes real Pup
        packets on the 3 Mb Ethernet."""
        world, (alice, bob) = make_world()

        def receiver():
            fd = yield Open("pf")
            yield Ioctl(fd, PFIoctl.SETFILTER, figure_3_9_pup_socket_35())
            [packet] = yield Read(fd)
            header, data = PupHeader.decode(bob.link.payload_of(packet.data))
            return header.dst.socket, data

        rx = bob.spawn("rx", receiver())

        def sender():
            fd = yield Open("pf")
            yield Sleep(0.01)
            for socket in (36, 35, 99):  # only socket 35 must arrive
                header = PupHeader(
                    pup_type=1,
                    identifier=socket,
                    dst=PupAddress(net=1, host=bob.address[-1], socket=socket),
                    src=PupAddress(net=1, host=alice.address[-1], socket=7),
                )
                yield Write(fd, alice.link.frame(
                    bob.address, alice.address, pup_ethertype(alice.link),
                    header.encode(b"figure 3-9 says hi"),
                ))

        alice.spawn("tx", sender())
        world.run_until_done(rx)
        socket, data = rx.result
        assert socket == 35
        assert data == b"figure 3-9 says hi"

    def test_pup_header_lands_at_figure_3_7_offsets(self):
        """On the 3 Mb link the encoded Pup's fields sit at the word
        offsets figure 3-7 draws (type in word 3's low byte, DstSocket
        in words 7-8)."""
        from repro.core.words import get_word

        header = PupHeader(
            pup_type=16,
            identifier=0xAABBCCDD,
            dst=PupAddress(net=3, host=5, socket=35),
            src=PupAddress(net=3, host=9, socket=0x44),
        )
        frame = ETHERNET_3MB.frame(
            b"\x05", b"\x09", 2, header.encode(b"")
        )
        assert get_word(frame, 1) == 2            # EtherType
        assert get_word(frame, 3) & 0x00FF == 16  # HopCount | PupType
        assert get_word(frame, 6) == 0x0305       # DstNet | DstHost
        assert get_word(frame, 7) == 0            # DstSocket high
        assert get_word(frame, 8) == 35           # DstSocket low


class TestPupEcho:
    def test_ping(self):
        world, (alice, bob) = make_world()
        bob.spawn("echo-server", pup_echo_server(bob))

        def pinger():
            yield Sleep(0.02)
            return (yield from pup_ping(alice, bob.address, count=3))

        proc = alice.spawn("ping", pinger())
        world.run_until_done(proc)
        assert len(proc.result) == 3
        for rtt in proc.result:
            assert 0 < rtt < 0.05

    def test_ping_survives_loss(self):
        world, (alice, bob) = make_world(loss_rate=0.25, seed=6)
        bob.spawn("echo-server", pup_echo_server(bob))

        def pinger():
            yield Sleep(0.02)
            return (yield from pup_ping(alice, bob.address, count=2))

        proc = alice.spawn("ping", pinger())
        world.run_until_done(proc)
        assert len(proc.result) == 2

    def test_echo_works_on_10mb_too(self):
        world = World()
        alice = world.host("a")
        bob = world.host("b")
        alice.install_packet_filter()
        bob.install_packet_filter()
        bob.spawn("echo-server", pup_echo_server(bob))

        def pinger():
            yield Sleep(0.02)
            return (yield from pup_ping(alice, bob.address, count=1))

        proc = alice.spawn("ping", pinger())
        world.run_until_done(proc)
        assert len(proc.result) == 1


class TestBSPOn3Mb:
    def test_bulk_transfer(self):
        world, (alice, bob) = make_world()
        payload = bytes(i & 0xFF for i in range(8_000))

        def tx():
            endpoint = BSPEndpoint(alice, local_socket=0x44)
            yield from endpoint.start()
            yield from endpoint.send_stream(
                bob.address,
                PupAddress(net=1, host=bob.address[-1], socket=0x35),
                payload,
            )

        def rx():
            endpoint = BSPEndpoint(bob, local_socket=0x35)
            yield from endpoint.start()
            return (yield from endpoint.recv_all())

        rx_proc = bob.spawn("rx", rx())
        alice.spawn("tx", tx())
        world.run_until_done(rx_proc)
        assert rx_proc.result == payload

    def test_3mb_wire_is_the_bottleneck_for_big_frames(self):
        """568-byte frames take ~1.5 ms on the 3 Mb wire vs ~0.45 ms on
        the 10 Mb one — the serialization delay the link model carries."""
        from repro.net.ethernet import ETHERNET_10MB

        slow = ETHERNET_3MB.transmission_time(568)
        fast = ETHERNET_10MB.transmission_time(568)
        assert slow / fast == pytest.approx(10 / 2.94, rel=0.01)
