"""Tests for the section 5.4 network monitor."""


from repro.apps.monitor import NetworkMonitor, decode_frame
from repro.kernelnet import KernelUDP, SockIoctl, link_stacks
from repro.net.ethernet import ETHERNET_10MB
from repro.sim import Ioctl, Open, Sleep, World, Write


def monitored_world():
    world = World()
    alice = world.host("alice")
    bob = world.host("bob")
    watcher = world.host("watcher", promiscuous=True)
    alice.install_packet_filter()
    bob.install_packet_filter()
    watcher.install_packet_filter()
    watcher.kernel.pf_sees_all = True
    return world, alice, bob, watcher


class TestCapture:
    def test_sees_third_party_traffic(self):
        world, alice, bob, watcher = monitored_world()
        monitor = NetworkMonitor(watcher, idle_timeout=0.2)
        proc = watcher.spawn("monitor", monitor.run())

        def chat():
            fd = yield Open("pf")
            for index in range(3):
                frame = alice.link.frame(
                    bob.address, alice.address, 0x0900, bytes([index]) * 20
                )
                yield Write(fd, frame)
                yield Sleep(0.01)

        alice.spawn("chat", chat())
        world.run_until_done(proc)
        assert len(monitor.trace) == 3
        assert monitor.summary.packets == 3

    def test_timestamps_recorded(self):
        world, alice, bob, watcher = monitored_world()
        monitor = NetworkMonitor(watcher, idle_timeout=0.2)
        proc = watcher.spawn("monitor", monitor.run())

        def chat():
            fd = yield Open("pf")
            yield Sleep(0.02)  # let the monitor finish its ioctls
            frame = alice.link.frame(
                bob.address, alice.address, 0x0900, b"stamped"
            )
            yield Write(fd, frame)

        alice.spawn("chat", chat())
        world.run_until_done(proc)
        [record] = monitor.trace
        assert record.timestamp is not None

    def test_capture_limit(self):
        world, alice, bob, watcher = monitored_world()
        monitor = NetworkMonitor(watcher, capture_limit=2, idle_timeout=1.0)
        proc = watcher.spawn("monitor", monitor.run())

        def chat():
            fd = yield Open("pf")
            for _ in range(5):
                yield Write(fd, alice.link.frame(
                    bob.address, alice.address, 0x0900, b"x"
                ))
                yield Sleep(0.01)

        alice.spawn("chat", chat())
        world.run_until_done(proc)
        assert len(monitor.trace) == 2

    def test_monitoring_does_not_disturb_the_monitored(self):
        """Copy-all means the watched conversation still completes."""
        from repro.core.compiler import compile_expr, word
        from repro.core.ioctl import PFIoctl
        from repro.sim import Read

        world, alice, bob, watcher = monitored_world()
        monitor = NetworkMonitor(watcher, idle_timeout=0.2)
        mon_proc = watcher.spawn("monitor", monitor.run())

        def receiver():
            fd = yield Open("pf")
            yield Ioctl(
                fd, PFIoctl.SETFILTER, compile_expr(word(6) == 0x0900)
            )
            [packet] = yield Read(fd)
            return packet.data

        rx = bob.spawn("rx", receiver())

        def sender():
            fd = yield Open("pf")
            yield Sleep(0.02)
            yield Write(fd, alice.link.frame(
                bob.address, alice.address, 0x0900, b"watched"
            ))

        alice.spawn("tx", sender())
        world.run_until_done(rx, mon_proc)
        assert bob.link.payload_of(rx.result) == b"watched"
        assert monitor.summary.packets >= 1

    def test_kernel_protocol_traffic_visible_with_pf_sees_all(self):
        """The monitor sees UDP packets claimed by the kernel stack."""
        world = World()
        a = world.host("a")
        b = world.host("b")
        watcher = world.host("watcher", promiscuous=True)
        stack_a = a.install_kernel_stack()
        stack_b = b.install_kernel_stack()
        link_stacks(stack_a, stack_b)
        KernelUDP(stack_a)
        KernelUDP(stack_b)
        watcher.install_packet_filter()
        watcher.kernel.pf_sees_all = True
        monitor = NetworkMonitor(watcher, idle_timeout=0.2)
        mon_proc = watcher.spawn("monitor", monitor.run())

        def udp_sender():
            fd = yield Open("udp")
            yield Ioctl(fd, SockIoctl.CONNECT, (stack_b.ip_address, 53))
            yield Write(fd, b"to be observed")

        a.spawn("udp", udp_sender())
        world.run_until_done(mon_proc)
        assert monitor.summary.by_protocol.get("udp", 0) >= 1


class TestCosts:
    def test_format_costs_without_ledger_says_so(self):
        world, alice, bob, watcher = monitored_world()
        monitor = NetworkMonitor(watcher)
        assert "not enabled" in monitor.format_costs()

    def test_format_costs_renders_ledger_breakdown(self):
        world = World(ledger=True)
        alice = world.host("alice")
        bob = world.host("bob")
        watcher = world.host("watcher", promiscuous=True)
        for host in (alice, bob, watcher):
            host.install_packet_filter()
        watcher.kernel.pf_sees_all = True
        monitor = NetworkMonitor(watcher, idle_timeout=0.2)
        proc = watcher.spawn("monitor", monitor.run())

        def chat():
            fd = yield Open("pf")
            for index in range(3):
                yield Write(fd, alice.link.frame(
                    bob.address, alice.address, 0x0900, bytes([index]) * 20
                ))
                yield Sleep(0.01)

        alice.spawn("chat", chat())
        world.run_until_done(proc)
        text = monitor.format_costs()
        assert "kernel cost on watcher" in text
        assert "syscall" in text
        assert "events" in text


class TestLiveSummary:
    def frame_record(self, link, frame):
        """What the monitor's capture loop builds per delivered frame."""
        from repro.apps.monitor import TraceRecord

        protocol, info = decode_frame(link, frame)
        return TraceRecord(
            timestamp=0.0,
            length=len(frame),
            source=link.source_of(frame).hex(),
            destination=link.destination_of(frame).hex(),
            protocol=protocol,
            info=info,
            drops_before=0,
        )

    def test_summary_accounts_decoded_frames(self):
        from repro.apps.monitor import TrafficSummary
        from repro.protocols.ethertypes import ETHERTYPE_PUP_10MB
        from repro.protocols.pup import PupAddress, PupHeader

        link = ETHERNET_10MB
        pup = PupHeader(
            pup_type=16, identifier=0,
            dst=PupAddress(1, 2, 0x35), src=PupAddress(1, 1, 0x44),
        ).encode(b"")
        frames = [
            link.frame(b"\x02" * 6, b"\x01" * 6, ETHERTYPE_PUP_10MB, pup),
            link.frame(b"\x02" * 6, b"\x01" * 6, ETHERTYPE_PUP_10MB, pup),
            link.frame(b"\x03" * 6, b"\x02" * 6, 0x7777, b"??"),
        ]
        summary = TrafficSummary()
        for frame in frames:
            summary.account(self.frame_record(link, frame))
        assert summary.packets == 3
        assert summary.bytes == sum(len(f) for f in frames)
        assert summary.by_protocol["pup"] == 2
        assert summary.by_protocol["type-0x7777"] == 1
        talkers = summary.top_talkers()
        assert talkers[0] == (("01" * 6), 2)


class TestDecoding:
    def test_decodes_udp(self):
        from repro.protocols.ip import IPHeader, PROTO_UDP
        from repro.protocols.udp import UDPHeader
        from repro.protocols.ethertypes import ETHERTYPE_IP

        datagram = IPHeader(src=1, dst=2, protocol=PROTO_UDP).encode(
            UDPHeader(src_port=1, dst_port=2).encode(b"q")
        )
        frame = ETHERNET_10MB.frame(
            b"\x01" * 6, b"\x02" * 6, ETHERTYPE_IP, datagram
        )
        protocol, info = decode_frame(ETHERNET_10MB, frame)
        assert protocol == "udp"
        assert "0.0.0.1" in info

    def test_decodes_pup(self):
        from repro.protocols.pup import PupAddress, PupHeader
        from repro.protocols.ethertypes import ETHERTYPE_PUP_10MB

        pup = PupHeader(
            pup_type=16, identifier=0,
            dst=PupAddress(1, 2, 0x35), src=PupAddress(1, 1, 0x44),
        ).encode(b"")
        frame = ETHERNET_10MB.frame(
            b"\x01" * 6, b"\x02" * 6, ETHERTYPE_PUP_10MB, pup
        )
        protocol, info = decode_frame(ETHERNET_10MB, frame)
        assert protocol == "pup"
        assert "type 16" in info

    def test_decodes_vmtp(self):
        from repro.protocols.ethertypes import ETHERTYPE_VMTP
        from repro.protocols.vmtp import VMTPKind, VMTPPacket

        packet = VMTPPacket(
            kind=VMTPKind.REQUEST, client=7, server=35, transaction=2,
            seg_index=0, seg_count=1, total_length=0,
        ).encode()
        frame = ETHERNET_10MB.frame(
            b"\x01" * 6, b"\x02" * 6, ETHERTYPE_VMTP, packet
        )
        protocol, info = decode_frame(ETHERNET_10MB, frame)
        assert protocol == "vmtp"
        assert "client 7" in info

    def test_unknown_type(self):
        frame = ETHERNET_10MB.frame(b"\x01" * 6, b"\x02" * 6, 0x7777, b"??")
        protocol, info = decode_frame(ETHERNET_10MB, frame)
        assert protocol == "type-0x7777"

    def test_format_trace(self):
        world, alice, bob, watcher = monitored_world()
        monitor = NetworkMonitor(watcher, idle_timeout=0.2)
        proc = watcher.spawn("monitor", monitor.run())

        def chat():
            fd = yield Open("pf")
            yield Write(fd, alice.link.frame(
                bob.address, alice.address, 0x0900, b"hello"
            ))

        alice.spawn("chat", chat())
        world.run_until_done(proc)
        text = monitor.format_trace()
        assert "type-0x0900" in text
