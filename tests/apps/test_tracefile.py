"""Tests for trace persistence (the §5.4 offline-analysis path)."""

import pytest

from repro.apps.monitor import TraceRecord
from repro.apps.tracefile import (
    TraceFileError,
    load_trace,
    save_trace,
    summarize_trace,
)


def sample_records():
    return [
        TraceRecord(
            timestamp=0.001 * index,
            length=64 + index,
            source=f"00000000000{index % 3 + 1}",
            destination="000000000002",
            protocol="udp" if index % 2 else "pup",
            info=f"packet {index}",
            drops_before=0,
        )
        for index in range(6)
    ]


class TestRoundTrip:
    def test_save_load(self, tmp_path):
        records = sample_records()
        path = tmp_path / "capture.pftrace"
        written = save_trace(path, records)
        assert written == len(records)
        assert load_trace(path) == records

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "empty.pftrace"
        save_trace(path, [])
        assert load_trace(path) == []

    def test_none_timestamp_survives(self, tmp_path):
        record = TraceRecord(
            timestamp=None, length=10, source="a", destination="b",
            protocol="x", info="",
        )
        path = tmp_path / "t.pftrace"
        save_trace(path, [record])
        [loaded] = load_trace(path)
        assert loaded.timestamp is None


class TestRejection:
    def test_not_json(self, tmp_path):
        path = tmp_path / "garbage"
        path.write_text("certainly not json\n")
        with pytest.raises(TraceFileError):
            load_trace(path)

    def test_wrong_format(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"format": "pcapng"}\n')
        with pytest.raises(TraceFileError, match="not a pftrace"):
            load_trace(path)

    def test_future_version(self, tmp_path):
        path = tmp_path / "future"
        path.write_text('{"format": "pftrace", "version": 99}\n')
        with pytest.raises(TraceFileError, match="version"):
            load_trace(path)

    def test_corrupt_record(self, tmp_path):
        path = tmp_path / "bad"
        path.write_text(
            '{"format": "pftrace", "version": 1}\n{"nope": true}\n'
        )
        with pytest.raises(TraceFileError, match="bad trace record"):
            load_trace(path)


class TestOfflineAnalysis:
    def test_summary_matches_live_accounting(self, tmp_path):
        records = sample_records()
        summary = summarize_trace(records)
        assert summary.packets == len(records)
        assert summary.by_protocol["udp"] + summary.by_protocol["pup"] == 6
        assert summary.top_talkers(1)[0][1] >= 2

    def test_end_to_end_with_monitor(self, tmp_path):
        """Capture live, save, reload, re-analyze."""
        from repro.apps.monitor import NetworkMonitor
        from repro.sim import Open, Sleep, World, Write

        world = World()
        alice = world.host("alice")
        bob = world.host("bob")
        watcher = world.host("watcher", promiscuous=True)
        alice.install_packet_filter()
        bob.install_packet_filter()
        watcher.install_packet_filter()
        watcher.kernel.pf_sees_all = True
        monitor = NetworkMonitor(watcher, idle_timeout=0.2)
        proc = watcher.spawn("monitor", monitor.run())

        def chat():
            fd = yield Open("pf")
            for _ in range(4):
                yield Write(fd, alice.link.frame(
                    bob.address, alice.address, 0x0900, b"x" * 30
                ))
                yield Sleep(0.01)

        alice.spawn("chat", chat())
        world.run_until_done(proc)

        path = tmp_path / "live.pftrace"
        save_trace(path, monitor.trace)
        reloaded = load_trace(path)
        assert reloaded == monitor.trace
        assert summarize_trace(reloaded).packets == monitor.summary.packets
