"""Tests for the user-level BSP stream over the packet filter."""

import pytest

from repro.protocols.bsp import BSPEndpoint, bsp_socket_filter
from repro.protocols.pup import PupAddress
from repro.core.interpreter import evaluate
from repro.net.ethernet import ETHERNET_3MB, ETHERNET_10MB
from repro.sim import World


def transfer(payload, *, loss_rate=0.0, duplicate_rate=0.0, seed=1,
             data_per_packet=532, window_packets=4):
    world = World(loss_rate=loss_rate, duplicate_rate=duplicate_rate, seed=seed)
    sender = world.host("sender")
    receiver = world.host("receiver")
    sender.install_packet_filter()
    receiver.install_packet_filter()

    def tx():
        endpoint = BSPEndpoint(
            sender, local_socket=0x44,
            data_per_packet=data_per_packet, window_packets=window_packets,
        )
        yield from endpoint.start()
        destination = PupAddress(net=1, host=receiver.address[-1], socket=0x35)
        yield from endpoint.send_stream(receiver.address, destination, payload)
        return endpoint.stats

    def rx():
        endpoint = BSPEndpoint(receiver, local_socket=0x35)
        yield from endpoint.start()
        data = yield from endpoint.recv_all()
        return data, endpoint.stats

    rx_proc = receiver.spawn("rx", rx())
    tx_proc = sender.spawn("tx", tx())
    world.run_until_done(rx_proc, tx_proc)
    data, rx_stats = rx_proc.result
    return data, tx_proc.result, rx_stats, world


PAYLOAD = bytes(i & 0xFF for i in range(30_000))


class TestStreamIntegrity:
    def test_clean_transfer(self):
        data, tx_stats, rx_stats, _ = transfer(PAYLOAD)
        assert data == PAYLOAD
        assert tx_stats.retransmissions == 0

    def test_empty_stream(self):
        data, *_ = transfer(b"")
        assert data == b""

    def test_single_byte(self):
        data, *_ = transfer(b"!")
        assert data == b"!"

    def test_lossy_link_recovers(self):
        data, tx_stats, _, world = transfer(
            PAYLOAD[:10_000], loss_rate=0.08, seed=13
        )
        assert data == PAYLOAD[:10_000]
        assert world.segment.frames_lost > 0
        assert tx_stats.retransmissions > 0

    def test_duplicating_link(self):
        data, _, rx_stats, _ = transfer(
            PAYLOAD[:8_000], duplicate_rate=0.3, seed=2
        )
        assert data == PAYLOAD[:8_000]
        assert rx_stats.duplicates_dropped > 0

    def test_small_packets(self):
        data, tx_stats, *_ = transfer(PAYLOAD[:2_000], data_per_packet=64)
        assert data == PAYLOAD[:2_000]
        assert tx_stats.data_packets_sent >= 2000 // 64

    def test_acks_flow(self):
        _, tx_stats, rx_stats, _ = transfer(PAYLOAD[:5_000])
        assert rx_stats.acks_sent > 0
        assert tx_stats.acks_received > 0

    def test_deterministic(self):
        def run():
            _, _, _, world = transfer(PAYLOAD[:4_000], loss_rate=0.05, seed=4)
            return world.now

        assert run() == run()


class TestMaximumPacketSize:
    def test_568_byte_frames_on_the_wire(self):
        """§6.4: "Pup (hence BSP) allows a maximum packet size of 568
        bytes" — 14 Ethernet + 554 Pup."""
        world = World()
        sender = world.host("s")
        receiver = world.host("r")
        sender.install_packet_filter()
        receiver.install_packet_filter()
        sizes = []
        original = world.segment.transmit

        def spy(nic, frame):
            sizes.append(len(frame))
            return original(nic, frame)

        world.segment.transmit = spy

        def tx():
            endpoint = BSPEndpoint(sender, local_socket=0x44)
            yield from endpoint.start()
            yield from endpoint.send_stream(
                receiver.address,
                PupAddress(net=1, host=receiver.address[-1], socket=0x35),
                bytes(4000),
            )

        def rx():
            endpoint = BSPEndpoint(receiver, local_socket=0x35)
            yield from endpoint.start()
            return (yield from endpoint.recv_all())

        rx_proc = receiver.spawn("rx", rx())
        sender.spawn("tx", tx())
        world.run_until_done(rx_proc)
        assert max(sizes) == 568


class TestSocketFilter:
    def test_matches_only_own_socket(self):
        from repro.protocols.pup import PupHeader

        program = bsp_socket_filter(ETHERNET_10MB, 0x35)
        mine = PupHeader(
            pup_type=16, identifier=0,
            dst=PupAddress(net=1, host=2, socket=0x35),
            src=PupAddress(net=1, host=1, socket=0x44),
        )
        other = PupHeader(
            pup_type=16, identifier=0,
            dst=PupAddress(net=1, host=2, socket=0x36),
            src=PupAddress(net=1, host=1, socket=0x44),
        )
        def frame(header):
            return ETHERNET_10MB.frame(
                b"\x02" * 6, b"\x01" * 6, 0x0200, header.encode(b"")
            )

        assert evaluate(program, frame(mine)).accepted
        assert not evaluate(program, frame(other)).accepted

    def test_three_megabit_offsets_match_figure_3_9(self):
        """On the 3 Mb link the generated filter tests the same words
        figure 3-9 does (8, 7, then 1)."""
        program = bsp_socket_filter(ETHERNET_3MB, 35)
        indices = [
            ins.push_index for ins in program if ins.push_index is not None
        ]
        assert indices == [8, 7, 1]

    def test_data_per_packet_range(self):
        world = World()
        host = world.host("h")
        with pytest.raises(ValueError):
            BSPEndpoint(host, local_socket=1, data_per_packet=0)
        with pytest.raises(ValueError):
            BSPEndpoint(host, local_socket=1, data_per_packet=533)
