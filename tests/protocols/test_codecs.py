"""Codec tests: IP, UDP, TCP, Pup, VMTP, RARP headers round-trip and
reject malformed input."""

import pytest
from hypothesis import given, strategies as st

from repro.protocols.ip import (
    IPError,
    IPHeader,
    PROTO_TCP,
    PROTO_UDP,
    format_ip,
    internet_checksum,
    ip_address,
)
from repro.protocols.pup import (
    NO_CHECKSUM,
    PUP_MAX_DATA,
    PupAddress,
    PupError,
    PupHeader,
    pup_checksum,
)
from repro.protocols.rarp import RARPError, RARPPacket
from repro.protocols.tcp import TCPError, TCPFlags, TCPSegment
from repro.protocols.udp import UDPError, UDPHeader
from repro.protocols.vmtp import (
    VMTPError,
    VMTPKind,
    VMTPPacket,
    segment_message,
    MessageAssembler,
)


class TestIPAddresses:
    def test_parse_format_roundtrip(self):
        assert format_ip(ip_address("10.1.2.3")) == "10.1.2.3"

    def test_bad_addresses(self):
        for bad in ("10.0.0", "1.2.3.4.5", "256.0.0.1", "a.b.c.d"):
            with pytest.raises((IPError, ValueError)):
                ip_address(bad)


class TestInternetChecksum:
    def test_verifies_to_zero(self):
        data = b"\x45\x00\x00\x1c"
        checksum = internet_checksum(data)
        padded = data + checksum.to_bytes(2, "big")
        assert internet_checksum(padded) == 0

    def test_odd_length_padded(self):
        assert internet_checksum(b"\x01") == internet_checksum(b"\x01\x00")


class TestIPHeader:
    def test_roundtrip(self):
        header = IPHeader(
            src=ip_address("10.0.0.1"),
            dst=ip_address("10.0.0.2"),
            protocol=PROTO_UDP,
            identification=7,
        )
        datagram = header.encode(b"payload bytes")
        decoded, payload = IPHeader.decode(datagram)
        assert payload == b"payload bytes"
        assert decoded.src == header.src
        assert decoded.dst == header.dst
        assert decoded.protocol == PROTO_UDP
        assert decoded.ihl == 5

    def test_options_extend_ihl(self):
        header = IPHeader(src=1, dst=2, protocol=PROTO_TCP, options=b"\x01" * 6)
        datagram = header.encode(b"")
        decoded, _ = IPHeader.decode(datagram)
        assert decoded.ihl == 7  # 20 + 8 (padded options) = 28 bytes
        assert decoded.options == b"\x01" * 6 + b"\x00\x00"

    def test_checksum_verified(self):
        datagram = bytearray(IPHeader(src=1, dst=2, protocol=17).encode(b""))
        datagram[12] ^= 0xFF  # corrupt the source address
        with pytest.raises(IPError, match="checksum"):
            IPHeader.decode(bytes(datagram))

    def test_truncated(self):
        with pytest.raises(IPError):
            IPHeader.decode(b"\x45\x00")

    def test_wrong_version(self):
        datagram = bytearray(IPHeader(src=1, dst=2, protocol=17).encode(b""))
        datagram[0] = (6 << 4) | 5
        with pytest.raises(IPError, match="version"):
            IPHeader.decode(bytes(datagram))

    @given(st.binary(max_size=64), st.binary(max_size=20))
    def test_roundtrip_property(self, payload, raw_options):
        options = raw_options[: len(raw_options) - len(raw_options) % 1]
        if len(IPHeader(src=1, dst=2, protocol=6, options=options).padded_options) > 40:
            return
        header = IPHeader(src=1, dst=2, protocol=6, options=options)
        decoded, out = IPHeader.decode(header.encode(payload))
        assert out == payload


class TestUDPHeader:
    def test_roundtrip(self):
        header = UDPHeader(src_port=1234, dst_port=53)
        decoded, payload = UDPHeader.decode(header.encode(b"query"))
        assert payload == b"query"
        assert decoded.src_port == 1234
        assert decoded.dst_port == 53
        assert not decoded.with_checksum

    def test_checksummed_flagged(self):
        header = UDPHeader(src_port=1, dst_port=2, with_checksum=True)
        decoded, _ = UDPHeader.decode(header.encode(b"x"))
        assert decoded.with_checksum

    def test_truncated(self):
        with pytest.raises(UDPError):
            UDPHeader.decode(b"\x00\x01")


class TestTCPSegment:
    def test_roundtrip(self):
        segment = TCPSegment(
            src_port=2000, dst_port=9, seq=12345, ack=99,
            flags=TCPFlags.ACK | TCPFlags.PSH, window=2048,
            payload=b"stream bytes",
        )
        decoded = TCPSegment.decode(segment.encode())
        assert decoded == segment

    def test_flag_helpers(self):
        syn = TCPSegment(1, 2, 0, 0, TCPFlags.SYN)
        assert syn.is_syn and not syn.is_ack and not syn.is_fin

    def test_truncated(self):
        with pytest.raises(TCPError):
            TCPSegment.decode(b"\x00" * 10)


class TestPup:
    def address(self):
        return PupAddress(net=1, host=5, socket=35)

    def test_roundtrip(self):
        header = PupHeader(
            pup_type=16, identifier=1000,
            dst=self.address(), src=PupAddress(net=1, host=6, socket=99),
        )
        decoded, data = PupHeader.decode(header.encode(b"stream data"))
        assert data == b"stream data"
        assert decoded.pup_type == 16
        assert decoded.identifier == 1000
        assert decoded.dst == self.address()

    def test_checksummed_roundtrip(self):
        header = PupHeader(
            pup_type=1, identifier=1, dst=self.address(), src=self.address()
        )
        packet = header.encode(b"abc", with_checksum=True)
        decoded, data = PupHeader.decode(packet)
        assert data == b"abc"

    def test_checksum_detects_corruption(self):
        header = PupHeader(
            pup_type=1, identifier=1, dst=self.address(), src=self.address()
        )
        packet = bytearray(header.encode(b"abc", with_checksum=True))
        packet[21] ^= 0x01
        with pytest.raises(PupError, match="checksum"):
            PupHeader.decode(bytes(packet))

    def test_unchecksummed_marker(self):
        header = PupHeader(
            pup_type=1, identifier=1, dst=self.address(), src=self.address()
        )
        packet = header.encode(b"")
        assert packet[-2:] == NO_CHECKSUM.to_bytes(2, "big")

    def test_data_limit(self):
        header = PupHeader(
            pup_type=1, identifier=1, dst=self.address(), src=self.address()
        )
        with pytest.raises(PupError):
            header.encode(bytes(PUP_MAX_DATA + 1))

    def test_field_ranges(self):
        with pytest.raises(PupError):
            PupAddress(net=256, host=0, socket=0)
        with pytest.raises(PupError):
            PupAddress(net=0, host=0, socket=1 << 32)

    def test_checksum_never_returns_reserved_value(self):
        # The add-and-cycle sum maps 0xFFFF to 0 by construction.
        assert pup_checksum(b"\xff\xfe") != NO_CHECKSUM


class TestVMTP:
    def test_roundtrip(self):
        packet = VMTPPacket(
            kind=VMTPKind.REQUEST, client=7, server=35, transaction=3,
            seg_index=2, seg_count=5, total_length=5000,
            segment_mask=0x001C, payload=b"chunk",
        )
        assert VMTPPacket.decode(packet.encode()) == packet

    def test_truncated(self):
        with pytest.raises(VMTPError):
            VMTPPacket.decode(b"\x01\x00")

    def test_unknown_kind(self):
        with pytest.raises(VMTPError):
            VMTPPacket.decode(b"\x7f" + bytes(13))

    def test_segmentation_roundtrip(self):
        message = bytes(range(256)) * 20  # 5120 bytes -> 5 segments
        group = segment_message(VMTPKind.RESPONSE, 1, 2, 3, message)
        assert len(group) == 5
        assembler = MessageAssembler()
        result = None
        for packet in reversed(group):  # arbitrary arrival order
            result = assembler.add(packet)
        assert result == message

    def test_empty_message_is_one_segment(self):
        group = segment_message(VMTPKind.REQUEST, 1, 2, 3, b"")
        assert len(group) == 1
        assert group[0].payload == b""

    def test_missing_mask(self):
        group = segment_message(VMTPKind.RESPONSE, 1, 2, 3, bytes(3000))
        assembler = MessageAssembler()
        assembler.add(group[1])
        assert assembler.missing_mask() == 0b101

    def test_group_size_limit(self):
        with pytest.raises(VMTPError):
            segment_message(VMTPKind.REQUEST, 1, 2, 3, bytes(17 * 1024))


class TestRARP:
    def test_roundtrip(self):
        packet = RARPPacket(
            op=3, sender_hw=b"\x01" * 6, sender_ip=0,
            target_hw=b"\x02" * 6, target_ip=ip_address("10.0.0.9"),
        )
        assert RARPPacket.decode(packet.encode()) == packet

    def test_truncated(self):
        with pytest.raises(RARPError):
            RARPPacket.decode(b"\x00" * 10)

    def test_wrong_sizes_rejected(self):
        packet = bytearray(
            RARPPacket(3, b"\x01" * 6, 0, b"\x02" * 6, 0).encode()
        )
        packet[4] = 1  # hlen != 6
        with pytest.raises(RARPError):
            RARPPacket.decode(bytes(packet))
