"""Tests for RARP (section 5.3) and Telnet (table 6-7 workload)."""


from repro.protocols.ip import format_ip, ip_address
from repro.protocols.rarp import RARPServer, rarp_discover
from repro.protocols.telnet import (
    telnet_bsp_server,
    telnet_bsp_user,
    telnet_tcp_server,
    telnet_tcp_user,
)
from repro.sim import SimTimeout, World
from repro.sim.display import DisplayDevice, TERMINAL_9600_CPS


class TestRARP:
    def make(self, table=None, **world_kwargs):
        world = World(**world_kwargs)
        server_host = world.host("boot-server")
        workstation = world.host("workstation")
        server_host.install_packet_filter()
        workstation.install_packet_filter()
        if table is None:
            table = {workstation.address: ip_address("10.0.0.42")}
        server = RARPServer(server_host, table)
        server_host.spawn("rarpd", server.run())
        return world, workstation, server

    def test_diskless_boot(self):
        world, workstation, server = self.make()
        proc = workstation.spawn("boot", rarp_discover(workstation))
        world.run_until_done(proc)
        world.run(until=world.now + 0.05)  # let the daemon's loop settle
        assert format_ip(proc.result) == "10.0.0.42"
        assert server.requests_answered == 1

    def test_unknown_client_times_out(self):
        world, workstation, server = self.make(table={b"\x99" * 6: 1})
        proc = workstation.spawn("boot", rarp_discover(workstation))
        world.run()
        assert isinstance(proc.error, SimTimeout)
        assert server.requests_unknown >= 1

    def test_retry_through_loss(self):
        world, workstation, server = self.make()
        # Lose the first broadcast request.
        world.segment.drop_filter = lambda frame, n: n == 1
        proc = workstation.spawn("boot", rarp_discover(workstation))
        world.run_until_done(proc)
        assert format_ip(proc.result) == "10.0.0.42"

    def test_two_workstations(self):
        world = World()
        server_host = world.host("boot-server")
        one = world.host("ws-one")
        two = world.host("ws-two")
        for host in (server_host, one, two):
            host.install_packet_filter()
        server = RARPServer(
            server_host,
            {
                one.address: ip_address("10.0.0.11"),
                two.address: ip_address("10.0.0.12"),
            },
        )
        server_host.spawn("rarpd", server.run())
        boot_one = one.spawn("boot1", rarp_discover(one))
        boot_two = two.spawn("boot2", rarp_discover(two))
        world.run_until_done(boot_one, boot_two)
        assert format_ip(boot_one.result) == "10.0.0.11"
        assert format_ip(boot_two.result) == "10.0.0.12"


class TestTelnet:
    def test_bsp_stream_reaches_display(self):
        world = World()
        server_host = world.host("server")
        user_host = world.host("user")
        server_host.install_packet_filter()
        user_host.install_packet_filter()
        display = DisplayDevice(TERMINAL_9600_CPS)
        user_host.kernel.register_device("display", display)
        text = b"live long and prosper " * 40

        user = user_host.spawn("user", telnet_bsp_user(user_host))
        server_host.spawn(
            "server", telnet_bsp_server(server_host, user_host.address, text)
        )
        world.run_until_done(user)
        assert user.result == len(text)
        assert display.characters_displayed == len(text)

    def test_tcp_stream_reaches_display(self):
        from repro.kernelnet import KernelTCP, link_stacks

        world = World()
        server_host = world.host("server")
        user_host = world.host("user")
        stack_a = server_host.install_kernel_stack()
        stack_b = user_host.install_kernel_stack()
        link_stacks(stack_a, stack_b)
        KernelTCP(stack_a)
        KernelTCP(stack_b)
        display = DisplayDevice(TERMINAL_9600_CPS)
        user_host.kernel.register_device("display", display)
        text = b"0123456789" * 100

        user = user_host.spawn("user", telnet_tcp_user(user_host))
        server_host.spawn(
            "server", telnet_tcp_server(server_host, stack_b.ip_address, text)
        )
        world.run_until_done(user)
        assert user.result == len(text)
        assert display.characters_displayed == len(text)

    def test_output_rate_bounded_by_display(self):
        from repro.bench.scenarios import measure_telnet

        rate = measure_telnet(
            "bsp", TERMINAL_9600_CPS, display_consumes_cpu=False,
            characters=1500,
        )
        assert rate <= TERMINAL_9600_CPS
