"""Tests for the shared Jacobson/Karels retransmission timer."""

import pytest

from repro.protocols.rto import RetransmitTimer


class TestConstruction:
    def test_initial_timeout(self):
        assert RetransmitTimer(0.2).timeout == 0.2

    def test_initial_clamped_to_cap(self):
        assert RetransmitTimer(5.0, max_timeout=2.0).timeout == 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            RetransmitTimer(0.0)
        with pytest.raises(ValueError):
            RetransmitTimer(0.2, min_timeout=0.0)
        with pytest.raises(ValueError):
            RetransmitTimer(0.2, min_timeout=3.0, max_timeout=2.0)
        with pytest.raises(ValueError):
            RetransmitTimer(0.2, backoff_factor=0.5)
        with pytest.raises(ValueError):
            RetransmitTimer(0.2, slack=0.9)

    def test_negative_sample_rejected(self):
        with pytest.raises(ValueError):
            RetransmitTimer(0.2).observe(-0.01)


class TestEstimation:
    def test_first_sample_initializes_srtt_and_rttvar(self):
        timer = RetransmitTimer(0.2, min_timeout=0.01)
        timer.observe(0.08)
        assert timer.srtt == 0.08
        assert timer.rttvar == 0.04
        assert timer.timeout == pytest.approx(0.08 + 4 * 0.04)
        assert timer.samples == 1

    def test_converges_toward_steady_samples(self):
        timer = RetransmitTimer(0.2, min_timeout=0.01)
        for _ in range(200):
            timer.observe(0.05)
        assert timer.srtt == pytest.approx(0.05, rel=1e-3)

    def test_floor_defaults_to_initial(self):
        """Adaptation only ever *raises* the timer above the
        historical fixed constant (RFC 6298's conservative-minimum
        stance): fast-path samples must not shrink it below the value
        that was known to work."""
        timer = RetransmitTimer(0.2)
        for _ in range(50):
            timer.observe(0.005)
        assert timer.timeout == 0.2

    def test_slack_keeps_timeout_above_srtt_at_zero_variance(self):
        """Steady samples decay rttvar toward zero; without slack the
        timeout would collapse onto the mean round trip and fire on
        any hiccup."""
        timer = RetransmitTimer(0.2, min_timeout=0.01, slack=2.0)
        for _ in range(500):
            timer.observe(0.4)
        assert timer.rttvar < 0.01
        assert timer.timeout >= 2.0 * timer.srtt * 0.999

    def test_adapts_above_a_slow_path(self):
        timer = RetransmitTimer(0.1)
        timer.observe(0.3)
        assert timer.timeout > 0.3


class TestBackoff:
    def test_timeout_doubles_and_caps(self):
        timer = RetransmitTimer(0.2, max_timeout=1.0)
        timer.note_timeout()
        assert timer.timeout == pytest.approx(0.4)
        timer.note_timeout()
        assert timer.timeout == pytest.approx(0.8)
        for _ in range(10):
            timer.note_timeout()
        assert timer.timeout == 1.0
        assert timer.timeouts == 12

    def test_fresh_sample_ends_backoff(self):
        timer = RetransmitTimer(0.2, min_timeout=0.01)
        timer.note_timeout()
        timer.note_timeout()
        timer.observe(0.02)
        assert timer.timeout == pytest.approx(0.02 + 4 * 0.01)


class TestRearm:
    def test_small_drift_not_worth_a_syscall(self):
        timer = RetransmitTimer(0.2)
        assert not timer.needs_rearm(0.2)
        assert not timer.needs_rearm(0.19)

    def test_material_drift_rearms(self):
        timer = RetransmitTimer(0.2)
        timer.note_timeout()   # timeout -> 0.4
        assert timer.needs_rearm(0.2)
