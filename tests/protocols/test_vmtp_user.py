"""Tests for the user-level VMTP implementation over the packet filter."""


from repro.protocols.vmtp import (
    VMTPClient,
    VMTPServer,
    client_filter,
    server_filter,
)
from repro.sim import SimTimeout, World


def vmtp_world(**kwargs):
    world = World(**kwargs)
    a = world.host("client-host")
    b = world.host("server-host")
    a.install_packet_filter()
    b.install_packet_filter()
    return world, a, b


def spawn_echo_server(world, host, server_id=35, **server_kwargs):
    def body():
        server = VMTPServer(host, server_id=server_id, **server_kwargs)
        yield from server.start()
        while True:
            request, reply = yield from server.receive()
            yield from reply(b"echo:" + request)

    return host.spawn("vmtp-server", body())


class TestTransactions:
    def test_round_trip(self):
        world, a, b = vmtp_world()
        spawn_echo_server(world, b)

        def client_body():
            client = VMTPClient(
                a, client_id=7, server_station=b.address, server_id=35
            )
            yield from client.start()
            return (yield from client.call(b"hello"))

        proc = a.spawn("client", client_body())
        world.run_until_done(proc)
        assert proc.result == b"echo:hello"

    def test_multi_segment(self):
        world, a, b = vmtp_world()
        spawn_echo_server(world, b)
        big = bytes(range(256)) * 40  # 10240 bytes

        def client_body():
            client = VMTPClient(
                a, client_id=7, server_station=b.address, server_id=35
            )
            yield from client.start()
            return (yield from client.call(big))

        proc = a.spawn("client", client_body())
        world.run_until_done(proc)
        assert proc.result == b"echo:" + big

    def test_retry_on_lost_request(self):
        world, a, b = vmtp_world()
        world.segment.drop_filter = lambda frame, n: n == 1
        spawn_echo_server(world, b)

        def client_body():
            client = VMTPClient(
                a, client_id=7, server_station=b.address, server_id=35
            )
            yield from client.start()
            response = yield from client.call(b"retry")
            return response, client.retries

        proc = a.spawn("client", client_body())
        world.run_until_done(proc)
        response, retries = proc.result
        assert response == b"echo:retry"
        assert retries >= 1

    def test_duplicate_suppression_at_server(self):
        world, a, b = vmtp_world()
        world.segment.drop_filter = lambda frame, n: n == 2  # lose response
        served = []

        def server_body():
            server = VMTPServer(b, server_id=35)
            yield from server.start()
            while True:
                request, reply = yield from server.receive()
                served.append(request)
                yield from reply(b"once")

        b.spawn("server", server_body())

        def client_body():
            client = VMTPClient(
                a, client_id=7, server_station=b.address, server_id=35
            )
            yield from client.start()
            return (yield from client.call(b"req"))

        proc = a.spawn("client", client_body())
        world.run_until_done(proc)
        assert proc.result == b"once"
        assert served == [b"req"]

    def test_black_hole_times_out(self):
        world, a, b = vmtp_world()
        world.segment.drop_filter = lambda frame, n: True

        def client_body():
            client = VMTPClient(
                a, client_id=7, server_station=b.address, server_id=35
            )
            yield from client.start()
            try:
                yield from client.call(b"void")
            except SimTimeout:
                return "gave up"

        proc = a.spawn("client", client_body())
        world.run_until_done(proc)
        assert proc.result == "gave up"

    def test_wire_compatible_with_kernel_implementation(self):
        """The paper's two implementations interoperate: a user-level
        client against the kernel-resident server."""
        from repro.kernelnet import KernelVMTP, SockIoctl
        from repro.sim import Ioctl, Open, Read, Write

        world = World()
        a = world.host("user-level-host")
        b = world.host("kernel-host")
        a.install_packet_filter()
        KernelVMTP(b)

        def kernel_server():
            fd = yield Open("vmtp")
            yield Ioctl(fd, SockIoctl.BIND, 35)
            while True:
                request = yield Read(fd)
                yield Write(fd, b"kernel says:" + request)

        b.spawn("server", kernel_server())

        def user_client():
            client = VMTPClient(
                a, client_id=7, server_station=b.address, server_id=35
            )
            yield from client.start()
            return (yield from client.call(b"hi"))

        proc = a.spawn("client", user_client())
        world.run_until_done(proc)
        assert proc.result == b"kernel says:hi"


class TestFilters:
    def test_client_filter_selects_responses_for_client(self):
        from repro.core.interpreter import evaluate
        from repro.net.ethernet import ETHERNET_10MB
        from repro.protocols.ethertypes import ETHERTYPE_VMTP
        from repro.protocols.vmtp import VMTPKind, VMTPPacket

        program = client_filter(7)

        def frame(kind, client):
            packet = VMTPPacket(
                kind=kind, client=client, server=35, transaction=1,
                seg_index=0, seg_count=1, total_length=0,
            )
            return ETHERNET_10MB.frame(
                b"\x01" * 6, b"\x02" * 6, ETHERTYPE_VMTP, packet.encode()
            )

        assert evaluate(program, frame(VMTPKind.RESPONSE, 7)).accepted
        assert not evaluate(program, frame(VMTPKind.RESPONSE, 8)).accepted
        assert not evaluate(program, frame(VMTPKind.REQUEST, 7)).accepted

    def test_server_filter_selects_by_server_id(self):
        from repro.core.interpreter import evaluate
        from repro.net.ethernet import ETHERNET_10MB
        from repro.protocols.ethertypes import ETHERTYPE_VMTP
        from repro.protocols.vmtp import VMTPKind, VMTPPacket

        program = server_filter(35)

        def frame(server):
            packet = VMTPPacket(
                kind=VMTPKind.REQUEST, client=1, server=server, transaction=1,
                seg_index=0, seg_count=1, total_length=0,
            )
            return ETHERNET_10MB.frame(
                b"\x01" * 6, b"\x02" * 6, ETHERTYPE_VMTP, packet.encode()
            )

        assert evaluate(program, frame(35)).accepted
        assert not evaluate(program, frame(36)).accepted

    def test_filters_are_disjoint_for_distinct_endpoints(self):
        """Two VMTP processes on one host never steal each other's
        packets — the section 3.2 discipline."""
        world, a, b = vmtp_world()
        spawn_echo_server(world, b, server_id=35)
        spawn_echo_server(world, b, server_id=36)

        def client_body(client_id, server_id, message):
            def body():
                client = VMTPClient(
                    a, client_id=client_id,
                    server_station=b.address, server_id=server_id,
                )
                yield from client.start()
                return (yield from client.call(message))

            return body()

        one = a.spawn("c1", client_body(1, 35, b"to 35"))
        two = a.spawn("c2", client_body(2, 36, b"to 36"))
        world.run_until_done(one, two)
        assert one.result == b"echo:to 35"
        assert two.result == b"echo:to 36"
