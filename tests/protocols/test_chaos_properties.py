"""Property tests (hypothesis): payloads survive arbitrary chaos.

Whatever combination of burst loss, reordering, corruption and
duplication the segment inflicts — within a survivable retry budget —
the protocols must deliver exactly the bytes that were sent, or fail
loudly.  Silent damage is the one unacceptable outcome: every byte
that arrives must be a byte that was sent.

Small payloads and few examples keep the tier-1 suite fast; the seeded
soak matrix in benchmarks/test_chaos_soak.py covers the heavyweight
profiles.  ``derandomize`` keeps the examples fixed run to run — these
are regression tests, not a fuzzing campaign.
"""

from hypothesis import given, settings, strategies as st

from repro.bench.scenarios import run_bsp_chaos, run_vmtp_chaos
from repro.net.medium import ChaosConfig

# Survivable chaos: expected loss stays under ~35% so SOAK_RETRIES
# always rides out the bursts; every knob still gets exercised.
chaos_profiles = st.builds(
    ChaosConfig,
    loss_rate=st.floats(0.0, 0.15),
    burst_enter_rate=st.floats(0.0, 0.1),
    burst_exit_rate=st.floats(0.2, 0.5),
    burst_loss_rate=st.floats(0.5, 0.95),
    duplicate_rate=st.floats(0.0, 0.2),
    reorder_rate=st.floats(0.0, 0.3),
    reorder_jitter=st.floats(0.0, 4e-3),
    corrupt_rate=st.floats(0.0, 0.1),
    corrupt_bits=st.integers(1, 3),
)

seeds = st.integers(min_value=0, max_value=2**16)


@settings(max_examples=8, deadline=None, derandomize=True)
@given(chaos=chaos_profiles, seed=seeds)
def test_bsp_stream_arrives_intact_under_chaos(chaos, seed):
    result = run_bsp_chaos(chaos=chaos, seed=seed, payload_bytes=4096)
    assert result["intact"]


@settings(max_examples=8, deadline=None, derandomize=True)
@given(chaos=chaos_profiles, seed=seeds)
def test_vmtp_replies_arrive_intact_under_chaos(chaos, seed):
    result = run_vmtp_chaos(
        chaos=chaos, seed=seed, calls=4, segment_bytes=2048
    )
    assert result["intact"]
