"""Adversarial loss patterns against the reliable protocols.

Random loss rates exercise the average case; these tests aim drops at
the worst packets — the first data packet, the last one, every ACK for
a while, a burst in the middle — for both BSP (user-level) and kernel
TCP.  Every pattern must still deliver the exact byte stream.
"""


from repro.kernelnet import KernelTCP, SockIoctl, link_stacks
from repro.protocols.bsp import BSP_ACK, BSPEndpoint
from repro.protocols.pup import PupAddress, PupHeader
from repro.sim import Close, Ioctl, Open, Read, World, Write

PAYLOAD = bytes(i & 0xFF for i in range(12_000))


def drop_nth_data_frame(n, link, pup_type):
    """Drop the n-th frame of the given Pup type (1-indexed)."""
    seen = {"count": 0}

    def drop(frame, _index):
        try:
            header, _ = PupHeader.decode(link.payload_of(frame))
        except Exception:
            return False
        if header.pup_type != pup_type:
            return False
        seen["count"] += 1
        return seen["count"] == n

    return drop


def run_bsp(drop_filter):
    world = World()
    sender = world.host("s")
    receiver = world.host("r")
    sender.install_packet_filter()
    receiver.install_packet_filter()
    world.segment.drop_filter = drop_filter(world) if callable(drop_filter) else drop_filter

    def tx():
        endpoint = BSPEndpoint(sender, local_socket=0x44)
        yield from endpoint.start()
        yield from endpoint.send_stream(
            receiver.address,
            PupAddress(net=1, host=receiver.address[-1], socket=0x35),
            PAYLOAD,
        )

    def rx():
        endpoint = BSPEndpoint(receiver, local_socket=0x35)
        yield from endpoint.start()
        return (yield from endpoint.recv_all())

    rx_proc = receiver.spawn("rx", rx())
    sender.spawn("tx", tx())
    world.run_until_done(rx_proc)
    return rx_proc.result


class TestBSPAdversarialLoss:
    def test_first_data_packet_lost(self):
        from repro.protocols.bsp import BSP_DATA
        from repro.net.ethernet import ETHERNET_10MB

        drop = drop_nth_data_frame(1, ETHERNET_10MB, BSP_DATA)
        assert run_bsp(lambda world: drop) == PAYLOAD

    def test_last_data_packet_lost(self):
        from repro.protocols.bsp import BSP_DATA
        from repro.net.ethernet import ETHERNET_10MB

        expected_packets = -(-len(PAYLOAD) // 532)
        drop = drop_nth_data_frame(expected_packets, ETHERNET_10MB, BSP_DATA)
        assert run_bsp(lambda world: drop) == PAYLOAD

    def test_end_marker_lost(self):
        from repro.protocols.bsp import BSP_END
        from repro.net.ethernet import ETHERNET_10MB

        drop = drop_nth_data_frame(1, ETHERNET_10MB, BSP_END)
        assert run_bsp(lambda world: drop) == PAYLOAD

    def test_every_early_ack_lost(self):
        """Losing the first five ACKs forces go-back-N resends."""
        from repro.net.ethernet import ETHERNET_10MB

        state = {"acks": 0}

        def drop(frame, _index):
            try:
                header, _ = PupHeader.decode(
                    ETHERNET_10MB.payload_of(frame)
                )
            except Exception:
                return False
            if header.pup_type != BSP_ACK:
                return False
            state["acks"] += 1
            return state["acks"] <= 5

        assert run_bsp(lambda world: drop) == PAYLOAD

    def test_burst_loss_mid_stream(self):
        def drop(frame, index):
            return 12 <= index <= 18  # seven consecutive frames

        assert run_bsp(lambda world: drop) == PAYLOAD


def run_tcp(drop_filter):
    world = World()
    sender = world.host("s")
    receiver = world.host("r")
    stack_a = sender.install_kernel_stack()
    stack_b = receiver.install_kernel_stack()
    link_stacks(stack_a, stack_b)
    KernelTCP(stack_a)
    KernelTCP(stack_b)
    world.segment.drop_filter = drop_filter

    def server():
        fd = yield Open("tcp")
        yield Ioctl(fd, SockIoctl.BIND, 9)
        received = bytearray()
        while True:
            chunk = yield Read(fd)
            if not chunk:
                return bytes(received)
            received.extend(chunk)

    def client():
        fd = yield Open("tcp")
        yield Ioctl(fd, SockIoctl.CONNECT, (stack_b.ip_address, 9))
        for offset in range(0, len(PAYLOAD), 4096):
            yield Write(fd, PAYLOAD[offset : offset + 4096])
        yield Close(fd)

    sink = receiver.spawn("sink", server())
    sender.spawn("source", client())
    world.run_until_done(sink)
    return sink.result


class TestTCPAdversarialLoss:
    def test_first_data_segment_lost(self):
        # Frames 1-3 are the handshake; 4 is the first data segment.
        assert run_tcp(lambda frame, n: n == 4) == PAYLOAD

    def test_burst_loss(self):
        assert run_tcp(lambda frame, n: 6 <= n <= 10) == PAYLOAD

    def test_every_third_frame_early(self):
        assert run_tcp(lambda frame, n: n <= 24 and n % 3 == 0) == PAYLOAD

    def test_fin_lost(self):
        """The last tracked frame before teardown completes is the FIN;
        kill every first-transmission FIN-sized candidate once."""
        state = {"dropped": False}

        def drop(frame, n):
            # FIN segments are data-less: 14 + 20 + 20 = 54 bytes, and
            # appear only near the end.  Drop the first one we see.
            if len(frame) == 54 and n > 6 and not state["dropped"]:
                state["dropped"] = True
                return True
            return False

        assert run_tcp(drop) == PAYLOAD
