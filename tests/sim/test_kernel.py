"""Tests for the simulated kernel: processes, syscalls, accounting."""

import pytest

from repro.sim import (
    BadFileDescriptor,
    Close,
    Compute,
    InvalidArgument,
    NoSuchDevice,
    Open,
    PipeCreate,
    Read,
    SigWait,
    Sleep,
    World,
    Write,
)
from repro.sim.kernel import DeviceDriver, DeviceHandle
from repro.sim.process import ProcessState


class EchoHandle(DeviceHandle):
    """Test device: write stores, read returns what was written."""

    def __init__(self, kernel):
        self.kernel = kernel
        self.stored = b""

    def write(self, process, call):
        self.stored = call.data
        self.kernel.complete(process, len(call.data))

    def read(self, process, call):
        self.kernel.complete(process, self.stored)

    def poll_readable(self):
        return bool(self.stored)


class EchoDevice(DeviceDriver):
    def open(self, kernel, process):
        return EchoHandle(kernel)


def make_host():
    world = World()
    host = world.host("h")
    host.kernel.register_device("echo", EchoDevice())
    return world, host


class TestProcessLifecycle:
    def test_process_returns_value(self):
        world, host = make_host()

        def body():
            yield Sleep(0.01)
            return 42

        proc = host.spawn("p", body())
        world.run_until_done(proc)
        assert proc.result == 42
        assert proc.state is ProcessState.DONE
        assert proc.finished_at == pytest.approx(world.now)

    def test_uncaught_kernel_error_fails_process(self):
        world, host = make_host()

        def body():
            yield Open("missing-device")

        proc = host.spawn("p", body())
        world.run()
        assert proc.state is ProcessState.FAILED
        assert isinstance(proc.error, NoSuchDevice)

    def test_process_can_catch_kernel_errors(self):
        world, host = make_host()

        def body():
            try:
                yield Open("missing-device")
            except NoSuchDevice:
                return "caught"

        proc = host.spawn("p", body())
        world.run_until_done(proc)
        assert proc.result == "caught"

    def test_yielding_garbage_fails(self):
        world, host = make_host()

        def body():
            yield "not a syscall"

        proc = host.spawn("p", body())
        world.run()
        assert isinstance(proc.error, InvalidArgument)

    def test_fds_closed_on_exit(self):
        world, host = make_host()

        def body():
            yield Open("echo")
            return True

        proc = host.spawn("p", body())
        world.run_until_done(proc)
        assert proc.fds == {}


class TestFileDescriptors:
    def test_open_read_write_close(self):
        world, host = make_host()

        def body():
            fd = yield Open("echo")
            yield Write(fd, b"hello")
            data = yield Read(fd)
            yield Close(fd)
            return data

        proc = host.spawn("p", body())
        world.run_until_done(proc)
        assert proc.result == b"hello"

    def test_bad_fd(self):
        world, host = make_host()

        def body():
            try:
                yield Read(17)
            except BadFileDescriptor:
                return "ebadf"

        proc = host.spawn("p", body())
        world.run_until_done(proc)
        assert proc.result == "ebadf"

    def test_double_close(self):
        world, host = make_host()

        def body():
            fd = yield Open("echo")
            yield Close(fd)
            try:
                yield Close(fd)
            except BadFileDescriptor:
                return "ebadf"

        proc = host.spawn("p", body())
        world.run_until_done(proc)
        assert proc.result == "ebadf"


class TestTimeAccounting:
    def test_sleep_advances_clock_without_cpu(self):
        world, host = make_host()

        def body():
            yield Sleep(0.5)

        proc = host.spawn("p", body())
        world.run_until_done(proc)
        assert world.now >= 0.5
        # Only syscall overhead was charged, not 0.5s of CPU.
        assert host.stats.cpu_time < 0.01

    def test_compute_charges_cpu(self):
        world, host = make_host()

        def body():
            yield Compute(0.25)

        proc = host.spawn("p", body())
        world.run_until_done(proc)
        assert host.stats.cpu_time >= 0.25

    def test_syscalls_counted_with_two_crossings_each(self):
        world, host = make_host()

        def body():
            fd = yield Open("echo")
            yield Write(fd, b"x")
            yield Read(fd)

        proc = host.spawn("p", body())
        world.run_until_done(proc)
        assert host.stats.syscalls == 3
        assert host.stats.domain_crossings == 6

    def test_context_switch_between_processes(self):
        world, host = make_host()

        def body():
            yield Compute(0.001)
            yield Compute(0.001)

        a = host.spawn("a", body())
        b = host.spawn("b", body())
        world.run_until_done(a, b)
        assert host.stats.context_switches >= 2

    def test_single_nonblocking_process_never_switches(self):
        """§6.5.1's best case: never suspended => no switches."""
        world, host = make_host()

        def body():
            fd = yield Open("echo")
            yield Write(fd, b"x")
            for _ in range(5):
                yield Read(fd)  # data always ready: no blocking

        proc = host.spawn("p", body())
        world.run_until_done(proc)
        assert host.stats.context_switches == 0

    def test_cpu_serializes_charges(self):
        world, host = make_host()
        kernel = host.kernel
        t0 = kernel.charge(0.010)
        t1 = kernel.charge(0.010)
        assert t1 == pytest.approx(t0 + 0.010)


class TestSignals:
    def test_sigwait_blocks_until_posted(self):
        world, host = make_host()

        def body():
            signal = yield SigWait()
            return signal

        proc = host.spawn("p", body())
        world.run()  # goes idle, blocked
        host.kernel.post_signal(proc, 17)
        world.run_until_done(proc)
        assert proc.result == 17

    def test_pending_signal_returned_immediately(self):
        world, host = make_host()

        def body():
            yield Sleep(0.05)
            return (yield SigWait())

        proc = host.spawn("p", body())
        world.run(until=0.01)
        host.kernel.post_signal(proc, 9)
        world.run_until_done(proc)
        assert proc.result == 9

    def test_signals_queue_in_order(self):
        world, host = make_host()

        def body():
            first = yield SigWait()
            second = yield SigWait()
            return (first, second)

        proc = host.spawn("p", body())
        world.run()
        host.kernel.post_signal(proc, 1)
        host.kernel.post_signal(proc, 2)
        world.run_until_done(proc)
        assert proc.result == (1, 2)


class TestPipesViaSyscall:
    def test_pipe_create_and_transfer(self):
        world, host = make_host()

        def body():
            rfd, wfd = yield PipeCreate()
            yield Write(wfd, b"through the pipe")
            data = yield Read(rfd)
            return data

        proc = host.spawn("p", body())
        world.run_until_done(proc)
        assert proc.result == b"through the pipe"

    def test_share_fd_between_processes(self):
        world, host = make_host()
        box = {}

        def producer():
            rfd, wfd = yield PipeCreate()
            box["rfd_handle"] = (yield Sleep(0.0)) or None
            yield Write(wfd, b"shared")
            yield Sleep(0.1)

        producer_proc = host.spawn("producer", producer())

        def consumer():
            yield Sleep(0.02)
            rfd = host.kernel.share_fd(producer_proc, 3, consumer_proc)
            data = yield Read(rfd)
            return data

        consumer_proc = host.spawn("consumer", consumer())
        world.run_until_done(consumer_proc)
        assert consumer_proc.result == b"shared"
