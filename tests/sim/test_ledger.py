"""The charge ledger: unit behaviour and the reconciliation invariant.

The invariant the ledger refactor rests on: the ledger is not a second
bookkeeping system that can drift from :class:`KernelStats`.  Every
charge site goes through ``SimKernel.account``, which updates the live
counters and appends the ledger event in the same call — so replaying
the event stream (:meth:`Ledger.stats_view`) must reproduce the live
stats *exactly*: bitwise-equal floats, identical integers, for every
engine and under chaos.
"""

import pytest

from repro.bench.scenarios import run_bsp_chaos
from repro.core.compiler import compile_expr, word
from repro.core.demux import Engine
from repro.core.ioctl import PFIoctl
from repro.sim import Ioctl, Open, Read, Sleep, World, Write
from repro.sim.ledger import (
    DROP_PRIMITIVES,
    Ledger,
    PacketSpan,
    Primitive,
    STAGE_ENQUEUE,
    STAGE_INTERRUPT,
    STAGE_WIRE_ARRIVAL,
)

TYPE = 0x0900
STRAY_TYPE = 0x0801   # no handler, no filter: goes unclaimed

ENGINES = [Engine.CHECKED, Engine.PREVALIDATED, Engine.COMPILED, Engine.FUSED]


# ---------------------------------------------------------------------------
# Unit behaviour
# ---------------------------------------------------------------------------


class TestLedgerUnit:
    def test_record_totals_and_marks(self):
        ledger = Ledger()
        ledger.record(Primitive.SYSCALL, host="a", at=0.0, cost=0.25)
        mark = ledger.mark()
        ledger.record(Primitive.COPY, host="a", at=0.1, cost=0.5, quantity=64)
        ledger.record(Primitive.SYSCALL, host="b", at=0.2, cost=0.25)
        assert ledger.total_cost() == pytest.approx(1.0)
        assert ledger.total_cost(host="a") == pytest.approx(0.75)
        assert ledger.total_cost(host="a", start=mark) == pytest.approx(0.5)
        assert ledger.total_cost(
            host="a", primitives=(Primitive.COPY,)
        ) == pytest.approx(0.5)
        breakdown = ledger.breakdown("a")
        assert breakdown["copy"] == {"events": 1, "quantity": 64, "cost": 0.5}

    def test_span_lifecycle_and_idempotent_close(self):
        ledger = Ledger()
        pid = ledger.begin_packet("a", at=0.0)
        ledger.stage(pid, STAGE_INTERRUPT, 0.1)
        ledger.close_packet(pid, "delivered", 0.2)
        ledger.close_packet(pid, "flushed", 0.3)      # first close wins
        ledger.stage(pid, STAGE_ENQUEUE, 0.4)         # no-op after close
        span = ledger.spans[pid]
        assert span.outcome == "delivered"
        assert span.closed_at == 0.2
        assert [name for name, _ in span.stages] == [
            STAGE_WIRE_ARRIVAL, STAGE_INTERRUPT,
        ]
        assert span.problems() == []

    def test_span_problem_detection(self):
        backwards = PacketSpan(packet_id=1, host="a")
        backwards.stages = [
            (STAGE_WIRE_ARRIVAL, 1.0), (STAGE_INTERRUPT, 0.5),
        ]
        assert any("backwards" in p for p in backwards.problems())

        out_of_order = PacketSpan(packet_id=2, host="a")
        out_of_order.stages = [
            (STAGE_ENQUEUE, 0.0), (STAGE_INTERRUPT, 0.1),
        ]
        assert any("order" in p for p in out_of_order.problems())

    def test_drop_summary_aggregates_all_drop_primitives(self):
        ledger = Ledger()
        for primitive in DROP_PRIMITIVES:
            host = "wire" if primitive.value.startswith("wire") else "a"
            ledger.record(primitive, host=host, at=0.0)
            ledger.record(primitive, host=host, at=0.1)
        summary = ledger.drop_summary()
        assert summary == {p.value: 2 for p in DROP_PRIMITIVES}
        # Host-scoped summaries still include the wire's losses: a frame
        # lost on the wire was dropped on the way to *some* host.
        scoped = ledger.drop_summary("a")
        assert scoped == summary

    def test_windowed_aggregation_slices_from_the_mark(self):
        """``start=mark`` aggregation must slice the event list at the
        mark, never rescan from index zero — the O(window) guarantee
        benchmark baselines rely on."""

        class SliceSpy(list):
            def __init__(self, *args):
                super().__init__(*args)
                self.slice_starts = []

            def __getitem__(self, key):
                if isinstance(key, slice):
                    self.slice_starts.append(key.start)
                return super().__getitem__(key)

        ledger = Ledger()
        for n in range(100):
            ledger.record(
                Primitive.SYSCALL, host="a", at=float(n), cost=0.1
            )
        ledger.events = SliceSpy(ledger.events)
        mark = ledger.mark()
        ledger.record(Primitive.DROP_OVERFLOW, host="a", at=100.0)
        spy = ledger.events
        spy.slice_starts.clear()

        list(ledger.iter_events("a", start=mark))
        ledger.total_cost("a", start=mark)
        ledger.breakdown("a", start=mark)
        assert ledger.drop_summary("a", start=mark) == {
            "drop_overflow": 1
        }
        assert spy.slice_starts and all(
            start == mark for start in spy.slice_starts
        )

    def test_window_beyond_end_is_empty_not_an_error(self):
        ledger = Ledger()
        ledger.record(Primitive.SYSCALL, host="a", at=0.0, cost=0.1)
        beyond = ledger.mark() + 50
        assert list(ledger.iter_events(start=beyond)) == []
        assert ledger.total_cost(start=beyond) == 0.0
        assert ledger.breakdown(start=beyond) == {}
        assert ledger.drop_summary(start=beyond) == {}

    def test_empty_window_aggregations_return_empty(self):
        """Regression: pure-drop runs and empty windows must yield
        empty summaries, not raise (satellite hardening check)."""
        ledger = Ledger()
        assert ledger.stage_percentiles() == {}
        assert ledger.drop_summary() == {}
        assert ledger.breakdown() == {}
        assert ledger.total_cost() == 0.0
        # spans that never reach the end stage contribute nothing
        pid = ledger.begin_packet("a", at=0.0)
        ledger.close_packet(pid, "dropped_overflow", 0.1)
        assert ledger.stage_percentiles(host="a") == {}

    def test_stage_percentiles_nearest_rank(self):
        ledger = Ledger()
        for index, latency in enumerate([0.010, 0.020, 0.030, 0.040]):
            pid = ledger.begin_packet("a", at=float(index))
            ledger.close_packet(pid, "delivered", float(index))
            span = ledger.spans[pid]
            span.stages.append(("syscall_return", float(index) + latency))
        pcts = ledger.stage_percentiles(host="a")
        assert pcts[0.5] == pytest.approx(0.020)
        assert pcts[0.99] == pytest.approx(0.040)
        assert ledger.stage_percentiles(host="nobody") == {}


# ---------------------------------------------------------------------------
# Reconciliation: ledger replay == live stats, exactly
# ---------------------------------------------------------------------------


def run_pf_workload(engine: Engine, frames: int = 6):
    """The canonical two-host packet-filter exchange, ledger enabled.

    The sender also emits one stray-ethertype frame nobody claims, so
    the UNCLAIMED accounting path is always part of what reconciliation
    checks.
    """
    world = World(ledger=True)
    alice = world.host("alice")
    bob = world.host("bob")
    alice.install_packet_filter(engine=engine)
    bob.install_packet_filter(engine=engine)

    def receiver():
        fd = yield Open("pf")
        yield Ioctl(
            fd, PFIoctl.SETFILTER, compile_expr(word(6) == TYPE, priority=10)
        )
        got = 0
        while got < frames:
            got += len((yield Read(fd)))
        return got

    def sender():
        fd = yield Open("pf")
        yield Sleep(0.01)
        for n in range(frames):
            frame = alice.link.frame(
                bob.address, alice.address, TYPE, bytes(40 + n)
            )
            yield Write(fd, frame)
            yield Sleep(0.002)
        yield Write(fd, alice.link.frame(
            bob.address, alice.address, STRAY_TYPE, b"stray"
        ))
        yield Sleep(0.01)

    rx = bob.spawn("rx", receiver())
    tx = alice.spawn("tx", sender())
    world.run_until_done(rx, tx)
    return world, alice, bob


@pytest.mark.parametrize("engine", ENGINES, ids=lambda e: e.value)
def test_ledger_reconciles_with_kernel_stats(engine):
    world, alice, bob = run_pf_workload(engine)
    for host in (alice, bob):
        assert world.ledger.stats_view(host.name) == host.kernel.stats


@pytest.mark.parametrize("engine", ENGINES, ids=lambda e: e.value)
def test_counters_match_event_census(engine):
    """Each KernelStats counter equals the count (or summed quantity)
    of its primitive's events — no charge site bypasses the ledger."""
    world, alice, bob = run_pf_workload(engine)
    for host in (alice, bob):
        stats = host.kernel.stats
        census = world.ledger.breakdown(host.name)

        def events(primitive):
            return census.get(primitive.value, {"events": 0})["events"]

        def quantity(primitive):
            return census.get(primitive.value, {"quantity": 0})["quantity"]

        assert stats.syscalls == events(Primitive.SYSCALL)
        assert stats.domain_crossings == 2 * events(Primitive.SYSCALL)
        assert stats.context_switches == events(Primitive.CONTEXT_SWITCH)
        assert stats.copies == events(Primitive.COPY)
        assert stats.bytes_copied == quantity(Primitive.COPY)
        assert stats.wakeups == events(Primitive.WAKEUP)
        assert stats.interrupts == events(Primitive.INTERRUPT)
        assert stats.frames_received == events(Primitive.FRAME_RX)
        assert stats.frames_sent == events(Primitive.DRIVER_SEND)
        assert stats.packets_unclaimed == events(Primitive.UNCLAIMED)
        assert stats.signals_posted == events(Primitive.SIGNAL)
        assert stats.filter_predicates == quantity(Primitive.FILTER_PREDICATE)
        assert stats.filter_instructions == quantity(
            Primitive.FILTER_INSTRUCTION
        )


def test_chaos_soak_reconciles():
    """Reconciliation holds under the acceptance chaos profile too —
    loss, corruption, duplication and every drop path included."""
    result = run_bsp_chaos(seed=11, ledger=True)
    assert result["intact"]
    world = result["world"]
    for host in world.hosts:
        assert world.ledger.stats_view(host.name) == host.kernel.stats
    # The PR-2 drop counters surface through one uniform summary.
    assert result["drops"].get("wire_loss", 0) > 0
    known = {p.value for p in DROP_PRIMITIVES}
    assert set(result["drops"]) <= known


def test_disabled_ledger_stays_off():
    """The default world charges stats exactly as before and records
    nothing — the zero-overhead-when-disabled contract."""
    world = World()
    host = world.host("solo")
    assert world.ledger is None
    assert host.kernel.ledger is None
    host.kernel.account(Primitive.SYSCALL, 0.25)
    assert host.kernel.stats.syscalls == 1
    assert host.kernel.stats.cpu_time == pytest.approx(0.25)
