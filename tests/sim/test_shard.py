"""Sharded execution: partitioning, forwarding, and bitwise equality.

The headline invariant: ``run_topology(spec, shards=N)`` is bitwise
identical to ``run_topology(spec, shards=1)`` for every N — same
per-host counters (floats included), same packet spans, same window
count.  The heavyweight sweep lives in the difftest suite; here small
ping topologies pin the mechanism.
"""

import pytest

from repro.core import PFIoctl, compile_expr, word
from repro.difftest.sharding import outcome_digest, run_digest
from repro.sim import Ioctl, Open, Read, Sleep, Write
from repro.sim.orchestrator import run_topology
from repro.sim.shard import partition
from repro.sim.topology import BridgeSpec, SegmentSpec, TopologySpec

TEST_TYPE = 0x0C47


def ping_builder(ctx, *, frames=4, gap=2e-3, cross_target=None):
    """A receiver reading everything of TEST_TYPE, and a sender pacing
    ``frames`` local frames (plus one bridged frame each, when aimed)."""
    receiver = ctx.host("rx")
    receiver.install_packet_filter()
    sender = ctx.host("tx")
    sender.install_packet_filter()

    def read_loop():
        fd = yield Open("pf")
        yield Ioctl(fd, PFIoctl.SETFILTER, compile_expr(word(6) == TEST_TYPE))
        while True:
            yield Read(fd)

    def send():
        fd = yield Open("pf")
        yield Sleep(0.005)
        for _ in range(frames):
            yield Write(fd, sender.link.frame(
                receiver.address, sender.address, TEST_TYPE, b"local",
            ))
            if cross_target is not None:
                yield Write(fd, sender.link.frame(
                    ctx.address_of(cross_target), sender.address,
                    TEST_TYPE, b"cross",
                ))
            yield Sleep(gap)

    receiver.spawn("reader", read_loop())
    sender.spawn("sender", send())
    ctx.report("received", lambda: receiver.kernel.stats.frames_received)


def ping_spec(segments=2, *, frames=4, seed=0, delay=2e-3) -> TopologySpec:
    """A chain of ping segments, each aiming its cross traffic at the
    next around the chain (callable builders: fork-based shards only)."""
    names = [f"lan{i}" for i in range(segments)]
    specs = []
    for index, name in enumerate(names):
        cross = names[(index + 1) % segments] if segments > 1 else None
        specs.append(SegmentSpec(
            name, ping_builder, {"frames": frames, "cross_target": cross},
        ))
    return TopologySpec(
        segments=tuple(specs),
        bridges=tuple(
            BridgeSpec(names[i], names[i + 1], delay=delay)
            for i in range(segments - 1)
        ),
        seed=seed,
    )


class TestPartition:
    def test_round_robin(self):
        assert partition(5, 2) == [[0, 2, 4], [1, 3]]

    def test_more_shards_than_segments(self):
        assert partition(2, 8) == [[0], [1]]

    def test_single_shard_owns_everything(self):
        assert partition(3, 1) == [[0, 1, 2]]

    def test_zero_shards_rejected(self):
        with pytest.raises(ValueError):
            partition(3, 0)


class TestSingleProcess:
    def test_no_bridge_topology_runs_to_quiescence(self):
        spec = TopologySpec(
            segments=(SegmentSpec("solo", ping_builder, {"frames": 3}),),
            seed=1,
        )
        result = run_topology(spec)
        assert result.windows == 1
        assert result.reports["solo"]["received"] == 3

    def test_cross_traffic_is_forwarded_and_delivered(self):
        frames = 4
        result = run_topology(ping_spec(2, frames=frames))
        for name in ("lan0", "lan1"):
            # Each receiver reads its own local frames plus the bridged
            # ones from the other segment.
            assert result.reports[name]["received"] == 2 * frames
        # Cross frames crossed the one bridge once in each direction.
        forwarded = sum(w["frames_forwarded"] for w in result.wire.values())
        assert forwarded == 2 * frames

    def test_multi_hop_forwarding(self):
        # The last segment's cross traffic re-crosses the whole chain.
        frames = 3
        result = run_topology(ping_spec(3, frames=frames))
        for name in ("lan0", "lan1", "lan2"):
            assert result.reports[name]["received"] == 2 * frames
        # lan2 -> lan0 takes two hops, so 4 one-hop crossings plus
        # 2 hops for each of lan2's frames.
        forwarded = sum(w["frames_forwarded"] for w in result.wire.values())
        assert forwarded == 4 * frames

    def test_until_stops_before_quiescence(self):
        full = run_topology(ping_spec(2, frames=6))
        cut = run_topology(ping_spec(2, frames=6), until=0.006)
        assert cut.events_fired < full.events_fired

    def test_host_names_disjoint_across_segments(self):
        result = run_topology(ping_spec(2))
        assert sorted(result.stats) == [
            "lan0:rx", "lan0:tx", "lan1:rx", "lan1:tx",
        ]


class TestPartitionIndependence:
    def test_two_shards_match_the_oracle_bitwise(self):
        spec = ping_spec(2, frames=5, seed=11)
        one = run_topology(spec, shards=1)
        two = run_topology(spec, shards=2)
        assert two.shards == 2
        assert one.stats == two.stats          # dataclass equality: exact
        assert one.total == two.total
        assert one.windows == two.windows
        assert one.events_fired == two.events_fired
        assert outcome_digest(one) == outcome_digest(two)
        assert run_digest(one) == run_digest(two)

    def test_three_segments_any_shard_count(self):
        spec = ping_spec(3, frames=3, seed=5)
        digests = {
            shards: run_digest(run_topology(spec, shards=shards))
            for shards in (1, 2, 3)
        }
        assert len(set(digests.values())) == 1

    def test_shards_capped_at_segment_count(self):
        result = run_topology(ping_spec(2, frames=2), shards=8)
        assert result.shards == 2

    def test_repeat_runs_are_bitwise_identical(self):
        spec = ping_spec(2, frames=4, seed=1)
        assert run_digest(run_topology(spec)) == run_digest(
            run_topology(spec)
        )
