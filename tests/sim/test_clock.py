"""Tests for the discrete-event scheduler."""

import pytest

from repro.sim.clock import EventScheduler


class TestScheduling:
    def test_events_fire_in_time_order(self):
        scheduler = EventScheduler()
        fired = []
        scheduler.schedule(0.3, fired.append, "late")
        scheduler.schedule(0.1, fired.append, "early")
        scheduler.schedule(0.2, fired.append, "middle")
        scheduler.run()
        assert fired == ["early", "middle", "late"]

    def test_same_time_fires_in_scheduling_order(self):
        scheduler = EventScheduler()
        fired = []
        for index in range(5):
            scheduler.schedule(1.0, fired.append, index)
        scheduler.run()
        assert fired == [0, 1, 2, 3, 4]

    def test_clock_advances_to_event_time(self):
        scheduler = EventScheduler()
        times = []
        scheduler.schedule(0.5, lambda: times.append(scheduler.now))
        scheduler.run()
        assert times == [0.5]
        assert scheduler.now == 0.5

    def test_negative_delay_rejected(self):
        scheduler = EventScheduler()
        with pytest.raises(ValueError):
            scheduler.schedule(-0.1, lambda: None)

    def test_scheduling_into_the_past_rejected(self):
        scheduler = EventScheduler()
        scheduler.schedule(1.0, lambda: None)
        scheduler.run()
        with pytest.raises(ValueError):
            scheduler.schedule_at(0.5, lambda: None)

    def test_events_can_schedule_events(self):
        scheduler = EventScheduler()
        fired = []

        def chain(n):
            fired.append(n)
            if n < 3:
                scheduler.schedule(0.1, chain, n + 1)

        scheduler.schedule(0.0, chain, 0)
        scheduler.run()
        assert fired == [0, 1, 2, 3]
        assert scheduler.now == pytest.approx(0.3)


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        scheduler = EventScheduler()
        fired = []
        event = scheduler.schedule(0.1, fired.append, "no")
        scheduler.schedule(0.2, fired.append, "yes")
        event.cancel()
        scheduler.run()
        assert fired == ["yes"]

    def test_pending_excludes_cancelled(self):
        scheduler = EventScheduler()
        scheduler.schedule(1.0, lambda: None)
        drop = scheduler.schedule(1.0, lambda: None)
        drop.cancel()
        assert scheduler.pending() == 1


class TestRunControls:
    def test_run_until(self):
        scheduler = EventScheduler()
        fired = []
        scheduler.schedule(0.1, fired.append, 1)
        scheduler.schedule(0.9, fired.append, 2)
        scheduler.run(until=0.5)
        assert fired == [1]
        assert scheduler.now == 0.5
        scheduler.run()
        assert fired == [1, 2]

    def test_run_until_advances_idle_clock(self):
        scheduler = EventScheduler()
        scheduler.run(until=2.0)
        assert scheduler.now == 2.0

    def test_max_events(self):
        scheduler = EventScheduler()
        fired = []
        for index in range(10):
            scheduler.schedule(0.1 * (index + 1), fired.append, index)
        scheduler.run(max_events=3)
        assert fired == [0, 1, 2]

    def test_step_returns_false_when_empty(self):
        assert not EventScheduler().step()

    def test_events_fired_counter(self):
        scheduler = EventScheduler()
        scheduler.schedule(0.1, lambda: None)
        scheduler.schedule(0.2, lambda: None)
        scheduler.run()
        assert scheduler.events_fired == 2


class TestNextTime:
    def test_reports_earliest_live_event(self):
        scheduler = EventScheduler()
        scheduler.schedule(0.7, lambda: None)
        scheduler.schedule(0.2, lambda: None)
        assert scheduler.next_time() == 0.2

    def test_empty_queue_is_none(self):
        assert EventScheduler().next_time() is None

    def test_skips_cancelled_heads(self):
        scheduler = EventScheduler()
        first = scheduler.schedule(0.1, lambda: None)
        second = scheduler.schedule(0.2, lambda: None)
        scheduler.schedule(0.3, lambda: None)
        first.cancel()
        second.cancel()
        assert scheduler.next_time() == 0.3

    def test_all_cancelled_is_none(self):
        scheduler = EventScheduler()
        scheduler.schedule(0.1, lambda: None).cancel()
        assert scheduler.next_time() is None


class TestRunUntil:
    def test_window_is_half_open(self):
        """Events strictly before the horizon fire; one *at* it waits."""
        scheduler = EventScheduler()
        fired = []
        scheduler.schedule(0.1, fired.append, "before")
        scheduler.schedule(0.5, fired.append, "at")
        assert scheduler.run_until(0.5) == 1
        assert fired == ["before"]
        assert scheduler.now == 0.5
        # The boundary event belongs to the next window.
        assert scheduler.run_until(0.5 + 0.5) == 1
        assert fired == ["before", "at"]

    def test_clock_lands_exactly_on_horizon(self):
        scheduler = EventScheduler()
        scheduler.run_until(0.25)
        assert scheduler.now == 0.25

    def test_zero_width_window_is_noop(self):
        scheduler = EventScheduler()
        scheduler.run_until(1.0)
        assert scheduler.run_until(1.0) == 0
        assert scheduler.now == 1.0

    def test_backwards_horizon_rejected(self):
        scheduler = EventScheduler()
        scheduler.run_until(1.0)
        with pytest.raises(ValueError):
            scheduler.run_until(0.5)

    def test_events_scheduled_inside_window_fire(self):
        scheduler = EventScheduler()
        fired = []

        def chain(n):
            fired.append(n)
            if n < 4:
                scheduler.schedule(0.1, chain, n + 1)

        scheduler.schedule(0.0, chain, 0)
        # 0.0, 0.1, 0.2 fire; 0.3 is past the horizon and waits.
        assert scheduler.run_until(0.25) == 3
        assert fired == [0, 1, 2]
        assert scheduler.next_time() == pytest.approx(0.3)
