"""The observability plane: histograms, sideband streaming, loss
tolerance, and the sync-protocol profiler."""

import math

import pytest

from repro.bench.topologies import flow_storm_topology, partition_storm_topology
from repro.difftest.sharding import run_digest
from repro.sim.obsplane import ObservabilityPlane, span_latency_histogram
from repro.sim.orchestrator import RecoveryConfig, run_topology
from repro.sim.telemetry import LogHistogram

STORM = dict(segments=2, seed=0, duration=0.1, flows=64, cache_size=16)


def storm_spec(**overrides):
    return flow_storm_topology(**{**STORM, **overrides})


class TestLogHistogram:
    def test_counts_min_max_mean(self):
        hist = LogHistogram()
        for value in (1e-3, 2e-3, 4e-3):
            hist.add(value)
        assert len(hist) == 3
        assert hist.min == 1e-3
        assert hist.max == 4e-3
        assert hist.mean == pytest.approx((1e-3 + 2e-3 + 4e-3) / 3)

    def test_buckets_are_octaves(self):
        hist = LogHistogram(floor=1.0, buckets=8)
        hist.add(1.5)    # [1, 2)
        hist.add(3.0)    # [2, 4)
        hist.add(3.9)
        lo, hi = hist.bounds(1)
        assert (lo, hi) == (2.0, 4.0)
        assert hist.counts[0] == 1
        assert hist.counts[1] == 2

    def test_below_floor_clamps_to_first_bucket(self):
        hist = LogHistogram(floor=1e-3)
        hist.add(1e-9)
        assert hist.counts[0] == 1
        assert hist.min == 1e-9

    def test_above_range_clamps_to_last_bucket(self):
        hist = LogHistogram(floor=1.0, buckets=4)
        hist.add(1e12)
        assert hist.counts[-1] == 1

    def test_quantiles_without_raw_samples(self):
        hist = LogHistogram(floor=1e-6)
        values = [1e-4 * (1.1 ** n) for n in range(200)]
        for value in values:
            hist.add(value)
        values.sort()
        for q in (0.5, 0.95, 0.99):
            exact = values[math.ceil(q * len(values)) - 1]
            estimate = hist.quantile(q)
            # octave buckets bound the relative error by 2x each way
            assert exact / 2 <= estimate <= exact * 2

    def test_quantile_clamped_to_observed_range(self):
        hist = LogHistogram(floor=1.0)
        hist.add(5.0)
        assert hist.quantile(0.5) == 5.0
        assert hist.quantile(0.99) == 5.0

    def test_empty_quantile_is_none(self):
        assert LogHistogram().quantile(0.5) is None
        assert LogHistogram().percentiles() == {
            "p50": None, "p95": None, "p99": None
        }

    def test_merge_equals_union(self):
        left, right, union = LogHistogram(), LogHistogram(), LogHistogram()
        for index, value in enumerate(v * 1e-4 for v in range(1, 40)):
            (left if index % 2 else right).add(value)
            union.add(value)
        left.merge(right)
        assert left.counts == union.counts
        assert left.count == union.count
        assert left.min == union.min
        assert left.max == union.max
        assert left.percentiles() == union.percentiles()

    def test_merge_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            LogHistogram(buckets=8).merge(LogHistogram(buckets=16))
        with pytest.raises(ValueError):
            LogHistogram(floor=1e-3).merge(LogHistogram(floor=1e-6))

    def test_dict_round_trip(self):
        hist = LogHistogram(floor=1e-5, buckets=16)
        for value in (2e-4, 3e-3, 0.5):
            hist.add(value)
        clone = LogHistogram.from_dict(hist.to_dict())
        assert clone.counts == hist.counts
        assert clone.count == hist.count
        assert clone.floor == hist.floor
        assert clone.min == hist.min
        assert clone.max == hist.max


class TestSpanLatencyHistogram:
    def test_per_segment_merge_equals_merged_ledger(self):
        """Folding per-segment histograms must equal histogramming the
        merged ledger — the bounded-memory percentile claim."""
        result = run_topology(storm_spec(), shards=1)
        merged = span_latency_histogram(result.ledger)
        assert result.span_hist is not None
        assert result.span_hist.counts == merged.counts
        assert result.span_hist.count == merged.count

    def test_sharded_histogram_matches_single(self):
        one = run_topology(storm_spec(), shards=1).span_hist
        two = run_topology(storm_spec(), shards=2).span_hist
        assert one.counts == two.counts
        assert one.percentiles() == two.percentiles()


class TestObservabilityPlane:
    def delta(self, shard=0, window=1, **overrides):
        base = {
            "shard": shard,
            "window": window,
            "next_time": 0.01,
            "events_fired": 10,
            "egress_backlog": 2,
            "checkpoint_window": 0,
            "checkpoint_forks": 0,
            "checkpoint_fork_seconds": 0.0,
            "alerts": [],
            "segments": {"lan0": {"now": 0.01, "events": 10}},
            "span_hist": None,
        }
        base.update(overrides)
        return base

    def test_ingest_builds_views_and_fires_callbacks(self):
        seen = []
        plane = ObservabilityPlane(on_update=lambda p: seen.append(p.deltas))
        plane.ingest(self.delta(shard=0, window=3, next_time=0.03))
        plane.ingest(self.delta(shard=1, window=3, next_time=0.05))
        assert seen == [1, 2]
        assert plane.view(0).window == 3
        assert plane.earliest_time() == 0.03
        assert plane.time_skew() == pytest.approx(0.02)
        assert plane.window_skew() == 0

    def test_alerts_dedupe_and_announce_once(self):
        alert = {
            "rule": "partition", "host": "segment:lan0",
            "fired_at": 0.2, "cleared_at": None,
        }
        announced = []
        plane = ObservabilityPlane(on_alert=announced.append)
        plane.ingest(self.delta(window=1, alerts=[alert]))
        plane.ingest(self.delta(window=2, alerts=[dict(alert)]))  # replayed
        assert len(plane.alerts) == 1
        assert announced == [alert]
        assert plane.active_alerts() == [alert]

    def test_checkpoint_age_and_loss_marks(self):
        plane = ObservabilityPlane()
        plane.ingest(self.delta(window=9, checkpoint_window=6))
        assert plane.view(0).checkpoint_age == 3
        plane.mark_lost(0)
        assert plane.view(0).lost
        plane.mark_restarted(0)
        assert not plane.view(0).lost
        assert plane.view(0).restarts == 1

    def test_render_is_plain_text(self):
        plane = ObservabilityPlane()
        plane.ingest(self.delta(shard=0))
        plane.ingest(self.delta(shard=1))
        frame = plane.render()
        assert "cluster: 2 shard(s)" in frame
        assert "alerts: none" in frame
        assert "\x1b" not in frame   # no ANSI: callers own the repaint


class TestLiveStreaming:
    def test_single_shard_feeds_plane_synchronously(self):
        plane = ObservabilityPlane()
        result = run_topology(storm_spec(), shards=1, observability=plane)
        assert plane.deltas == result.windows
        assert plane.view(0).events_fired == result.events_fired

    def test_worker_shards_stream_over_sideband(self):
        plane = ObservabilityPlane()
        result = run_topology(storm_spec(), shards=2, observability=plane)
        assert sorted(plane.shards) == [0, 1]
        # one delta per shard per window, none lost on a clean run
        assert plane.deltas == 2 * result.windows
        assert (
            plane.view(0).events_fired + plane.view(1).events_fired
            == result.events_fired
        )
        merged = plane.merged_span_hist()
        assert merged is not None
        assert merged.counts == result.span_hist.counts

    def test_partition_storm_alerts_stream_live(self):
        announced = []
        plane = ObservabilityPlane(on_alert=announced.append)
        spec = partition_storm_topology(segments=2, seed=0)
        result = run_topology(spec, shards=2, observability=plane)
        rules = {alert["rule"] for alert in announced}
        assert any(rule.startswith("partition:") for rule in rules)
        # the live stream saw exactly the merged post-run alert log
        assert len(announced) == len(result.telemetry.alerts)


class TestSidebandLoss:
    def test_killed_shard_does_not_wedge_the_plane(self):
        """A shard dying mid-stream (sideband pipe cut) must leave the
        plane live, and recovery must keep the digest bitwise clean."""
        clean = run_digest(run_topology(storm_spec(), shards=2))
        plane = ObservabilityPlane()
        result = run_topology(
            storm_spec(),
            shards=2,
            recovery=RecoveryConfig(checkpoint_interval=2),
            hazards={0: {"die_at_window": 3}},
            observability=plane,
        )
        assert run_digest(result) == clean
        assert result.recovered_shards == [0]
        # the plane survived the stream loss: both shards progressed to
        # the final window and the revived one is flagged
        assert plane.view(0).restarts == 1
        assert not plane.view(0).lost
        assert plane.view(0).window == result.windows
        assert plane.view(1).window == result.windows
        assert result.sync.shards[0].restarts == 1
        assert result.sync.shards[0].replay_seconds > 0.0


class TestSyncProfile:
    def test_profile_populated_per_shard(self):
        result = run_topology(storm_spec(segments=4), shards=2)
        sync = result.sync
        assert sync.windows == result.windows
        assert sync.wall_per_window > 0.0
        assert len(sync.shards) == 2
        for stats in sync.shards:
            assert stats.grants == result.windows
            assert stats.null_grants > 0      # idle windows exist
            assert stats.grant_wait_seconds > 0.0
            assert stats.grant_wait_hist.count == stats.grants
            assert stats.egress_frames > 0    # bridges crossed
        report = sync.as_dict()
        assert report["windows"] == result.windows
        assert report["shards"][0]["grant_wait"]["p95"] is not None
        assert "wait" in sync.render()

    def test_horizons_are_deterministic(self):
        first = run_topology(storm_spec(), shards=2).sync
        second = run_topology(storm_spec(), shards=2).sync
        assert first.horizons == second.horizons
        assert [s.egress_per_window for s in first.shards] == [
            s.egress_per_window for s in second.shards
        ]
        assert [s.null_grants for s in first.shards] == [
            s.null_grants for s in second.shards
        ]

    def test_shard_details_surface_per_shard_progress(self):
        result = run_topology(storm_spec(), shards=2)
        assert [d["shard"] for d in result.shard_details] == [0, 1]
        assert sum(d["events_fired"] for d in result.shard_details) == (
            result.events_fired
        )
        for detail in result.shard_details:
            assert detail["windows"] == result.windows
            assert detail["restarts"] == 0
        assert result.recovered_shards == []
        assert result.wall_per_window == pytest.approx(
            result.wall_seconds / result.windows
        )
