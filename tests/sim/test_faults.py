"""Declarative link-fault schedules and their wire-level effect.

Faults are static data on the :class:`~repro.sim.topology.TopologySpec`
— seeded, picklable, and evaluated identically by whichever shard owns
an endpoint — so chaos runs stay inside the partition-independence
oracle: a frame dropped by a downed link is dropped in the same window
with the same ledger fate no matter how the topology is sharded.
"""

import dataclasses

import pytest

from repro.difftest.sharding import run_digest
from repro.sim.faults import (
    DIRECTION_A_TO_B,
    DIRECTION_B_TO_A,
    LinkFault,
    flap_schedule,
    interval_covers,
    intervals_for,
    link_partition,
    parse_fault_spec,
    schedule_fingerprint,
)
from repro.sim.ledger import DROP_PRIMITIVES, Primitive
from repro.sim.orchestrator import run_topology

from .test_shard import ping_spec


class TestLinkFault:
    def test_validates_interval(self):
        with pytest.raises(ValueError, match="start"):
            LinkFault("l", 0.5, 0.2)
        with pytest.raises(ValueError, match="start"):
            LinkFault("l", -0.1, 0.2)
        with pytest.raises(ValueError, match="link id"):
            LinkFault("", 0.1, 0.2)
        with pytest.raises(ValueError, match="direction"):
            LinkFault("l", 0.1, 0.2, direction="sideways")

    def test_link_partition_is_one_bidirectional_fault(self):
        (fault,) = link_partition("lan0~lan1", 0.2, 0.55)
        assert fault.link_id == "lan0~lan1"
        assert (fault.start, fault.end) == (0.2, 0.55)
        assert fault.direction == "both"

    def test_intervals_for_filters_by_link_and_direction(self):
        faults = (
            LinkFault("a~b", 0.1, 0.2),
            LinkFault("a~b", 0.4, 0.5, direction=DIRECTION_A_TO_B),
            LinkFault("b~c", 0.0, 1.0),
        )
        assert intervals_for(faults, "a~b", DIRECTION_A_TO_B) == (
            (0.1, 0.2),
            (0.4, 0.5),
        )
        # The b->a crossing only sees the bidirectional outage.
        assert intervals_for(faults, "a~b", DIRECTION_B_TO_A) == ((0.1, 0.2),)
        assert intervals_for(faults, "nope", DIRECTION_A_TO_B) == ()

    def test_interval_covers_half_open(self):
        intervals = ((0.1, 0.2), (0.4, 0.5))
        assert not interval_covers(intervals, 0.05)
        assert interval_covers(intervals, 0.1)       # closed start
        assert interval_covers(intervals, 0.199)
        assert not interval_covers(intervals, 0.2)   # open end
        assert interval_covers(intervals, 0.45)
        assert not interval_covers(intervals, 0.6)
        assert not interval_covers((), 0.1)


class TestFlapSchedule:
    def test_deterministic_per_seed_and_link(self):
        kwargs = dict(start=0.0, until=1.0, mean_down=0.05, mean_up=0.1)
        first = flap_schedule(7, "a~b", **kwargs)
        again = flap_schedule(7, "a~b", **kwargs)
        assert first == again
        assert flap_schedule(8, "a~b", **kwargs) != first
        assert flap_schedule(7, "b~c", **kwargs) != first

    def test_flaps_ordered_and_bounded(self):
        faults = flap_schedule(
            3, "a~b", start=0.2, until=1.0, mean_down=0.05, mean_up=0.1
        )
        assert faults, "expected at least one flap in 0.8s at these means"
        intervals = intervals_for(faults, "a~b", DIRECTION_A_TO_B)
        assert all(0.2 <= s < e <= 1.0 for s, e in intervals)
        # non-overlapping, strictly increasing
        for (s0, e0), (s1, e1) in zip(intervals, intervals[1:]):
            assert e0 < s1

    def test_fingerprint_round_trips_exact_floats(self):
        faults = flap_schedule(
            3, "a~b", start=0.0, until=0.5, mean_down=0.02, mean_up=0.05
        )
        assert schedule_fingerprint(faults) == schedule_fingerprint(faults)
        assert "a~b" in schedule_fingerprint(faults)


class TestParseFaultSpec:
    def test_down_clause(self):
        (fault,) = parse_fault_spec("down:lan0~lan1:0.2:0.55")
        assert fault == LinkFault("lan0~lan1", 0.2, 0.55)

    def test_direction_aliases(self):
        (fault,) = parse_fault_spec("down:l:0:1:a2b")
        assert fault.direction == DIRECTION_A_TO_B
        (fault,) = parse_fault_spec("down:l:0:1:b2a")
        assert fault.direction == DIRECTION_B_TO_A

    def test_flap_clause_uses_seed(self):
        first = parse_fault_spec("flap:l:0:1:0.05:0.1", seed=1)
        again = parse_fault_spec("flap:l:0:1:0.05:0.1", seed=1)
        other = parse_fault_spec("flap:l:0:1:0.05:0.1", seed=2)
        assert first == again
        assert first != other

    def test_multiple_clauses(self):
        faults = parse_fault_spec("down:a~b:0:1,down:b~c:2:3:a2b")
        assert len(faults) == 2
        assert faults[1].link_id == "b~c"

    def test_rejects_garbage(self):
        for bad in ("", "down:l:1", "explode:l:0:1", "down:l:0:1:upward"):
            with pytest.raises(ValueError):
                parse_fault_spec(bad)


class TestTopologyFaults:
    def test_unknown_link_rejected_by_validate(self):
        spec = dataclasses.replace(
            ping_spec(2), faults=link_partition("no~such", 0.1, 0.2)
        )
        with pytest.raises(ValueError, match="no~such"):
            spec.validate()

    def test_drop_link_down_is_a_drop_primitive(self):
        assert Primitive.DROP_LINK_DOWN in DROP_PRIMITIVES
        assert Primitive.DROP_LINK_DOWN.value == "dropped_link_down"

    def test_downed_link_drops_and_reconciles(self):
        # Fault covers the whole run: every bridged frame dies on the
        # link, under a ledgered wire fate — and the books still close.
        spec = dataclasses.replace(
            ping_spec(2, frames=6),
            faults=link_partition("lan0~lan1", 0.0, 10.0),
            ledger=True,
        )
        result = run_topology(spec, shards=1)
        dropped = sum(
            wire["frames_dropped_link_down"] for wire in result.wire.values()
        )
        forwarded = sum(
            wire["frames_forwarded"] for wire in result.wire.values()
        )
        assert dropped == 12   # 6 cross frames per direction
        assert forwarded == 0
        assert result.ledger.open_spans() == []
        assert result.ledger.drop_summary()["dropped_link_down"] == 12
        # Each drop is labelled with the cable it was captured on.
        per_label: dict = {}
        for event in result.ledger.events:
            if event.primitive is Primitive.DROP_LINK_DOWN:
                per_label[event.host] = per_label.get(event.host, 0) + 1
        assert per_label == {"wire:lan0": 6, "wire:lan1": 6}

    def test_partial_outage_drops_only_inside_window(self):
        spec = dataclasses.replace(
            ping_spec(2, frames=6),
            faults=link_partition("lan0~lan1", 0.0, 0.009),
        )
        result = run_topology(spec, shards=1)
        dropped = sum(
            wire["frames_dropped_link_down"] for wire in result.wire.values()
        )
        forwarded = sum(
            wire["frames_forwarded"] for wire in result.wire.values()
        )
        assert dropped > 0
        assert forwarded > 0
        assert dropped + forwarded == 12

    def test_directional_fault_only_kills_one_crossing(self):
        spec = dataclasses.replace(
            ping_spec(2, frames=6),
            faults=(
                LinkFault(
                    "lan0~lan1", 0.0, 10.0, direction=DIRECTION_A_TO_B
                ),
            ),
        )
        result = run_topology(spec, shards=1)
        assert result.wire["lan0"]["frames_dropped_link_down"] == 6
        assert result.wire["lan0"]["frames_forwarded"] == 0
        assert result.wire["lan1"]["frames_dropped_link_down"] == 0
        assert result.wire["lan1"]["frames_forwarded"] == 6

    def test_faulted_run_is_shard_count_independent(self):
        spec = dataclasses.replace(
            ping_spec(3, frames=5, seed=11),
            faults=link_partition("lan0~lan1", 0.004, 0.012),
        )
        baseline = run_digest(run_topology(spec, shards=1))
        assert run_digest(run_topology(spec, shards=3)) == baseline
