"""Merge semantics for stats, ledgers and telemetry snapshots.

The sharded orchestrator reassembles a whole-world view from per-shard
pieces; these tests pin the contract each ``merge`` obeys: empty inputs
work, disjoint hosts combine, a shared host raises (double accounting),
and the reassembled whole reconciles exactly with its parts.
"""

import pytest

from repro.sim.ledger import Ledger, Primitive
from repro.sim.stats import KernelStats, merge_stats
from repro.sim.telemetry import TelemetrySnapshot


class TestMergeStats:
    def test_empty_input(self):
        assert merge_stats([]) == {}
        assert merge_stats([{}, {}]) == {}

    def test_disjoint_hosts_combine(self):
        a = {"alice": KernelStats(syscalls=3, cpu_time=0.5)}
        b = {"bob": KernelStats(syscalls=7)}
        merged = merge_stats([a, b])
        assert sorted(merged) == ["alice", "bob"]
        assert merged["alice"].syscalls == 3
        assert merged["bob"].syscalls == 7

    def test_same_host_rejected(self):
        a = {"alice": KernelStats()}
        b = {"alice": KernelStats()}
        with pytest.raises(ValueError, match="alice"):
            merge_stats([a, b])

    def test_values_are_copies(self):
        original = KernelStats(syscalls=1)
        merged = merge_stats([{"alice": original}])
        merged["alice"].syscalls = 99
        assert original.syscalls == 1

    def test_kernel_stats_merge_sums_fieldwise(self):
        a = KernelStats(cpu_time=0.25, syscalls=2, bytes_copied=100)
        b = KernelStats(cpu_time=0.5, syscalls=3, bytes_copied=28)
        c = KernelStats(interrupts=4)
        total = a.merge(b, c)
        assert total.cpu_time == 0.75
        assert total.syscalls == 5
        assert total.bytes_copied == 128
        assert total.interrupts == 4
        # operands untouched
        assert a.syscalls == 2 and b.syscalls == 3

    def test_kernel_stats_merge_order_fixes_float_sum(self):
        # Merging in a fixed order must reproduce the float sum bitwise;
        # same operands, same order, same bits.
        parts = [KernelStats(cpu_time=0.1 * (i + 1)) for i in range(5)]
        first = parts[0].merge(*parts[1:])
        second = parts[0].merge(*parts[1:])
        assert first.cpu_time == second.cpu_time


def _ledger_with(host: str, packets: int = 2) -> Ledger:
    ledger = Ledger()
    for index in range(packets):
        packet_id = ledger.begin_packet(host, at=0.1 * index, flow="f")
        ledger.record(
            Primitive.FRAME_RX,
            host=host,
            at=0.1 * index,
            cost=1e-5,
            packet_id=packet_id,
        )
        ledger.close_packet(packet_id, "delivered", at=0.1 * index + 0.01)
    return ledger


class TestMergeLedgers:
    def test_merge_empty(self):
        merged = Ledger().merge(Ledger())
        assert merged.events == []
        assert merged.spans == {}
        # and the merged ledger keeps allocating from 1
        assert merged.begin_packet("alice", at=0.0) == 1

    def test_disjoint_hosts_combine_with_id_offset(self):
        a = _ledger_with("alice", packets=2)
        b = _ledger_with("bob", packets=3)
        merged = a.merge(b)
        assert merged is a
        assert sorted(merged.hosts()) == ["alice", "bob"]
        # bob's ids 1..3 were remapped past alice's high-water mark 2
        assert sorted(merged.spans) == [1, 2, 3, 4, 5]
        assert {merged.spans[i].host for i in (1, 2)} == {"alice"}
        assert {merged.spans[i].host for i in (3, 4, 5)} == {"bob"}
        # events were remapped consistently with their spans
        for event in merged.events:
            assert merged.spans[event.packet_id].host == event.host

    def test_same_host_rejected(self):
        with pytest.raises(ValueError, match="alice"):
            _ledger_with("alice").merge(_ledger_with("alice"))

    def test_id_allocation_continues_past_merge(self):
        a = _ledger_with("alice", packets=2)
        a.merge(_ledger_with("bob", packets=3))
        assert a.begin_packet("carol", at=9.0) == 6

    def test_wire_labels_count_as_hosts(self):
        a = Ledger()
        a.record(Primitive.WIRE_LOSS, host="wire:lan0", at=0.0)
        b = Ledger()
        b.record(Primitive.WIRE_LOSS, host="wire:lan0", at=0.0)
        with pytest.raises(ValueError, match="wire:lan0"):
            a.merge(b)

    def test_merged_stats_view_reconciles_exactly(self):
        """The reassembled ledger replays into the same per-host stats
        as each part did alone — merge adds no events and loses none."""
        a = _ledger_with("alice", packets=4)
        b = _ledger_with("bob", packets=2)
        alone_alice = a.stats_view("alice")
        alone_bob = b.stats_view("bob")
        merged = a.merge(b)
        assert merged.stats_view("alice") == alone_alice
        assert merged.stats_view("bob") == alone_bob
        assert merged.total_cost() == pytest.approx(
            alone_alice.cpu_time + alone_bob.cpu_time
        )

    def test_remap_collision_rejected(self):
        """A ledger holding a span id above its own allocation
        high-water mark (corrupt or hand-built) must fail loudly when
        the remap offset lands an incoming id on it — not silently
        overwrite the span."""
        from repro.sim.ledger import PacketSpan

        a = _ledger_with("alice", packets=2)   # next offset will be 2
        a.spans[10] = PacketSpan(10, "alice", "f")
        b = _ledger_with("bob", packets=8)     # ids 1..8 remap to 3..10
        with pytest.raises(ValueError, match="collision"):
            a.merge(b)

    def test_remap_without_collision_still_works(self):
        from repro.sim.ledger import PacketSpan

        a = _ledger_with("alice", packets=2)
        a.spans[99] = PacketSpan(99, "alice", "f")   # far out of reach
        b = _ledger_with("bob", packets=3)
        a.merge(b)
        assert sorted(a.spans) == [1, 2, 3, 4, 5, 99]

    def test_wire_label_overlap_rejected(self):
        """Two shards may never report the same segment's cable."""
        a = Ledger()
        a.record(Primitive.WIRE_LOSS, host="wire:lan0", at=0.1)
        b = Ledger()
        b.record(Primitive.WIRE_LOSS, host="wire:lan0", at=0.2)
        with pytest.raises(ValueError, match="wire:lan0"):
            a.merge(b)


class TestMergeTelemetry:
    def _snapshot(self, host: str) -> TelemetrySnapshot:
        return TelemetrySnapshot(
            series={
                (host, "cpu_util"): {
                    "unit": "fraction",
                    "samples": [(0.1, 0.5), (0.2, 0.6)],
                }
            },
            alerts=[
                {"host": host, "rule": "r", "fired_at": 0.15, "value": 1.0}
            ],
            ticks=2,
        )

    def test_disjoint_hosts_combine(self):
        merged = self._snapshot("alice").merge(self._snapshot("bob"))
        assert merged.hosts() == {"alice", "bob"}
        assert merged.latest("bob", "cpu_util") == 0.6
        assert merged.ticks == 2

    def test_same_host_rejected(self):
        with pytest.raises(ValueError, match="alice"):
            self._snapshot("alice").merge(self._snapshot("alice"))

    def test_alerts_resorted_into_one_timeline(self):
        a = TelemetrySnapshot(
            alerts=[{"host": "alice", "rule": "r", "fired_at": 0.9}]
        )
        b = TelemetrySnapshot(
            alerts=[{"host": "bob", "rule": "r", "fired_at": 0.1}]
        )
        merged = a.merge(b)
        assert [alert["fired_at"] for alert in merged.alerts] == [0.1, 0.9]

    def test_merge_empty(self):
        merged = TelemetrySnapshot().merge(TelemetrySnapshot())
        assert merged.series == {} and merged.alerts == []
