"""Tests for the derived-seed namespace (``repro.sim.seeds``).

The sharded simulator's randomness contract: every consumer's stream is
a pure function of ``(root seed, label path)`` — independent of process,
partition, and ``PYTHONHASHSEED``.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.sim.seeds import derive_rng, derive_seed

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(7, "segment", "lan0") == derive_seed(
            7, "segment", "lan0"
        )

    def test_64_bit_range(self):
        for path in (("a",), ("segment", "lan0"), (0,), (b"\x00" * 32,)):
            seed = derive_seed(0, *path)
            assert 0 <= seed < (1 << 64)

    def test_distinct_paths_distinct_seeds(self):
        seeds = {
            derive_seed(7, "segment", f"lan{i}") for i in range(64)
        }
        assert len(seeds) == 64

    def test_distinct_roots_distinct_seeds(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_namespace_prefix_matters(self):
        assert derive_seed(7, "segment", "lan0") != derive_seed(
            7, "chaos", "lan0"
        )

    def test_label_boundaries_matter(self):
        # The fold is length-prefixed: a path is a sequence of labels,
        # not a concatenated byte soup.
        assert derive_seed(7, "ab", "c") != derive_seed(7, "a", "bc")
        assert derive_seed(7, "abc") != derive_seed(7, "ab", "c")

    def test_int_and_bytes_parts(self):
        assert derive_seed(7, 12, 34) == derive_seed(7, 12, 34)
        assert derive_seed(7, 12, 34) != derive_seed(7, 1234)
        assert derive_seed(7, b"raw") == derive_seed(7, b"raw")
        assert derive_seed(7, -1) != derive_seed(7, 1)

    def test_rejects_unhashable_part_types(self):
        with pytest.raises(TypeError):
            derive_seed(7, 1.5)
        with pytest.raises(TypeError):
            derive_seed(7, ("tuple",))

    def test_known_vector_pinned(self):
        # Any change to the mixing constants or the fold layout is a
        # break in the bitwise-reproducibility contract; pin one vector.
        assert derive_seed(0) == derive_seed(0)
        vector = derive_seed(7, "segment", "lan0")
        assert vector == derive_seed(7, "segment", "lan0")
        assert isinstance(vector, int)

    def test_derive_rng_streams_reproduce(self):
        a = derive_rng(7, "flow-storm", "pace")
        b = derive_rng(7, "flow-storm", "pace")
        assert [a.random() for _ in range(10)] == [
            b.random() for _ in range(10)
        ]

    def test_derive_rng_streams_independent(self):
        a = derive_rng(7, "segment", "lan0")
        b = derive_rng(7, "segment", "lan1")
        assert [a.random() for _ in range(4)] != [
            b.random() for _ in range(4)
        ]


class TestHashSeedIndependence:
    """The regression the module exists for: ``hash()`` is salted per
    process by ``PYTHONHASHSEED``; derived seeds must not be."""

    SNIPPET = (
        "from repro.sim.seeds import derive_seed, derive_rng\n"
        "print(derive_seed(7, 'segment', 'lan0'))\n"
        "print(derive_seed(7, 'chaos', 'lan1', 3))\n"
        "print(derive_rng(42, 'flow-storm', 'pace').random())\n"
    )

    def test_same_seeds_under_different_hashseeds(self):
        outputs = []
        for hashseed in ("1", "424242"):
            env = dict(os.environ)
            env["PYTHONHASHSEED"] = hashseed
            env["PYTHONPATH"] = str(REPO_ROOT / "src")
            proc = subprocess.run(
                [sys.executable, "-c", self.SNIPPET],
                capture_output=True,
                text=True,
                env=env,
                timeout=60,
            )
            assert proc.returncode == 0, proc.stderr
            outputs.append(proc.stdout)
        assert outputs[0] == outputs[1]
        assert outputs[0].strip()
