"""The batched receive path: one interrupt charge per burst.

``NIC.rx_batch`` > 1 coalesces queued frames into a single
``SimKernel.network_input_batch`` call, which charges interrupt service
once and hands every filter-bound frame to the packet-filter device in
one ``packets_arrived`` call (one ``pf_fixed`` charge).  Delivery
semantics must be indistinguishable from the per-frame path.
"""

from repro.core.compiler import compile_expr, word
from repro.core.ioctl import PFIoctl
from repro.sim.process import Ioctl, Open, SigWait
from repro.sim.world import World

ETHERTYPE = 0x0900


def monitor_world(rx_batch):
    """A world with one packet-filtering host accepting ETHERTYPE."""
    world = World()
    host = world.host("monitor", promiscuous=True)
    host.nic.rx_batch = rx_batch
    host.install_packet_filter()

    def setup():
        fd = yield Open("pf")
        yield Ioctl(fd, PFIoctl.SETFILTER, compile_expr(word(6) == ETHERTYPE))
        yield Ioctl(fd, PFIoctl.SETQUEUELEN, 64)
        # Park forever: exiting would close the fd and detach the port.
        yield SigWait()

    host.spawn("setup", setup())
    world.run()
    return world, host


def make_frame(world, ethertype, payload=b"payload!"):
    link = world.link
    dst = (1).to_bytes(link.address_length, "big")
    src = (9).to_bytes(link.address_length, "big")
    return link.frame(dst, src, ethertype, payload)


class TestBatchedInput:
    def test_batch_semantics_match_per_frame_path(self):
        frames = []
        for n in range(8):
            ethertype = ETHERTYPE if n % 2 == 0 else 0x7777
            frames.append((ethertype, bytes([n]) * 8))

        worlds = {}
        for rx_batch in (1, 8):
            world, host = monitor_world(rx_batch)
            for ethertype, payload in frames:
                host.nic.receive(make_frame(world, ethertype, payload))
            world.run()
            worlds[rx_batch] = (world, host)

        (w1, h1), (w8, h8) = worlds[1], worlds[8]
        port1 = h1.packet_filter.demux.attached_ports()[0]
        port8 = h8.packet_filter.demux.attached_ports()[0]
        assert port8.queued == port1.queued == 4
        assert [p.data for p in port8.read_packets(None)] == [
            p.data for p in port1.read_packets(None)
        ]
        assert h8.kernel.stats.packets_unclaimed == 4
        assert h1.kernel.stats.packets_unclaimed == 4
        assert h8.kernel.stats.frames_received == 8

    def test_batch_charges_one_interrupt_per_burst(self):
        world1, host1 = monitor_world(1)
        world8, host8 = monitor_world(8)
        for world, host in ((world1, host1), (world8, host8)):
            for n in range(8):
                host.nic.receive(make_frame(world, ETHERTYPE, bytes([n]) * 8))
            world.run()

        assert host1.kernel.stats.interrupts == 8
        assert host8.kernel.stats.interrupts == 1
        # One interrupt-service + one pf_fixed for the whole burst
        # instead of eight of each: 7 charges of each saved.
        costs = host1.kernel.costs
        saved = 7 * (costs.interrupt_service + costs.pf_fixed)
        extra = host1.kernel.stats.delta(host8.kernel.stats)
        assert abs(extra.cpu_time - saved) < 1e-12
        assert extra.interrupts == 7

    def test_partial_final_batch(self):
        world, host = monitor_world(4)
        for n in range(10):
            host.nic.receive(make_frame(world, ETHERTYPE, bytes([n]) * 8))
        world.run()
        # 4 + 4 + 2: three service events.
        assert host.kernel.stats.interrupts == 3
        port = host.packet_filter.demux.attached_ports()[0]
        assert port.queued == 10

    def test_mitigation_window_coalesces_wire_bursts(self):
        """Frames arriving off the wire are spaced by serialization
        delay, so batches only form if the interrupt is held briefly;
        a full batch fires it early."""
        from repro.net.medium import EthernetSegment

        world, host = monitor_world(8)
        host.nic.rx_mitigation = 0.005
        segment = EthernetSegment(world.scheduler, world.link)
        segment.attach(host.nic)
        sender_nic_address = (9).to_bytes(world.link.address_length, "big")

        class Wire:
            address = sender_nic_address
            link = world.link

            def receive(self, frame):
                pass

            def wants(self, frame):
                return False

        wire = Wire()
        segment.attach(wire)
        for n in range(16):
            segment.transmit(wire, make_frame(world, ETHERTYPE, bytes([n]) * 8))
        world.run()
        port = host.packet_filter.demux.attached_ports()[0]
        assert port.queued == 16
        # Two full batches of 8, not 16 per-frame interrupts.
        assert host.kernel.stats.interrupts == 2

    def test_queued_full_batch_services_immediately(self):
        """Regression: after a service drain, a backlog holding one or
        more *complete* batches used to re-arm the full mitigation
        window — delaying work that was already ready by rx_mitigation
        per batch.  The window bounds latency while a batch *forms*; a
        formed batch fires now."""
        world, host = monitor_world(4)
        host.nic.rx_mitigation = 0.005
        start = world.now
        for n in range(12):
            host.nic.receive(make_frame(world, ETHERTYPE, bytes([n]) * 8))
        world.run()
        port = host.packet_filter.demux.attached_ports()[0]
        assert port.queued == 12
        assert host.kernel.stats.interrupts == 3
        # All three batches were complete from the start: no service
        # event should have waited out a hold window.
        assert world.now - start < host.nic.rx_mitigation

    def test_kernel_handler_still_claims_per_frame(self):
        world, host = monitor_world(8)
        claimed = []
        host.kernel.register_ethertype(
            0x0800, lambda nic, frame: claimed.append(frame)
        )
        host.nic.receive(make_frame(world, 0x0800))
        host.nic.receive(make_frame(world, ETHERTYPE))
        world.run()
        assert len(claimed) == 1
        assert host.kernel.stats.packets_unclaimed == 0
