"""Tests for the byte-stream pipe with copy charging."""


from repro.sim import BrokenPipe, Close, PipeCreate, Read, Sleep, World, Write


def run_pipe(body_factory):
    world = World()
    host = world.host("h")
    proc = host.spawn("p", body_factory())
    world.run_until_done(proc)
    return world, host, proc


class TestByteStream:
    def test_read_drains_everything_buffered(self):
        def body():
            rfd, wfd = yield PipeCreate()
            yield Write(wfd, b"aaa")
            yield Write(wfd, b"bbb")
            data = yield Read(rfd)
            return data

        _, _, proc = run_pipe(body)
        assert proc.result == b"aaabbb"  # stream, not messages

    def test_read_respects_size(self):
        def body():
            rfd, wfd = yield PipeCreate()
            yield Write(wfd, b"abcdef")
            first = yield Read(rfd, 4)
            rest = yield Read(rfd)
            return first, rest

        _, _, proc = run_pipe(body)
        assert proc.result == (b"abcd", b"ef")

    def test_vectored_write(self):
        def body():
            rfd, wfd = yield PipeCreate()
            yield Write(wfd, (b"one", b"two", b"three"))
            return (yield Read(rfd))

        _, _, proc = run_pipe(body)
        assert proc.result == b"onetwothree"

    def test_eof_after_writer_close(self):
        def body():
            rfd, wfd = yield PipeCreate()
            yield Write(wfd, b"last")
            yield Close(wfd)
            data = yield Read(rfd)
            eof = yield Read(rfd)
            return data, eof

        _, _, proc = run_pipe(body)
        assert proc.result == (b"last", b"")

    def test_write_after_reader_close_breaks(self):
        def body():
            rfd, wfd = yield PipeCreate()
            yield Close(rfd)
            try:
                yield Write(wfd, b"x")
            except BrokenPipe:
                return "epipe"

        _, _, proc = run_pipe(body)
        assert proc.result == "epipe"


class TestBlockingAndCosts:
    def test_reader_blocks_until_data(self):
        world = World()
        host = world.host("h")
        fds = {}

        def producer():
            rfd, wfd = yield PipeCreate()
            fds["r"] = rfd
            yield Sleep(0.2)
            yield Write(wfd, b"late data")

        producer_proc = host.spawn("producer", producer())

        def consumer():
            yield Sleep(0.01)
            rfd = host.kernel.share_fd(producer_proc, fds["r"], consumer_proc)
            data = yield Read(rfd)
            return world.now, data

        consumer_proc = host.spawn("consumer", consumer())
        world.run_until_done(consumer_proc)
        when, data = consumer_proc.result
        assert data == b"late data"
        assert when >= 0.2

    def test_writer_blocks_when_full(self):
        from repro.sim.pipe import PIPE_CAPACITY

        world = World()
        host = world.host("h")

        def body():
            rfd, wfd = yield PipeCreate()
            yield Write(wfd, bytes(PIPE_CAPACITY))  # fills it
            # Second write must wait for the drain below to happen...
            yield Write(wfd, b"more")
            return world.now

        proc = host.spawn("p", body())

        def drainer():
            yield Sleep(0.3)
            rfd = host.kernel.share_fd(proc, 3, drain_proc)
            yield Read(rfd)

        drain_proc = host.spawn("drainer", drainer())
        world.run_until_done(proc)
        assert proc.result >= 0.3

    def test_each_transfer_charges_a_copy(self):
        def body():
            rfd, wfd = yield PipeCreate()
            yield Write(wfd, bytes(1024))
            yield Read(rfd)

        _, host, _ = run_pipe(body)
        assert host.stats.copies == 2  # one in, one out
        assert host.stats.bytes_copied == 2048
