"""The partition-storm scenario: watchdogs that tell faults apart.

The signature being pinned: during a bridge-link outage, the
cross-segment ``partition:*`` watchdog fires (bridged goodput collapses
while local traffic stays healthy) and the per-segment livelock
watchdogs stay silent — the opposite of an overload, where local
delivery is exactly what degrades.  After the link heals and the
client's backed-off retry lands, the partition alert clears.
"""

import pytest

from repro.bench.scenarios import run_partition_storm

PARTITION_AT = 0.2
HEAL_AT = 0.55


@pytest.fixture(scope="module")
def storm():
    return run_partition_storm(
        segments=2,
        shards=1,
        seed=0,
        duration=1.2,
        partition_at=PARTITION_AT,
        heal_at=HEAL_AT,
    )


class TestPartitionWatchdog:
    def test_fires_during_partition_window(self, storm):
        alerts = storm["partition_alerts"]
        assert alerts, "partition watchdog never fired"
        # Both endpoints of the downed link notice.
        assert {alert["host"] for alert in alerts} == {
            "segment:lan0",
            "segment:lan1",
        }
        for alert in alerts:
            assert PARTITION_AT <= alert["fired_at"] <= HEAL_AT + 0.05

    def test_clears_after_heal(self, storm):
        for alert in storm["partition_alerts"]:
            assert alert["cleared_at"] is not None
            assert alert["cleared_at"] > HEAL_AT

    def test_livelock_watchdogs_stay_silent(self, storm):
        # Local traffic is healthy throughout: a partition must not be
        # mistaken for receive livelock on either segment.
        assert storm["livelock_alerts"] == []


class TestBackoffStorm:
    def test_rto_backoff_storm_fires_and_clears(self, storm):
        (alert,) = storm["backoff_alerts"]
        assert alert["host"] == "lan0:client"
        assert alert["fired_at"] > PARTITION_AT
        assert alert["cleared_at"] is not None
        assert alert["cleared_at"] > HEAL_AT

    def test_client_retries_through_the_outage(self, storm):
        client = storm["vmtp"]["lan0"]
        assert client["retries"] >= 2       # exponential backoff engaged
        assert client["calls"] > 0
        assert client["intact"] == client["calls"]   # every reply intact


class TestLedgerReconciliation:
    def test_dropped_link_down_reconciles_exactly(self, storm):
        result = storm["result"]
        wire_total = sum(
            wire["frames_dropped_link_down"] for wire in result.wire.values()
        )
        assert wire_total == storm["dropped_link_down"]
        assert wire_total > 0, "no frame ever died on the downed link"
        summary = result.ledger.drop_summary()
        assert summary.get("dropped_link_down", 0) == wire_total

    def test_no_span_left_open(self, storm):
        assert storm["result"].ledger.open_spans() == []

    def test_ingress_counters_cover_forwarded_traffic(self, storm):
        for wire in storm["result"].wire.values():
            assert wire["frames_ingress"] >= 0
        total_forwarded = sum(
            wire["frames_forwarded"]
            for wire in storm["result"].wire.values()
        )
        total_ingress = sum(
            wire["frames_ingress"] for wire in storm["result"].wire.values()
        )
        assert total_ingress == total_forwarded
