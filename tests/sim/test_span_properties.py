"""Property test: packet spans are well-formed whatever the world does.

Hypothesis drives the receive path through randomized worlds — engines,
batch sizes, tiny queues, chaos on or off, receivers that stop reading
early, shrink their queue, and slam the port shut — and asserts the
span invariants the ledger promises:

* every span closes, with a declared outcome (no orphans, even on the
  loss/corruption/overflow/resize/flush/close drop paths);
* stage times never run backwards and stages appear in pipeline order;
* every cost event that names a packet names a span the ledger knows.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.scenarios import ACCEPTANCE_CHAOS
from repro.core.compiler import compile_expr, word
from repro.core.demux import Engine
from repro.core.ioctl import PFIoctl
from repro.core.port import ReadTimeoutPolicy
from repro.sim import Close, Ioctl, Open, Read, Sleep, World, Write
from repro.sim.errors import SimTimeout
from repro.sim.ledger import SPAN_OUTCOMES, STAGE_WIRE_ARRIVAL

TYPE = 0x0900

ENGINES = [Engine.CHECKED, Engine.PREVALIDATED, Engine.COMPILED, Engine.FUSED]


def run_workload(seed, frames, rx_batch, engine, queue_limit, chaos_on):
    world = World(
        seed=seed,
        chaos=ACCEPTANCE_CHAOS if chaos_on else None,
        ledger=True,
    )
    sender = world.host("sender")
    # A two-frame interface queue: write bursts overflow it, exercising
    # the dropped_interface path.
    receiver = world.host("receiver", input_queue_limit=2)
    sender.install_packet_filter()
    receiver.install_packet_filter(engine=engine)
    receiver.nic.rx_batch = rx_batch
    if rx_batch > 1:
        receiver.nic.rx_mitigation = 0.001

    def tx():
        fd = yield Open("pf")
        yield Ioctl(fd, PFIoctl.SETWRITEBATCH, True)
        yield Sleep(0.01)
        sent = 0
        while sent < frames:
            group = min(4, frames - sent)
            batch = tuple(
                sender.link.frame(
                    receiver.address, sender.address, TYPE, bytes(40 + n)
                )
                for n in range(sent, sent + group)
            )
            yield Write(fd, batch if group > 1 else batch[0])
            sent += group
            yield Sleep(0.004)
        yield Sleep(0.03)

    def rx():
        fd = yield Open("pf")
        yield Ioctl(
            fd, PFIoctl.SETFILTER, compile_expr(word(6) == TYPE, priority=10)
        )
        yield Ioctl(fd, PFIoctl.SETQUEUELEN, queue_limit)
        yield Ioctl(fd, PFIoctl.SETTIMEOUT, ReadTimeoutPolicy.after(0.05))
        got = 0
        # Stop reading halfway: whatever is still queued then rides the
        # resize and close drop paths instead of being delivered.
        while got < max(1, frames // 2):
            try:
                got += len((yield Read(fd)))
            except SimTimeout:
                break
        yield Sleep(0.02)
        yield Ioctl(fd, PFIoctl.SETQUEUELEN, 1)
        yield Close(fd)
        return got

    rx_proc = receiver.spawn("rx", rx())
    tx_proc = sender.spawn("tx", tx())
    world.run_until_done(rx_proc, tx_proc)
    world.run()   # drain any in-flight frames to quiescence
    return world


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    frames=st.integers(1, 25),
    rx_batch=st.integers(1, 4),
    engine=st.sampled_from(ENGINES),
    queue_limit=st.integers(1, 8),
    chaos_on=st.booleans(),
)
def test_spans_are_well_formed(
    seed, frames, rx_batch, engine, queue_limit, chaos_on
):
    world = run_workload(seed, frames, rx_batch, engine, queue_limit, chaos_on)
    ledger = world.ledger

    assert ledger.open_spans() == []
    for span in ledger.spans.values():
        assert span.outcome in SPAN_OUTCOMES, span
        assert span.problems() == [], (span, span.problems())
        assert span.stages[0][0] == STAGE_WIRE_ARRIVAL, span

    for event in ledger.events:
        if event.packet_id is not None:
            assert event.packet_id in ledger.spans, event

    # Reconciliation holds in every randomized world, too.
    for host in world.hosts:
        assert ledger.stats_view(host.name) == host.kernel.stats
