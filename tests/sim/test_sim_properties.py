"""Property tests on simulator invariants (hypothesis)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim import (
    Compute,
    PipeCreate,
    Read,
    Sleep,
    World,
    Write,
)
from repro.sim.clock import EventScheduler


class TestSchedulerProperties:
    @given(st.lists(st.floats(0, 10, allow_nan=False), min_size=1, max_size=30))
    def test_fired_in_nondecreasing_time_order(self, delays):
        scheduler = EventScheduler()
        fired = []
        for delay in delays:
            scheduler.schedule(delay, lambda d=delay: fired.append(scheduler.now))
        scheduler.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)

    @given(
        st.lists(st.floats(0, 10, allow_nan=False), min_size=2, max_size=20),
        st.data(),
    )
    def test_cancellation_removes_exactly_those(self, delays, data):
        scheduler = EventScheduler()
        events = []
        fired = []
        for index, delay in enumerate(delays):
            events.append(
                scheduler.schedule(delay, lambda i=index: fired.append(i))
            )
        to_cancel = data.draw(
            st.sets(st.integers(0, len(delays) - 1), max_size=len(delays))
        )
        for index in to_cancel:
            events[index].cancel()
        scheduler.run()
        assert sorted(fired) == sorted(set(range(len(delays))) - to_cancel)


class TestPipeProperties:
    @given(
        st.lists(st.binary(min_size=0, max_size=200), min_size=1, max_size=12)
    )
    @settings(max_examples=60, deadline=None)
    def test_stream_preserves_byte_sequence(self, chunks):
        """Whatever the chunking, the reader sees the concatenation."""
        world = World()
        host = world.host("h")
        expected = b"".join(chunks)

        def body():
            rfd, wfd = yield PipeCreate()
            for chunk in chunks:
                yield Write(wfd, chunk)
            received = bytearray()
            while len(received) < len(expected):
                received.extend((yield Read(rfd)))
            return bytes(received)

        proc = host.spawn("p", body())
        world.run_until_done(proc)
        assert proc.result == expected

    @given(
        st.binary(min_size=1, max_size=300),
        st.lists(st.integers(1, 64), min_size=1, max_size=12),
    )
    @settings(max_examples=60, deadline=None)
    def test_sized_reads_reassemble(self, payload, read_sizes):
        world = World()
        host = world.host("h")

        def body():
            rfd, wfd = yield PipeCreate()
            yield Write(wfd, payload)
            received = bytearray()
            sizes = iter(read_sizes)
            while len(received) < len(payload):
                size = next(sizes, 64)
                received.extend((yield Read(rfd, size)))
            return bytes(received)

        proc = host.spawn("p", body())
        world.run_until_done(proc)
        assert proc.result == payload


class TestAccountingProperties:
    @given(
        st.lists(
            st.floats(min_value=1e-6, max_value=0.01, allow_nan=False),
            min_size=1,
            max_size=15,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_cpu_time_is_sum_of_charges(self, durations):
        world = World()
        host = world.host("h")

        def body():
            for duration in durations:
                yield Compute(duration)

        proc = host.spawn("p", body())
        world.run_until_done(proc)
        syscall_overhead = host.kernel.costs.syscall * len(durations)
        assert host.stats.cpu_time == pytest.approx(
            sum(durations) + syscall_overhead
        )

    @given(st.integers(1, 10), st.integers(1, 10))
    @settings(max_examples=30, deadline=None)
    def test_determinism_across_runs(self, sleeps, computes):
        def run():
            world = World()
            host = world.host("h")

            def body():
                for index in range(sleeps):
                    yield Sleep(0.001 * (index + 1))
                for index in range(computes):
                    yield Compute(0.0005 * (index + 1))

            proc = host.spawn("p", body())
            world.run_until_done(proc)
            return world.now, host.stats.cpu_time, host.stats.syscalls

        assert run() == run()
