"""The telemetry sampler, watchdog engine and gauge-provider hook.

Covers the whole tentpole contract: bounded ring-buffered series and
windowed rates, gauge registration/retraction through the kernel hook,
watchdog hysteresis (fire-after / clear-after), every built-in
detector, sampler self-parking and resume, bitwise determinism across
seeded runs, and the free-when-off guarantee (armed telemetry must not
perturb the simulation it observes).
"""

import pytest

from repro.bench.scenarios import run_bsp_chaos, run_overload_storm
from repro.sim import (
    Close,
    Open,
    Sleep,
    Telemetry,
    WatchdogRule,
    World,
    builtin_watchdogs,
)
from repro.sim.overload import BufferPool
from repro.sim.clock import EventScheduler
from repro.sim.stats import KernelStats
from repro.sim.telemetry import Series


class _FakeKernel:
    """The minimum a kernel must look like for ``attach_host``."""

    def __init__(self, name: str = "h") -> None:
        self.name = name
        self.stats = KernelStats()
        self._gauge_providers: list = []
        self.telemetry = None


def armed_telemetry(
    *, interval: float = 0.01, watchdogs: bool = True, horizon: float = 10.0
):
    """A telemetry instance on a bare scheduler, kept alive by one
    far-future keepalive event so ticks self-sustain until ``horizon``."""
    scheduler = EventScheduler()
    telemetry = Telemetry(scheduler, interval=interval, watchdogs=watchdogs)
    kernel = _FakeKernel()
    telemetry.attach_host(kernel)
    scheduler.schedule(horizon, lambda: None)
    telemetry.arm()
    return scheduler, telemetry, kernel


class TestSeries:
    def test_append_latest_and_samples(self):
        series = Series("h", "g")
        assert series.latest() is None
        series.append(0.0, 1.0)
        series.append(0.1, 3.0)
        assert series.latest() == 3.0
        assert [(s.time, s.value) for s in series] == [(0.0, 1.0), (0.1, 3.0)]

    def test_bounded_ring_evicts_oldest(self):
        series = Series("h", "g", capacity=3)
        for n in range(5):
            series.append(float(n), float(n))
        assert len(series) == 3
        assert [s.value for s in series.samples] == [2.0, 3.0, 4.0]

    def test_rate_is_windowed(self):
        series = Series("h", "g")
        assert series.rate() is None               # no samples
        series.append(0.0, 0.0)
        assert series.rate() is None               # one sample
        series.append(1.0, 10.0)
        series.append(2.0, 30.0)
        assert series.rate(window=2) == pytest.approx(20.0)
        assert series.rate(window=3) == pytest.approx(15.0)
        # a window larger than the history clamps instead of failing
        assert series.rate(window=99) == pytest.approx(15.0)

    def test_rate_none_when_time_stands_still(self):
        series = Series("h", "g")
        series.append(1.0, 5.0)
        series.append(1.0, 9.0)
        assert series.rate() is None


class TestSampler:
    def test_stat_rate_series_sampled_each_tick(self):
        scheduler, telemetry, kernel = armed_telemetry(horizon=0.1)
        kernel.stats.syscalls = 0
        scheduler.run(until=0.055)
        series = telemetry.series("h", "syscalls_per_s")
        assert len(series) == telemetry.ticks > 0
        # counters flat -> rate zero, and cpu_util exists alongside
        assert series.latest() == 0.0
        assert telemetry.series("h", "cpu_util").latest() == 0.0

    def test_cpu_util_is_windowed_utilization(self):
        scheduler, telemetry, kernel = armed_telemetry(
            interval=0.01, horizon=0.1
        )
        # burn half a tick of CPU every tick via a scheduled burner
        def burn():
            kernel.stats.cpu_time += 0.005
            scheduler.schedule(0.01, burn)

        scheduler.schedule(0.0, burn)
        scheduler.run(until=0.055)
        assert telemetry.series("h", "cpu_util").latest() == pytest.approx(
            0.5
        )

    def test_registered_gauges_sampled_and_retracted(self):
        scheduler, telemetry, kernel = armed_telemetry(horizon=1.0)
        box = {"v": 7.0}
        telemetry.register_gauges(
            "h", "dev.", {"depth": lambda: box["v"]}, unit="pkts"
        )
        scheduler.run(until=0.035)
        series = telemetry.series("h", "dev.depth")
        assert series.unit == "pkts"
        before = len(series)
        assert series.latest() == 7.0
        telemetry.retract_gauges("h", "dev.")
        scheduler.run(until=0.075)
        # recorded samples stay; no new ones arrive after retraction
        assert len(series) == before
        assert telemetry.ticks > before

    def test_sampler_parks_when_world_quiesces_and_resumes(self):
        world = World(telemetry=True)
        host = world.host("solo")

        def napper():
            yield Sleep(0.03)

        host.spawn("nap", napper())
        world.run()                      # must terminate: sampler parks
        parked_ticks = world.telemetry.ticks
        assert parked_ticks > 0
        assert world.telemetry.armed
        host.spawn("nap2", napper())
        world.telemetry.resume()
        world.run()
        assert world.telemetry.ticks > parked_ticks

    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            Telemetry(EventScheduler(), interval=0.0)

    def test_world_hook_attaches_later_hosts(self):
        world = World()
        early = world.host("early")
        world.enable_telemetry()
        late = world.host("late")
        for host in (early, late):
            assert host.kernel.telemetry is world.telemetry
            assert "cpu_util" in world.telemetry.names(host.name)

    def test_components_publish_gauges(self):
        """Every instrumented layer shows up as series: NIC, device,
        port, buffer pool."""
        world = World(telemetry=True)
        host = world.host("h")
        host.install_packet_filter()
        host.enable_overload(pool=BufferPool(8, port_share=4))

        def opener():
            yield Open("pf")
            yield Sleep(0.02)

        host.spawn("op", opener())
        world.run()
        names = set(world.telemetry.names("h"))
        assert {"nic.ring_depth", "nic.polling", "pf.delivered",
                "pool.in_use", "pool.available"} <= names
        assert any(n.startswith("pf.port") and n.endswith(".depth")
                   for n in names)

    def test_port_close_retracts_port_gauges(self):
        world = World(telemetry=True)
        host = world.host("h")
        host.install_packet_filter()

        def open_close():
            fd = yield Open("pf")
            yield Sleep(0.02)
            yield Close(fd)
            yield Sleep(0.02)

        host.spawn("oc", open_close())
        world.run()
        port_gauges = [
            key for key in world.telemetry._gauges
            if key[1].startswith("pf.port")
        ]
        assert port_gauges == []


class TestWatchdogs:
    def test_rule_validation(self):
        with pytest.raises(ValueError):
            WatchdogRule("bad", lambda view: True, fire_after=0)

    def test_hysteresis_fire_and_clear(self):
        scheduler, telemetry, kernel = armed_telemetry(
            interval=0.01, watchdogs=False, horizon=1.0
        )
        box = {"hot": 0.0}
        telemetry.register_gauges("h", "sig.", {"hot": lambda: box["hot"]})
        telemetry.add_rule(
            WatchdogRule(
                "synthetic",
                lambda view: (view.latest("sig.hot") or 0.0) > 0.0,
                fire_after=3,
                clear_after=2,
                capture=("sig.hot",),
            ),
            host="h",
        )
        scheduler.run(until=0.025)          # two cold ticks
        box["hot"] = 1.0
        scheduler.run(until=0.045)          # two hot ticks: not yet
        assert telemetry.alerts == []
        scheduler.run(until=0.055)          # third consecutive hot tick
        [alert] = telemetry.alerts
        assert alert.rule == "synthetic"
        assert alert.active
        assert alert.fired_at == pytest.approx(0.05)
        assert alert.values == {"sig.hot": 1.0}
        box["hot"] = 0.0
        scheduler.run(until=0.065)          # one cold tick: still active
        assert alert.active
        scheduler.run(until=0.075)          # second: clears
        assert not alert.active
        assert alert.cleared_at == pytest.approx(0.07)

    def test_flapping_below_threshold_never_fires(self):
        scheduler, telemetry, kernel = armed_telemetry(
            interval=0.01, watchdogs=False, horizon=1.0
        )
        calls = iter(range(10_000))

        def flapping_gauge():
            # the gauge runs exactly once per tick: hot two ticks,
            # cold two ticks — never three consecutive hot samples
            return 1.0 if next(calls) % 4 < 2 else 0.0

        telemetry.register_gauges("h", "sig.", {"hot": flapping_gauge})
        telemetry.add_rule(
            WatchdogRule(
                "flappy",
                lambda view: (view.latest("sig.hot") or 0.0) > 0.0,
                fire_after=3,
            ),
            host="h",
        )
        scheduler.run(until=0.5)
        assert telemetry.ticks > 20
        assert telemetry.alerts == []

    def test_builtin_pool_exhaustion_detector(self):
        scheduler, telemetry, kernel = armed_telemetry(horizon=1.0)
        telemetry.register_gauges(
            "h", "pool.",
            {"in_use": lambda: 8.0, "available": lambda: 0.0,
             "denied": lambda: 0.0},
        )
        scheduler.run(until=0.1)
        [alert] = telemetry.alerts_for("h", rule="buffer_pool_exhausted")
        assert alert.values["pool.available"] == 0.0

    def test_builtin_rto_backoff_detector(self):
        scheduler, telemetry, kernel = armed_telemetry(horizon=1.0)
        backoff = {"v": 1.0}
        telemetry.register_gauges(
            "h", "rto.bsp0x35.", {"backoff": lambda: backoff["v"]}
        )
        scheduler.run(until=0.05)
        assert telemetry.alerts_for(rule="rto_backoff_storm") == []
        backoff["v"] = 4.0                  # two consecutive doublings
        scheduler.run(until=0.1)
        [alert] = telemetry.alerts_for(rule="rto_backoff_storm")
        assert alert.host == "h"

    def test_builtin_poll_residency_detector(self):
        scheduler, telemetry, kernel = armed_telemetry(horizon=1.0)
        telemetry.register_gauges(
            "h", "nic.", {"polling": lambda: 1.0, "ring_depth": lambda: 64.0}
        )
        scheduler.run(until=0.2)
        [alert] = telemetry.alerts_for(rule="poll_mode_residency")
        assert alert.values["nic.ring_depth"] == 64.0

    def test_builtin_set_is_complete(self):
        names = {rule.name for rule in builtin_watchdogs()}
        assert names == {
            "receive_livelock",
            "buffer_pool_exhausted",
            "poll_mode_residency",
            "rto_backoff_storm",
        }


class TestEndToEnd:
    def test_chaos_run_publishes_rto_series(self):
        result = run_bsp_chaos(seed=11, telemetry=True)
        telemetry = result["world"].telemetry
        rto_series = [
            series for series in telemetry.series_for()
            if series.name.startswith("rto.bsp")
        ]
        assert any(series.name.endswith(".backoff") for series in rto_series)
        assert any(len(series) > 0 for series in rto_series)

    def test_seeded_runs_produce_identical_series(self):
        """Bitwise determinism: same seed, same samples, same alerts."""
        def capture():
            result = run_bsp_chaos(seed=5, telemetry=True)
            telemetry = result["world"].telemetry
            series = {
                (s.host, s.name): [(x.time, x.value) for x in s]
                for s in telemetry.series_for()
            }
            alerts = [a.to_dict() for a in telemetry.alerts]
            return series, alerts

        assert capture() == capture()

    def test_armed_telemetry_does_not_perturb_the_run(self):
        """The observer effect must be zero: identical KernelStats with
        telemetry armed and disarmed."""
        plain = run_bsp_chaos(seed=7, ledger=True)
        observed = run_bsp_chaos(seed=7, ledger=True, telemetry=True)
        assert plain["world"].telemetry is None
        for bare, watched in zip(
            plain["world"].hosts, observed["world"].hosts
        ):
            assert bare.name == watched.name
            assert bare.kernel.stats == watched.kernel.stats

    def test_storm_results_carry_alerts_and_rates(self):
        result = run_overload_storm(
            mode="interrupt", offered_multiplier=3.0,
            warmup=0.05, duration=0.3, telemetry=True,
        )
        assert result["telemetry"] is result["world"].telemetry
        assert "syscalls" in result["receiver_rates"]
        assert isinstance(result["alerts"], list)

    def test_format_summary_renders(self):
        scheduler, telemetry, kernel = armed_telemetry(horizon=1.0)
        scheduler.run(until=0.05)
        text = telemetry.format_summary("h")
        assert "telemetry on 'h'" in text
        assert "cpu_util" in text
        assert "alerts: none" in text
