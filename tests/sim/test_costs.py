"""Tests for the calibrated cost model."""

import pytest

from repro.sim.costs import FREE, MICROVAX_II, VAX_780


class TestPaperCalibration:
    """The constants the paper states outright, in seconds."""

    def test_context_switch(self):
        assert MICROVAX_II.context_switch == pytest.approx(0.4e-3)

    def test_short_copy(self):
        assert MICROVAX_II.copy_cost(64) == pytest.approx(0.5e-3)
        assert MICROVAX_II.copy_cost(128) == pytest.approx(0.5e-3)

    def test_copy_slope_is_1ms_per_kbyte(self):
        delta = MICROVAX_II.copy_cost(128 + 1024) - MICROVAX_II.copy_cost(128)
        assert delta == pytest.approx(1.0e-3)

    def test_filter_instruction_slope_matches_table_6_10(self):
        # (2.5 - 1.9) ms over 21 instructions ~ 0.0286 ms each.
        assert MICROVAX_II.filter_instruction == pytest.approx(
            0.6e-3 / 21, rel=0.01
        )

    def test_ip_input_is_0_49ms(self):
        assert MICROVAX_II.ip_input == pytest.approx(0.49e-3)

    def test_full_ip_input_path_is_1_77ms(self):
        total = MICROVAX_II.ip_input + MICROVAX_II.transport_input
        assert total == pytest.approx(1.77e-3)

    def test_microtime_is_70us(self):
        assert MICROVAX_II.microtime == pytest.approx(70e-6)

    def test_udp_send_gap_matches_table_6_1(self):
        assert MICROVAX_II.udp_send_overhead == pytest.approx(1.2e-3)


class TestDerivedCosts:
    def test_filter_cost_linear_in_both_terms(self):
        model = MICROVAX_II
        base = model.filter_cost(1, 0)
        assert model.filter_cost(2, 0) == pytest.approx(2 * base)
        only_instructions = model.filter_cost(0, 10)
        assert only_instructions == pytest.approx(10 * model.filter_instruction)

    def test_buffer_cost_scales_with_size(self):
        assert MICROVAX_II.buffer_cost(2048) == pytest.approx(
            2 * MICROVAX_II.buffer_cost(1024)
        )

    def test_scaled_model(self):
        half = MICROVAX_II.scaled(0.5)
        assert half.context_switch == pytest.approx(0.2e-3)
        assert half.copy_cost(128) == pytest.approx(0.25e-3)

    def test_vax_780_is_faster(self):
        assert VAX_780.context_switch < MICROVAX_II.context_switch

    def test_free_model_is_all_zero(self):
        assert FREE.copy_cost(10_000) == 0.0
        assert FREE.filter_cost(100, 100) == 0.0
        assert FREE.context_switch == 0.0

    def test_immutable(self):
        with pytest.raises(AttributeError):
            MICROVAX_II.context_switch = 0.0
