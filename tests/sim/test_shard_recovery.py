"""Crash-recoverable shards: typed failures, checkpoints, replay.

The acceptance bar is bitwise: a shard killed (or wedged) mid-run is
respawned from its fork-based checkpoint, the supervisor replays the
journaled grants, and the final :func:`~repro.difftest.sharding.run_digest`
equals the same scenario run with no fault at all.  Failure *injection*
is deterministic (the worker kills or hangs itself at an exact window
via a hazard spec), so these tests pick their crash sites instead of
racing signals.
"""

import os

import pytest

from repro.difftest.sharding import run_digest
from repro.sim.orchestrator import RecoveryConfig, run_topology
from repro.sim.shard import (
    ProcessShard,
    ShardDiedError,
    ShardTimeoutError,
)

from .test_shard import ping_spec

needs_fork = pytest.mark.skipif(
    not hasattr(os, "fork"), reason="fork-based checkpoints need os.fork"
)


class TestTypedFailures:
    def test_dead_worker_raises_typed_error(self):
        spec = ping_spec(2)
        shard = ProcessShard(
            spec, [0], shard_id=3, hazard={"die_at_window": 2}
        )
        try:
            shard.step_send(0.0, [])
            shard.step_recv()
            shard.step_send(0.002, [])
            with pytest.raises(ShardDiedError) as excinfo:
                shard.step_recv()
            error = excinfo.value
            assert error.shard_id == 3
            assert error.window_index == 2
            assert error.last_ack == 1
        finally:
            shard.close()
        assert not shard._process.is_alive()

    def test_wedged_worker_raises_timeout_and_close_reaps(self):
        spec = ping_spec(2)
        shard = ProcessShard(
            spec,
            [0],
            shard_id=1,
            timeout=0.2,
            hazard={"wedge_at_window": 1, "wedge_seconds": 60.0},
        )
        try:
            shard.step_send(0.0, [])
            with pytest.raises(ShardTimeoutError) as excinfo:
                shard.step_recv()
            assert excinfo.value.shard_id == 1
            assert excinfo.value.window_index == 1
            assert excinfo.value.last_ack == 0
        finally:
            # close() must reap the (still sleeping) child promptly —
            # the _failed fast path skips the polite exit handshake.
            shard.close()
        assert not shard._process.is_alive()

    def test_untimed_recv_still_detects_eof(self):
        spec = ping_spec(2)
        shard = ProcessShard(spec, [0], hazard={"die_at_window": 1})
        try:
            shard.step_send(0.0, [])
            with pytest.raises(ShardDiedError):
                shard.step_recv()
        finally:
            shard.close()


@needs_fork
class TestRecovery:
    def test_kill_recovers_from_checkpoint_bitwise(self):
        spec = ping_spec(2, frames=8, seed=4)
        baseline = run_digest(run_topology(spec, shards=2))
        recovered = run_topology(
            spec,
            shards=2,
            recovery=RecoveryConfig(checkpoint_interval=4, recv_timeout=10.0),
            hazards={1: {"die_at_window": 7}},
        )
        assert run_digest(recovered) == baseline
        (record,) = recovered.restarts
        assert record["shard"] == 1
        assert record["reason"] == "died"
        assert record["resumed_from"] == 4
        assert record["checkpointed"] is True
        assert record["replayed"] == 3
        assert record["attempts"] == 1

    def test_wedge_recovers_from_checkpoint_bitwise(self):
        spec = ping_spec(2, frames=8, seed=4)
        baseline = run_digest(run_topology(spec, shards=2))
        recovered = run_topology(
            spec,
            shards=2,
            recovery=RecoveryConfig(checkpoint_interval=4, recv_timeout=0.3),
            hazards={0: {"wedge_at_window": 6, "wedge_seconds": 60.0}},
        )
        assert run_digest(recovered) == baseline
        (record,) = recovered.restarts
        assert record["shard"] == 0
        assert record["reason"] == "timed out"
        assert record["resumed_from"] == 4

    def test_no_checkpoint_recovers_by_full_replay(self):
        spec = ping_spec(2, frames=6, seed=9)
        baseline = run_digest(run_topology(spec, shards=2))
        recovered = run_topology(
            spec,
            shards=2,
            recovery=RecoveryConfig(
                checkpoint_interval=None, recv_timeout=10.0
            ),
            hazards={1: {"die_at_window": 5}},
        )
        assert run_digest(recovered) == baseline
        (record,) = recovered.restarts
        assert record["resumed_from"] == 0
        assert record["checkpointed"] is False
        assert record["replayed"] == 5

    def test_kill_at_checkpoint_window_uses_pending_reply(self):
        # Dying exactly at a checkpoint window exercises the race the
        # promotion handshake exists for: the frozen child's state
        # already includes the window whose reply never got sent.
        spec = ping_spec(2, frames=8, seed=4)
        baseline = run_digest(run_topology(spec, shards=2))
        recovered = run_topology(
            spec,
            shards=2,
            recovery=RecoveryConfig(checkpoint_interval=3, recv_timeout=10.0),
            hazards={1: {"die_at_window": 9}},
        )
        assert run_digest(recovered) == baseline
        (record,) = recovered.restarts
        assert record["resumed_from"] in (6, 9)

    def test_restart_budget_exhausted_reraises(self):
        spec = ping_spec(2, frames=6)
        with pytest.raises(ShardDiedError):
            run_topology(
                spec,
                shards=2,
                recovery=RecoveryConfig(
                    checkpoint_interval=4, recv_timeout=10.0, max_restarts=0
                ),
                hazards={1: {"die_at_window": 5}},
            )

    def test_unsupervised_failure_propagates(self):
        spec = ping_spec(2, frames=6)
        with pytest.raises(ShardDiedError):
            run_topology(spec, shards=2, hazards={1: {"die_at_window": 5}})

    def test_restart_surfaces_as_telemetry_alert(self):
        import dataclasses

        spec = dataclasses.replace(
            ping_spec(2, frames=8, seed=4), telemetry=True
        )
        recovered = run_topology(
            spec,
            shards=2,
            recovery=RecoveryConfig(checkpoint_interval=4, recv_timeout=10.0),
            hazards={0: {"die_at_window": 6}},
        )
        alerts = [
            alert
            for alert in recovered.telemetry.alerts
            if alert.get("rule") == "shard_restart"
        ]
        assert len(alerts) == 1
        assert alerts[0]["host"] == "shard:0"
        assert alerts[0]["values"]["resumed_from"] == 4.0

    def test_hazard_not_replayed_after_respawn(self):
        # A fresh respawn (no checkpoint) replays through the original
        # crash window; the hazard must have been stripped or the shard
        # would die forever.
        spec = ping_spec(2, frames=6, seed=9)
        recovered = run_topology(
            spec,
            shards=2,
            recovery=RecoveryConfig(
                checkpoint_interval=None, recv_timeout=10.0, max_restarts=2
            ),
            hazards={1: {"die_at_window": 3}},
        )
        assert len(recovered.restarts) == 1
