"""API-surface tests for Host and World assembly."""

import pytest

from repro.net.ethernet import ETHERNET_3MB
from repro.sim import World
from repro.sim.costs import FREE, MICROVAX_II


class TestHostAssembly:
    def test_double_packet_filter_install_rejected(self):
        world = World()
        host = world.host("h")
        host.install_packet_filter()
        with pytest.raises(RuntimeError, match="already has"):
            host.install_packet_filter()

    def test_packet_filter_property_requires_install(self):
        world = World()
        host = world.host("h")
        with pytest.raises(RuntimeError, match="no packet filter"):
            host.packet_filter

    def test_explicit_address(self):
        world = World()
        host = world.host("h", address=b"\xaa" * 6)
        assert host.address == b"\xaa" * 6

    def test_per_host_cost_model(self):
        world = World(costs=MICROVAX_II)
        fast = world.host("fast", costs=FREE)
        slow = world.host("slow")
        assert fast.kernel.costs is FREE
        assert slow.kernel.costs is MICROVAX_II

    def test_kernel_stack_and_pf_coexist_on_one_host(self):
        world = World()
        host = world.host("h")
        host.install_kernel_stack()
        host.install_packet_filter()  # figure 3-3's arrangement
        assert host.packet_filter is not None

    def test_repr(self):
        world = World()
        host = world.host("box")
        assert "box" in repr(host)


class TestWorldAssembly:
    def test_three_megabit_world(self):
        world = World(link=ETHERNET_3MB)
        host = world.host("h")
        assert host.address == b"\x01"  # one-byte station numbers
        assert host.link.name == "ethernet-3mb"

    def test_now_tracks_scheduler(self):
        world = World()
        assert world.now == 0.0
        world.run(until=1.5)
        assert world.now == 1.5

    def test_run_until_done_max_events(self):
        from repro.sim import Sleep

        world = World()
        host = world.host("h")

        def forever():
            while True:
                yield Sleep(0.001)

        proc = host.spawn("p", forever())
        with pytest.raises(RuntimeError, match="exceeded"):
            world.run_until_done(proc, max_events=100)

    def test_pf_registered_as_custom_device_name(self):
        from repro.sim import Open

        world = World()
        host = world.host("h")
        host.install_packet_filter(device_name="pf0")

        def body():
            fd = yield Open("pf0")
            return fd

        proc = host.spawn("p", body())
        world.run_until_done(proc)
        assert proc.result >= 3

    def test_duplicate_device_name_rejected(self):
        world = World()
        host = world.host("h")
        host.install_packet_filter()
        from repro.sim.display import DisplayDevice

        with pytest.raises(ValueError, match="already registered"):
            host.kernel.register_device("pf", DisplayDevice(100))
