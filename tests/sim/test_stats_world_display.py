"""Tests for stats snapshots, the world driver, and display devices."""

import pytest

from repro.sim import Open, Sleep, World, Write
from repro.sim.display import (
    TERMINAL_9600_CPS,
    WORKSTATION_CPS,
    DisplayDevice,
)
from repro.sim.stats import KernelStats


class TestKernelStats:
    def test_snapshot_is_independent(self):
        stats = KernelStats()
        snap = stats.snapshot()
        stats.syscalls += 5
        assert snap.syscalls == 0

    def test_delta(self):
        stats = KernelStats(syscalls=10, copies=4)
        later = KernelStats(syscalls=15, copies=9)
        delta = later.delta(stats)
        assert delta.syscalls == 5
        assert delta.copies == 5

    def test_rates_are_windowed_per_second(self):
        before = KernelStats(syscalls=10, cpu_time=1.0)
        after = KernelStats(syscalls=30, cpu_time=2.0, frames_received=8)
        rates = after.rates(before, 4.0)
        assert rates["syscalls"] == pytest.approx(5.0)
        assert rates["cpu_time"] == pytest.approx(0.25)   # utilization
        assert rates["frames_received"] == pytest.approx(2.0)
        assert rates["copies"] == 0.0

    def test_rates_reject_empty_window(self):
        with pytest.raises(ValueError):
            KernelStats().rates(KernelStats(), 0.0)

    def test_per_packet(self):
        stats = KernelStats(syscalls=30, context_switches=20)
        per = stats.per_packet(10)
        assert per["syscalls"] == 3.0
        assert per["context_switches"] == 2.0

    def test_per_packet_rejects_zero(self):
        with pytest.raises(ValueError):
            KernelStats().per_packet(0)


class TestWorld:
    def test_hosts_get_sequential_addresses(self):
        world = World()
        a = world.host("a")
        b = world.host("b")
        assert a.address == (1).to_bytes(6, "big")
        assert b.address == (2).to_bytes(6, "big")

    def test_run_until_done_raises_on_deadlock(self):
        world = World()
        host = world.host("h")

        def body():
            from repro.sim import SigWait

            yield SigWait()  # nobody will ever signal

        proc = host.spawn("p", body())
        with pytest.raises(RuntimeError, match="idle"):
            world.run_until_done(proc)

    def test_run_until_done_surfaces_failures(self):
        world = World()
        host = world.host("h")

        def body():
            yield Open("nonexistent")

        proc = host.spawn("p", body())
        with pytest.raises(RuntimeError, match="failed"):
            world.run_until_done(proc)

    def test_deterministic_replay(self):
        def build():
            world = World()
            host = world.host("h")

            def body():
                yield Sleep(0.01)
                from repro.sim import Compute

                yield Compute(0.005)
                return world.now

            proc = host.spawn("p", body())
            world.run_until_done(proc)
            return proc.result, world.now, host.stats.cpu_time

        assert build() == build()


class TestDisplayDevice:
    def _run(self, display, chunks):
        world = World()
        host = world.host("h")
        host.kernel.register_device("display", display)

        def body():
            fd = yield Open("display")
            for chunk in chunks:
                yield Write(fd, chunk)
            return world.now

        proc = host.spawn("p", body())
        world.run_until_done(proc)
        return world, host, proc

    def test_terminal_drains_at_its_rate(self):
        display = DisplayDevice(TERMINAL_9600_CPS)
        _, _, proc = self._run(display, [b"x" * 960])
        assert proc.result >= 1.0  # 960 chars at 960 cps

    def test_terminal_does_not_consume_cpu(self):
        display = DisplayDevice(TERMINAL_9600_CPS)
        _, host, _ = self._run(display, [b"x" * 960])
        assert host.stats.cpu_time < 0.1

    def test_workstation_display_consumes_cpu(self):
        display = DisplayDevice(WORKSTATION_CPS, consumes_cpu=True)
        _, host, _ = self._run(display, [b"x" * 3350])
        assert host.stats.cpu_time >= 1.0

    def test_characters_counted(self):
        display = DisplayDevice(TERMINAL_9600_CPS)
        self._run(display, [b"ab", b"cde"])
        assert display.characters_displayed == 5

    def test_rate_must_be_positive(self):
        with pytest.raises(ValueError):
            DisplayDevice(0)
