"""Overload control: buffer pool, admission drops, polling, kill().

The receive-livelock *shape* (interrupt collapse vs polling plateau)
is asserted by ``benchmarks/test_overload_livelock.py``; these are the
mechanism tests — pool bookkeeping, each admission drop cause landing
in the ledger under its own primitive, the polling mode transitions,
the user CPU share, and the crash-safety contract of
:meth:`SimKernel.kill`.
"""

import pytest

from repro.core.compiler import compile_expr, word
from repro.core.ioctl import PFIoctl
from repro.sim import (
    BadFileDescriptor,
    BufferPool,
    Compute,
    Ioctl,
    Open,
    ProcessKilled,
    ProcessState,
    Read,
    RxPolicy,
    Select,
    Sleep,
    World,
    Write,
)
from repro.sim.costs import FREE
from repro.sim.ledger import Primitive

TYPE = 0x0900


def type_filter(priority=10):
    return compile_expr(word(6) == TYPE, priority=priority)


def frame_for(src, dst, payload=b"payload", ethertype=TYPE):
    return src.link.frame(dst.address, src.address, ethertype, payload)


# ---------------------------------------------------------------------------
# BufferPool
# ---------------------------------------------------------------------------


class TestBufferPool:
    def test_reserve_and_release(self):
        pool = BufferPool(4)
        assert pool.reserve("a", 2)
        assert pool.in_use == 2 and pool.available == 2
        assert pool.held("a") == 2
        pool.release("a")
        assert pool.in_use == 1
        pool.release("a")
        assert pool.audit() == {}
        assert pool.stats.reserved == 2 and pool.stats.released == 2

    def test_capacity_is_all_or_nothing(self):
        pool = BufferPool(3)
        assert pool.reserve("a", 2)
        assert not pool.reserve("b", 2)   # would exceed capacity
        assert pool.held("b") == 0        # nothing was taken
        assert pool.stats.denied_pool == 1
        assert pool.reserve("b", 1)

    def test_port_share_caps_one_owner(self):
        pool = BufferPool(8, port_share=2)
        owner = ("port", 0)
        assert pool.reserve(owner, 2)
        assert not pool.reserve(owner)
        assert pool.stats.denied_share == 1
        assert pool.at_share(owner)
        # Non-port owners (the NIC ring) are not share-limited.
        assert pool.reserve(("ring", "host"), 5)

    def test_over_release_raises(self):
        pool = BufferPool(4)
        pool.reserve("a")
        with pytest.raises(ValueError):
            pool.release("a", 2)

    def test_release_all(self):
        pool = BufferPool(4)
        pool.reserve("a", 3)
        assert pool.release_all("a") == 3
        assert pool.audit() == {}
        assert pool.release_all("a") == 0

    def test_peak_in_use_tracks_high_water(self):
        pool = BufferPool(4)
        pool.reserve("a", 3)
        pool.release("a", 2)
        pool.reserve("b", 1)
        assert pool.stats.peak_in_use == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            BufferPool(0)
        with pytest.raises(ValueError):
            BufferPool(4, port_share=0)


class TestRxPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RxPolicy(poll_enter=0)
        with pytest.raises(ValueError):
            RxPolicy(poll_quota=0)
        with pytest.raises(ValueError):
            RxPolicy(user_share=1.0)
        with pytest.raises(ValueError):
            RxPolicy(user_share=-0.1)
        with pytest.raises(ValueError):
            RxPolicy(shed_watermark=0)
        with pytest.raises(ValueError):
            RxPolicy(poll_period=-1.0)

    def test_user_gap_arithmetic(self):
        policy = RxPolicy(user_share=0.25)
        # 3 ms of receive work owes 1 ms to user processes: 25% share.
        assert policy.user_gap(0.003) == pytest.approx(0.001)
        assert RxPolicy(user_share=0.0).user_gap(1.0) == 0.0

    def test_user_gap_is_the_share_guarantee(self):
        policy = RxPolicy(user_share=0.25)
        work = 0.007
        gap = policy.user_gap(work)
        assert work / (work + gap) == pytest.approx(1.0 - policy.user_share)


# ---------------------------------------------------------------------------
# Admission drops: each cause lands under its own primitive
# ---------------------------------------------------------------------------


def _storm_receiver(*, queue_limit=4, policy=None, pool=None):
    world = World(ledger=True)
    sender = world.host("sender", costs=FREE)
    receiver = world.host("receiver", input_queue_limit=queue_limit)
    if policy is not None or pool is not None:
        receiver.enable_overload(policy=policy, pool=pool)
    return world, sender, receiver


class TestAdmission:
    def test_ring_full_drops_as_dropped_ring(self):
        policy = RxPolicy(poll_enter=100)  # never enter polling
        world, sender, receiver = _storm_receiver(
            queue_limit=3, policy=policy
        )
        frame = frame_for(sender, receiver)
        # Inject straight at the NIC before any event runs: the gated
        # service can't drain, so arrivals past the limit are refused.
        for _ in range(5):
            receiver.nic.receive(frame)
        assert receiver.nic.frames_dropped == 2
        assert len(receiver.nic._input_queue) == 3
        world.run()
        drops = world.ledger.drop_summary()
        assert drops["dropped_ring"] == 2
        assert not world.ledger.open_spans("receiver")

    def test_pool_exhaustion_drops_as_dropped_nobuf(self):
        pool = BufferPool(2)
        world, sender, receiver = _storm_receiver(
            queue_limit=16, pool=pool
        )
        frame = frame_for(sender, receiver)
        for _ in range(5):
            receiver.nic.receive(frame)
        assert receiver.nic.frames_nobuf == 3
        assert pool.held(("ring", "receiver")) == 2
        world.run()
        drops = world.ledger.drop_summary()
        assert drops["dropped_nobuf"] == 3
        # Drained ring slots went back to the pool.
        assert pool.audit() == {}

    def test_shed_watermark_drops_as_dropped_shed(self):
        policy = RxPolicy(poll_enter=2, shed_watermark=2)
        world, sender, receiver = _storm_receiver(
            queue_limit=16, policy=policy
        )
        frame = frame_for(sender, receiver)
        for _ in range(5):
            receiver.nic.receive(frame)
        # Second arrival crossed poll_enter; from then on the watermark
        # sheds at admission, before any buffer is taken.
        assert receiver.nic.polling
        assert receiver.nic.poll_mode_entries == 1
        assert receiver.nic.frames_shed == 3
        world.run()
        drops = world.ledger.drop_summary()
        assert drops["dropped_shed"] == 3
        assert not world.ledger.open_spans("receiver")
        assert not receiver.nic.polling  # drained: back to interrupts

    def test_every_wire_arrival_is_accounted(self):
        """The drop census invariant: wire arrivals partition exactly
        into closed span outcomes — nothing vanishes."""
        policy = RxPolicy(poll_enter=2, shed_watermark=3)
        pool = BufferPool(8)
        world, sender, receiver = _storm_receiver(
            queue_limit=4, policy=policy, pool=pool
        )
        frame = frame_for(sender, receiver)
        for _ in range(20):
            receiver.nic.receive(frame)
        world.run()
        spans = world.ledger.spans_for("receiver")
        assert len(spans) == 20
        assert all(span.closed for span in spans)
        nic = receiver.nic
        accounted = (
            nic.frames_received
            + nic.frames_dropped
            + nic.frames_shed
            + nic.frames_nobuf
        )
        assert accounted == 20


class TestLegacyRingDropCensus:
    def test_mitigation_window_overflow_lands_in_drop_summary(self):
        """Satellite 1: the classic (no-policy) NIC ring drop must show
        up in ``drop_summary()`` as a proper ChargeEvent and a closed
        span, so ``python -m repro profile`` accounts for every wire
        arrival even on the legacy path."""
        world = World(ledger=True)
        sender = world.host("sender", costs=FREE)
        receiver = world.host("receiver", input_queue_limit=2)
        receiver.nic.rx_batch = 8
        receiver.nic.rx_mitigation = 0.01  # hold the interrupt
        frame = frame_for(sender, receiver)
        for _ in range(6):
            receiver.nic.receive(frame)
        assert receiver.nic.frames_dropped == 4
        world.run()
        drops = world.ledger.drop_summary()
        assert drops["drop_interface"] == 4
        assert not world.ledger.open_spans("receiver")
        # The charge went through the accounting choke point, so the
        # live stats and the ledger replay can never disagree.
        assert (
            world.ledger.stats_view("receiver") == receiver.kernel.stats
        )


# ---------------------------------------------------------------------------
# Polling mode and the user CPU share
# ---------------------------------------------------------------------------


def _storm(world, sender, receiver, *, until, gap, ticks):
    """A storm plus a compute-bound user process; returns tick times."""
    frame = frame_for(sender, receiver)

    def blast():
        fd = yield Open("pf")
        yield Sleep(0.01)
        while world.now < until:
            yield Write(fd, frame)
            yield Sleep(gap)

    def reader():
        fd = yield Open("pf")
        yield Ioctl(fd, PFIoctl.SETFILTER, type_filter())
        yield Ioctl(fd, PFIoctl.SETBATCH, True)
        yield Ioctl(fd, PFIoctl.SETQUEUELEN, 32)
        while True:
            yield Read(fd)

    def worker():
        while world.now < until:
            yield Compute(0.005)
            ticks.append(world.now)

    receiver.spawn("reader", reader())
    receiver.spawn("worker", worker())
    sender.spawn("blaster", blast())
    world.run()


class TestPollingMode:
    def _run(self, mode):
        world = World(ledger=True)
        sender = world.host("sender", costs=FREE)
        receiver = world.host("receiver", input_queue_limit=64)
        sender.install_packet_filter()
        receiver.install_packet_filter(flow_cache=True)
        if mode == "polling":
            receiver.enable_overload(
                policy=RxPolicy(
                    poll_enter=8, poll_quota=16,
                    user_share=0.25, shed_watermark=32,
                ),
                pool=BufferPool(192, port_share=64),
            )
        ticks = []
        # ~4x the ~1.7 ms/packet saturation cost.
        _storm(world, sender, receiver, until=0.5, gap=0.0004, ticks=ticks)
        return world, receiver, ticks

    def test_storm_enters_and_exits_polling(self):
        world, receiver, _ = self._run("polling")
        nic = receiver.nic
        assert nic.poll_mode_entries > 0
        assert nic.polls > 0
        assert nic.frames_polled > 0
        assert not nic.polling  # storm over, ring drained

    def test_user_process_keeps_its_share_under_storm(self):
        """The livelock cure, seen from the starved process's side: a
        compute-bound worker on the stormed host must keep making
        progress in polling mode, far better than under naive
        interrupts where the CPU cursor races ahead of the wire."""
        _, _, interrupt_ticks = self._run("interrupt")
        _, _, polling_ticks = self._run("polling")
        in_window = [t for t in polling_ticks if t <= 0.55]
        starved = [t for t in interrupt_ticks if t <= 0.55]
        assert len(in_window) >= 3 * max(1, len(starved))
        # 25% of a 0.5 s window at 5 ms per tick = 25 ticks if the
        # guarantee held exactly; leave headroom for edges.
        assert len(in_window) >= 15

    def test_storm_reconciles_and_audits_clean(self):
        world, receiver, _ = self._run("polling")
        assert (
            world.ledger.stats_view("receiver") == receiver.kernel.stats
        )
        assert receiver.kernel.buffer_pool.audit() == {}
        assert not world.ledger.open_spans("receiver")


# ---------------------------------------------------------------------------
# SimKernel.kill: crash-safe teardown
# ---------------------------------------------------------------------------


class TestKill:
    def test_kill_blocked_reader_tears_port_down(self):
        world = World(ledger=True)
        sender = world.host("sender", costs=FREE)
        receiver = world.host("receiver")
        sender.install_packet_filter()
        receiver.install_packet_filter()
        cleaned = []

        def victim():
            fd = yield Open("pf")
            yield Ioctl(fd, PFIoctl.SETFILTER, type_filter())
            try:
                while True:
                    yield Read(fd)
            finally:
                cleaned.append(world.now)  # GeneratorExit ran

        proc = receiver.spawn("victim", victim())
        world.scheduler.schedule_at(0.05, receiver.kernel.kill, proc)
        world.run()
        assert proc.state is ProcessState.FAILED
        assert isinstance(proc.error, ProcessKilled)
        assert cleaned, "the victim's finally block must run"
        assert proc.fds == {}
        assert receiver.packet_filter.demux.attached_ports() == []

    def test_kill_releases_queued_buffers(self):
        world = World(ledger=True)
        sender = world.host("sender", costs=FREE)
        receiver = world.host("receiver")
        pool = BufferPool(32, port_share=16)
        sender.install_packet_filter()
        receiver.install_packet_filter()
        receiver.kernel.buffer_pool = pool

        def victim():
            fd = yield Open("pf")
            yield Ioctl(fd, PFIoctl.SETFILTER, type_filter())
            yield Sleep(10.0)  # never reads: packets pile up queued

        def blast():
            fd = yield Open("pf")
            yield Sleep(0.01)
            for _ in range(5):
                yield Write(fd, frame_for(sender, receiver))
                yield Sleep(0.005)

        proc = receiver.spawn("victim", victim())
        sender.spawn("blaster", blast())
        world.scheduler.schedule_at(0.2, receiver.kernel.kill, proc)
        world.run()
        assert proc.state is ProcessState.FAILED
        assert pool.audit() == {}, "killed process leaked pool buffers"
        # Its queued-but-unread packets closed as closed_port.
        outcomes = [
            s.outcome for s in world.ledger.spans_for("receiver")
        ]
        assert "closed_port" in outcomes

    def test_kill_wakes_peer_blocked_on_dead_port(self):
        """A peer blocked reading the victim's port must get an error,
        not hang forever — the 'wedged demux' half of the contract."""
        world = World()
        receiver = world.host("receiver")
        receiver.install_packet_filter()
        fds = {}

        def victim():
            fd = yield Open("pf")
            fds["pf"] = fd
            yield Ioctl(fd, PFIoctl.SETFILTER, type_filter())
            yield Sleep(10.0)

        victim_proc = receiver.spawn("victim", victim())

        def peer():
            yield Sleep(0.01)
            fd = receiver.kernel.share_fd(
                victim_proc, fds["pf"], peer_proc
            )
            yield Read(fd)   # blocks: no traffic ever arrives

        peer_proc = receiver.spawn("peer", peer())
        world.scheduler.schedule_at(0.1, receiver.kernel.kill, victim_proc)
        world.run()
        assert peer_proc.done
        assert isinstance(peer_proc.error, BadFileDescriptor)

    def test_kill_removes_select_waiter(self):
        world = World()
        receiver = world.host("receiver")
        receiver.install_packet_filter()

        def victim():
            fd = yield Open("pf")
            yield Ioctl(fd, PFIoctl.SETFILTER, type_filter())
            yield Select((fd,))

        proc = receiver.spawn("victim", victim())
        world.scheduler.schedule_at(0.05, receiver.kernel.kill, proc)
        world.run()
        assert proc.state is ProcessState.FAILED
        assert receiver.kernel._select_waiters == []

    def test_kill_during_sleep_stays_dead(self):
        """The sleep timer fires after the kill; the completion must
        no-op instead of resurrecting the corpse."""
        world = World()
        receiver = world.host("receiver")

        def victim():
            yield Sleep(1.0)
            return "woke"

        proc = receiver.spawn("victim", victim())
        world.scheduler.schedule_at(0.2, receiver.kernel.kill, proc)
        world.run()
        assert proc.state is ProcessState.FAILED
        assert proc.result is None
        assert isinstance(proc.error, ProcessKilled)

    def test_kill_done_process_is_a_noop(self):
        world = World()
        receiver = world.host("receiver")

        def body():
            yield Sleep(0.01)
            return "done"

        proc = receiver.spawn("p", body())
        world.run()
        assert proc.result == "done"
        receiver.kernel.kill(proc)
        assert proc.state is ProcessState.DONE
        assert proc.error is None


# ---------------------------------------------------------------------------
# New primitives stay reconciliation-clean
# ---------------------------------------------------------------------------


def test_new_drop_primitives_have_distinct_summary_keys():
    assert Primitive.DROP_RING.value == "dropped_ring"
    assert Primitive.DROP_NOBUF.value == "dropped_nobuf"
    assert Primitive.DROP_SHED.value == "dropped_shed"
