"""Tests for multi-segment topology specs, addressing and bridging."""

import pytest

from repro.sim.seeds import derive_seed
from repro.sim.topology import (
    BRIDGE_STATION_BASE,
    BridgeSpec,
    SegmentRuntime,
    SegmentSpec,
    TopologySpec,
    register_builder,
    resolve_builder,
    segment_index_of,
    station_address,
)


def _noop_builder(ctx):
    pass


def _chain_spec(names, builder=_noop_builder, delay=1e-3, **spec_kwargs):
    return TopologySpec(
        segments=tuple(SegmentSpec(name, builder) for name in names),
        bridges=tuple(
            BridgeSpec(names[i], names[i + 1], delay=delay)
            for i in range(len(names) - 1)
        ),
        **spec_kwargs,
    )


class TestAddressing:
    def test_round_trip(self):
        for index in (0, 1, 7):
            for station in (1, 2, 0xEFFF):
                address = station_address(index, station)
                assert segment_index_of(address) == index

    def test_broadcast_has_no_segment(self):
        assert segment_index_of(b"\xff" * 6) is None

    def test_legacy_unprefixed_has_no_segment(self):
        # Single-segment worlds hand out low-byte addresses; the zero
        # prefix marks them as pre-topology.
        assert segment_index_of((0x0002).to_bytes(6, "big")) is None

    def test_distinct_segments_distinct_addresses(self):
        assert station_address(0, 1) != station_address(1, 1)

    def test_station_must_fit_16_bits(self):
        with pytest.raises(ValueError):
            station_address(0, 0x10000)

    def test_negative_segment_rejected(self):
        with pytest.raises(ValueError):
            station_address(-1, 1)


class TestBridgeSpec:
    def test_default_link_id(self):
        assert BridgeSpec("a", "b").link_id == "a~b"

    def test_zero_delay_rejected(self):
        # The delay is the conservative lookahead; without it no window
        # is safe.
        with pytest.raises(ValueError, match="lookahead"):
            BridgeSpec("a", "b", delay=0.0)

    def test_self_bridge_rejected(self):
        with pytest.raises(ValueError):
            BridgeSpec("a", "a")

    def test_other(self):
        bridge = BridgeSpec("a", "b")
        assert bridge.other("a") == "b"
        assert bridge.other("b") == "a"


class TestValidation:
    def test_valid_chain(self):
        _chain_spec(["lan0", "lan1", "lan2"]).validate()

    def test_empty_topology_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            TopologySpec(segments=()).validate()

    def test_duplicate_segment_names_rejected(self):
        spec = TopologySpec(
            segments=(
                SegmentSpec("lan0", _noop_builder),
                SegmentSpec("lan0", _noop_builder),
            )
        )
        with pytest.raises(ValueError, match="duplicate"):
            spec.validate()

    def test_dangling_bridge_rejected(self):
        spec = TopologySpec(
            segments=(SegmentSpec("lan0", _noop_builder),),
            bridges=(BridgeSpec("lan0", "nowhere"),),
        )
        with pytest.raises(ValueError, match="unknown segment"):
            spec.validate()

    def test_cycle_rejected(self):
        names = ["lan0", "lan1", "lan2"]
        spec = TopologySpec(
            segments=tuple(SegmentSpec(n, _noop_builder) for n in names),
            bridges=(
                BridgeSpec("lan0", "lan1"),
                BridgeSpec("lan1", "lan2"),
                BridgeSpec("lan2", "lan0"),
            ),
        )
        with pytest.raises(ValueError, match="cycle"):
            spec.validate()

    def test_duplicate_link_ids_rejected(self):
        spec = TopologySpec(
            segments=tuple(
                SegmentSpec(n, _noop_builder) for n in ("a", "b", "c")
            ),
            bridges=(
                BridgeSpec("a", "b", link_id="x"),
                BridgeSpec("b", "c", link_id="x"),
            ),
        )
        with pytest.raises(ValueError, match="link ids"):
            spec.validate()

    def test_window_is_smallest_bridge_delay(self):
        spec = TopologySpec(
            segments=tuple(
                SegmentSpec(n, _noop_builder) for n in ("a", "b", "c")
            ),
            bridges=(
                BridgeSpec("a", "b", delay=5e-3),
                BridgeSpec("b", "c", delay=2e-3),
            ),
        )
        assert spec.window() == 2e-3

    def test_window_none_without_bridges(self):
        spec = TopologySpec(segments=(SegmentSpec("solo", _noop_builder),))
        assert spec.window() is None


class TestViaIndices:
    def test_chain_routing_sets(self):
        spec = _chain_spec(["lan0", "lan1", "lan2"])
        first, second = spec.bridges
        # From lan0, everything beyond the first bridge is reachable.
        assert spec.via_indices("lan0", first) == frozenset({1, 2})
        # From lan1 back over the first bridge, only lan0.
        assert spec.via_indices("lan1", first) == frozenset({0})
        assert spec.via_indices("lan1", second) == frozenset({2})
        assert spec.via_indices("lan2", second) == frozenset({0, 1})


class TestResolveBuilder:
    def test_callable_passes_through(self):
        assert resolve_builder(_noop_builder) is _noop_builder

    def test_registered_name(self):
        @register_builder("test-topology-noop")
        def builder(ctx):
            pass

        assert resolve_builder("test-topology-noop") is builder

    def test_module_colon_function_path(self):
        from repro.bench.topologies import flow_storm_segment

        resolved = resolve_builder(
            "repro.bench.topologies:flow_storm_segment"
        )
        assert resolved is flow_storm_segment

    def test_unknown_name_raises(self):
        with pytest.raises(LookupError):
            resolve_builder("no-such-builder")

    def test_missing_attribute_raises(self):
        with pytest.raises(LookupError):
            resolve_builder("repro.bench.topologies:nope")


class TestSegmentContext:
    def _runtime(self, builder, index=0, names=("lan0", "lan1"), seed=7):
        spec = _chain_spec(list(names), builder, seed=seed)
        return SegmentRuntime(spec, index)

    def test_host_names_carry_segment_prefix(self):
        seen = {}

        def builder(ctx):
            seen["host"] = ctx.host("rx")

        self._runtime(builder)
        assert seen["host"].name == "lan0:rx"

    def test_host_addresses_carry_segment_prefix(self):
        seen = {}

        def builder(ctx):
            seen["host"] = ctx.host("rx")
            seen["index"] = ctx.index

        self._runtime(builder, index=1)
        assert segment_index_of(seen["host"].address) == seen["index"] == 1

    def test_stations_allocate_upward(self):
        seen = {}

        def builder(ctx):
            seen["a"] = ctx.host("a")
            seen["b"] = ctx.host("b")

        self._runtime(builder)
        a = int.from_bytes(seen["a"].address, "big") & 0xFFFF
        b = int.from_bytes(seen["b"].address, "big") & 0xFFFF
        assert (a, b) == (1, 2)

    def test_bridge_station_range_reserved(self):
        def builder(ctx):
            with pytest.raises(ValueError, match="reserved"):
                ctx.host("bad", station=BRIDGE_STATION_BASE)

        self._runtime(builder)

    def test_address_of_other_segment(self):
        seen = {}

        def builder(ctx):
            seen["addr"] = ctx.address_of("lan1")

        self._runtime(builder, index=0)
        assert segment_index_of(seen["addr"]) == 1

    def test_seed_namespace_matches_derive_seed(self):
        seen = {}

        def builder(ctx):
            seen["seed"] = ctx.seed_for("chaos", 3)

        self._runtime(builder, seed=99)
        assert seen["seed"] == derive_seed(99, "segment", "lan0", "chaos", 3)

    def test_world_seed_derived_from_topology_seed(self):
        runtime = self._runtime(_noop_builder, seed=42)
        assert runtime.world.seed == derive_seed(42, "segment", "lan0")

    def test_endpoints_attached_for_each_bridge(self):
        runtime = self._runtime(_noop_builder, index=1, names=("a", "b", "c"))
        assert sorted(runtime.endpoints) == ["a~b", "b~c"]
        stations = [
            int.from_bytes(ep.address, "big") & 0xFFFF
            for ep in runtime.endpoints.values()
        ]
        assert all(s >= BRIDGE_STATION_BASE for s in stations)

    def test_wire_label_is_per_segment(self):
        runtime = self._runtime(_noop_builder)
        assert runtime.world.segment.wire_label == "wire:lan0"
