"""Every example script must actually run and produce its result."""

import importlib
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


@pytest.fixture(autouse=True)
def examples_on_path():
    sys.path.insert(0, str(EXAMPLES_DIR))
    yield
    sys.path.remove(str(EXAMPLES_DIR))


def run_example(name):
    module = importlib.import_module(name)
    return module.main()


def test_quickstart(capsys):
    message = run_example("quickstart")
    assert message == "hello from user space!"
    assert "bob received" in capsys.readouterr().out


def test_network_monitor(capsys):
    monitor = run_example("network_monitor")
    out = capsys.readouterr().out
    assert monitor.summary.packets > 5
    assert "udp" in monitor.summary.by_protocol
    assert "vmtp" in monitor.summary.by_protocol
    assert "rarp" in monitor.summary.by_protocol
    assert "traffic summary" in out


def test_rarp_server(capsys):
    results = run_example("rarp_server")
    assert sorted(results.values()) == ["10.0.0.10", "10.0.0.11", "10.0.0.12"]


def test_pup_file_transfer(capsys):
    rate = run_example("pup_file_transfer")
    assert 10 < rate < 200  # KB/s, same regime as the paper's 38
    assert "contents intact: True" in capsys.readouterr().out


def test_vmtp_demo(capsys):
    ratio = run_example("vmtp_demo")
    assert 1.4 <= ratio <= 3.0


def test_filter_playground(capsys):
    timings = run_example("filter_playground")
    out = capsys.readouterr().out
    assert "PUSHWORD+8" in out
    assert timings["compiled closure"] < timings["checked interpreter"]
