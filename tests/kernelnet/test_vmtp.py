"""Tests for kernel-resident VMTP: transactions, groups, duplicates."""


from repro.kernelnet import KernelVMTP, SockIoctl
from repro.sim import (
    InvalidArgument,
    Ioctl,
    Open,
    Read,
    SimTimeout,
    World,
    Write,
)


def vmtp_world(**kwargs):
    world = World(**kwargs)
    a = world.host("client-host")
    b = world.host("server-host")
    KernelVMTP(a)
    KernelVMTP(b)
    return world, a, b


def echo_server(limit=None):
    def body():
        fd = yield Open("vmtp")
        yield Ioctl(fd, SockIoctl.BIND, 35)
        count = 0
        while limit is None or count < limit:
            request = yield Read(fd)
            yield Write(fd, b"echo:" + request)
            count += 1

    return body()


class TestTransactions:
    def test_small_round_trip(self):
        world, a, b = vmtp_world()
        b.spawn("server", echo_server())

        def client():
            fd = yield Open("vmtp")
            yield Ioctl(fd, SockIoctl.CONNECT, (b.address, 35))
            yield Write(fd, b"ping")
            return (yield Read(fd))

        proc = a.spawn("client", client())
        world.run_until_done(proc)
        assert proc.result == b"echo:ping"

    def test_multi_segment_both_directions(self):
        world, a, b = vmtp_world()
        b.spawn("server", echo_server())
        request = bytes(range(256)) * 30  # 7680 bytes: 8 segments

        def client():
            fd = yield Open("vmtp")
            yield Ioctl(fd, SockIoctl.CONNECT, (b.address, 35))
            yield Write(fd, request)
            return (yield Read(fd))

        proc = a.spawn("client", client())
        world.run_until_done(proc)
        assert proc.result == b"echo:" + request

    def test_sequential_transactions(self):
        world, a, b = vmtp_world()
        b.spawn("server", echo_server())

        def client():
            fd = yield Open("vmtp")
            yield Ioctl(fd, SockIoctl.CONNECT, (b.address, 35))
            replies = []
            for index in range(5):
                yield Write(fd, str(index).encode())
                replies.append((yield Read(fd)))
            return replies

        proc = a.spawn("client", client())
        world.run_until_done(proc)
        assert proc.result == [f"echo:{i}".encode() for i in range(5)]

    def test_two_clients_one_server(self):
        world, a, b = vmtp_world()
        c = world.host("second-client")
        KernelVMTP(c)
        b.spawn("server", echo_server())

        def client(host, tag):
            def body():
                fd = yield Open("vmtp")
                yield Ioctl(fd, SockIoctl.CONNECT, (b.address, 35))
                yield Write(fd, tag)
                return (yield Read(fd))

            return body()

        one = a.spawn("one", client(a, b"one"))
        two = c.spawn("two", client(c, b"two"))
        world.run_until_done(one, two)
        assert one.result == b"echo:one"
        assert two.result == b"echo:two"


class TestReliability:
    def test_lost_request_retransmitted(self):
        world, a, b = vmtp_world()
        world.segment.drop_filter = lambda frame, n: n == 1  # lose request
        b.spawn("server", echo_server())

        def client():
            fd = yield Open("vmtp")
            yield Ioctl(fd, SockIoctl.CONNECT, (b.address, 35))
            yield Write(fd, b"retry me")
            return (yield Read(fd))

        proc = a.spawn("client", client())
        world.run_until_done(proc)
        assert proc.result == b"echo:retry me"

    def test_lost_response_segment_selectively_refetched(self):
        world, a, b = vmtp_world()
        # Response segments start at frame 2 (1 = request); lose one.
        world.segment.drop_filter = lambda frame, n: n == 3

        def server():
            fd = yield Open("vmtp")
            yield Ioctl(fd, SockIoctl.BIND, 35)
            while True:
                yield Read(fd)
                yield Write(fd, bytes(5000))  # 5 segments

        b.spawn("server", server())

        def client():
            fd = yield Open("vmtp")
            yield Ioctl(fd, SockIoctl.CONNECT, (b.address, 35))
            yield Write(fd, b"get")
            return (yield Read(fd))

        proc = a.spawn("client", client())
        world.run_until_done(proc)
        assert proc.result == bytes(5000)

    def test_duplicate_request_served_from_cache(self):
        """The server process must not see the retried transaction."""
        world, a, b = vmtp_world()
        # Lose the (only) response segment once so the client retries.
        world.segment.drop_filter = lambda frame, n: n == 2
        served = []

        def server():
            fd = yield Open("vmtp")
            yield Ioctl(fd, SockIoctl.BIND, 35)
            while True:
                request = yield Read(fd)
                served.append(request)
                yield Write(fd, b"only once")

        b.spawn("server", server())

        def client():
            fd = yield Open("vmtp")
            yield Ioctl(fd, SockIoctl.CONNECT, (b.address, 35))
            yield Write(fd, b"req")
            return (yield Read(fd))

        proc = a.spawn("client", client())
        world.run_until_done(proc)
        assert proc.result == b"only once"
        assert served == [b"req"]

    def test_unreachable_server_times_out(self):
        world, a, b = vmtp_world()
        world.segment.loss_rate = 0.0
        world.segment.drop_filter = lambda frame, n: True  # black hole

        def client():
            fd = yield Open("vmtp")
            yield Ioctl(fd, SockIoctl.CONNECT, (b.address, 35))
            yield Write(fd, b"into the void")
            try:
                yield Read(fd)
            except SimTimeout:
                return "timed out"

        proc = a.spawn("client", client())
        world.run_until_done(proc)
        assert proc.result == "timed out"


class TestSocketSurface:
    def test_role_required_before_io(self):
        world, a, _ = vmtp_world()

        def body():
            fd = yield Open("vmtp")
            try:
                yield Write(fd, b"x")
            except InvalidArgument:
                return "role first"

        proc = a.spawn("p", body())
        world.run_until_done(proc)
        assert proc.result == "role first"

    def test_server_write_needs_pending_request(self):
        world, a, _ = vmtp_world()

        def body():
            fd = yield Open("vmtp")
            yield Ioctl(fd, SockIoctl.BIND, 35)
            try:
                yield Write(fd, b"unprompted")
            except InvalidArgument:
                return "no request"

        proc = a.spawn("p", body())
        world.run_until_done(proc)
        assert proc.result == "no request"

    def test_server_id_collision(self):
        world, a, _ = vmtp_world()

        def body():
            fd1 = yield Open("vmtp")
            yield Ioctl(fd1, SockIoctl.BIND, 35)
            fd2 = yield Open("vmtp")
            try:
                yield Ioctl(fd2, SockIoctl.BIND, 35)
            except InvalidArgument:
                return "in use"

        proc = a.spawn("p", body())
        world.run_until_done(proc)
        assert proc.result == "in use"
