"""Tests for the kernel TCP: handshake, streams, loss recovery."""


from repro.kernelnet import KernelTCP, SockIoctl, link_stacks
from repro.sim import Close, Ioctl, Open, Read, World, Write


def tcp_world(**world_kwargs):
    world = World(**world_kwargs)
    a = world.host("a")
    b = world.host("b")
    stack_a = a.install_kernel_stack()
    stack_b = b.install_kernel_stack()
    link_stacks(stack_a, stack_b)
    tcp_a = KernelTCP(stack_a)
    tcp_b = KernelTCP(stack_b)
    return world, a, b, stack_a, stack_b, tcp_a, tcp_b


def stream_pair(world, a, b, stack_b, payload, *, mss=None, chunk=4096):
    def server():
        fd = yield Open("tcp")
        yield Ioctl(fd, SockIoctl.BIND, 9)
        received = bytearray()
        while True:
            data = yield Read(fd)
            if not data:
                return bytes(received)
            received.extend(data)

    def client():
        fd = yield Open("tcp")
        if mss is not None:
            yield Ioctl(fd, SockIoctl.SET_MSS, mss)
        yield Ioctl(fd, SockIoctl.CONNECT, (stack_b.ip_address, 9))
        for offset in range(0, len(payload), chunk):
            yield Write(fd, payload[offset : offset + chunk])
        yield Close(fd)
        return "sent"

    sink = b.spawn("sink", server())
    source = a.spawn("source", client())
    world.run_until_done(sink, source)
    return sink.result


PAYLOAD = bytes(i & 0xFF for i in range(40_000))


class TestStreamIntegrity:
    def test_clean_link(self):
        world, a, b, _, stack_b, *_ = tcp_world()
        assert stream_pair(world, a, b, stack_b, PAYLOAD) == PAYLOAD

    def test_small_mss(self):
        world, a, b, _, stack_b, *_ = tcp_world()
        received = stream_pair(world, a, b, stack_b, PAYLOAD[:8000], mss=514)
        assert received == PAYLOAD[:8000]

    def test_lossy_link(self):
        world, a, b, _, stack_b, tcp_a, _ = tcp_world(loss_rate=0.08, seed=3)
        received = stream_pair(world, a, b, stack_b, PAYLOAD[:20_000])
        assert received == PAYLOAD[:20_000]

    def test_duplicating_link(self):
        world, a, b, _, stack_b, *_ = tcp_world(duplicate_rate=0.2, seed=5)
        received = stream_pair(world, a, b, stack_b, PAYLOAD[:10_000])
        assert received == PAYLOAD[:10_000]

    def test_retransmissions_happen_under_loss(self):
        world, a, b, _, stack_b, tcp_a, tcp_b = tcp_world(loss_rate=0.1, seed=11)
        stream_pair(world, a, b, stack_b, PAYLOAD[:10_000])
        # Ports may be released after teardown, so check the segment's
        # loss counter: the stream only completes if the endpoints
        # retransmitted through those losses.
        assert world.segment.frames_lost > 0

    def test_empty_stream(self):
        world, a, b, _, stack_b, *_ = tcp_world()
        assert stream_pair(world, a, b, stack_b, b"") == b""

    def test_deterministic(self):
        def run():
            world, a, b, _, stack_b, *_ = tcp_world(loss_rate=0.05, seed=9)
            stream_pair(world, a, b, stack_b, PAYLOAD[:5000])
            return world.now

        assert run() == run()


class TestSegmentSizes:
    def test_default_mss_yields_1078_byte_packets(self):
        """§6.4: "TCP in 4.3BSD uses 1078-byte packets"."""
        world, a, b, _, stack_b, *_ = tcp_world()
        sizes = []
        original = world.segment.transmit

        def spy(sender, frame):
            sizes.append(len(frame))
            return original(sender, frame)

        world.segment.transmit = spy
        stream_pair(world, a, b, stack_b, PAYLOAD[:8192])
        assert max(sizes) == 1078

    def test_small_mss_yields_568_byte_packets(self):
        world, a, b, _, stack_b, *_ = tcp_world()
        sizes = []
        original = world.segment.transmit

        def spy(sender, frame):
            sizes.append(len(frame))
            return original(sender, frame)

        world.segment.transmit = spy
        stream_pair(world, a, b, stack_b, PAYLOAD[:4112], mss=514)
        assert max(sizes) == 568


class TestFlowControl:
    def test_slow_reader_stalls_sender_without_loss(self):
        world, a, b, _, stack_b, *_ = tcp_world()
        from repro.sim import Sleep

        def server():
            fd = yield Open("tcp")
            yield Ioctl(fd, SockIoctl.BIND, 9)
            received = bytearray()
            while True:
                yield Sleep(0.05)  # lazy reader
                data = yield Read(fd)
                if not data:
                    return bytes(received)
                received.extend(data)

        data = PAYLOAD[:20_000]

        def client():
            fd = yield Open("tcp")
            yield Ioctl(fd, SockIoctl.CONNECT, (stack_b.ip_address, 9))
            for offset in range(0, len(data), 4096):
                yield Write(fd, data[offset : offset + 4096])
            yield Close(fd)

        sink = b.spawn("sink", server())
        a.spawn("source", client())
        world.run_until_done(sink)
        assert sink.result == data


class TestHandshake:
    def test_connect_completes_only_after_synack(self):
        world, a, b, _, stack_b, *_ = tcp_world()

        def server():
            fd = yield Open("tcp")
            yield Ioctl(fd, SockIoctl.BIND, 9)
            yield Read(fd)

        def client():
            fd = yield Open("tcp")
            yield Ioctl(fd, SockIoctl.CONNECT, (stack_b.ip_address, 9))
            handshake_done = world.now
            yield Write(fd, b"x")
            yield Close(fd)
            return handshake_done

        b.spawn("server", server())
        source = a.spawn("client", client())
        world.run_until_done(source)
        assert source.result > 0  # had to wait for a round trip

    def test_syn_retransmitted_through_loss(self):
        world, a, b, _, stack_b, *_ = tcp_world()
        # Kill the first SYN specifically.
        world.segment.drop_filter = lambda frame, n: n == 1

        def server():
            fd = yield Open("tcp")
            yield Ioctl(fd, SockIoctl.BIND, 9)
            return (yield Read(fd))

        def client():
            fd = yield Open("tcp")
            yield Ioctl(fd, SockIoctl.CONNECT, (stack_b.ip_address, 9))
            yield Write(fd, b"eventually")
            yield Close(fd)

        sink = b.spawn("server", server())
        a.spawn("client", client())
        world.run_until_done(sink)
        assert sink.result == b"eventually"
