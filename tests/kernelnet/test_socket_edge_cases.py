"""Edge cases in the kernel socket layer: overflow, pipelining, misuse."""


from repro.kernelnet import KernelUDP, KernelVMTP, SockIoctl, link_stacks
from repro.kernelnet.sockets import BufferedSocketHandle
from repro.sim import Ioctl, Open, Read, Sleep, World, Write


class TestUDPReceiveQueue:
    def test_overflow_drops_and_counts(self):
        """An unread datagram socket eventually drops (bounded queue)."""
        world = World()
        a = world.host("a")
        b = world.host("b")
        stack_a = a.install_kernel_stack()
        stack_b = b.install_kernel_stack()
        link_stacks(stack_a, stack_b)
        KernelUDP(stack_a)
        KernelUDP(stack_b)
        limit = BufferedSocketHandle.RECEIVE_QUEUE_LIMIT
        total = limit + 10
        handle_box = {}

        def lazy_server():
            fd = yield Open("udp")
            yield Ioctl(fd, SockIoctl.BIND, 7)
            handle_box["handle"] = server_proc.fds[fd]
            yield Sleep(5.0)  # never reads in time

        def client():
            fd = yield Open("udp")
            yield Ioctl(fd, SockIoctl.CONNECT, (stack_b.ip_address, 7))
            for _ in range(total):
                yield Write(fd, b"flood")

        server_proc = b.spawn("server", lazy_server())
        sender = a.spawn("client", client())
        world.run_until_done(sender)
        world.run(until=world.now + 0.5)
        handle = handle_box["handle"]
        assert handle.received_messages == limit
        assert handle.drops == total - limit


class TestVMTPPipelining:
    def test_second_write_supersedes_first(self):
        """A new transaction abandons the old one; its late response is
        ignored rather than delivered to the wrong read."""
        world = World()
        a = world.host("a")
        b = world.host("b")
        KernelVMTP(a)
        KernelVMTP(b)
        # Make the first response crawl: drop its only segment once so
        # it arrives via retry, after the second transaction started.
        state = {"dropped": False}

        def drop(frame, n):
            if n == 2 and not state["dropped"]:
                state["dropped"] = True
                return True
            return False

        world.segment.drop_filter = drop

        def server():
            fd = yield Open("vmtp")
            yield Ioctl(fd, SockIoctl.BIND, 35)
            while True:
                request = yield Read(fd)
                yield Write(fd, b"reply to " + request)

        b.spawn("server", server())

        def client():
            fd = yield Open("vmtp")
            yield Ioctl(fd, SockIoctl.CONNECT, (b.address, 35))
            yield Write(fd, b"first")
            # Abandon it immediately; start a new transaction.
            yield Write(fd, b"second")
            response = yield Read(fd)
            return response

        proc = a.spawn("client", client())
        world.run_until_done(proc)
        assert proc.result == b"reply to second"


class TestBufferedSocketContract:
    def test_stream_mixin_coalesces(self):
        from repro.kernelnet.sockets import StreamReadMixin

        class FakeStream(StreamReadMixin, BufferedSocketHandle):
            pass

        world = World()
        host = world.host("h")
        sock = FakeStream(host.kernel)
        sock._deposit(b"abc")
        sock._deposit(b"defg")
        assert sock._take(5) == b"abcde"
        assert sock._take(None) == b"fg"

    def test_datagram_take_is_one_message(self):
        world = World()
        host = world.host("h")
        sock = BufferedSocketHandle(host.kernel)
        sock._deposit(b"one")
        sock._deposit(b"two")
        assert sock._take(None) == b"one"
        assert sock._take(None) == b"two"

    def test_poll_readable(self):
        world = World()
        host = world.host("h")
        sock = BufferedSocketHandle(host.kernel)
        assert not sock.poll_readable()
        sock._deposit(b"x")
        assert sock.poll_readable()
        sock._take(None)
        sock._buffered_bytes = 0
        assert not sock.poll_readable()
        sock._mark_eof()
        assert sock.poll_readable()
