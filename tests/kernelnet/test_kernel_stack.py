"""Tests for the kernel-resident stack: IP dispatch, UDP, sockets."""

import pytest

from repro.kernelnet import (
    KernelUDP,
    SockIoctl,
    link_stacks,
)
from repro.protocols.ip import format_ip, ip_address
from repro.sim import (
    Close,
    InvalidArgument,
    Ioctl,
    Open,
    Read,
    Sleep,
    World,
    Write,
)


def udp_world():
    world = World()
    a = world.host("a")
    b = world.host("b")
    stack_a = a.install_kernel_stack()
    stack_b = b.install_kernel_stack()
    link_stacks(stack_a, stack_b)
    KernelUDP(stack_a)
    KernelUDP(stack_b)
    return world, a, b, stack_a, stack_b


class TestStackBasics:
    def test_default_ip_derived_from_station(self):
        world = World()
        host = world.host("h")
        stack = host.install_kernel_stack()
        assert format_ip(stack.ip_address) == "10.0.0.1"

    def test_explicit_ip(self):
        world = World()
        host = world.host("h")
        stack = host.install_kernel_stack(ip_address=ip_address("192.168.1.5"))
        assert format_ip(stack.ip_address) == "192.168.1.5"

    def test_no_route_raises(self):
        from repro.protocols.ip import IPError

        world = World()
        host = world.host("h")
        stack = host.install_kernel_stack()
        with pytest.raises(IPError, match="no route"):
            stack.send(ip_address("10.9.9.9"), 17, b"")

    def test_duplicate_transport_registration(self):
        world = World()
        host = world.host("h")
        stack = host.install_kernel_stack()
        KernelUDP(stack)
        with pytest.raises(ValueError):
            KernelUDP(stack, device_name="udp2")


class TestKernelUDP:
    def test_datagram_roundtrip(self):
        world, a, b, stack_a, stack_b = udp_world()

        def server():
            fd = yield Open("udp")
            yield Ioctl(fd, SockIoctl.BIND, 53)
            datagram = yield Read(fd)
            return datagram

        def client():
            fd = yield Open("udp")
            yield Ioctl(fd, SockIoctl.CONNECT, (stack_b.ip_address, 53))
            yield Write(fd, b"question")

        srv = b.spawn("server", server())
        a.spawn("client", client())
        world.run_until_done(srv)
        assert srv.result == b"question"

    def test_message_boundaries_preserved(self):
        world, a, b, stack_a, stack_b = udp_world()

        def server():
            fd = yield Open("udp")
            yield Ioctl(fd, SockIoctl.BIND, 53)
            first = yield Read(fd)
            second = yield Read(fd)
            return first, second

        def client():
            fd = yield Open("udp")
            yield Ioctl(fd, SockIoctl.CONNECT, (stack_b.ip_address, 53))
            yield Write(fd, b"one")
            yield Write(fd, b"two")

        srv = b.spawn("server", server())
        a.spawn("client", client())
        world.run_until_done(srv)
        assert srv.result == (b"one", b"two")

    def test_unbound_port_drops(self):
        world, a, b, stack_a, stack_b = udp_world()

        def client():
            fd = yield Open("udp")
            yield Ioctl(fd, SockIoctl.CONNECT, (stack_b.ip_address, 99))
            yield Write(fd, b"void")

        proc = a.spawn("client", client())
        world.run_until_done(proc)
        world.run()

    def test_write_requires_connect(self):
        world, a, _, _, _ = udp_world()

        def client():
            fd = yield Open("udp")
            try:
                yield Write(fd, b"x")
            except InvalidArgument:
                return "einval"

        proc = a.spawn("client", client())
        world.run_until_done(proc)
        assert proc.result == "einval"

    def test_port_collision(self):
        world, a, _, _, _ = udp_world()

        def body():
            fd1 = yield Open("udp")
            yield Ioctl(fd1, SockIoctl.BIND, 7)
            fd2 = yield Open("udp")
            try:
                yield Ioctl(fd2, SockIoctl.BIND, 7)
            except InvalidArgument:
                return "in use"

        proc = a.spawn("p", body())
        world.run_until_done(proc)
        assert proc.result == "in use"

    def test_port_released_on_close(self):
        world, a, _, _, _ = udp_world()

        def body():
            fd1 = yield Open("udp")
            yield Ioctl(fd1, SockIoctl.BIND, 7)
            yield Close(fd1)
            fd2 = yield Open("udp")
            yield Ioctl(fd2, SockIoctl.BIND, 7)
            return "rebound"

        proc = a.spawn("p", body())
        world.run_until_done(proc)
        assert proc.result == "rebound"


class TestKernelResidency:
    def test_udp_packet_costs_no_context_switch_when_ready(self):
        """Kernel protocols process packets at interrupt level; the
        reader crosses once per datagram, not per protocol event."""
        world, a, b, stack_a, stack_b = udp_world()

        def server():
            fd = yield Open("udp")
            yield Ioctl(fd, SockIoctl.BIND, 53)
            yield Sleep(0.2)  # let several datagrams accumulate
            baseline = b.stats.snapshot()
            for _ in range(5):
                yield Read(fd)
            return b.stats.delta(baseline)

        def client():
            fd = yield Open("udp")
            yield Ioctl(fd, SockIoctl.CONNECT, (stack_b.ip_address, 53))
            for _ in range(5):
                yield Write(fd, b"dgram")

        srv = b.spawn("server", server())
        a.spawn("client", client())
        world.run_until_done(srv)
        delta = srv.result
        assert delta.syscalls == 5       # the reads themselves
        assert delta.context_switches == 0  # data was ready: no blocking
