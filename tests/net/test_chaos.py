"""Tests for the chaos (fault-injection) model on the segment."""

import pytest

from repro.net.ethernet import ETHERNET_10MB
from repro.net.medium import ChaosConfig, EthernetSegment
from repro.net.nic import NIC
from repro.sim.clock import EventScheduler


def make_segment(**kwargs):
    scheduler = EventScheduler()
    segment = EthernetSegment(scheduler, ETHERNET_10MB, **kwargs)
    return scheduler, segment


def make_nic(segment, station, **kwargs):
    nic = NIC(station.to_bytes(6, "big"), ETHERNET_10MB, **kwargs)
    segment.attach(nic)
    received = []

    class FakeKernel:
        def __init__(self):
            self.scheduler = segment.scheduler

        def network_input(self, nic, frame):
            received.append((segment.scheduler.now, frame))

    nic.kernel = FakeKernel()
    return nic, received


def frame_to(station, payload=b"chaos payload bytes"):
    return ETHERNET_10MB.frame(
        station.to_bytes(6, "big"), (99).to_bytes(6, "big"), 0x0900, payload
    )


class TestChaosConfig:
    def test_rates_validated(self):
        with pytest.raises(ValueError):
            ChaosConfig(loss_rate=1.0)          # losing everything: no
        with pytest.raises(ValueError):
            ChaosConfig(loss_rate=-0.1)
        with pytest.raises(ValueError):
            ChaosConfig(burst_loss_rate=1.0)
        with pytest.raises(ValueError):
            ChaosConfig(reorder_rate=1.5)
        with pytest.raises(ValueError):
            ChaosConfig(reorder_jitter=-1e-3)
        with pytest.raises(ValueError):
            ChaosConfig(corrupt_bits=0)
        # Duplicating everything is a legal stress mode.
        ChaosConfig(duplicate_rate=1.0)

    def test_expected_loss_rate_uniform(self):
        assert ChaosConfig(loss_rate=0.25).expected_loss_rate() == 0.25

    def test_expected_loss_rate_blends_burst_states(self):
        config = ChaosConfig(
            loss_rate=0.0,
            burst_enter_rate=0.1,
            burst_exit_rate=0.3,
            burst_loss_rate=0.8,
        )
        # BAD occupancy = 0.1 / 0.4 = 0.25; loss = 0.25 * 0.8.
        assert config.expected_loss_rate() == pytest.approx(0.2)


class TestChaosInjection:
    def test_burst_loss_loses_some_not_all(self):
        scheduler, segment = make_segment(seed=3)
        segment.set_chaos(
            ChaosConfig(
                burst_enter_rate=0.2,
                burst_exit_rate=0.3,
                burst_loss_rate=0.99,
            )
        )
        sender, _ = make_nic(segment, 1)
        _, got = make_nic(segment, 2)
        for _ in range(200):
            sender.transmit(frame_to(2))
        scheduler.run()
        assert 0 < len(got) < 200
        assert segment.frames_lost == 200 - len(got)

    def test_corruption_damages_payload_not_header(self):
        scheduler, segment = make_segment(seed=1)
        segment.set_chaos(ChaosConfig(corrupt_rate=1.0, corrupt_bits=2))
        sender, _ = make_nic(segment, 1)
        _, got = make_nic(segment, 2)
        original = frame_to(2)
        sender.transmit(original)
        scheduler.run()
        [(_, delivered)] = got
        assert delivered != original
        assert segment.frames_corrupted == 1
        header = ETHERNET_10MB.header_length
        assert delivered[:header] == original[:header]
        assert delivered[header:] != original[header:]

    def test_reorder_jitter_delays_delivery(self):
        def arrival(chaos):
            scheduler, segment = make_segment(seed=2)
            if chaos:
                segment.set_chaos(
                    ChaosConfig(reorder_rate=1.0, reorder_jitter=0.5)
                )
            sender, _ = make_nic(segment, 1)
            _, got = make_nic(segment, 2)
            sender.transmit(frame_to(2))
            scheduler.run()
            [(when, _)] = got
            return when, segment.frames_reordered

        clean_time, _ = arrival(chaos=False)
        jittered_time, reordered = arrival(chaos=True)
        assert reordered == 1
        assert jittered_time > clean_time

    def test_chaos_duplicate_is_distinct_later_event(self):
        """Regression: duplicates used to be scheduled for the same
        instant as the original, so no receive path could ever observe
        them out of order."""
        scheduler, segment = make_segment(seed=4)
        segment.set_chaos(ChaosConfig(duplicate_rate=1.0))
        sender, _ = make_nic(segment, 1)
        _, got = make_nic(segment, 2)
        original = frame_to(2)
        sender.transmit(original)
        scheduler.run()
        assert len(got) == 2
        (first_time, first), (second_time, second) = got
        assert first == second == original
        wire_time = ETHERNET_10MB.transmission_time(len(original))
        assert second_time - first_time >= wire_time
        assert segment.frames_duplicated == 1

    def test_legacy_duplicate_is_distinct_later_event(self):
        scheduler, segment = make_segment(duplicate_rate=1.0)
        sender, _ = make_nic(segment, 1)
        _, got = make_nic(segment, 2)
        sender.transmit(frame_to(2))
        scheduler.run()
        assert len(got) == 2
        (first_time, _), (second_time, _) = got
        wire_time = ETHERNET_10MB.transmission_time(len(frame_to(2)))
        assert second_time - first_time >= wire_time

    def test_same_seed_replays_exactly(self):
        def run(seed):
            scheduler, segment = make_segment(seed=seed)
            segment.set_chaos(
                ChaosConfig(
                    loss_rate=0.2,
                    corrupt_rate=0.2,
                    reorder_rate=0.2,
                    duplicate_rate=0.2,
                )
            )
            sender, _ = make_nic(segment, 1)
            _, got = make_nic(segment, 2)
            for n in range(60):
                sender.transmit(frame_to(2, payload=bytes([n]) * 20))
            scheduler.run()
            return [(round(when, 9), frame) for when, frame in got]

        assert run(12) == run(12)

    def test_per_sender_override_is_asymmetric(self):
        scheduler, segment = make_segment(seed=6)
        lossy, _ = make_nic(segment, 1)
        clean, _ = make_nic(segment, 2)
        _, got = make_nic(segment, 3, promiscuous=True)
        segment.set_chaos(
            ChaosConfig(loss_rate=0.99), sender=lossy.address
        )
        for _ in range(50):
            lossy.transmit(frame_to(3))
            clean.transmit(frame_to(3))
        scheduler.run()
        # All of the clean station's frames arrive; almost none of the
        # lossy station's do.
        assert segment.frames_lost > 40
        assert len(got) >= 50

    def test_per_sender_streams_are_independent(self):
        """One direction's traffic volume must not perturb another's
        fault pattern: each sender draws from its own generator."""

        def lost_from_a(extra_b_frames):
            scheduler, segment = make_segment(seed=8)
            segment.set_chaos(ChaosConfig(loss_rate=0.5))
            a, _ = make_nic(segment, 1)
            b, _ = make_nic(segment, 2)
            _, got = make_nic(segment, 3, promiscuous=True)
            for n in range(30):
                a.transmit(frame_to(3, payload=b"from-a" + bytes([n])))
                for _ in range(extra_b_frames):
                    b.transmit(frame_to(3, payload=b"from-b"))
            scheduler.run()
            return [
                frame for _, frame in got if b"from-a" in frame
            ]

        assert lost_from_a(0) == lost_from_a(3)

    def test_set_chaos_none_clears(self):
        scheduler, segment = make_segment(seed=9)
        segment.set_chaos(ChaosConfig(loss_rate=0.99))
        segment.set_chaos(None)
        sender, _ = make_nic(segment, 1)
        _, got = make_nic(segment, 2)
        for _ in range(20):
            sender.transmit(frame_to(2))
        scheduler.run()
        assert len(got) == 20
