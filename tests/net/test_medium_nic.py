"""Tests for the shared segment and the NICs."""

import pytest

from repro.net.ethernet import ETHERNET_10MB
from repro.net.medium import EthernetSegment
from repro.net.nic import NIC
from repro.sim.clock import EventScheduler


def make_segment(**kwargs):
    scheduler = EventScheduler()
    segment = EthernetSegment(scheduler, ETHERNET_10MB, **kwargs)
    return scheduler, segment


def make_nic(segment, station, **kwargs):
    nic = NIC(
        station.to_bytes(6, "big"), ETHERNET_10MB, **kwargs
    )
    segment.attach(nic)
    received = []
    # Stand-in kernel: record frames instead of interrupting.
    class FakeKernel:
        def __init__(self):
            self.scheduler = segment.scheduler

        def network_input(self, nic, frame):
            received.append(frame)

    nic.kernel = FakeKernel()
    return nic, received


def frame_to(station, payload=b"data"):
    return ETHERNET_10MB.frame(
        station.to_bytes(6, "big"), (99).to_bytes(6, "big"), 0x0900, payload
    )


class TestDelivery:
    def test_addressed_frame_delivered(self):
        scheduler, segment = make_segment()
        sender, _ = make_nic(segment, 1)
        receiver, got = make_nic(segment, 2)
        sender.transmit(frame_to(2))
        scheduler.run()
        assert len(got) == 1

    def test_other_stations_ignore(self):
        scheduler, segment = make_segment()
        sender, _ = make_nic(segment, 1)
        receiver, got = make_nic(segment, 2)
        bystander, other = make_nic(segment, 3)
        sender.transmit(frame_to(2))
        scheduler.run()
        assert got and not other
        assert bystander.frames_ignored == 1

    def test_broadcast_reaches_everyone_but_sender(self):
        scheduler, segment = make_segment()
        sender, sender_got = make_nic(segment, 1)
        _, got_a = make_nic(segment, 2)
        _, got_b = make_nic(segment, 3)
        frame = ETHERNET_10MB.frame(
            ETHERNET_10MB.broadcast, sender.address, 0x0900, b"hello all"
        )
        sender.transmit(frame)
        scheduler.run()
        assert got_a and got_b and not sender_got

    def test_promiscuous_sees_everything(self):
        scheduler, segment = make_segment()
        sender, _ = make_nic(segment, 1)
        _, got = make_nic(segment, 9, promiscuous=True)
        sender.transmit(frame_to(2))
        scheduler.run()
        assert len(got) == 1

    def test_serialization_delay(self):
        scheduler, segment = make_segment()
        sender, _ = make_nic(segment, 1)
        _, got = make_nic(segment, 2)
        sender.transmit(frame_to(2, payload=bytes(1236)))  # 1250B frame
        scheduler.run()
        # 1 ms of wire time plus propagation.
        assert scheduler.now >= 1e-3

    def test_cable_is_half_duplex(self):
        scheduler, segment = make_segment()
        a, _ = make_nic(segment, 1)
        b, _ = make_nic(segment, 2)
        _, got = make_nic(segment, 3)
        a.transmit(frame_to(3, payload=bytes(1236)))
        b.transmit(frame_to(3, payload=bytes(1236)))
        scheduler.run()
        # Two back-to-back 1ms transmissions serialize.
        assert scheduler.now >= 2e-3
        assert len(got) == 2


class TestLossInjection:
    def test_loss_rate_drops_some(self):
        scheduler, segment = make_segment(loss_rate=0.5, seed=7)
        sender, _ = make_nic(segment, 1)
        _, got = make_nic(segment, 2)
        for _ in range(40):
            sender.transmit(frame_to(2))
        scheduler.run()
        assert 0 < len(got) < 40
        assert segment.frames_lost == 40 - len(got)

    def test_deterministic_with_seed(self):
        def run(seed):
            scheduler, segment = make_segment(loss_rate=0.3, seed=seed)
            sender, _ = make_nic(segment, 1)
            _, got = make_nic(segment, 2)
            for _ in range(30):
                sender.transmit(frame_to(2))
            scheduler.run()
            return len(got)

        assert run(5) == run(5)

    def test_drop_filter(self):
        scheduler, segment = make_segment()
        segment.drop_filter = lambda frame, n: n == 2  # kill 2nd frame
        sender, _ = make_nic(segment, 1)
        _, got = make_nic(segment, 2)
        for _ in range(3):
            sender.transmit(frame_to(2))
        scheduler.run()
        assert len(got) == 2

    def test_duplication(self):
        scheduler, segment = make_segment(duplicate_rate=1.0)
        sender, _ = make_nic(segment, 1)
        _, got = make_nic(segment, 2)
        sender.transmit(frame_to(2))
        scheduler.run()
        assert len(got) == 2

    def test_bad_loss_rate(self):
        with pytest.raises(ValueError):
            make_segment(loss_rate=1.0)


class TestNICQueue:
    def test_input_queue_overflow_drops_and_counts(self):
        scheduler, segment = make_segment()
        sender, _ = make_nic(segment, 1)
        receiver = NIC((2).to_bytes(6, "big"), ETHERNET_10MB, input_queue_limit=2)
        segment.attach(receiver)
        # No kernel attached: the queue cannot drain.
        for _ in range(5):
            receiver.receive(frame_to(2))
        assert receiver.frames_received == 2
        assert receiver.frames_dropped == 3

    def test_address_length_checked(self):
        with pytest.raises(ValueError):
            NIC(b"\x01", ETHERNET_10MB)
