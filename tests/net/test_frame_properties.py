"""Property tests for Ethernet framing on both links."""

from hypothesis import given, strategies as st

from repro.net.ethernet import ETHERNET_3MB, ETHERNET_10MB

u16 = st.integers(0, 0xFFFF)


class TestTenMegabitProperties:
    addresses = st.binary(min_size=6, max_size=6)
    payloads = st.binary(max_size=1400)

    @given(addresses, addresses, u16, payloads)
    def test_header_roundtrip(self, dst, src, ethertype, payload):
        frame = ETHERNET_10MB.frame(dst, src, ethertype, payload)
        assert ETHERNET_10MB.destination_of(frame) == dst
        assert ETHERNET_10MB.source_of(frame) == src
        assert ETHERNET_10MB.ethertype_of(frame) == ethertype
        assert ETHERNET_10MB.payload_of(frame) == payload

    @given(payloads)
    def test_frame_length_is_header_plus_payload(self, payload):
        frame = ETHERNET_10MB.frame(b"\x01" * 6, b"\x02" * 6, 0, payload)
        assert len(frame) == ETHERNET_10MB.header_length + len(payload)

    @given(st.integers(1, 1514))
    def test_transmission_time_monotone(self, nbytes):
        assert (
            ETHERNET_10MB.transmission_time(nbytes)
            < ETHERNET_10MB.transmission_time(nbytes + 1)
        )


class TestThreeMegabitProperties:
    addresses = st.binary(min_size=1, max_size=1)
    payloads = st.binary(max_size=554)

    @given(addresses, addresses, u16, payloads)
    def test_header_roundtrip(self, dst, src, ethertype, payload):
        frame = ETHERNET_3MB.frame(dst, src, ethertype, payload)
        assert ETHERNET_3MB.destination_of(frame) == dst
        assert ETHERNET_3MB.source_of(frame) == src
        assert ETHERNET_3MB.ethertype_of(frame) == ethertype
        assert ETHERNET_3MB.payload_of(frame) == payload

    @given(payloads)
    def test_pup_view_sees_type_in_word_one(self, payload):
        """Figure 3-7's framing invariant, for any payload."""
        from repro.core.words import get_word

        frame = ETHERNET_3MB.frame(b"\x05", b"\x07", 2, payload)
        assert get_word(frame, 1) == 2
