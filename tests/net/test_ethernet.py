"""Tests for Ethernet framing on both links."""

import pytest

from repro.net.ethernet import ETHERNET_3MB, ETHERNET_10MB, FrameError


class TestTenMegabit:
    link = ETHERNET_10MB

    def test_frame_roundtrip(self):
        dst, src = b"\x01" * 6, b"\x02" * 6
        frame = self.link.frame(dst, src, 0x0800, b"payload")
        assert self.link.destination_of(frame) == dst
        assert self.link.source_of(frame) == src
        assert self.link.ethertype_of(frame) == 0x0800
        assert self.link.payload_of(frame) == b"payload"

    def test_header_is_14_bytes(self):
        assert self.link.header_length == 14

    def test_mtu_enforced(self):
        with pytest.raises(FrameError):
            self.link.frame(b"\x01" * 6, b"\x02" * 6, 0, bytes(1501))

    def test_wrong_address_length(self):
        with pytest.raises(FrameError):
            self.link.encode_header(b"\x01", b"\x02" * 6, 0)

    def test_bad_ethertype(self):
        with pytest.raises(FrameError):
            self.link.encode_header(b"\x01" * 6, b"\x02" * 6, 0x10000)

    def test_truncated_frame_rejected(self):
        with pytest.raises(FrameError):
            self.link.ethertype_of(b"\x00" * 10)

    def test_transmission_time(self):
        # 1250 bytes = 10000 bits at 10 Mbit/s = 1 ms.
        assert self.link.transmission_time(1250) == pytest.approx(1e-3)


class TestThreeMegabit:
    link = ETHERNET_3MB

    def test_single_byte_addresses(self):
        frame = self.link.frame(b"\x05", b"\x07", 2, b"pup")
        assert self.link.destination_of(frame) == b"\x05"
        assert self.link.source_of(frame) == b"\x07"
        assert self.link.ethertype_of(frame) == 2

    def test_header_is_4_bytes(self):
        """Figure 3-7: "the data-link header is 4 bytes (two words)
        long, with the packet type in the second word"."""
        assert self.link.header_length == 4
        frame = self.link.frame(b"\x05", b"\x07", 2, b"")
        assert int.from_bytes(frame[2:4], "big") == 2  # type in word 1

    def test_broadcast_is_address_zero(self):
        assert self.link.broadcast == b"\x00"

    def test_experimental_ethernet_is_slower(self):
        assert (
            self.link.transmission_time(1000)
            > ETHERNET_10MB.transmission_time(1000)
        )

    def test_pup_max_fits(self):
        from repro.protocols.pup import PUP_MAX_BYTES

        assert self.link.max_frame_bytes >= PUP_MAX_BYTES + self.link.header_length
