"""Tier-1 smoke coverage of the differential matrix.

Small enough to ride in every test run, but it exercises every axis the
firewall-scale ``-m difftest`` sweep does: all forty configurations,
live attach/detach churn, copy-all flips, queue drains, buffer-pool
exhaustion, same-priority reordering, and the adversarial rule-set
family the dispatch tree cannot split.
"""

from __future__ import annotations

from repro.core.decision import necessary_equalities
from repro.difftest import (
    full_matrix,
    packets_only,
    run_matrix,
    churn_stream,
    with_drains,
)
from ruleset_gen import (
    generate_adversarial_ruleset,
    generate_prefix_ruleset,
    generate_ruleset,
    traffic_for,
)


def test_full_matrix_smoke_with_churn():
    programs, tuples = generate_ruleset(12, seed=0)
    packets = traffic_for(tuples, count=72, seed=1)
    stream = churn_stream(
        packets, 12, seed=2, churn_every=9, copyall_every=13, drain_every=25
    )
    report = run_matrix(programs, stream, full_matrix())
    assert report.ok, report.summary()
    assert len(report.results) == 40
    cached = [r.cache_stats for r in report.results if r.cache_stats]
    assert cached and all(stats == cached[0] for stats in cached)
    # churn really invalidated the cache mid-stream
    assert cached[0][2] > 1


def test_matrix_smoke_nobuf_pool():
    """A tiny shared buffer pool forces the nobuf outcome; every
    configuration must attribute it to the same packets."""
    programs, tuples = generate_ruleset(6, seed=1)
    packets = traffic_for(tuples, count=60, seed=2)
    report = run_matrix(
        programs,
        with_drains(packets_only(packets), 30),
        full_matrix(),
        queue_limit=16,
        pool_capacity=8,
        port_share=4,
    )
    assert report.ok, report.summary()
    outcomes = report.results[0].outcomes
    assert any(o.nobuf_by for o in outcomes)
    assert any(o.accepted_by for o in outcomes)


def test_matrix_smoke_reorder():
    """Same-priority reordering enabled: the IR batch configurations
    are excluded by design (they defer the tick to burst end), and
    everything that remains must still agree — including the cache
    invalidations the reorders trigger."""
    programs, tuples = generate_ruleset(10, seed=4)
    packets = traffic_for(tuples, count=80, seed=5)
    configs = full_matrix(reorder=True)
    assert all(
        not (c.engine.value == "ir" and c.batch) for c in configs
    )
    report = run_matrix(
        programs,
        packets_only(packets),
        configs,
        reorder=True,
        reorder_interval=8,
    )
    assert report.ok, report.summary()


def test_matrix_smoke_adversarial_and_prefix():
    adv_programs, adv_tuples = generate_adversarial_ruleset(24, seed=1)
    # the whole point of the family: one shared equality discriminant,
    # so the decision table / dispatch tree see a single bucket
    assert len({necessary_equalities(p) for p in adv_programs}) == 1
    packets = traffic_for(adv_tuples, count=72, seed=2)
    report = run_matrix(adv_programs, packets_only(packets), full_matrix())
    assert report.ok, report.summary()

    pre_programs, pre_tuples = generate_prefix_ruleset(32, seed=3, block=8)
    packets = traffic_for(pre_tuples, count=64, seed=4)
    report = run_matrix(pre_programs, packets_only(packets), full_matrix())
    assert report.ok, report.summary()
