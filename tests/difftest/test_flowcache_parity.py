"""Flow-cache determinism and scalar/batch counter parity.

Two regressions pinned here:

* slot indexing must be seed-independent (``zlib.crc32``, not the
  salted ``hash()``) — otherwise collision and eviction patterns, and
  with them the hit/miss counters every cost model reads, differ
  between identically-seeded runs under different ``PYTHONHASHSEED``;
* ``deliver_batch`` must replay the scalar loop's cache schedule
  exactly: an early version did all lookups before any store, so a
  pre-cached entry evicted by an earlier in-burst colliding store
  still counted as a hit and the batch path's hit/miss counters
  drifted from ``deliver()``'s.
"""

from __future__ import annotations

from zlib import crc32

from repro.core.compiler import compile_expr, word
from repro.core.demux import Engine, PacketFilterDemux
from repro.core.fused import FlowCache
from repro.core.port import Port
from repro.core.words import pack_words


def _colliding_word_values(slots: int, count: int) -> list[int]:
    """Distinct word-0 values whose 2-byte cache keys share one slot of
    a ``slots``-entry direct-mapped cache (crc32 placement)."""
    groups: dict[int, list[int]] = {}
    for value in range(1 << 16):
        key = pack_words([value])
        slot = crc32(key) & (slots - 1)
        bucket = groups.setdefault(slot, [])
        bucket.append(value)
        if len(bucket) >= count:
            return bucket[:count]
    raise AssertionError("no colliding bucket found")


def _demux_with_rules(values, *, flow_cache: int) -> PacketFilterDemux:
    demux = PacketFilterDemux(
        engine=Engine.IR,
        flow_cache=flow_cache,
        reorder_same_priority=False,
    )
    for index, value in enumerate(values):
        port = Port(index, queue_limit=64)
        port.bind_filter(compile_expr(word(0) == value, priority=10))
        demux.attach(port)
    return demux


def test_slot_indexing_is_crc32():
    cache = FlowCache(64)
    for key in (b"", b"\x00\x01", b"collide", bytes(range(14))):
        assert cache.slot(key) == crc32(key) & 63


def test_batch_matches_scalar_on_colliding_evict():
    """The exact shape that exposed the drift: pre-cache key B, then a
    burst [A, B] where A's store evicts B.  The scalar loop counts B a
    miss; the batch path must too."""
    a, b = _colliding_word_values(4, 2)
    values = [a, b]
    pkt_a = pack_words([a, 0x1111])
    pkt_b = pack_words([b, 0x2222])

    def run(batched: bool):
        demux = _demux_with_rules(values, flow_cache=4)
        reports = [demux.deliver(pkt_b)]  # pre-cache B's slot
        if batched:
            reports += demux.deliver_batch([pkt_a, pkt_b])
        else:
            reports += [demux.deliver(pkt_a), demux.deliver(pkt_b)]
        cache = demux.flow_cache
        return (
            [(r.accepted_by, r.dropped_by, r.nobuf_by) for r in reports],
            (cache.hits, cache.misses),
            [k for k in cache._keys if k is not None],
        )

    scalar = run(batched=False)
    batch = run(batched=True)
    assert batch == scalar
    # and the collision really happened: B was evicted, so its second
    # delivery missed — no hits anywhere in this sequence
    assert scalar[1] == (0, 3)


def test_batch_matches_scalar_over_colliding_stream():
    """Longer mixed stream over three same-slot flows: hit/miss/store
    schedules must agree between one deliver() loop and deliver_batch
    bursts of every size."""
    values = _colliding_word_values(8, 3)
    # runs of one flow (in-run hits) punctuated by switches to a
    # colliding flow (evict + miss), run lengths coprime with the
    # batch sizes below so bursts straddle every transition
    packets = [
        pack_words([values[(i // 5) % 3], i]) for i in range(60)
    ]

    def run(batch: int):
        demux = _demux_with_rules(values, flow_cache=8)
        reports = []
        if batch:
            for off in range(0, len(packets), batch):
                reports += demux.deliver_batch(packets[off : off + batch])
        else:
            reports += [demux.deliver(p) for p in packets]
        cache = demux.flow_cache
        return (
            [r.accepted_by for r in reports],
            (cache.hits, cache.misses, cache.invalidations),
            [k for k in cache._keys if k is not None],
        )

    scalar = run(0)
    for batch in (1, 2, 3, 7, 16, 60):
        assert run(batch) == scalar, f"batch size {batch} diverged"
    hits, misses, _ = scalar[1]
    assert hits and misses  # the stream exercised both transitions


def test_flowcache_stats_identical_across_hashseeds(hashseed_outputs):
    """Same FlowCache workload, two processes, two PYTHONHASHSEED
    values: identical hit/miss/invalidation counters and identical
    final cache contents.  Fails if slot placement ever goes back to
    the salted ``hash()``."""
    script = """
from repro.core.fused import FlowCache

cache = FlowCache(16)
keys = [bytes([i % 23, (i * 13) % 251]) for i in range(400)]
for i, key in enumerate(keys):
    if cache.lookup(key) is None:
        cache.store(key, (i % 5,))
cache.invalidate()
for key in keys[:100]:
    cache.lookup(key)
print(cache.hits, cache.misses, cache.invalidations)
print(sorted(k.hex() for k in cache._keys if k is not None))
"""
    first, second = hashseed_outputs(script)
    assert first == second


def test_demux_cache_counters_identical_across_hashseeds(hashseed_outputs):
    """End-to-end flavor of the same guarantee: a cached IR run over a
    generated ACL produces identical RunResult digests (outcomes,
    lifetime counters, cache stats) in two differently-salted
    interpreters."""
    script = """
from ruleset_gen import generate_ruleset, traffic_for
from repro.difftest import MatrixConfig, packets_only, run_config
from repro.core.demux import Engine

programs, tuples = generate_ruleset(30, seed=7)
packets = traffic_for(tuples, count=120, seed=8)
for config in (
    MatrixConfig(engine=Engine.IR, flow_cache=16, batch=32),
    MatrixConfig(engine=Engine.CHECKED, flow_cache=16),
):
    result = run_config(programs, packets_only(packets), config)
    print(config.label, result.digest(), result.cache_stats)
"""
    first, second = hashseed_outputs(script)
    assert first == second
