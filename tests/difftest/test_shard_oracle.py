"""The sharding oracle: 1-shard and N-shard runs are indistinguishable.

Tier-1 keeps a fast smoke (one process vs two, every digest equal); the
``difftest``-marked sweep crosses shard counts with seeds on a wider
topology, and the determinism leg re-runs the digest in subprocesses
under different ``PYTHONHASHSEED`` values — partitioning and hash
salting may change wall-clock time and nothing else.
"""

import pytest

from repro.bench.scenarios import run_flow_storm
from repro.difftest.sharding import (
    flow_storm_digest,
    outcome_digest,
    run_digest,
    stats_digest,
)

#: Small enough for tier-1, busy enough to cross the bridge both ways.
SMOKE = dict(segments=2, duration=0.1, flows=64, cache_size=16, seed=3)


class TestShardOracleSmoke:
    def test_two_shards_match_the_oracle(self):
        one = run_flow_storm(shards=1, **SMOKE)
        two = run_flow_storm(shards=2, **SMOKE)
        assert one["shards"] == 1 and two["shards"] == 2
        # Headline numbers first (better failure messages) ...
        for key in (
            "cache_hits",
            "cache_misses",
            "frames_received",
            "frames_forwarded",
            "events_fired",
            "windows",
        ):
            assert one[key] == two[key], key
        # ... then the full bitwise oracle: per-host counters, every
        # packet's per-stage timeline and outcome, wire counters,
        # segment reports.
        assert stats_digest(one["result"]) == stats_digest(two["result"])
        assert outcome_digest(one["result"]) == outcome_digest(two["result"])
        assert run_digest(one["result"]) == run_digest(two["result"])

    def test_storm_actually_thrashes_the_cache(self):
        # The workload's premise: more flows than cache slots means the
        # steady state is mostly misses.
        outcome = run_flow_storm(shards=1, **SMOKE)
        assert outcome["cache_misses"] > outcome["cache_hits"]
        assert outcome["frames_forwarded"] > 0


@pytest.mark.difftest
class TestShardSweep:
    @pytest.mark.parametrize("seed", [0, 7, 1987])
    def test_every_shard_count_agrees(self, seed):
        digests = {
            shards: flow_storm_digest(
                segments=4, shards=shards, seed=seed, duration=0.15
            )
            for shards in (1, 2, 3, 4)
        }
        assert len(set(digests.values())) == 1, digests

    def test_digest_stable_across_hashseeds(self, hashseed_outputs):
        outputs = hashseed_outputs(
            "from repro.difftest.sharding import flow_storm_digest\n"
            "print(flow_storm_digest("
            "segments=3, shards=2, seed=11, duration=0.05))\n"
        )
        assert outputs[0] == outputs[1]
