"""Bitwise determinism across ``PYTHONHASHSEED`` (``-m difftest``).

The simulator promises that a seeded scenario is bit-for-bit
reproducible.  ``hash()`` salting is the classic way to lose that
promise silently — the flow cache's slot placement was exactly such a
leak.  These tests run full scenarios in subprocesses under two
different hash seeds and require identical output:

* an overload storm through the simulated kernel (flow-cached receive
  path), digesting the complete ``KernelStats`` counter set, the
  ledger drop summary, and the goodput accounting;
* a differential-matrix run over a generated ACL, digesting every
  configuration's outcomes, counters and cache statistics.
"""

from __future__ import annotations

import pytest

pytestmark = pytest.mark.difftest


def test_overload_storm_kernelstats_identical_across_hashseeds(
    hashseed_outputs,
):
    script = """
import dataclasses
import hashlib
import json

from repro.bench.scenarios import run_overload_storm

result = run_overload_storm(
    mode="polling",
    offered_multiplier=2.0,
    warmup=0.1,
    duration=0.4,
)
stats = result["receiver_host"].kernel.stats
doc = {
    "kernel_stats": dataclasses.asdict(stats),
    "drops": result["drops"],
    "delivered_in_window": result["delivered_in_window"],
    "goodput_pps": result["goodput_pps"],
    "nic": [
        result["nic_polls"],
        result["nic_frames_polled"],
        result["nic_frames_shed"],
        result["nic_frames_nobuf"],
        result["nic_frames_dropped"],
    ],
    "pool_audit": result["pool_audit"],
    "spans": len(list(result["ledger"].spans_for("receiver"))),
}
blob = json.dumps(doc, sort_keys=True, default=repr)
print(hashlib.sha256(blob.encode()).hexdigest())
print(blob)
"""
    first, second = hashseed_outputs(script)
    assert first == second


def test_matrix_digests_identical_across_hashseeds(hashseed_outputs):
    script = """
from ruleset_gen import generate_ruleset, traffic_for
from repro.difftest import churn_stream, full_matrix, run_matrix

programs, tuples = generate_ruleset(100, seed=0)
packets = traffic_for(tuples, count=128, seed=100)
stream = churn_stream(packets, 100, seed=1, churn_every=21, drain_every=33)
report = run_matrix(programs, stream, full_matrix())
assert report.ok, report.summary()
for result in report.results:
    print(result.config.label, result.digest())
"""
    first, second = hashseed_outputs(script)
    assert first == second
