"""Fixtures and collection rules for the differential-matrix suite.

The heavyweight firewall-scale sweeps are marked ``difftest`` and only
run when explicitly requested (``pytest -m difftest``), like the chaos
and overload soaks; everything else in this directory is ordinary
tier-1.  The rule-set generators live in ``benchmarks/`` (they are the
scale benchmark's workload too), so that directory joins ``sys.path``
here.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
for extra in ("benchmarks",):
    path = str(REPO_ROOT / extra)
    if path not in sys.path:
        sys.path.insert(0, path)


def pytest_collection_modifyitems(config, items):
    if "difftest" in (config.option.markexpr or ""):
        return
    skip = pytest.mark.skip(
        reason="differential matrix sweep: run with -m difftest"
    )
    for item in items:
        # keywords would also match the directory name; only the real
        # marker counts
        if item.get_closest_marker("difftest") is not None:
            item.add_marker(skip)


@pytest.fixture
def hashseed_outputs():
    """Run a Python snippet in subprocesses under different
    ``PYTHONHASHSEED`` values and return their stdouts.

    The snippet sees ``src`` and ``benchmarks`` on its path.  Callers
    assert the outputs are identical — the bitwise-determinism
    acceptance check for anything downstream of ``hash()`` salting.
    """

    def run(script: str, seeds=("1", "424242")) -> list[str]:
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(REPO_ROOT / "src"), str(REPO_ROOT / "benchmarks")]
        )
        outputs = []
        for seed in seeds:
            env["PYTHONHASHSEED"] = seed
            proc = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                env=env,
                timeout=300,
            )
            assert proc.returncode == 0, proc.stderr
            assert proc.stdout.strip(), "determinism snippet printed nothing"
            outputs.append(proc.stdout)
        return outputs

    return run
