"""Determinism and shard-independence of chaos and recovery.

Two bitwise claims ride on seeded fault schedules:

* a chaos schedule derives every draw from
  ``derive_seed(seed, "chaos", link_id, ...)`` — never ``hash()`` — so
  the same seed replays the same outages under any ``PYTHONHASHSEED``
  (checked in subprocesses, mirroring the existing determinism legs);
* the partition-storm digest is identical across shard counts and
  — with the supervisor armed and a shard killed mid-run — identical
  to the fault-free run (replay-from-checkpoint is invisible).

The cheap legs are tier-1; the full sweeps carry the ``difftest``
marker like the rest of this directory.
"""

import os

import pytest

from repro.difftest.sharding import partition_storm_digest
from repro.sim.orchestrator import RecoveryConfig

needs_fork = pytest.mark.skipif(
    not hasattr(os, "fork"), reason="fork-based checkpoints need os.fork"
)

FLAP_SNIPPET = """\
from repro.sim.faults import flap_schedule, schedule_fingerprint
faults = flap_schedule(
    11, "lan0~lan1", start=0.0, until=2.0, mean_down=0.05, mean_up=0.1
)
print(schedule_fingerprint(faults))
print(len(faults))
"""

STORM_SNIPPET = """\
from repro.difftest.sharding import partition_storm_digest
print(partition_storm_digest(segments=2, shards=2, seed=7, duration=0.8))
"""


class TestHashseedDeterminism:
    def test_flap_schedule_stable_across_hashseeds(self, hashseed_outputs):
        first, second = hashseed_outputs(FLAP_SNIPPET)
        assert first == second

    @pytest.mark.difftest
    def test_partition_storm_digest_stable_across_hashseeds(
        self, hashseed_outputs
    ):
        first, second = hashseed_outputs(STORM_SNIPPET)
        assert first == second


@pytest.mark.difftest
class TestPartitionStormSweep:
    def test_digest_is_shard_count_independent(self):
        baseline = partition_storm_digest(segments=3, shards=1, seed=3)
        for shards in (2, 3):
            assert (
                partition_storm_digest(segments=3, shards=shards, seed=3)
                == baseline
            )

    @needs_fork
    @pytest.mark.parametrize("shards", [2, 3])
    @pytest.mark.parametrize("seed", [0, 1987])
    def test_killed_shard_recovers_bitwise(self, shards, seed):
        baseline = partition_storm_digest(
            segments=3, shards=shards, seed=seed, duration=0.8
        )
        recovered = partition_storm_digest(
            segments=3,
            shards=shards,
            seed=seed,
            duration=0.8,
            recovery=RecoveryConfig(checkpoint_interval=8, recv_timeout=30.0),
            hazards={shards - 1: {"die_at_window": 25}},
        )
        assert recovered == baseline
