"""The observer-effect guard: arming the observability plane must not
change a single bit of any run's result.

This is PR 5's free-when-off contract extended to the cross-shard
plane: sideband deltas are built from quiescent window-boundary state,
sync profiling is supervisor-side wall clock, flow records and span
histograms live outside the digest — so ``run_digest`` armed vs off
must match bitwise at every shard count and seed.  CI runs this guard
on every push.
"""

import pytest

from repro.bench.topologies import flow_storm_topology, partition_storm_topology
from repro.difftest.sharding import alert_timeline_digest, run_digest
from repro.sim.obsplane import ObservabilityPlane
from repro.sim.orchestrator import run_topology

STORM = dict(segments=2, duration=0.1, flows=64, cache_size=16)


def storm_digest(*, seed, shards, armed):
    spec = flow_storm_topology(seed=seed, **STORM)
    plane = ObservabilityPlane() if armed else None
    return run_digest(run_topology(spec, shards=shards, observability=plane))


class TestObserverEffect:
    @pytest.mark.parametrize("shards", [1, 2])
    @pytest.mark.parametrize("seed", [0, 7])
    def test_flow_storm_digest_unchanged_when_armed(self, shards, seed):
        off = storm_digest(seed=seed, shards=shards, armed=False)
        armed = storm_digest(seed=seed, shards=shards, armed=True)
        assert armed == off

    def test_partition_storm_digest_unchanged_when_armed(self):
        def digest(armed):
            spec = partition_storm_topology(segments=2, seed=0)
            plane = ObservabilityPlane() if armed else None
            return run_digest(
                run_topology(spec, shards=2, observability=plane)
            )

        assert digest(True) == digest(False)


class TestAlertTimelineParity:
    def test_merged_sharded_telemetry_matches_single(self):
        """Watchdogs evaluate per-world state, so the merged N-shard
        alert timeline must equal the 1-shard one, bit for bit."""
        def timeline(shards):
            spec = partition_storm_topology(segments=2, seed=0)
            return alert_timeline_digest(run_topology(spec, shards=shards))

        single = timeline(1)
        assert single == timeline(2)
        # and streaming it live must not perturb it either
        spec = partition_storm_topology(segments=2, seed=0)
        armed = run_topology(
            spec, shards=2, observability=ObservabilityPlane()
        )
        assert alert_timeline_digest(armed) == single
