"""The firewall-scale differential sweep (``pytest -m difftest``).

Every test replays one generated workload through the full engine ×
flow-cache × decision-table × delivery-path matrix (forty
configurations) and asserts zero divergences: identical per-packet
accept/drop/nobuf outcomes, reconciled lifetime counters, and
identical flow-cache statistics across engines and delivery paths.

Coverage axes:

* three seeds at 100 / 1000 / 10000 structured ACL rules (packet
  budgets shrink as rule count grows — at 10k the linear engines pay
  ~5k filter evaluations per packet, and the point is divergence
  hunting, not throughput);
* mutation drivers at 100/1000 rules: attach/detach/reorder churn,
  copy-all flips, queue drains, buffer-pool exhaustion;
* engineered flow-cache collision floods against a deliberately tiny
  cache;
* truncated/short frames at the 1000-rule scale;
* the adversarial and prefix-structured rule-set families.

The whole module is budgeted to stay under a few minutes on CI
hardware; the dominant cost is the one-time whole-set compile per
(rule set, engine), which the compile memo shares across the eight
configurations of each engine.
"""

from __future__ import annotations

import pytest

from repro.core.decision import necessary_equalities
from repro.difftest import (
    cache_key_bytes,
    churn_stream,
    collision_flood,
    full_matrix,
    packets_only,
    run_matrix,
    truncation_stream,
    with_drains,
)
from ruleset_gen import (
    generate_adversarial_ruleset,
    generate_prefix_ruleset,
    generate_ruleset,
    traffic_for,
)

pytestmark = pytest.mark.difftest

SEEDS = (0, 1, 2)

#: (rules, packets): the packet budget shrinks with scale — the linear
#: engines pay O(rules) per packet, and compile time is already paid.
SCALE = ((100, 256), (1000, 128), (10_000, 48))


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize(
    "size,count", SCALE, ids=[f"{s}rules" for s, _ in SCALE]
)
def test_structured_scale(size, count, seed):
    programs, tuples = generate_ruleset(size, seed=seed)
    packets = traffic_for(tuples, count=count, seed=seed + 100, spread=True)
    report = run_matrix(
        programs,
        packets_only(packets),
        full_matrix(),
        # the naive oracle re-sorts and re-evaluates per packet: fine
        # at 100 rules, pointless thrash beyond (the checked engine is
        # the in-matrix reference)
        oracle=size <= 100,
    )
    assert report.ok, report.summary()
    assert len(report.results) == 40


@pytest.mark.parametrize("seed", SEEDS)
def test_churn_matrix(seed):
    """Mid-stream SETFILTER churn, copy-all flips and drains at 100
    rules: every mutation tears down the decision table, the fused and
    IR sets, the rank assignment and the flow cache — all forty
    configurations must rebuild into agreement."""
    programs, tuples = generate_ruleset(100, seed=seed)
    packets = traffic_for(tuples, count=192, seed=seed + 200)
    stream = churn_stream(
        packets,
        100,
        seed=seed,
        churn_every=17,
        copyall_every=29,
        drain_every=41,
    )
    report = run_matrix(programs, stream, full_matrix())
    assert report.ok, report.summary()


def test_churn_matrix_at_1000():
    """One churn leg at 1000 rules — each toggle forces a whole-set
    recompile for the fused/IR configurations, so the cadence is kept
    low to bound compile time."""
    programs, tuples = generate_ruleset(1000, seed=0)
    packets = traffic_for(tuples, count=96, seed=300, spread=True)
    stream = churn_stream(
        packets, 1000, seed=3, churn_every=48, drain_every=37
    )
    report = run_matrix(programs, stream, full_matrix(), oracle=False)
    assert report.ok, report.summary()


@pytest.mark.parametrize("seed", SEEDS)
def test_collision_flood_matrix(seed):
    """Same-slot flood against a 16-slot cache: consecutive distinct
    flows evict each other every packet, the worst case for any
    lookup/store scheduling bug in either delivery path."""
    programs, tuples = generate_ruleset(100, seed=seed)
    packets = traffic_for(tuples, count=256, seed=seed + 400)
    key_bytes = cache_key_bytes(programs)
    flood = collision_flood(packets, key_bytes, 16)
    report = run_matrix(
        programs,
        with_drains(packets_only(flood), 32),
        full_matrix(cache_sizes=(0, 16)),
    )
    assert report.ok, report.summary()
    cached = next(r for r in report.results if r.cache_stats)
    hits, misses, _ = cached.cache_stats
    assert misses > hits  # the flood really thrashed the cache


@pytest.mark.parametrize("seed", SEEDS)
def test_adversarial_matrix(seed):
    """1000 rules sharing one equality discriminant: the decision
    table and dispatch tree collapse to a single linear bucket, so the
    whole-set engines take their fallback paths — which must still
    agree with everything else."""
    programs, tuples = generate_adversarial_ruleset(1000, seed=seed)
    assert len({necessary_equalities(p) for p in programs}) == 1
    packets = traffic_for(tuples, count=64, seed=seed + 500, spread=True)
    report = run_matrix(
        programs, packets_only(packets), full_matrix(), oracle=False
    )
    assert report.ok, report.summary()


def test_prefix_matrix():
    """CIDR-block-structured rules: maximal cross-filter sharing for
    the CSE pass and long shared key prefixes for the flow cache."""
    programs, tuples = generate_prefix_ruleset(1000, seed=0, block=64)
    packets = traffic_for(tuples, count=128, seed=600, spread=True)
    report = run_matrix(
        programs, packets_only(packets), full_matrix(), oracle=False
    )
    assert report.ok, report.summary()


def test_truncation_matrix_at_1000():
    programs, tuples = generate_ruleset(1000, seed=0)
    base = traffic_for(tuples, count=24, seed=700, spread=True)
    stream = truncation_stream(
        base, cache_key_bytes(programs), min_packet_bytes=13, seed=8
    )
    report = run_matrix(
        programs, packets_only(stream), full_matrix(), oracle=False
    )
    assert report.ok, report.summary()


def test_pool_exhaustion_matrix():
    """Buffer-pool nobuf outcomes under drain cycling at 100 rules."""
    programs, tuples = generate_ruleset(100, seed=1)
    packets = traffic_for(tuples, count=300, seed=800)
    report = run_matrix(
        programs,
        with_drains(packets_only(packets), 64),
        full_matrix(),
        queue_limit=8,
        pool_capacity=32,
        port_share=2,
    )
    assert report.ok, report.summary()
    assert any(o.nobuf_by for o in report.results[0].outcomes)


def test_reorder_matrix():
    """Live same-priority reordering at 100 rules (IR batch excluded
    by contract): reorder ticks, the cache invalidations they trigger,
    and the resulting rank shuffles must match across the rest."""
    programs, tuples = generate_ruleset(100, seed=2)
    packets = traffic_for(tuples, count=192, seed=900)
    report = run_matrix(
        programs,
        packets_only(packets),
        full_matrix(reorder=True),
        reorder=True,
        reorder_interval=16,
    )
    assert report.ok, report.summary()
