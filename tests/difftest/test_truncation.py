"""Truncated and short frames through every engine, scalar and batch.

The checked interpreter discovers an out-of-bounds word at evaluation
time and rejects; the prevalidated/compiled/fused/IR engines reject via
the hoisted ``min_packet_bytes`` pre-check.  Those mechanisms are
entirely different code — this suite pins that they cannot be told
apart at any frame length: shorter than the flow-cache key, shorter
than ``min_packet_bytes``, odd lengths (the zero-padded tail word),
single-byte and empty frames.
"""

from __future__ import annotations

from repro.core.validator import validate
from repro.difftest import (
    cache_key_bytes,
    full_matrix,
    packets_only,
    run_matrix,
    truncation_stream,
)
from ruleset_gen import generate_ruleset, traffic_for


def test_truncated_frames_identical_across_matrix():
    programs, tuples = generate_ruleset(8, seed=3)
    base = traffic_for(tuples, count=8, seed=4)
    key_bytes = cache_key_bytes(programs)
    min_bytes = validate(programs[0]).min_packet_bytes
    stream = truncation_stream(
        base, key_bytes, min_packet_bytes=min_bytes, seed=5
    )
    # the stream really covers the boundaries it claims to
    lengths = {len(p) for p in stream}
    assert 0 in lengths and 1 in lengths
    assert any(0 < n < key_bytes for n in lengths)
    assert any(0 < n < min_bytes for n in lengths)
    assert any(n % 2 == 1 for n in lengths)

    report = run_matrix(programs, packets_only(stream), full_matrix())
    assert report.ok, report.summary()

    # full-length frames still match (truncation didn't reject all)
    accepted = sum(1 for o in report.results[0].outcomes if o.accepted_by)
    rejected = sum(1 for o in report.results[0].outcomes if not o.accepted_by)
    assert accepted >= len(base)
    assert rejected > 0


def test_exact_boundary_frame_classified_everywhere():
    """Frames cut exactly at the last byte a filter reads — the
    odd-length case where the discriminant word is half present and
    zero-padded — must classify identically across the matrix.

    At ``min_packet_bytes`` (13 here: an odd cut into word 6) the
    padded word is ``high_byte << 8``, which equals the rule's dst
    port only when the port's low byte is zero — true for rule 0
    (port 1024) and no other, so the boundary frames separate the
    zero-pad semantics from a plain oob-reject."""
    programs, tuples = generate_ruleset(4, seed=9)
    min_bytes = validate(programs[0]).min_packet_bytes
    assert min_bytes % 2 == 1  # the cut really lands mid-word
    frames = []
    for packet in traffic_for(tuples, count=4, seed=10):
        frames += [
            packet[:min_bytes],       # zero-padded discriminant word
            packet[: min_bytes - 1],  # one byte short: reject everywhere
            packet[: min_bytes + 1],  # discriminant complete, sans payload
        ]
    report = run_matrix(programs, packets_only(frames), full_matrix())
    assert report.ok, report.summary()
    outcomes = report.results[0].outcomes
    # rule 0's padded word still reads 1024 -> accepted; rules 1-3 see
    # a wrong (zero-padded) port; the short frames never match; the
    # complete-discriminant frames always do
    assert outcomes[0].accepted_by == (0,)
    assert not any(outcomes[i * 3].accepted_by for i in range(1, 4))
    assert not any(outcomes[i * 3 + 1].accepted_by for i in range(4))
    assert all(outcomes[i * 3 + 2].accepted_by == (i,) for i in range(4))
