"""Fast smoke tests over the benchmark scenarios (small workloads).

The full paper-vs-measured runs live under ``benchmarks/``; these only
pin down that every scenario builds, runs, and points the right way.
"""

import pytest

from repro.bench import (
    count_receive_events,
    count_stream_crossings,
    kernel_profile,
    measure_bsp_bulk,
    measure_filter_cost,
    measure_receive_cost,
    measure_send_cost,
    measure_tcp_bulk,
    measure_vmtp_bulk,
    measure_vmtp_minimal,
)
from repro.bench.tables import Row, render_table, within_factor


class TestSendCost:
    def test_pf_cheaper_than_udp(self):
        assert measure_send_cost("pf", 128, count=10) < measure_send_cost(
            "udp", 128, count=10
        )

    def test_bigger_packets_cost_more(self):
        assert measure_send_cost("pf", 1500, count=10) > measure_send_cost(
            "pf", 128, count=10
        )

    def test_unknown_path(self):
        with pytest.raises(ValueError):
            measure_send_cost("smoke-signals", 128)


class TestVMTP:
    def test_kernel_faster_than_user_level(self):
        assert measure_vmtp_minimal("kernel", 5) < measure_vmtp_minimal("pf", 5)

    def test_bulk_ordering(self):
        kernel = measure_vmtp_bulk("kernel", total_bytes=64 * 1024)
        user = measure_vmtp_bulk("pf", total_bytes=64 * 1024)
        assert kernel > user

    def test_unknown_implementation(self):
        with pytest.raises(ValueError):
            measure_vmtp_minimal("smalltalk")


class TestStreams:
    def test_tcp_beats_bsp(self):
        assert measure_tcp_bulk(total_bytes=64 * 1024) > measure_bsp_bulk(
            total_bytes=32 * 1024
        )

    def test_small_mss_slows_tcp(self):
        full = measure_tcp_bulk(total_bytes=64 * 1024)
        small = measure_tcp_bulk(total_bytes=64 * 1024, mss=514)
        assert small < full


class TestReceiveCost:
    def test_user_demux_costs_more(self):
        assert measure_receive_cost("user", 128, count=20) > measure_receive_cost(
            "kernel", 128, count=20
        )

    def test_longer_filters_cost_more(self):
        assert measure_filter_cost(21, count=20) > measure_filter_cost(
            0, count=20
        )


class TestEventCounts:
    def test_user_demux_event_counts(self):
        events = count_receive_events("user", count=20)
        assert events["context_switches"] >= 2.0
        assert events["copies"] == pytest.approx(3.0, abs=0.2)

    def test_stream_crossings_tcp_confined(self):
        tcp = count_stream_crossings("tcp", total_bytes=16 * 1024)
        bsp = count_stream_crossings("bsp", total_bytes=16 * 1024)
        assert tcp["syscalls_per_frame"] < bsp["syscalls_per_frame"]


class TestKernelProfile:
    def test_matches_section_6_1_shape(self):
        profile = kernel_profile(ports=8, packets=48)
        assert 0.3 < profile.pf_filter_fraction < 0.6
        assert profile.ip_layer_only_ms < profile.pf_ms_per_packet
        assert profile.pf_ms_per_packet < profile.ip_ms_per_packet


class TestTables:
    def test_render(self):
        rows = [Row("a", 1.0, 1.1, "ms"), Row("bb", 2.0, 1.8, "ms")]
        text = render_table("demo", rows)
        assert "demo" in text and "1.10" in text and "0.90" in text

    def test_within_factor(self):
        assert within_factor(10, 12, 1.5)
        assert not within_factor(10, 30, 1.5)
        assert not within_factor(0, 1, 2)
