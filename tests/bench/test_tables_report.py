"""Tests for result recording and the EXPERIMENTS.md generator."""

import json

import pytest

from repro.bench.tables import Row, record_rows, within_factor
from repro.bench import report


class TestRow:
    def test_ratio(self):
        assert Row("x", 2.0, 3.0).ratio == pytest.approx(1.5)

    def test_zero_paper_value(self):
        import math

        assert math.isnan(Row("x", 0.0, 1.0).ratio)


class TestRecordRows(object):
    def test_creates_and_merges(self, tmp_path, monkeypatch):
        results = tmp_path / "results.json"
        monkeypatch.setattr(
            "repro.bench.tables.RESULTS_PATH", str(results)
        )
        record_rows("exp-a", [Row("one", 1.0, 1.1, "ms")], notes="n1")
        record_rows("exp-b", [Row("two", 2.0, 2.2)])
        record_rows("exp-a", [Row("one", 1.0, 1.05, "ms")])  # update

        data = json.loads(results.read_text())
        assert set(data) == {"exp-a", "exp-b"}
        assert data["exp-a"]["rows"][0]["measured"] == 1.05
        assert data["exp-a"]["notes"] == ""

    def test_survives_corrupt_file(self, tmp_path, monkeypatch):
        results = tmp_path / "results.json"
        results.write_text("{ not json")
        monkeypatch.setattr(
            "repro.bench.tables.RESULTS_PATH", str(results)
        )
        record_rows("exp", [Row("r", 1.0, 1.0)])
        assert "exp" in json.loads(results.read_text())


class TestReportGeneration:
    def test_generates_markdown(self, tmp_path):
        results = tmp_path / "results.json"
        results.write_text(json.dumps({
            "table-6-1": {
                "rows": [
                    {"label": "pf 128B", "paper": 1.9, "measured": 1.94,
                     "unit": "ms"},
                ],
                "notes": "a note",
            },
            "custom-extra": {
                "rows": [
                    {"label": "thing", "paper": 2.0, "measured": 4.0,
                     "unit": ""},
                ],
                "notes": "",
            },
        }))
        output = report.generate(str(results))
        assert "Table 6-1" in output
        assert "| pf 128B | 1.9 ms | 1.94 ms | 1.02 |" in output
        assert "a note" in output
        assert "custom-extra" in output  # unknown keys still rendered

    def test_missing_file_is_a_clear_error(self, tmp_path):
        with pytest.raises(SystemExit, match="benchmark"):
            report.generate(str(tmp_path / "absent.json"))

    def test_every_benchmark_key_has_a_title(self):
        """Each experiment id recorded by the benchmarks must have a
        human title, so EXPERIMENTS.md never shows raw keys."""
        import re
        from pathlib import Path

        bench_dir = Path(__file__).resolve().parents[2] / "benchmarks"
        recorded = set()
        for path in bench_dir.glob("test_*.py"):
            recorded.update(
                re.findall(r'record_rows\(\s*[\'"]([\w\-]+)[\'"]', path.read_text())
            )
        assert recorded, "no record_rows calls found?"
        missing = recorded - set(report.TITLES)
        assert not missing, f"add titles for: {sorted(missing)}"


class TestNumberFormatting:
    @pytest.mark.parametrize(
        "value,expect",
        [
            (1780.0, "1780"),
            (1.9, "1.9"),
            (1.94321, "1.94"),
            (0.063, "0.063"),
            (336.0, "336"),
            (7.44, "7.44"),
            (0.0, "0"),
        ],
    )
    def test_plain_decimal(self, value, expect):
        assert report._number(value) == expect


class TestWithinFactor:
    @pytest.mark.parametrize(
        "measured,paper,factor,expect",
        [
            (1.0, 1.0, 1.01, True),
            (2.0, 1.0, 2.0, True),
            (2.1, 1.0, 2.0, False),
            (0.5, 1.0, 2.0, True),
            (0.4, 1.0, 2.0, False),
        ],
    )
    def test_symmetric(self, measured, paper, factor, expect):
        assert within_factor(measured, paper, factor) is expect
