"""The Chrome trace-event / Perfetto exporter and its schema check."""

import json

import pytest

from repro.bench.profile import run_scenario
from repro.bench.topologies import flow_storm_topology
from repro.bench.traceout import (
    build_topology_trace,
    build_trace,
    validate_trace,
    write_topology_trace,
    write_trace,
)
from repro.sim.orchestrator import run_topology


@pytest.fixture(scope="module")
def overload_trace():
    """One interrupt-mode overload storm, exported once for the module
    — the run where every event kind (slices, spans, counters, alert
    instants) must appear."""
    result = run_scenario("overload-interrupt")
    return result["world"], build_trace(result["world"])


def by_phase(doc):
    out = {}
    for event in doc["traceEvents"]:
        out.setdefault(event["ph"], []).append(event)
    return out


class TestBuildTrace:
    def test_schema_valid(self, overload_trace):
        _, doc = overload_trace
        assert validate_trace(doc) == []

    def test_every_event_kind_present(self, overload_trace):
        _, doc = overload_trace
        phases = by_phase(doc)
        assert phases.get("X"), "no charge slices"
        assert phases.get("b") and phases.get("e"), "no packet spans"
        assert phases.get("C"), "no counter series"
        assert phases.get("i"), "no alert instants"
        assert phases.get("M"), "no process/thread metadata"

    def test_alert_instants_include_the_livelock(self, overload_trace):
        world, doc = overload_trace
        names = {e["name"] for e in by_phase(doc)["i"]}
        assert "ALERT receive_livelock" in names
        # and the alert's timestamp round-trips the telemetry record
        [alert] = world.telemetry.alerts_for(rule="receive_livelock")
        [instant] = [
            e for e in by_phase(doc)["i"]
            if e["name"] == "ALERT receive_livelock"
        ]
        assert instant["ts"] == pytest.approx(alert.fired_at * 1e6)

    def test_spans_are_balanced_and_carry_outcomes(self, overload_trace):
        _, doc = overload_trace
        phases = by_phase(doc)
        begins = {e["id"] for e in phases["b"]}
        ends = {e["id"] for e in phases["e"]}
        assert begins == ends
        outcomes = {e["args"]["outcome"] for e in phases["e"]}
        assert "delivered" in outcomes
        assert "dropped_overflow" in outcomes   # it was a livelock run

    def test_hosts_become_named_processes(self, overload_trace):
        _, doc = overload_trace
        process_names = {
            e["args"]["name"]
            for e in by_phase(doc)["M"]
            if e["name"] == "process_name"
        }
        assert "host:receiver" in process_names
        thread_names = {
            e["args"]["name"]
            for e in by_phase(doc)["M"]
            if e["name"] == "thread_name"
        }
        assert "nic" in thread_names

    def test_counter_values_match_series(self, overload_trace):
        world, doc = overload_trace
        series = world.telemetry.series("receiver", "pf.delivered")
        [receiver_pid] = [
            e["pid"]
            for e in by_phase(doc)["M"]
            if e["name"] == "process_name"
            and e["args"]["name"] == "host:receiver"
        ]
        counters = [
            e for e in by_phase(doc)["C"]
            if e["name"] == "pf.delivered" and e["pid"] == receiver_pid
        ]
        assert len(counters) == len(series)
        assert counters[-1]["args"]["value"] == series.latest()

    def test_host_filter_scopes_the_export(self, overload_trace):
        world, _ = overload_trace
        doc = build_trace(world, host="receiver")
        hosts = set(doc["otherData"]["hosts"])
        assert "receiver" in hosts
        assert hosts <= {"receiver", "wire"}

    def test_ledgerless_world_still_exports_counters(self):
        from repro.sim import Sleep, World

        world = World(telemetry=True)
        host = world.host("solo")

        def napper():
            yield Sleep(0.05)

        host.spawn("nap", napper())
        world.run()
        doc = build_trace(world)
        assert validate_trace(doc) == []
        phases = by_phase(doc)
        assert phases.get("C")
        assert "X" not in phases


class TestWriteTrace:
    def test_round_trips_as_json(self, overload_trace, tmp_path):
        world, _ = overload_trace
        path = tmp_path / "trace.json"
        doc = write_trace(world, path)
        loaded = json.loads(path.read_text())
        assert loaded == doc
        assert validate_trace(loaded) == []


STORM = dict(segments=2, seed=0, duration=0.1, flows=64, cache_size=16)


def stitched(shards=2, **overrides):
    spec = flow_storm_topology(**{**STORM, **overrides})
    return build_topology_trace(run_topology(spec, shards=shards))


@pytest.fixture(scope="module")
def storm_trace():
    """One stitched 2-shard flow storm, exported once for the module."""
    return stitched()


class TestBuildTopologyTrace:
    def test_schema_valid(self, storm_trace):
        assert validate_trace(storm_trace) == []

    def test_shards_become_process_tracks(self, storm_trace):
        names = {
            e["args"]["name"]
            for e in by_phase(storm_trace)["M"]
            if e["name"] == "process_name"
        }
        assert {"shard:0", "shard:1"} <= names
        # hosts still get their own tracks next to the shard ones
        assert any(name.startswith("host:") for name in names)

    def test_window_slices_cover_the_run(self, storm_trace):
        windows = [
            e for e in by_phase(storm_trace)["X"] if e.get("cat") == "sync"
        ]
        assert windows
        per_shard = {}
        for event in windows:
            per_shard.setdefault(event["pid"], []).append(event)
        assert len(per_shard) == 2
        for slices in per_shard.values():
            assert slices[0]["ts"] == 0.0
            # consecutive windows tile the timeline
            for prev, cur in zip(slices, slices[1:]):
                assert cur["ts"] == pytest.approx(prev["ts"] + prev["dur"])

    def test_flow_events_pair_across_shards(self, storm_trace):
        phases = by_phase(storm_trace)
        starts = {e["id"]: e for e in phases["s"]}
        ends = {e["id"]: e for e in phases["f"]}
        assert starts and set(starts) == set(ends)
        crossings = 0
        for flow_id, start in starts.items():
            end = ends[flow_id]
            assert end["ts"] >= start["ts"]     # capture before delivery
            assert end["bp"] == "e"
            link, _, seq = flow_id.rpartition("#")
            assert link and seq.isdigit()
            if start["pid"] != end["pid"]:
                crossings += 1
        assert crossings == len(starts)   # every hop joins two shards

    def test_egress_counters_present(self, storm_trace):
        counters = [
            e for e in by_phase(storm_trace)["C"]
            if e["name"] == "egress" and e.get("cat") == "sync"
        ]
        assert counters
        assert any(e["args"]["value"] > 0 for e in counters)

    def test_merged_spans_survive_stitching(self, storm_trace):
        phases = by_phase(storm_trace)
        assert {e["id"] for e in phases["b"]} == {
            e["id"] for e in phases["e"]
        }

    def test_export_is_byte_deterministic(self):
        """Same seed, same shard count -> byte-identical JSON, across
        runs and machines (simulated timestamps only)."""
        def render(doc):
            return json.dumps(doc, separators=(",", ":"))

        assert render(stitched()) == render(stitched())
        assert render(stitched(shards=1)) == render(stitched(shards=1))

    def test_payload_is_shard_count_invariant(self):
        """Track layout reflects the partitioning, but the simulation
        payload (spans, charges) must not."""
        def payload(doc):
            return [
                (e["ph"], e["name"], e["ts"], e.get("dur"), e.get("args"))
                for e in doc["traceEvents"]
                if e.get("cat") in ("charge", "packet")
            ]

        assert payload(stitched(shards=1)) == payload(stitched(shards=2))

    def test_write_round_trips(self, tmp_path):
        spec = flow_storm_topology(**STORM)
        result = run_topology(spec, shards=2)
        path = tmp_path / "stitched.json"
        doc = write_topology_trace(result, path)
        loaded = json.loads(path.read_text())
        assert loaded == doc
        assert validate_trace(loaded) == []
        assert loaded["otherData"]["shards"] == 2


class TestValidateTrace:
    def test_rejects_non_object(self):
        assert validate_trace([]) == ["document is not a JSON object"]

    def test_rejects_missing_event_list(self):
        assert validate_trace({}) == ["traceEvents is missing or not a list"]

    def test_flags_unknown_phase_and_missing_keys(self):
        doc = {"traceEvents": [
            {"ph": "Z", "name": "x", "pid": 1},
            {"ph": "X", "name": "x", "pid": 1, "ts": 0.0},       # no dur/tid
            {"ph": "C", "name": "c", "pid": 1, "ts": -1.0, "args": {}},
        ]}
        problems = validate_trace(doc)
        assert any("unknown phase" in p for p in problems)
        assert any("'dur'" in p for p in problems)
        assert any("bad ts" in p for p in problems)
        assert any("args.value" in p for p in problems)

    def test_flags_unnamed_pids(self):
        doc = {"traceEvents": [
            {"ph": "C", "name": "c", "pid": 9, "ts": 0.0,
             "args": {"value": 1}},
        ]}
        assert any(
            "no process_name" in p for p in validate_trace(doc)
        )

    def test_flags_unpaired_flow_events(self):
        named = {"name": "process_name", "ph": "M", "pid": 1,
                 "args": {"name": "shard:0"}}
        start = {"ph": "s", "name": "hop", "pid": 1, "tid": 1,
                 "ts": 0.0, "id": "link#1", "cat": "flow"}
        finish = {"ph": "f", "name": "hop", "pid": 1, "tid": 1,
                  "ts": 1.0, "id": "link#1", "cat": "flow", "bp": "e"}
        assert validate_trace({"traceEvents": [named, start, finish]}) == []
        assert any(
            "never finishes" in p
            for p in validate_trace({"traceEvents": [named, start]})
        )
        assert any(
            "never starts" in p
            for p in validate_trace({"traceEvents": [named, finish]})
        )
