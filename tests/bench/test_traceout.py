"""The Chrome trace-event / Perfetto exporter and its schema check."""

import json

import pytest

from repro.bench.profile import run_scenario
from repro.bench.traceout import build_trace, validate_trace, write_trace


@pytest.fixture(scope="module")
def overload_trace():
    """One interrupt-mode overload storm, exported once for the module
    — the run where every event kind (slices, spans, counters, alert
    instants) must appear."""
    result = run_scenario("overload-interrupt")
    return result["world"], build_trace(result["world"])


def by_phase(doc):
    out = {}
    for event in doc["traceEvents"]:
        out.setdefault(event["ph"], []).append(event)
    return out


class TestBuildTrace:
    def test_schema_valid(self, overload_trace):
        _, doc = overload_trace
        assert validate_trace(doc) == []

    def test_every_event_kind_present(self, overload_trace):
        _, doc = overload_trace
        phases = by_phase(doc)
        assert phases.get("X"), "no charge slices"
        assert phases.get("b") and phases.get("e"), "no packet spans"
        assert phases.get("C"), "no counter series"
        assert phases.get("i"), "no alert instants"
        assert phases.get("M"), "no process/thread metadata"

    def test_alert_instants_include_the_livelock(self, overload_trace):
        world, doc = overload_trace
        names = {e["name"] for e in by_phase(doc)["i"]}
        assert "ALERT receive_livelock" in names
        # and the alert's timestamp round-trips the telemetry record
        [alert] = world.telemetry.alerts_for(rule="receive_livelock")
        [instant] = [
            e for e in by_phase(doc)["i"]
            if e["name"] == "ALERT receive_livelock"
        ]
        assert instant["ts"] == pytest.approx(alert.fired_at * 1e6)

    def test_spans_are_balanced_and_carry_outcomes(self, overload_trace):
        _, doc = overload_trace
        phases = by_phase(doc)
        begins = {e["id"] for e in phases["b"]}
        ends = {e["id"] for e in phases["e"]}
        assert begins == ends
        outcomes = {e["args"]["outcome"] for e in phases["e"]}
        assert "delivered" in outcomes
        assert "dropped_overflow" in outcomes   # it was a livelock run

    def test_hosts_become_named_processes(self, overload_trace):
        _, doc = overload_trace
        process_names = {
            e["args"]["name"]
            for e in by_phase(doc)["M"]
            if e["name"] == "process_name"
        }
        assert "host:receiver" in process_names
        thread_names = {
            e["args"]["name"]
            for e in by_phase(doc)["M"]
            if e["name"] == "thread_name"
        }
        assert "nic" in thread_names

    def test_counter_values_match_series(self, overload_trace):
        world, doc = overload_trace
        series = world.telemetry.series("receiver", "pf.delivered")
        [receiver_pid] = [
            e["pid"]
            for e in by_phase(doc)["M"]
            if e["name"] == "process_name"
            and e["args"]["name"] == "host:receiver"
        ]
        counters = [
            e for e in by_phase(doc)["C"]
            if e["name"] == "pf.delivered" and e["pid"] == receiver_pid
        ]
        assert len(counters) == len(series)
        assert counters[-1]["args"]["value"] == series.latest()

    def test_host_filter_scopes_the_export(self, overload_trace):
        world, _ = overload_trace
        doc = build_trace(world, host="receiver")
        hosts = set(doc["otherData"]["hosts"])
        assert "receiver" in hosts
        assert hosts <= {"receiver", "wire"}

    def test_ledgerless_world_still_exports_counters(self):
        from repro.sim import Sleep, World

        world = World(telemetry=True)
        host = world.host("solo")

        def napper():
            yield Sleep(0.05)

        host.spawn("nap", napper())
        world.run()
        doc = build_trace(world)
        assert validate_trace(doc) == []
        phases = by_phase(doc)
        assert phases.get("C")
        assert "X" not in phases


class TestWriteTrace:
    def test_round_trips_as_json(self, overload_trace, tmp_path):
        world, _ = overload_trace
        path = tmp_path / "trace.json"
        doc = write_trace(world, path)
        loaded = json.loads(path.read_text())
        assert loaded == doc
        assert validate_trace(loaded) == []


class TestValidateTrace:
    def test_rejects_non_object(self):
        assert validate_trace([]) == ["document is not a JSON object"]

    def test_rejects_missing_event_list(self):
        assert validate_trace({}) == ["traceEvents is missing or not a list"]

    def test_flags_unknown_phase_and_missing_keys(self):
        doc = {"traceEvents": [
            {"ph": "Z", "name": "x", "pid": 1},
            {"ph": "X", "name": "x", "pid": 1, "ts": 0.0},       # no dur/tid
            {"ph": "C", "name": "c", "pid": 1, "ts": -1.0, "args": {}},
        ]}
        problems = validate_trace(doc)
        assert any("unknown phase" in p for p in problems)
        assert any("'dur'" in p for p in problems)
        assert any("bad ts" in p for p in problems)
        assert any("args.value" in p for p in problems)
