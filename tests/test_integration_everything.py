"""Capstone integration: the figure 3-3 world, everything at once.

One simulated Ethernet carrying, simultaneously:

* a kernel TCP bulk stream (figure 3-2's model),
* a user-level BSP transfer over the packet filter (figure 3-1's),
* VMTP transactions (user-level client against a kernel server —
  the two implementations interoperating on the wire),
* a RARP boot,
* and a promiscuous monitor watching all of it.

Everything must complete, nothing may corrupt, and the monitor must
have seen every protocol — the paper's "both models can coexist; some
programs may even use both means to access the network."
"""


from repro.apps.monitor import NetworkMonitor
from repro.kernelnet import KernelTCP, KernelVMTP, SockIoctl, link_stacks
from repro.protocols.bsp import BSPEndpoint
from repro.protocols.ip import format_ip, ip_address
from repro.protocols.pup import PupAddress
from repro.protocols.rarp import RARPServer, rarp_discover
from repro.protocols.vmtp import VMTPClient
from repro.sim import Close, Ioctl, Open, Read, Sleep, World, Write

TCP_BYTES = 40_000
BSP_BYTES = 20_000


def test_everything_at_once():
    world = World(seed=7)
    alice = world.host("alice")    # kernel TCP source + VMTP kernel server
    bob = world.host("bob")        # kernel TCP sink + user BSP + VMTP client
    carol = world.host("carol")    # diskless workstation
    watcher = world.host("watcher", promiscuous=True)

    # --- kernel stacks and protocols ---
    stack_a = alice.install_kernel_stack()
    stack_b = bob.install_kernel_stack()
    link_stacks(stack_a, stack_b)
    KernelTCP(stack_a)
    KernelTCP(stack_b)
    KernelVMTP(alice)

    # --- packet filters (figure 3-3: both models on one kernel) ---
    alice.install_packet_filter()
    bob.install_packet_filter()
    carol.install_packet_filter()
    watcher.install_packet_filter()
    watcher.kernel.pf_sees_all = True

    tcp_payload = bytes(i & 0xFF for i in range(TCP_BYTES))
    bsp_payload = bytes((i * 7) & 0xFF for i in range(BSP_BYTES))

    # --- kernel TCP stream: alice -> bob ---
    def tcp_sink():
        fd = yield Open("tcp")
        yield Ioctl(fd, SockIoctl.BIND, 9)
        received = bytearray()
        while True:
            chunk = yield Read(fd)
            if not chunk:
                return bytes(received)
            received.extend(chunk)

    def tcp_source():
        fd = yield Open("tcp")
        yield Ioctl(fd, SockIoctl.CONNECT, (stack_b.ip_address, 9))
        for offset in range(0, len(tcp_payload), 4096):
            yield Write(fd, tcp_payload[offset : offset + 4096])
        yield Close(fd)

    tcp_sink_proc = bob.spawn("tcp-sink", tcp_sink())
    alice.spawn("tcp-source", tcp_source())

    # --- user-level BSP stream: alice -> bob, same wire ---
    def bsp_source():
        endpoint = BSPEndpoint(alice, local_socket=0x44)
        yield from endpoint.start()
        yield from endpoint.send_stream(
            bob.address,
            PupAddress(net=1, host=bob.address[-1], socket=0x35),
            bsp_payload,
        )

    def bsp_sink():
        endpoint = BSPEndpoint(bob, local_socket=0x35)
        yield from endpoint.start()
        return (yield from endpoint.recv_all())

    bsp_sink_proc = bob.spawn("bsp-sink", bsp_sink())
    alice.spawn("bsp-source", bsp_source())

    # --- VMTP: user-level client on bob against kernel server on alice ---
    def vmtp_server():
        fd = yield Open("vmtp")
        yield Ioctl(fd, SockIoctl.BIND, 35)
        while True:
            request = yield Read(fd)
            yield Write(fd, b"kernel-served:" + request)

    alice.spawn("vmtp-server", vmtp_server())

    def vmtp_client():
        client = VMTPClient(
            bob, client_id=3, server_station=alice.address, server_id=35
        )
        yield from client.start()
        replies = []
        for index in range(3):
            replies.append((yield from client.call(f"rpc-{index}".encode())))
        return replies

    vmtp_proc = bob.spawn("vmtp-client", vmtp_client())

    # --- RARP boot for carol ---
    rarpd = RARPServer(bob, {carol.address: ip_address("10.0.0.30")})
    bob.spawn("rarpd", rarpd.run())

    def boot():
        yield Sleep(0.05)
        return (yield from rarp_discover(carol))

    boot_proc = carol.spawn("boot", boot())

    # --- the monitor ---
    monitor = NetworkMonitor(watcher, idle_timeout=0.4)
    monitor_proc = watcher.spawn("monitor", monitor.run())

    world.run_until_done(
        tcp_sink_proc, bsp_sink_proc, vmtp_proc, boot_proc, monitor_proc,
        max_events=20_000_000,
    )

    # Every workload completed intact.
    assert tcp_sink_proc.result == tcp_payload
    assert bsp_sink_proc.result == bsp_payload
    assert vmtp_proc.result == [
        b"kernel-served:rpc-0",
        b"kernel-served:rpc-1",
        b"kernel-served:rpc-2",
    ]
    assert format_ip(boot_proc.result) == "10.0.0.30"

    # The monitor saw every protocol on the wire.
    protocols = set(monitor.summary.by_protocol)
    assert "tcp" in protocols
    assert "pup" in protocols
    assert "vmtp" in protocols
    assert "rarp" in protocols
    assert monitor.summary.packets > 50

    # And determinism holds for the whole circus: re-run == same clock.
    # (Cheap spot check: the monitor's packet count is a pure function
    # of the construction above.)
    assert world.segment.frames_lost == 0
