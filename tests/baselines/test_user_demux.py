"""Tests for the user-level demultiplexing process baseline."""

import pytest

from repro.baselines.user_demux import UserDemuxSystem, catch_all_filter
from repro.core.interpreter import evaluate
from repro.sim import Open, Sleep, World, Write


def build(classify, *, batching=False, destinations=("a", "b")):
    world = World()
    sender = world.host("sender")
    receiver = world.host("receiver")
    sender.install_packet_filter()
    receiver.install_packet_filter()
    system = UserDemuxSystem(receiver, classify=classify, batching=batching)
    inboxes = {key: system.add_destination(key) for key in destinations}
    return world, sender, receiver, system, inboxes


def frame(sender, receiver, ethertype, payload=b"x" * 32):
    return sender.link.frame(
        receiver.address, sender.address, ethertype, payload
    )


def classify_by_type(host):
    def classify(data):
        return {0x0A00: "a", 0x0B00: "b"}.get(host.link.ethertype_of(data))

    return classify


class TestForwarding:
    def test_packets_reach_the_right_destination(self):
        world, sender, receiver, system, inboxes = build(lambda d: None)
        system.classify = classify_by_type(receiver)

        def dest(key, expect):
            def body():
                got = []
                for _ in range(expect):
                    got.append((yield from inboxes[key].read()))
                return got

            return body()

        dest_a = receiver.spawn("dest-a", dest("a", 2))
        dest_b = receiver.spawn("dest-b", dest("b", 1))
        system.register(inboxes["a"], dest_a)
        system.register(inboxes["b"], dest_b)
        demux_proc = receiver.spawn("demuxd", system.run())
        system.attach(demux_proc)

        def send():
            fd = yield Open("pf")
            yield Sleep(0.02)
            yield Write(fd, frame(sender, receiver, 0x0A00, b"first-a"))
            yield Write(fd, frame(sender, receiver, 0x0B00, b"only-b"))
            yield Write(fd, frame(sender, receiver, 0x0A00, b"second-a"))

        sender.spawn("send", send())
        world.run_until_done(dest_a, dest_b)
        assert [receiver.link.payload_of(p) for p in dest_a.result] == [
            b"first-a", b"second-a",
        ]
        assert receiver.link.payload_of(dest_b.result[0]) == b"only-b"
        assert system.packets_forwarded == 3

    def test_unroutable_counted(self):
        world, sender, receiver, system, inboxes = build(lambda d: "nowhere")

        def dest():
            yield Sleep(1.0)

        dest_proc = receiver.spawn("dest", dest())
        system.register(inboxes["a"], dest_proc)
        demux_proc = receiver.spawn("demuxd", system.run())
        system.attach(demux_proc)

        def send():
            fd = yield Open("pf")
            yield Sleep(0.02)
            yield Write(fd, frame(sender, receiver, 0x0C00))

        sender.spawn("send", send())
        world.run_until_done(dest_proc)
        assert system.packets_unroutable == 1

    def test_attach_required(self):
        world, _, receiver, system, _ = build(lambda d: "a")
        demux_proc = receiver.spawn("demuxd", system.run())
        world.run()
        assert isinstance(demux_proc.error, RuntimeError) or demux_proc.done

    def test_duplicate_destination_rejected(self):
        _, _, _, system, _ = build(lambda d: None)
        with pytest.raises(ValueError):
            system.add_destination("a")


class TestCatchAllFilter:
    def test_accepts_everything(self):
        program = catch_all_filter()
        for packet in (b"", b"\x00", bytes(64), bytes(range(20))):
            assert evaluate(program, packet).accepted

    def test_high_priority(self):
        assert catch_all_filter().priority == 200


class TestCostStructure:
    def test_per_packet_overheads_match_section_6_5_1(self):
        """"at least two context switches ... [and] two additional data
        transfers" per packet, versus one copy for direct delivery."""
        from repro.bench.scenarios import count_receive_events

        kernel = count_receive_events("kernel", count=30)
        user = count_receive_events("user", count=30)
        assert user["context_switches"] - kernel["context_switches"] >= 1.0
        assert user["copies"] - kernel["copies"] == pytest.approx(2.0, abs=0.1)
        assert user["syscalls"] - kernel["syscalls"] >= 1.9
        assert user["cpu_ms"] > kernel["cpu_ms"]
