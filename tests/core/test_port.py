"""Tests for ports: queues, batching, drop counting, policies."""

import pytest

from repro.core.port import (
    DEFAULT_QUEUE_LIMIT,
    DeliveredPacket,
    Port,
    ReadTimeoutPolicy,
)


class TestQueue:
    def test_enqueue_dequeue(self):
        port = Port(0)
        assert port.enqueue(b"one")
        assert port.enqueue(b"two")
        [first] = port.read_packets(1)
        assert first.data == b"one"
        assert port.queued == 1

    def test_overflow_drops_and_counts(self):
        port = Port(0, queue_limit=2)
        assert port.enqueue(b"1")
        assert port.enqueue(b"2")
        assert not port.enqueue(b"3")
        assert port.stats.dropped_overflow == 1
        assert port.stats.accepted == 3
        assert port.stats.delivered == 2

    def test_drop_count_rides_on_next_packet(self):
        """Section 3.3: packets carry the count of packets lost so far."""
        port = Port(0, queue_limit=1)
        port.enqueue(b"1")
        port.enqueue(b"dropped")
        port.read_packets()
        port.enqueue(b"2")
        [packet] = port.read_packets()
        assert packet.drops_before == 1

    def test_queue_limit_shrink_discards(self):
        port = Port(0, queue_limit=8)
        for i in range(8):
            port.enqueue(bytes([i]))
        port.set_queue_limit(3)
        assert port.queued == 3
        assert port.stats.dropped_resize == 5
        # Shrink discards are not wire-time congestion: the section 3.3
        # overflow count must not move.
        assert port.stats.dropped_overflow == 0

    def test_shrink_does_not_inflate_drops_before(self):
        """Regression: a shrink used to count into dropped_overflow,
        stamping a phantom loss onto every later packet's mark."""
        port = Port(0, queue_limit=4)
        for i in range(4):
            port.enqueue(bytes([i]))
        port.set_queue_limit(2)
        port.read_packets()
        assert port.enqueue(b"after")
        [packet] = port.read_packets()
        assert packet.drops_before == 0

    def test_queue_limit_must_be_positive(self):
        with pytest.raises(ValueError):
            Port(0, queue_limit=0)
        with pytest.raises(ValueError):
            Port(0).set_queue_limit(0)

    def test_default_limit(self):
        assert Port(0).queue_limit == DEFAULT_QUEUE_LIMIT

    def test_flush(self):
        port = Port(0)
        port.enqueue(b"a")
        port.enqueue(b"b")
        assert port.flush() == 2
        assert not port.readable()


class TestBatching:
    def test_read_all(self):
        port = Port(0)
        for i in range(5):
            port.enqueue(bytes([i]))
        batch = port.read_packets(None)
        assert len(batch) == 5
        assert port.stats.reads == 1
        assert port.stats.read == 5
        assert port.stats.packets_per_read == 5.0

    def test_read_limited(self):
        port = Port(0)
        for i in range(5):
            port.enqueue(bytes([i]))
        assert len(port.read_packets(2)) == 2
        assert port.queued == 3

    def test_empty_read_not_counted(self):
        port = Port(0)
        assert port.read_packets() == []
        assert port.stats.reads == 0
        assert port.stats.packets_per_read == 0.0


class TestTimestamping:
    def test_timestamp_only_when_enabled(self):
        port = Port(0)
        port.enqueue(b"x", timestamp=1.25)
        [plain] = port.read_packets()
        assert plain.timestamp is None

        port.timestamping = True
        port.enqueue(b"y", timestamp=2.5)
        [stamped] = port.read_packets()
        assert stamped.timestamp == 2.5


class TestReadTimeoutPolicy:
    def test_immediate(self):
        policy = ReadTimeoutPolicy.immediate()
        assert not policy.blocking

    def test_forever(self):
        policy = ReadTimeoutPolicy.forever()
        assert policy.blocking and policy.timeout is None

    def test_after(self):
        policy = ReadTimeoutPolicy.after(0.5)
        assert policy.blocking and policy.timeout == 0.5

    def test_negative_timeout_rejected(self):
        with pytest.raises(ValueError):
            ReadTimeoutPolicy.after(-1)


class TestDeliveredPacket:
    def test_len(self):
        assert len(DeliveredPacket(data=b"abcd")) == 4

    def test_priority_of_unbound_port_sorts_last(self):
        assert Port(0).priority == -1
