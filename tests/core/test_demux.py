"""Tests for the figure 4-1 demultiplexer loop and section 3.2 rules."""

import pytest

from repro.core.compiler import compile_expr, word
from repro.core.demux import Engine, PacketFilterDemux
from repro.core.interpreter import ShortCircuitMode
from repro.core.port import Port
from repro.core.program import FilterProgram, asm
from repro.core.validator import ValidationError
from repro.core.words import pack_words


def port_with(program, port_id=0, **attrs):
    port = Port(port_id)
    port.bind_filter(program)
    for name, value in attrs.items():
        setattr(port, name, value)
    return port


def type_filter(value, priority=10):
    return compile_expr(word(1) == value, priority=priority)


PACKET_A = pack_words([0, 0xA, 0, 0])
PACKET_B = pack_words([0, 0xB, 0, 0])


class TestBasicDelivery:
    def test_accepting_port_gets_packet(self):
        demux = PacketFilterDemux()
        port = port_with(type_filter(0xA))
        demux.attach(port)
        report = demux.deliver(PACKET_A)
        assert report.accepted_by == (0,)
        assert port.queued == 1

    def test_rejecting_all_filters_drops(self):
        demux = PacketFilterDemux()
        demux.attach(port_with(type_filter(0xA)))
        report = demux.deliver(PACKET_B)
        assert not report.accepted
        assert demux.packets_unclaimed == 1

    def test_first_match_wins(self):
        """"Once a packet has been accepted for delivery to a process,
        it will not be submitted to the filters of any other
        processes." """
        demux = PacketFilterDemux()
        first = port_with(type_filter(0xA), port_id=0)
        second = port_with(type_filter(0xA), port_id=1)
        demux.attach(first)
        demux.attach(second)
        report = demux.deliver(PACKET_A)
        assert report.accepted_by == (0,)
        assert second.queued == 0

    def test_no_filter_port_rejected_at_attach(self):
        demux = PacketFilterDemux()
        with pytest.raises(ValueError):
            demux.attach(Port(0))

    def test_double_attach_rejected(self):
        demux = PacketFilterDemux()
        port = port_with(type_filter(0xA))
        demux.attach(port)
        with pytest.raises(ValueError):
            demux.attach(port)

    def test_detach(self):
        demux = PacketFilterDemux()
        port = port_with(type_filter(0xA))
        demux.attach(port)
        demux.detach(port)
        assert not demux.deliver(PACKET_A).accepted
        with pytest.raises(ValueError):
            demux.detach(port)


class TestPriority:
    def test_higher_priority_wins(self):
        demux = PacketFilterDemux()
        low = port_with(type_filter(0xA, priority=1), port_id=0)
        high = port_with(type_filter(0xA, priority=9), port_id=1)
        demux.attach(low)
        demux.attach(high)
        assert demux.deliver(PACKET_A).accepted_by == (1,)

    def test_attach_order_does_not_trump_priority(self):
        demux = PacketFilterDemux()
        high = port_with(type_filter(0xA, priority=9), port_id=1)
        low = port_with(type_filter(0xA, priority=1), port_id=0)
        demux.attach(high)
        demux.attach(low)
        assert demux.deliver(PACKET_A).accepted_by == (1,)

    def test_priority_skips_early_rejection(self):
        """Priority ordering also reduces predicates tested when the
        likely filter sorts first (section 3.2's second purpose)."""
        demux = PacketFilterDemux()
        demux.attach(port_with(type_filter(0xA, priority=9), port_id=0))
        demux.attach(port_with(type_filter(0xB, priority=1), port_id=1))
        report = demux.deliver(PACKET_A)
        assert report.predicates_tested == 1


class TestCopyAll:
    def test_copy_all_continues_to_lower_priority(self):
        demux = PacketFilterDemux()
        monitor = port_with(
            type_filter(0xA, priority=9), port_id=0, copy_all=True
        )
        owner = port_with(type_filter(0xA, priority=1), port_id=1)
        demux.attach(monitor)
        demux.attach(owner)
        report = demux.deliver(PACKET_A)
        assert report.accepted_by == (0, 1)
        assert monitor.queued == 1 and owner.queued == 1

    def test_non_copy_all_stops_even_with_monitor_below(self):
        demux = PacketFilterDemux()
        owner = port_with(type_filter(0xA, priority=9), port_id=0)
        below = port_with(type_filter(0xA, priority=1), port_id=1)
        demux.attach(owner)
        demux.attach(below)
        assert demux.deliver(PACKET_A).accepted_by == (0,)


class TestOverflow:
    def test_dropped_by_reported(self):
        demux = PacketFilterDemux()
        port = port_with(type_filter(0xA))
        port.set_queue_limit(1)
        demux.attach(port)
        assert demux.deliver(PACKET_A).accepted_by == (0,)
        report = demux.deliver(PACKET_A)
        assert report.dropped_by == (0,)
        assert report.accepted  # accepted by the filter, lost to the queue
        assert port.stats.dropped_overflow == 1


class TestReordering:
    def test_busier_filter_moves_first_within_priority(self):
        demux = PacketFilterDemux()
        demux.REORDER_INTERVAL = 8
        quiet = port_with(type_filter(0xA, priority=5), port_id=0)
        busy = port_with(type_filter(0xB, priority=5), port_id=1)
        demux.attach(quiet)
        demux.attach(busy)
        for _ in range(10):
            demux.deliver(PACKET_B)
        # After reorder, a B packet is found on the first predicate.
        report = demux.deliver(PACKET_B)
        assert report.predicates_tested == 1

    def test_reordering_never_crosses_priorities(self):
        demux = PacketFilterDemux()
        demux.REORDER_INTERVAL = 4
        high = port_with(type_filter(0xA, priority=9), port_id=0)
        busy_low = port_with(type_filter(0xA, priority=1), port_id=1)
        demux.attach(high)
        demux.attach(busy_low)
        for _ in range(12):
            report = demux.deliver(PACKET_A)
            # Port 0 always wins (its bounded queue may drop, but the
            # packet never reaches the lower-priority port).
            assert report.accepted_by + report.dropped_by == (0,)
            assert busy_low.queued == 0

    def test_reordering_can_be_disabled(self):
        demux = PacketFilterDemux(reorder_same_priority=False)
        demux.REORDER_INTERVAL = 2
        quiet = port_with(type_filter(0xA, priority=5), port_id=0)
        busy = port_with(type_filter(0xB, priority=5), port_id=1)
        demux.attach(quiet)
        demux.attach(busy)
        for _ in range(10):
            demux.deliver(PACKET_B)
        assert demux.deliver(PACKET_B).predicates_tested == 2


class TestEngines:
    @pytest.mark.parametrize("engine", list(Engine))
    def test_all_engines_agree(self, engine):
        demux = PacketFilterDemux(engine=engine)
        demux.attach(port_with(type_filter(0xA), port_id=0))
        demux.attach(port_with(type_filter(0xB), port_id=1))
        assert demux.deliver(PACKET_A).accepted_by == (0,)
        assert demux.deliver(PACKET_B).accepted_by == (1,)
        assert not demux.deliver(pack_words([0, 0xC])).accepted

    @pytest.mark.parametrize("engine", list(Engine))
    def test_engine_accepts_string_value(self, engine):
        # Engine checks in the hot path are identity tests, so a raw
        # string like engine="ir" must normalize to the enum member at
        # construction — otherwise it silently falls back to the
        # checked interpreter.
        demux = PacketFilterDemux(engine=engine.value)
        assert demux.engine is engine
        demux.attach(port_with(type_filter(0xA)))
        assert demux.deliver(PACKET_A).accepted_by == (0,)

    def test_engine_rejects_unknown_name(self):
        with pytest.raises(ValueError):
            PacketFilterDemux(engine="turbo")

    @pytest.mark.parametrize(
        "engine", [Engine.PREVALIDATED, Engine.COMPILED]
    )
    def test_validating_engines_reject_bad_programs_at_attach(self, engine):
        demux = PacketFilterDemux(engine=engine)
        bad = port_with(FilterProgram(asm(("PUSHONE", "AND"))))
        with pytest.raises(ValidationError):
            demux.attach(bad)

    def test_prevalidated_skips_short_packets(self):
        demux = PacketFilterDemux(engine=Engine.PREVALIDATED)
        demux.attach(port_with(type_filter(0xA)))
        assert not demux.deliver(b"\x00").accepted

    def test_decision_table_mode(self):
        demux = PacketFilterDemux(use_decision_table=True)
        for index, value in enumerate((0xA, 0xB, 0xC)):
            demux.attach(port_with(type_filter(value), port_id=index))
        report = demux.deliver(PACKET_B)
        assert report.accepted_by == (1,)
        # The table routes straight to the one candidate filter.
        assert report.predicates_tested == 1

    def test_decision_table_disabled_under_no_push_mode(self):
        demux = PacketFilterDemux(
            use_decision_table=True, mode=ShortCircuitMode.NO_PUSH
        )
        demux.attach(port_with(type_filter(0xA)))
        assert demux._table is None
        assert demux.deliver(PACKET_A).accepted


class TestAccounting:
    def test_mean_predicates_tested(self):
        demux = PacketFilterDemux()
        demux.attach(port_with(type_filter(0xA, priority=9), port_id=0))
        demux.attach(port_with(type_filter(0xB, priority=1), port_id=1))
        demux.deliver(PACKET_A)  # 1 predicate
        demux.deliver(PACKET_B)  # 2 predicates
        assert demux.mean_predicates_tested == pytest.approx(1.5)

    def test_instruction_counts_accumulate(self):
        demux = PacketFilterDemux()
        demux.attach(port_with(type_filter(0xA)))
        report = demux.deliver(PACKET_A)
        assert report.instructions_executed > 0
