"""The paper's own example filters, behaving exactly as described."""

import pytest

from repro.core.interpreter import evaluate
from repro.core.paper_filters import (
    ETHERTYPE_PUP_3MB,
    figure_3_8_pup_type_range,
    figure_3_9_pup_socket_35,
    pup_socket_filter,
)
from repro.core.words import pack_words


def pup_3mb_packet(pup_type=1, dst_socket=35, ethertype=ETHERTYPE_PUP_3MB):
    """A Pup packet laid out per figure 3-7 (3 Mb Ethernet framing)."""
    return pack_words(
        [
            0x0102,                      # EtherDst | EtherSrc
            ethertype,                   # EtherType
            24,                          # PupLength
            pup_type & 0xFF,             # HopCount | PupType
            0, 1,                        # Pup identifier
            0x0105,                      # DstNet | DstHost
            (dst_socket >> 16) & 0xFFFF, # DstSocket high
            dst_socket & 0xFFFF,         # DstSocket low
            0x0106,                      # SrcNet | SrcHost
            0, 99,                       # SrcSocket
            0xDEAD,                      # data
        ]
    )


class TestFigure38:
    """Accepts Pup packets with 0 < PupType <= 100."""

    program = figure_3_8_pup_type_range()

    @pytest.mark.parametrize("pup_type", [1, 2, 50, 100])
    def test_accepts_types_in_range(self, pup_type):
        assert evaluate(self.program, pup_3mb_packet(pup_type=pup_type)).accepted

    @pytest.mark.parametrize("pup_type", [0, 101, 200, 255])
    def test_rejects_types_out_of_range(self, pup_type):
        assert not evaluate(self.program, pup_3mb_packet(pup_type=pup_type)).accepted

    def test_rejects_non_pup(self):
        assert not evaluate(self.program, pup_3mb_packet(ethertype=0x800)).accepted

    def test_masks_out_hop_count(self):
        """PupType shares a word with HopCount; the mask must isolate it."""
        packet = bytearray(pup_3mb_packet(pup_type=50))
        packet[6] = 0xFF  # absurd hop count in the high byte of word 3
        assert evaluate(self.program, bytes(packet)).accepted

    def test_always_runs_all_ten_instructions(self):
        result = evaluate(self.program, pup_3mb_packet())
        assert result.instructions_executed == 10


class TestFigure39:
    """Accepts Pup packets with DstSocket == 35, short-circuited."""

    program = figure_3_9_pup_socket_35()

    def test_accepts_socket_35(self):
        assert evaluate(self.program, pup_3mb_packet(dst_socket=35)).accepted

    def test_rejects_other_socket(self):
        assert not evaluate(self.program, pup_3mb_packet(dst_socket=36)).accepted

    def test_rejects_high_word_mismatch(self):
        # Socket 0x10023 has low word 35 but a nonzero high word.
        packet = pup_3mb_packet(dst_socket=0x10023)
        assert not evaluate(self.program, packet).accepted

    def test_rejects_non_pup(self):
        packet = pup_3mb_packet(dst_socket=35, ethertype=0x800)
        assert not evaluate(self.program, packet).accepted

    def test_socket_mismatch_exits_after_two_instructions(self):
        """The paper's rationale: "in most packets the DstSocket is
        likely not to match and so the short-circuit operation will
        exit immediately." """
        result = evaluate(self.program, pup_3mb_packet(dst_socket=36))
        assert result.short_circuited
        assert result.instructions_executed == 2

    def test_matching_packet_runs_all_six(self):
        result = evaluate(self.program, pup_3mb_packet(dst_socket=35))
        assert result.instructions_executed == 6


class TestGeneralizedSocketFilter:
    def test_matches_figure_3_9_for_socket_35(self):
        generic = pup_socket_filter(35)
        for socket in (35, 36, 0x10023):
            packet = pup_3mb_packet(dst_socket=socket)
            assert (
                evaluate(generic, packet).accepted
                == evaluate(figure_3_9_pup_socket_35(), packet).accepted
            )

    def test_32_bit_socket(self):
        program = pup_socket_filter(0x0002_0005)
        assert evaluate(program, pup_3mb_packet(dst_socket=0x20005)).accepted
        assert not evaluate(program, pup_3mb_packet(dst_socket=5)).accepted
