"""Systematic conformance matrices for the figure 3-6 semantics.

Where test_interpreter.py spot-checks each operation, this file sweeps
whole cross-products: every comparison against boundary word values,
every short-circuit operator in both continuation modes against both
outcomes, every constant action against every comparison — with an
independent Python oracle computing the expected verdict.
"""

import pytest

from repro.core.instructions import CONSTANT_ACTIONS
from repro.core.interpreter import ShortCircuitMode, evaluate
from repro.core.jit import compile_filter
from repro.core.program import FilterProgram, asm

BOUNDARY_VALUES = [0, 1, 2, 0x00FF, 0x0100, 0x7FFF, 0x8000, 0xFFFE, 0xFFFF]

_ORACLE = {
    "EQ": lambda t2, t1: t2 == t1,
    "NEQ": lambda t2, t1: t2 != t1,
    "LT": lambda t2, t1: t2 < t1,
    "LE": lambda t2, t1: t2 <= t1,
    "GT": lambda t2, t1: t2 > t1,
    "GE": lambda t2, t1: t2 >= t1,
}


class TestComparisonMatrix:
    @pytest.mark.parametrize("op", sorted(_ORACLE))
    def test_all_boundary_pairs(self, op):
        """9x9 value pairs per comparison, interpreter and JIT."""
        for t2 in BOUNDARY_VALUES:
            for t1 in BOUNDARY_VALUES:
                program = FilterProgram(
                    asm(("PUSHLIT", t2), ("PUSHLIT", op, t1))
                )
                expected = _ORACLE[op](t2, t1)
                assert evaluate(program, b"").accepted is expected, (op, t2, t1)
                assert compile_filter(program).accepts(b"") is expected


class TestBitwiseMatrix:
    @pytest.mark.parametrize(
        "op,fn",
        [
            ("AND", lambda a, b: a & b),
            ("OR", lambda a, b: a | b),
            ("XOR", lambda a, b: a ^ b),
        ],
    )
    def test_truthiness_of_results(self, op, fn):
        for t2 in BOUNDARY_VALUES:
            for t1 in BOUNDARY_VALUES:
                program = FilterProgram(
                    asm(("PUSHLIT", t2), ("PUSHLIT", op, t1))
                )
                expected = fn(t2, t1) != 0
                assert evaluate(program, b"").accepted is expected, (op, t2, t1)


class TestConstantActionMatrix:
    @pytest.mark.parametrize(
        "action,constant", sorted(CONSTANT_ACTIONS.items())
    )
    @pytest.mark.parametrize("op", sorted(_ORACLE))
    def test_constant_vs_every_comparison(self, action, constant, op):
        for value in (0, 1, 0x00FF, 0xFF00, 0xFFFF):
            program = FilterProgram(
                asm((action.name,), ("PUSHLIT", op, value))
            )
            expected = _ORACLE[op](constant, value)
            assert evaluate(program, b"").accepted is expected


class TestShortCircuitMatrix:
    """Every SC operator x equal/unequal operands x both modes."""

    CASES = {
        # op: (verdict when terminating, terminates on equality?)
        "COR": (True, True),
        "CAND": (False, False),
        "CNOR": (False, True),
        "CNAND": (True, False),
    }

    @pytest.mark.parametrize("op", sorted(CASES))
    @pytest.mark.parametrize("equal", [True, False])
    @pytest.mark.parametrize(
        "mode", [ShortCircuitMode.PUSH_RESULT, ShortCircuitMode.NO_PUSH]
    )
    def test_termination_and_continuation(self, op, equal, mode):
        verdict, terminates_on_equal = self.CASES[op]
        t2, t1 = (7, 7) if equal else (7, 9)
        terminates = equal == terminates_on_equal
        # A sentinel PUSHZERO after the SC op: if the program continues,
        # the final verdict is the sentinel's (reject); if it
        # terminates, the SC verdict stands.
        program = FilterProgram(
            asm(("PUSHLIT", t2), ("PUSHLIT", op, t1), "PUSHZERO")
        )
        result = evaluate(program, b"", mode=mode)
        if terminates:
            assert result.short_circuited
            assert result.accepted is verdict
            assert result.instructions_executed == 2
        else:
            assert not result.short_circuited
            assert not result.accepted  # the sentinel 0 on top
            assert result.instructions_executed == 3

    @pytest.mark.parametrize("op", sorted(CASES))
    @pytest.mark.parametrize("equal", [True, False])
    def test_jit_matches_on_termination_matrix(self, op, equal):
        t2, t1 = (7, 7) if equal else (7, 9)
        program = FilterProgram(
            asm(("PUSHLIT", t2), ("PUSHLIT", op, t1), "PUSHZERO")
        )
        expected = evaluate(program, b"").accepted
        assert compile_filter(program).accepts(b"") is expected


class TestOperandOrderIsT2OpT1:
    """The figure's comparisons are T2 <op> T1 — push order matters,
    and a swapped implementation would pass symmetric tests; these
    asymmetric ones pin it."""

    def test_lt_is_not_gt(self):
        lt = FilterProgram(asm(("PUSHLIT", 3), ("PUSHLIT", "LT", 8)))
        gt = FilterProgram(asm(("PUSHLIT", 3), ("PUSHLIT", "GT", 8)))
        assert evaluate(lt, b"").accepted      # 3 < 8
        assert not evaluate(gt, b"").accepted  # 3 > 8 is false

    def test_pushword_is_t2_when_pushed_first(self):
        from repro.core.words import pack_words

        packet = pack_words([5])
        program = FilterProgram(
            asm(("PUSHWORD", 0), ("PUSHLIT", "LT", 9))
        )
        assert evaluate(program, packet).accepted  # word0(5) < 9
