"""Property-based tests over the filter machinery (hypothesis).

The invariants DESIGN.md §5 promises:

* instruction and program encodings round-trip;
* the JIT agrees with the interpreter on arbitrary valid programs and
  arbitrary packets, in both short-circuit modes;
* validator soundness: validated programs never fault at runtime on
  long-enough packets (classic level);
* the decision table yields exactly the linear scan's outcome;
* the compiler's output accepts exactly the packets its expression
  describes (checked against a python-level oracle).
"""

from hypothesis import given, settings, strategies as st

from repro.core.compiler import compile_expr, word
from repro.core.decision import DecisionTable
from repro.core.instructions import (
    BinaryOp,
    CLASSIC_OPERATORS,
    Instruction,
    StackAction,
    decode_instruction_word,
    encode_instruction_word,
    pushword,
)
from repro.core.interpreter import (
    FaultCode,
    ShortCircuitMode,
    evaluate,
)
from repro.core.jit import compile_filter
from repro.core.program import FilterProgram
from repro.core.validator import ValidationError, validate
from repro.core.words import get_word, word_count

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------

u16 = st.integers(min_value=0, max_value=0xFFFF)

packets = st.binary(min_size=0, max_size=64)

plain_actions = st.sampled_from(
    [
        StackAction.PUSHLIT,
        StackAction.PUSHZERO,
        StackAction.PUSHONE,
        StackAction.PUSHFFFF,
        StackAction.PUSHFF00,
        StackAction.PUSH00FF,
    ]
)

classic_operators = st.sampled_from(sorted(CLASSIC_OPERATORS, key=int))


@st.composite
def instructions(draw):
    kind = draw(st.integers(0, 2))
    if kind == 0:
        action = int(draw(plain_actions))
    elif kind == 1:
        action = pushword(draw(st.integers(0, 20)))
    else:
        action = int(StackAction.NOPUSH)
    operator = draw(classic_operators)
    literal = draw(u16) if action == StackAction.PUSHLIT else None
    return Instruction(action, operator, literal)


@st.composite
def valid_programs(draw):
    """Generate programs that pass validation (retry-filter approach:
    build a random instruction list, then repair it by construction)."""
    length = draw(st.integers(1, 12))
    body = []
    depth = 0
    for _ in range(length):
        ins = draw(instructions())
        # Repair: ensure the operator never underflows.
        pushes = 1 if ins.pushes else 0
        if ins.operator != BinaryOp.NOP and depth + pushes < 2:
            ins = Instruction(ins.action_code, BinaryOp.NOP, ins.literal)
        depth += 1 if ins.pushes else 0
        if ins.operator != BinaryOp.NOP:
            depth -= 1  # PUSH_RESULT mode: every operator nets -1
        body.append(ins)
    if depth < 1:
        body.append(Instruction(StackAction.PUSHONE))
    program = FilterProgram(body, priority=draw(st.integers(0, 255)))
    validate(program)  # must hold by construction
    return program


# ---------------------------------------------------------------------------
# round trips
# ---------------------------------------------------------------------------


class TestEncodingProperties:
    @given(instructions())
    def test_instruction_roundtrip(self, ins):
        assert decode_instruction_word(
            encode_instruction_word(ins), ins.literal
        ) == ins

    @given(valid_programs())
    def test_program_roundtrip(self, program):
        assert FilterProgram.decode(program.encode()) == program

    @given(valid_programs())
    def test_encoded_length_matches_wire_words(self, program):
        assert len(program.encode()) == 2 + program.encoded_length


# ---------------------------------------------------------------------------
# interpreter / JIT agreement & validator soundness
# ---------------------------------------------------------------------------


class TestEvaluationProperties:
    @given(valid_programs(), packets)
    @settings(max_examples=200)
    def test_jit_matches_interpreter(self, program, packet):
        compiled = compile_filter(program)
        expected = evaluate(program, packet).accepted
        assert compiled.accepts(packet) is expected

    @given(valid_programs(), packets)
    def test_fast_path_matches_checked(self, program, packet):
        report = validate(program)
        if len(packet) < report.min_packet_bytes:
            return  # the demux would not run the fast path at all
        checked = evaluate(program, packet, checked=True)
        fast = evaluate(program, packet, checked=False)
        assert checked.accepted == fast.accepted

    @given(valid_programs(), packets)
    def test_validated_programs_never_fault_on_long_packets(
        self, program, packet
    ):
        report = validate(program)
        if len(packet) < report.max_packet_bytes_touched:
            return
        result = evaluate(program, packet)
        assert result.fault == FaultCode.NONE

    @given(valid_programs(), packets)
    def test_min_packet_bytes_precheck_is_sound(self, program, packet):
        """Packets shorter than min_packet_bytes are always rejected —
        the invariant the PREVALIDATED demux engine's skip relies on."""
        report = validate(program)
        if len(packet) >= report.min_packet_bytes:
            return
        assert not evaluate(program, packet).accepted

    @given(valid_programs(), packets)
    def test_no_push_jit_matches_no_push_interpreter(self, program, packet):
        try:
            validate(program, mode=ShortCircuitMode.NO_PUSH)
        except ValidationError:
            return  # only meaningful for programs valid in that mode
        compiled = compile_filter(program, mode=ShortCircuitMode.NO_PUSH)
        expected = evaluate(
            program, packet, mode=ShortCircuitMode.NO_PUSH
        ).accepted
        assert compiled.accepts(packet) is expected

    @given(valid_programs(), packets)
    def test_evaluation_is_deterministic(self, program, packet):
        assert evaluate(program, packet) == evaluate(program, packet)


# ---------------------------------------------------------------------------
# compiler against a Python oracle
# ---------------------------------------------------------------------------

field_tests = st.builds(
    lambda index, mask, op, value: (index, mask, op, value),
    st.integers(0, 10),
    st.sampled_from([0xFFFF, 0x00FF, 0xFF00, 0x0F0F]),
    st.sampled_from(["==", "!=", "<", "<=", ">", ">="]),
    u16,
)

_OPS = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


def oracle_test(packet, spec):
    index, mask, op, value = spec
    try:
        field_value = get_word(packet, index) & mask
    except IndexError:
        return False
    return _OPS[op](field_value, value)


def build_expr(spec):
    index, mask, op, value = spec
    field = word(index).masked(mask)
    return field._test(op, value)


class TestCompilerProperties:
    @given(st.lists(field_tests, min_size=1, max_size=4), packets)
    @settings(max_examples=200)
    def test_conjunction_matches_oracle(self, specs, packet):
        expr = build_expr(specs[0])
        for spec in specs[1:]:
            expr = expr & build_expr(spec)
        program = compile_expr(expr)
        expected = all(oracle_test(packet, spec) for spec in specs)
        result = evaluate(program, packet)
        if any(
            spec[0] >= word_count(packet) for spec in specs
        ):
            # Some field is off the end: the filter faults and rejects,
            # matching the oracle's False.
            assert not result.accepted
            assert expected is False
        else:
            assert result.accepted is expected

    @given(st.lists(field_tests, min_size=1, max_size=4), packets)
    @settings(max_examples=200)
    def test_disjunction_matches_oracle(self, specs, packet):
        if any(spec[0] >= word_count(packet) for spec in specs):
            return  # bounds faulting inside OR legs diverges from oracle
        expr = build_expr(specs[0])
        for spec in specs[1:]:
            expr = expr | build_expr(spec)
        program = compile_expr(expr)
        expected = any(oracle_test(packet, spec) for spec in specs)
        assert evaluate(program, packet).accepted is expected


# ---------------------------------------------------------------------------
# decision table exactness
# ---------------------------------------------------------------------------

eq_conjunctions = st.lists(
    st.tuples(st.integers(0, 6), st.integers(0, 3)), min_size=1, max_size=3
)


class TestDecisionTableProperties:
    @given(
        st.lists(eq_conjunctions, min_size=1, max_size=8),
        st.lists(st.integers(0, 4), min_size=7, max_size=7),
    )
    @settings(max_examples=150)
    def test_table_equals_linear_scan(self, filter_specs, packet_words):
        from repro.core.words import pack_words

        programs = []
        for spec in filter_specs:
            expr = None
            for index, value in spec:
                test = word(index) == value
                expr = test if expr is None else expr & test
            programs.append(compile_expr(expr))
        table = DecisionTable.build(
            (i, program, (i,)) for i, program in enumerate(programs)
        )
        packet = pack_words(packet_words)

        naive = [
            i for i, program in enumerate(programs)
            if evaluate(program, packet).accepted
        ]
        offered = list(table.candidates(packet))
        via_table = [
            i for i in offered if evaluate(programs[i], packet).accepted
        ]
        assert naive == via_table
        assert offered == sorted(offered)
