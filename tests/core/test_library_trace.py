"""Tests for the common-filter library and the evaluation tracer."""


from repro.core.interpreter import FaultCode, evaluate
from repro.core.library import (
    ethertype_filter,
    ip_conversation_filter,
    ip_host_filter,
    ip_protocol_filter,
    tcp_port_filter,
    udp_port_filter,
)
from repro.core.paper_filters import figure_3_9_pup_socket_35
from repro.core.trace import trace_evaluation
from repro.core.validator import validate
from repro.core.words import pack_words
from repro.net.ethernet import ETHERNET_3MB, ETHERNET_10MB
from repro.protocols.ethertypes import ETHERTYPE_IP
from repro.protocols.ip import IPHeader, PROTO_TCP, PROTO_UDP, ip_address
from repro.protocols.tcp import TCPFlags, TCPSegment
from repro.protocols.udp import UDPHeader


def ip_frame(src="10.0.0.1", dst="10.0.0.2", protocol=PROTO_UDP,
             payload=b"", options=b""):
    datagram = IPHeader(
        src=ip_address(src), dst=ip_address(dst), protocol=protocol,
        options=options,
    ).encode(payload)
    return ETHERNET_10MB.frame(
        b"\x02" * 6, b"\x01" * 6, ETHERTYPE_IP, datagram
    )


def udp_frame(dst_port, src_port=9999, **kwargs):
    return ip_frame(
        payload=UDPHeader(src_port=src_port, dst_port=dst_port).encode(b"x"),
        **kwargs,
    )


def tcp_frame(dst_port, src_port=9999):
    segment = TCPSegment(
        src_port=src_port, dst_port=dst_port, seq=0, ack=0,
        flags=TCPFlags.ACK,
    )
    return ip_frame(protocol=PROTO_TCP, payload=segment.encode())


class TestFilterLibrary:
    def test_all_builders_validate(self):
        programs = [
            ethertype_filter(0x0800),
            ip_protocol_filter(PROTO_UDP),
            ip_host_filter(ip_address("10.0.0.2")),
            udp_port_filter(53),
            tcp_port_filter(23),
            ip_conversation_filter(
                ip_address("10.0.0.1"), ip_address("10.0.0.2")
            ),
        ]
        for program in programs:
            validate(program)

    def test_ethertype(self):
        program = ethertype_filter(ETHERTYPE_IP)
        assert evaluate(program, ip_frame()).accepted
        other = ETHERNET_10MB.frame(b"\x02" * 6, b"\x01" * 6, 0x0900, b"")
        assert not evaluate(program, other).accepted

    def test_ethertype_on_3mb_link(self):
        program = ethertype_filter(2, link=ETHERNET_3MB)
        frame = ETHERNET_3MB.frame(b"\x05", b"\x07", 2, b"pup")
        assert evaluate(program, frame).accepted

    def test_ip_protocol(self):
        program = ip_protocol_filter(PROTO_UDP)
        assert evaluate(program, udp_frame(53)).accepted
        assert not evaluate(program, tcp_frame(53)).accepted

    def test_ip_host_both_directions(self):
        program = ip_host_filter(ip_address("10.0.0.2"))
        assert evaluate(program, ip_frame(dst="10.0.0.2")).accepted
        assert evaluate(
            program, ip_frame(src="10.0.0.2", dst="10.0.0.9")
        ).accepted
        assert not evaluate(
            program, ip_frame(src="10.0.0.3", dst="10.0.0.4")
        ).accepted

    def test_udp_port_directions(self):
        dst_only = udp_port_filter(53, "dst")
        src_only = udp_port_filter(53, "src")
        either = udp_port_filter(53, "either")
        to_53 = udp_frame(53)
        from_53 = udp_frame(1234, src_port=53)
        assert evaluate(dst_only, to_53).accepted
        assert not evaluate(dst_only, from_53).accepted
        assert evaluate(src_only, from_53).accepted
        assert not evaluate(src_only, to_53).accepted
        assert evaluate(either, to_53).accepted
        assert evaluate(either, from_53).accepted

    def test_udp_port_rejects_wrong_port_and_protocol(self):
        program = udp_port_filter(53)
        assert not evaluate(program, udp_frame(54)).accepted
        assert not evaluate(program, tcp_frame(53)).accepted

    def test_udp_port_rejects_optioned_ip_cleanly(self):
        """The section 7 caveat, made safe: IHL != 5 is rejected, not
        misparsed."""
        program = udp_port_filter(53)
        optioned = udp_frame(53, options=b"\x01" * 8)
        assert not evaluate(program, optioned).accepted

    def test_tcp_port(self):
        program = tcp_port_filter(23)
        assert evaluate(program, tcp_frame(23)).accepted
        assert not evaluate(program, tcp_frame(24)).accepted
        assert not evaluate(program, udp_frame(23)).accepted

    def test_conversation(self):
        a, b = ip_address("10.0.0.1"), ip_address("10.0.0.2")
        program = ip_conversation_filter(a, b)
        assert evaluate(program, ip_frame("10.0.0.1", "10.0.0.2")).accepted
        assert evaluate(program, ip_frame("10.0.0.2", "10.0.0.1")).accepted
        assert not evaluate(program, ip_frame("10.0.0.1", "10.0.0.3")).accepted
        assert not evaluate(program, ip_frame("10.0.0.3", "10.0.0.2")).accepted


class TestTracer:
    PACKET = pack_words([0x0102, 2, 30, 0x0132, 0, 0, 0x0101, 0, 35])

    def test_trace_matches_interpreter(self):
        program = figure_3_9_pup_socket_35()
        trace = trace_evaluation(program, self.PACKET)
        reference = evaluate(program, self.PACKET)
        assert trace.result == reference
        assert len(trace.steps) == reference.instructions_executed

    def test_stacks_chain(self):
        trace = trace_evaluation(figure_3_9_pup_socket_35(), self.PACKET)
        for earlier, later in zip(trace.steps, trace.steps[1:]):
            assert later.stack_before == earlier.stack_after

    def test_short_circuit_marked(self):
        miss = pack_words([0, 2, 0, 0, 0, 0, 0, 0, 36])
        trace = trace_evaluation(figure_3_9_pup_socket_35(), miss)
        assert trace.steps[-1].terminated
        assert len(trace.steps) == 2

    def test_fault_marked(self):
        from repro.core.program import FilterProgram, asm

        program = FilterProgram(asm(("PUSHWORD", 30)))
        trace = trace_evaluation(program, self.PACKET)
        assert trace.result.fault == FaultCode.PACKET_BOUNDS
        assert trace.steps[-1].fault == FaultCode.PACKET_BOUNDS

    def test_format_is_readable(self):
        trace = trace_evaluation(figure_3_9_pup_socket_35(), self.PACKET)
        text = trace.format()
        assert "PUSHWORD+8" in text
        assert "ACCEPT" in text
        assert text.count("\n") >= len(trace.steps)

    def test_trace_many_programs_against_interpreter(self):
        """The tracer's simulation must agree with the interpreter on a
        spread of programs and packets."""
        from repro.core.compiler import compile_expr, word
        from repro.core.paper_filters import figure_3_8_pup_type_range

        programs = [
            figure_3_8_pup_type_range(),
            figure_3_9_pup_socket_35(),
            compile_expr((word(1) == 2) | (word(2) > 10)),
        ]
        packets = [self.PACKET, b"", b"\x00\x02", pack_words([0, 2, 99])]
        for program in programs:
            for packet in packets:
                trace = trace_evaluation(program, packet)
                assert trace.result == evaluate(program, packet)


class TestNITBaseline:
    def test_single_field_matches(self):
        from repro.baselines.nit import NITDemux, SingleFieldPredicate
        from repro.core.port import Port

        demux = NITDemux()
        port = Port(0)
        demux.attach(port, SingleFieldPredicate(offset=6, value=ETHERTYPE_IP))
        assert demux.deliver(ip_frame())
        assert port.queued == 1
        assert not demux.deliver(
            ETHERNET_10MB.frame(b"\x02" * 6, b"\x01" * 6, 0x0900, b"")
        )

    def test_cannot_discriminate_two_fields(self):
        """NIT's limitation: two UDP ports, one ethertype — the best
        single-field predicate over-captures."""
        from repro.baselines.nit import NITDemux, SingleFieldPredicate
        from repro.core.port import Port

        demux = NITDemux()
        port = Port(0, queue_limit=64)
        # The finest honest single-field key for "UDP port 53" that
        # still sees every such packet is the UDP dst-port word itself —
        # but matching word 18 == 53 also catches any packet whose 18th
        # word happens to be 53 in another protocol:
        demux.attach(port, SingleFieldPredicate(offset=18, value=53))
        assert demux.deliver(udp_frame(53))
        # False positive: a TCP segment whose seq number low word is 53.
        lookalike = tcp_frame(1234)
        lookalike = bytearray(lookalike)
        lookalike[36:38] = (53).to_bytes(2, "big")
        assert demux.deliver(bytes(lookalike))  # over-capture!
        assert port.queued == 2
