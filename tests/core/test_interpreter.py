"""Interpreter conformance tests — figure 3-6, operation by operation."""

import pytest

from repro.core.interpreter import (
    FaultCode,
    LanguageLevel,
    ShortCircuitMode,
    evaluate,
)
from repro.core.program import FilterProgram, asm
from repro.core.words import pack_words


def run(*items, packet=b"", priority=0, **kwargs):
    program = FilterProgram(asm(*items), priority=priority)
    return evaluate(program, packet, **kwargs)


PACKET = pack_words([0x0102, 2, 30, 0x0132, 0, 0, 0x0101, 0, 35, 7, 8, 9])


class TestStackActions:
    def test_pushone_accepts(self):
        assert run("PUSHONE").accepted

    def test_pushzero_rejects(self):
        assert not run("PUSHZERO").accepted

    def test_pushlit(self):
        assert run(("PUSHLIT", 0xBEEF), packet=b"").accepted

    def test_pushffff(self):
        result = run("PUSHFFFF", ("PUSHLIT", "EQ", 0xFFFF))
        assert result.accepted

    def test_pushff00(self):
        assert run("PUSHFF00", ("PUSHLIT", "EQ", 0xFF00)).accepted

    def test_push00ff(self):
        assert run("PUSH00FF", ("PUSHLIT", "EQ", 0x00FF)).accepted

    def test_pushword_reads_packet(self):
        assert run(("PUSHWORD", 1), ("PUSHLIT", "EQ", 2), packet=PACKET).accepted

    def test_pushword_out_of_bounds_faults(self):
        result = run(("PUSHWORD", 40), packet=PACKET)
        assert not result.accepted
        assert result.fault == FaultCode.PACKET_BOUNDS

    def test_pushword_reads_zero_padded_tail(self):
        result = run(("PUSHWORD", 1), ("PUSHLIT", "EQ", 0xAB00), packet=b"\x00\x00\xab")
        assert result.accepted


class TestComparisons:
    """Comparisons compute T2 <op> T1 where T1 is the top of stack."""

    @pytest.mark.parametrize(
        "op,t2,t1,expect",
        [
            ("EQ", 5, 5, True), ("EQ", 5, 6, False),
            ("NEQ", 5, 6, True), ("NEQ", 5, 5, False),
            ("LT", 4, 5, True), ("LT", 5, 5, False), ("LT", 6, 5, False),
            ("LE", 5, 5, True), ("LE", 6, 5, False),
            ("GT", 6, 5, True), ("GT", 5, 5, False),
            ("GE", 5, 5, True), ("GE", 4, 5, False),
        ],
    )
    def test_operand_order(self, op, t2, t1, expect):
        # Push T2 first, then T1 (top).
        result = run(("PUSHLIT", t2), ("PUSHLIT", op, t1))
        assert result.accepted is expect

    def test_comparison_pushes_one_or_zero(self):
        # (5 == 5) == 1 should hold.
        result = run(("PUSHLIT", 5), ("PUSHLIT", "EQ", 5), ("PUSHONE", "EQ"))
        assert result.accepted


class TestBitwise:
    def test_and_is_bitwise(self):
        # 0xFF00 AND 0x0FF0 = 0x0F00 (nonzero => accept)
        assert run("PUSHFF00", ("PUSHLIT", "AND", 0x0FF0)).accepted

    def test_and_to_zero_rejects(self):
        assert not run("PUSHFF00", ("PUSH00FF", "AND")).accepted

    def test_or(self):
        assert run("PUSHZERO", ("PUSHLIT", "OR", 4)).accepted

    def test_xor_equal_values_rejects(self):
        assert not run(("PUSHLIT", 7), ("PUSHLIT", "XOR", 7)).accepted

    def test_xor_differing_accepts(self):
        assert run(("PUSHLIT", 7), ("PUSHLIT", "XOR", 9)).accepted

    def test_nop_leaves_stack_alone(self):
        assert run("PUSHONE", ("NOPUSH", "NOP")).accepted


class TestShortCircuit:
    """The four short-circuit operators, per the figure 3-6 table."""

    def test_cor_terminates_true_on_match(self):
        result = run(("PUSHLIT", 5), ("PUSHLIT", "COR", 5), "PUSHZERO")
        assert result.accepted
        assert result.short_circuited
        assert result.instructions_executed == 2

    def test_cor_continues_on_mismatch(self):
        result = run(("PUSHLIT", 5), ("PUSHLIT", "COR", 6), "PUSHONE")
        assert result.accepted
        assert not result.short_circuited

    def test_cand_terminates_false_on_mismatch(self):
        result = run(("PUSHLIT", 5), ("PUSHLIT", "CAND", 6), "PUSHONE")
        assert not result.accepted
        assert result.short_circuited

    def test_cand_continues_on_match(self):
        result = run(("PUSHLIT", 5), ("PUSHLIT", "CAND", 5), "PUSHONE")
        assert result.accepted

    def test_cnor_terminates_false_on_match(self):
        result = run(("PUSHLIT", 5), ("PUSHLIT", "CNOR", 5), "PUSHONE")
        assert not result.accepted
        assert result.short_circuited

    def test_cnand_terminates_true_on_mismatch(self):
        result = run(("PUSHLIT", 5), ("PUSHLIT", "CNAND", 6), "PUSHZERO")
        assert result.accepted
        assert result.short_circuited

    def test_push_result_mode_leaves_value(self):
        # Continuing CAND pushes TRUE; program ends; top nonzero.
        result = run(
            ("PUSHLIT", 5), ("PUSHLIT", "CAND", 5),
            mode=ShortCircuitMode.PUSH_RESULT,
        )
        assert result.accepted

    def test_no_push_mode_leaves_stack_empty(self):
        result = run(
            ("PUSHLIT", 5), ("PUSHLIT", "CAND", 5),
            mode=ShortCircuitMode.NO_PUSH,
        )
        assert not result.accepted
        assert result.fault == FaultCode.EMPTY_STACK

    def test_modes_agree_on_well_formed_filters(self):
        from repro.core.paper_filters import figure_3_9_pup_socket_35

        program = figure_3_9_pup_socket_35()
        for packet in [PACKET, PACKET[:4], pack_words([0, 2, 0, 0, 0, 0, 0, 0, 36])]:
            a = evaluate(program, packet, mode=ShortCircuitMode.PUSH_RESULT)
            b = evaluate(program, packet, mode=ShortCircuitMode.NO_PUSH)
            assert a.accepted == b.accepted


class TestAcceptanceRules:
    def test_empty_program_rejects_with_empty_stack(self):
        program = FilterProgram([])
        result = evaluate(program, PACKET)
        assert not result.accepted
        assert result.fault == FaultCode.EMPTY_STACK

    def test_top_of_stack_decides_not_whole_stack(self):
        # Stack ends [1, 0]: top is 0 => reject.
        assert not run("PUSHONE", "PUSHZERO").accepted
        # Stack ends [0, 1]: top is 1 => accept.
        assert run("PUSHZERO", "PUSHONE").accepted

    def test_any_nonzero_top_accepts(self):
        assert run(("PUSHLIT", 0x8000)).accepted


class TestFaults:
    def test_stack_underflow(self):
        result = run(("PUSHONE", "AND"))
        assert result.fault == FaultCode.STACK_UNDERFLOW

    def test_stack_overflow(self):
        items = ["PUSHONE"] * 40
        result = run(*items, max_stack=32)
        assert result.fault == FaultCode.STACK_OVERFLOW

    def test_extension_op_rejected_in_classic(self):
        result = run(("PUSHLIT", 4), ("PUSHLIT", "ADD", 4))
        assert result.fault == FaultCode.BAD_INSTRUCTION

    def test_extension_action_rejected_in_classic(self):
        result = run("PUSHONE", "PUSHIND", packet=PACKET)
        assert result.fault == FaultCode.BAD_INSTRUCTION

    def test_fault_counts_instructions(self):
        result = run("PUSHONE", ("PUSHONE", "AND"), ("PUSHONE", "AND"), ("NOPUSH", "AND"))
        assert result.fault == FaultCode.STACK_UNDERFLOW
        assert result.instructions_executed == 4


class TestExtendedLanguage:
    def test_arithmetic(self):
        result = run(
            ("PUSHLIT", 6), ("PUSHLIT", "MUL", 7), ("PUSHLIT", "EQ", 42),
            level=LanguageLevel.EXTENDED,
        )
        assert result.accepted

    def test_add_wraps_16_bits(self):
        result = run(
            ("PUSHLIT", 0xFFFF), ("PUSHLIT", "ADD", 1), ("PUSHZERO", "EQ"),
            level=LanguageLevel.EXTENDED,
        )
        assert result.accepted

    def test_sub_wraps(self):
        result = run(
            ("PUSHLIT", 0), ("PUSHLIT", "SUB", 1), ("PUSHFFFF", "EQ"),
            level=LanguageLevel.EXTENDED,
        )
        assert result.accepted

    def test_div(self):
        result = run(
            ("PUSHLIT", 42), ("PUSHLIT", "DIV", 6), ("PUSHLIT", "EQ", 7),
            level=LanguageLevel.EXTENDED,
        )
        assert result.accepted

    def test_divide_by_zero_faults(self):
        result = run(
            ("PUSHLIT", 42), ("PUSHZERO", "DIV"),
            level=LanguageLevel.EXTENDED,
        )
        assert result.fault == FaultCode.DIVIDE_BY_ZERO

    def test_shifts(self):
        result = run(
            ("PUSHLIT", 1), ("PUSHLIT", "LSH", 4), ("PUSHLIT", "EQ", 16),
            level=LanguageLevel.EXTENDED,
        )
        assert result.accepted
        result = run(
            ("PUSHLIT", 16), ("PUSHLIT", "RSH", 4), ("PUSHONE", "EQ"),
            level=LanguageLevel.EXTENDED,
        )
        assert result.accepted

    def test_lsh_saturates_shift_amount(self):
        result = run(
            ("PUSHLIT", 1), ("PUSHLIT", "LSH", 500), ("PUSHZERO", "EQ"),
            level=LanguageLevel.EXTENDED,
        )
        assert result.accepted

    def test_pushind(self):
        # packet word[word[0]]: word0 is 0x0102 -> way out of bounds;
        # use a packet where word 0 == 2 so PUSHIND reads word 2.
        packet = pack_words([2, 0xAAAA, 0xBBBB])
        result = run(
            ("PUSHWORD", 0), "PUSHIND", ("PUSHLIT", "EQ", 0xBBBB),
            packet=packet, level=LanguageLevel.EXTENDED,
        )
        assert result.accepted

    def test_pushind_out_of_bounds_faults(self):
        packet = pack_words([99, 0xAAAA])
        result = run(
            ("PUSHWORD", 0), "PUSHIND",
            packet=packet, level=LanguageLevel.EXTENDED,
        )
        assert result.fault == FaultCode.PACKET_BOUNDS

    def test_pushbyteind(self):
        packet = bytes([3, 0, 0, 0xCD])
        result = run(
            ("PUSHLIT", 3), "PUSHBYTEIND", ("PUSHLIT", "EQ", 0xCD),
            packet=packet, level=LanguageLevel.EXTENDED,
        )
        assert result.accepted

    def test_pushind_underflow(self):
        result = run(
            "PUSHIND", packet=PACKET, level=LanguageLevel.EXTENDED
        )
        assert result.fault == FaultCode.STACK_UNDERFLOW


class TestUncheckedFastPath:
    def test_matches_checked_on_paper_filters(self):
        from repro.core.paper_filters import (
            figure_3_8_pup_type_range,
            figure_3_9_pup_socket_35,
        )

        packets = [
            PACKET,
            pack_words([0, 2, 0, 0x0164, 0, 0, 0, 0, 35]),
            pack_words([0, 3, 0, 0x0101, 0, 0, 0, 0, 35]),
        ]
        for program in (figure_3_8_pup_type_range(), figure_3_9_pup_socket_35()):
            for packet in packets:
                checked = evaluate(program, packet, checked=True)
                fast = evaluate(program, packet, checked=False)
                assert checked.accepted == fast.accepted

    def test_fast_path_bounds_fault_rejects(self):
        result = run(("PUSHWORD", 30), packet=PACKET, checked=False)
        assert not result.accepted
        assert result.fault == FaultCode.PACKET_BOUNDS


class TestInstructionCounting:
    def test_counts_instruction_words_not_literals(self):
        result = run(("PUSHLIT", 1), ("PUSHLIT", "EQ", 1))
        assert result.instructions_executed == 2

    def test_short_circuit_saves_instructions(self):
        from repro.core.paper_filters import figure_3_9_pup_socket_35

        program = figure_3_9_pup_socket_35()
        # Wrong socket: first CAND exits after 2 instructions.
        miss = pack_words([0, 2, 0, 0, 0, 0, 0, 0, 36])
        result = evaluate(program, miss)
        assert result.instructions_executed == 2
        assert not result.accepted
