"""Integration: processes using several ports, select, and scale.

Section 3's "more elaborate programs may take advantage of two more
sophisticated synchronization mechanisms" — exercised with processes
that own multiple ports at once, and a 48-port scale scenario.
"""


from repro.core.compiler import compile_expr, word
from repro.core.ioctl import PFIoctl
from repro.sim import Ioctl, Open, Read, Select, Sleep, World, Write


def type_filter(value, priority=10):
    return compile_expr(word(6) == value, priority=priority)


def make_world(hosts=2):
    world = World()
    out = [world.host(f"h{index}") for index in range(hosts)]
    for host in out:
        host.install_packet_filter()
    return world, out


class TestSelectAcrossPorts:
    def test_select_finds_the_ready_port(self):
        world, (alice, bob) = make_world()

        def receiver():
            control_fd = yield Open("pf")
            data_fd = yield Open("pf")
            yield Ioctl(control_fd, PFIoctl.SETFILTER, type_filter(0x0A01))
            yield Ioctl(data_fd, PFIoctl.SETFILTER, type_filter(0x0A02))
            ready = yield Select((control_fd, data_fd), 1.0)
            assert ready == [data_fd]
            [packet] = yield Read(data_fd)
            return bob.link.payload_of(packet.data)

        rx = bob.spawn("rx", receiver())

        def sender():
            fd = yield Open("pf")
            yield Sleep(0.02)
            yield Write(fd, alice.link.frame(
                bob.address, alice.address, 0x0A02, b"data channel"
            ))

        alice.spawn("tx", sender())
        world.run_until_done(rx)
        assert rx.result == b"data channel"

    def test_select_reports_multiple_ready(self):
        world, (alice, bob) = make_world()

        def receiver():
            fds = []
            for value in (0x0B01, 0x0B02):
                fd = yield Open("pf")
                yield Ioctl(fd, PFIoctl.SETFILTER, type_filter(value))
                fds.append(fd)
            yield Sleep(0.1)  # let both packets arrive
            ready = yield Select(tuple(fds), 1.0)
            return sorted(ready), sorted(fds)

        rx = bob.spawn("rx", receiver())

        def sender():
            fd = yield Open("pf")
            yield Sleep(0.02)
            for value in (0x0B01, 0x0B02):
                yield Write(fd, alice.link.frame(
                    bob.address, alice.address, value, b"x"
                ))

        alice.spawn("tx", sender())
        world.run_until_done(rx)
        ready, fds = rx.result
        assert ready == fds


class TestOneProcessManyPorts:
    def test_per_port_queues_are_independent(self):
        world, (alice, bob) = make_world()

        def receiver():
            fds = {}
            for value in (1, 2, 3):
                fd = yield Open("pf")
                yield Ioctl(fd, PFIoctl.SETFILTER, type_filter(0x0C00 + value))
                fds[value] = fd
            yield Sleep(0.15)
            counts = {}
            for value, fd in fds.items():
                yield Ioctl(fd, PFIoctl.SETBATCH, True)
                try:
                    batch = yield Read(fd)
                except Exception:
                    batch = []
                counts[value] = len(batch)
            return counts

        rx = bob.spawn("rx", receiver())

        def sender():
            fd = yield Open("pf")
            yield Sleep(0.02)
            # 1 packet of type 1, 2 of type 2, 3 of type 3.
            for value in (1, 2, 2, 3, 3, 3):
                yield Write(fd, alice.link.frame(
                    bob.address, alice.address, 0x0C00 + value, b"y"
                ))

        alice.spawn("tx", sender())
        world.run_until_done(rx)
        assert rx.result == {1: 1, 2: 2, 3: 3}


class TestScale:
    def test_48_ports_exact_delivery(self):
        """'On a busy system several dozen filters may be applied to an
        incoming packet' — 48 ports, interleaved traffic, no crosstalk."""
        world, (alice, bob) = make_world()
        PORTS = 48
        results = {}

        def listener(index):
            def body():
                fd = yield Open("pf")
                program = compile_expr(
                    (word(6) == 0x0D00) & (word(7) == index), priority=10
                )
                yield Ioctl(fd, PFIoctl.SETFILTER, program)
                [packet] = yield Read(fd)
                results[index] = bob.link.payload_of(packet.data)
                return index

            return body()

        listeners = [
            bob.spawn(f"listener-{index}", listener(index))
            for index in range(PORTS)
        ]

        def sender():
            fd = yield Open("pf")
            yield Sleep(0.3)  # binding 48 filters takes simulated time
            for index in range(PORTS):
                body = index.to_bytes(2, "big") + bytes(10)
                yield Write(fd, alice.link.frame(
                    bob.address, alice.address, 0x0D00, body
                ))

        alice.spawn("tx", sender())
        world.run_until_done(*listeners)
        assert len(results) == PORTS
        for index, payload in results.items():
            assert int.from_bytes(payload[:2], "big") == index
        # Demux accounting: the mean depth stays below the port count.
        demux = bob.packet_filter.demux
        assert demux.mean_predicates_tested < PORTS

    def test_port_exhaustion(self):
        from repro.sim import DeviceBusy

        world = World()
        host = world.host("h")
        host.install_packet_filter(max_ports=2)

        def body():
            yield Open("pf")
            yield Open("pf")
            try:
                yield Open("pf")
            except DeviceBusy:
                return "exhausted"

        proc = host.spawn("p", body())
        world.run_until_done(proc)
        assert proc.result == "exhausted"
