"""Tests for the section 7 language extensions."""

import pytest

from repro.core.extensions import ip_udp_port_filter_variable_ihl, long_equals
from repro.core.interpreter import LanguageLevel, evaluate
from repro.core.jit import compile_filter
from repro.core.validator import ValidationError, validate
from repro.core.words import pack_words
from repro.net.ethernet import ETHERNET_10MB
from repro.protocols.ethertypes import ETHERTYPE_IP
from repro.protocols.ip import IPHeader, PROTO_UDP
from repro.protocols.udp import UDPHeader


def udp_frame(dst_port: int, ip_options: bytes = b"") -> bytes:
    """A real IP/UDP frame, optionally with IP options (variable IHL)."""
    udp = UDPHeader(src_port=1234, dst_port=dst_port).encode(b"data")
    ip = IPHeader(
        src=0x0A000001, dst=0x0A000002, protocol=PROTO_UDP,
        options=ip_options,
    ).encode(udp)
    return ETHERNET_10MB.frame(b"\x00" * 6, b"\x01" * 6, ETHERTYPE_IP, ip)


class TestLongEquals:
    def test_matches_32_bit_value(self):
        program = long_equals(2, 0x0001_0002)
        packet = pack_words([0, 0, 1, 2])
        assert evaluate(program, packet).accepted

    def test_rejects_half_match(self):
        program = long_equals(2, 0x0001_0002)
        assert not evaluate(program, pack_words([0, 0, 1, 3])).accepted
        assert not evaluate(program, pack_words([0, 0, 2, 2])).accepted

    def test_value_range(self):
        with pytest.raises(ValueError):
            long_equals(0, 0x1_0000_0000)

    def test_short_circuits_on_low_word(self):
        program = long_equals(2, 0x0001_0002)
        result = evaluate(program, pack_words([0, 0, 9, 9]))
        assert result.short_circuited
        assert result.instructions_executed == 2


class TestVariableIHLFilter:
    """The exact case section 7 motivates: UDP ports under IP options."""

    def test_matches_without_options(self):
        program = ip_udp_port_filter_variable_ihl(53)
        result = evaluate(
            program, udp_frame(53), level=LanguageLevel.EXTENDED
        )
        assert result.accepted

    def test_matches_with_options(self):
        """With 8 bytes of IP options the UDP header moves — a fixed-
        offset filter would read garbage; the indirect push follows."""
        program = ip_udp_port_filter_variable_ihl(53)
        framed = udp_frame(53, ip_options=b"\x01" * 8)
        assert evaluate(program, framed, level=LanguageLevel.EXTENDED).accepted

    def test_rejects_other_port(self):
        program = ip_udp_port_filter_variable_ihl(53)
        for options in (b"", b"\x01" * 4, b"\x01" * 12):
            framed = udp_frame(99, ip_options=options)
            assert not evaluate(
                program, framed, level=LanguageLevel.EXTENDED
            ).accepted

    def test_fixed_offset_filter_breaks_under_options(self):
        """Demonstrate the problem: a classic fixed-offset filter that
        works without options silently mismatches when they appear."""
        from repro.core.compiler import compile_expr, word

        # UDP dst port word with no options: 7 (ether) + 10 (IP) + 1.
        fixed = compile_expr(word(18) == 53)
        assert evaluate(fixed, udp_frame(53)).accepted
        framed = udp_frame(53, ip_options=b"\x01" * 8)
        assert not evaluate(fixed, framed).accepted  # the failure mode

    def test_rejected_at_classic_level(self):
        program = ip_udp_port_filter_variable_ihl(53)
        with pytest.raises(ValidationError):
            validate(program, level=LanguageLevel.CLASSIC)

    def test_jit_agrees(self):
        program = ip_udp_port_filter_variable_ihl(53)
        compiled = compile_filter(program, level=LanguageLevel.EXTENDED)
        for port, options in [(53, b""), (53, b"\x01" * 8), (99, b"")]:
            framed = udp_frame(port, ip_options=options)
            expected = evaluate(
                program, framed, level=LanguageLevel.EXTENDED
            ).accepted
            assert compiled.accepts(framed) is expected

    def test_port_range(self):
        with pytest.raises(ValueError):
            ip_udp_port_filter_variable_ihl(0x10000)
