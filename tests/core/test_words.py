"""Unit tests for the 16-bit word view of packets."""

import pytest

from repro.core.words import (
    get_byte,
    get_long,
    get_word,
    pack_words,
    word_count,
    words_of,
)


class TestWordCount:
    def test_empty_packet_has_no_words(self):
        assert word_count(b"") == 0

    def test_even_length(self):
        assert word_count(b"\x00" * 8) == 4

    def test_odd_trailing_byte_counts_as_a_word(self):
        assert word_count(b"\x00" * 5) == 3

    def test_single_byte(self):
        assert word_count(b"\x01") == 1


class TestGetWord:
    def test_big_endian(self):
        assert get_word(b"\x12\x34", 0) == 0x1234

    def test_second_word(self):
        assert get_word(b"\x00\x01\xab\xcd", 1) == 0xABCD

    def test_odd_tail_is_zero_padded(self):
        assert get_word(b"\x00\x00\xff", 1) == 0xFF00

    def test_out_of_range_raises(self):
        with pytest.raises(IndexError):
            get_word(b"\x00\x00", 1)

    def test_negative_index_raises(self):
        with pytest.raises(IndexError):
            get_word(b"\x00\x00", -1)

    def test_empty_packet_raises(self):
        with pytest.raises(IndexError):
            get_word(b"", 0)


class TestGetByte:
    def test_in_range(self):
        assert get_byte(b"\x0a\x0b", 1) == 0x0B

    def test_out_of_range_raises(self):
        with pytest.raises(IndexError):
            get_byte(b"\x0a", 1)

    def test_negative_raises(self):
        with pytest.raises(IndexError):
            get_byte(b"\x0a", -1)


class TestGetLong:
    def test_combines_two_words(self):
        assert get_long(b"\x12\x34\x56\x78", 0) == 0x12345678

    def test_padded_low_word(self):
        assert get_long(b"\x12\x34\x56", 0) == 0x12345600

    def test_out_of_range_raises(self):
        with pytest.raises(IndexError):
            get_long(b"\x12\x34", 0)


class TestPackRoundtrip:
    def test_roundtrip(self):
        values = [0, 1, 0xFFFF, 0x1234, 0xFF00]
        assert words_of(pack_words(values)) == values

    def test_pack_rejects_oversized(self):
        with pytest.raises(ValueError):
            pack_words([0x10000])

    def test_pack_rejects_negative(self):
        with pytest.raises(ValueError):
            pack_words([-1])

    def test_words_of_empty(self):
        assert words_of(b"") == []
