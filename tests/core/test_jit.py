"""Tests for the filter-to-Python compiler (section 7's "machine code")."""

import pytest

from repro.core.interpreter import (
    LanguageLevel,
    ShortCircuitMode,
    evaluate,
)
from repro.core.jit import compile_filter
from repro.core.paper_filters import (
    figure_3_8_pup_type_range,
    figure_3_9_pup_socket_35,
)
from repro.core.program import FilterProgram, asm
from repro.core.validator import ValidationError
from repro.core.words import pack_words

PACKETS = [
    pack_words([0x0102, 2, 30, 0x0132, 0, 0, 0x0101, 0, 35]),
    pack_words([0x0102, 2, 30, 0x01C8, 0, 0, 0x0101, 0, 35]),
    pack_words([0, 3, 0, 0, 0, 0, 0, 0, 35]),
    pack_words([0, 2, 0, 0, 0, 0, 0, 0, 36]),
    b"",
    b"\x00\x02",
    bytes(17),
    bytes(18),
]


class TestEquivalence:
    @pytest.mark.parametrize(
        "program",
        [figure_3_8_pup_type_range(), figure_3_9_pup_socket_35()],
        ids=["fig3-8", "fig3-9"],
    )
    def test_agrees_with_interpreter(self, program):
        compiled = compile_filter(program)
        for packet in PACKETS:
            expected = evaluate(program, packet).accepted
            assert compiled.accepts(packet) is expected, packet.hex()

    def test_no_push_mode(self):
        program = figure_3_9_pup_socket_35()
        compiled = compile_filter(program, mode=ShortCircuitMode.NO_PUSH)
        for packet in PACKETS:
            expected = evaluate(
                program, packet, mode=ShortCircuitMode.NO_PUSH
            ).accepted
            assert compiled.accepts(packet) is expected

    def test_extended_language(self):
        program = FilterProgram(
            asm(
                ("PUSHWORD", 0), "PUSHIND", ("PUSHLIT", "EQ", 0xBBBB),
            )
        )
        compiled = compile_filter(program, level=LanguageLevel.EXTENDED)
        hit = pack_words([2, 0xAAAA, 0xBBBB])
        miss = pack_words([1, 0xAAAA, 0xBBBB])
        out_of_range = pack_words([40, 0xAAAA])
        assert compiled.accepts(hit)
        assert not compiled.accepts(miss)
        assert not compiled.accepts(out_of_range)

    def test_divide_by_zero_rejects(self):
        program = FilterProgram(
            asm(("PUSHLIT", 6), ("PUSHWORD", 0), ("NOPUSH", "DIV"))
        )
        compiled = compile_filter(program, level=LanguageLevel.EXTENDED)
        assert compiled.accepts(pack_words([2]))      # 6 // 2 = 3 -> accept
        assert not compiled.accepts(pack_words([0]))  # div by zero -> reject


class TestStructure:
    def test_validation_happens_at_compile_time(self):
        with pytest.raises(ValidationError):
            compile_filter(FilterProgram(asm(("PUSHONE", "AND"))))

    def test_short_packet_guard_in_source(self):
        compiled = compile_filter(figure_3_9_pup_socket_35())
        assert "len(packet) < 17" in compiled.source

    def test_no_guard_without_packet_access(self):
        compiled = compile_filter(FilterProgram(asm("PUSHONE")))
        assert "len(packet)" not in compiled.source

    def test_short_circuit_becomes_early_return(self):
        compiled = compile_filter(figure_3_9_pup_socket_35())
        assert compiled.source.count("return False") >= 2

    def test_callable_interface(self):
        compiled = compile_filter(figure_3_9_pup_socket_35())
        assert compiled(PACKETS[0]) == compiled.accepts(PACKETS[0])

    def test_report_attached(self):
        compiled = compile_filter(figure_3_9_pup_socket_35())
        assert compiled.report.min_packet_bytes == 17

    def test_constant_folds_short_circuit_continue_value(self):
        # CAND's continue path pushes a known 1; the generated source
        # should not compute it at run time.
        program = FilterProgram(
            asm(("PUSHWORD", 0), ("PUSHLIT", "CAND", 5), ("PUSHWORD", 1))
        )
        compiled = compile_filter(program)
        hit = pack_words([5, 9])
        assert compiled.accepts(hit)
        assert not compiled.accepts(pack_words([5, 0]))
        assert not compiled.accepts(pack_words([4, 9]))


class TestOddTailWord:
    def test_deepest_word_zero_padded(self):
        program = FilterProgram(
            asm(("PUSHWORD", 1), ("PUSHLIT", "EQ", 0xAB00))
        )
        compiled = compile_filter(program)
        assert compiled.accepts(b"\x00\x00\xab")        # padded tail
        assert compiled.accepts(b"\x00\x00\xab\x00")    # explicit zero
        assert not compiled.accepts(b"\x00\x00\xab\x01")
        assert not compiled.accepts(b"\x00\x00")        # too short
