"""Property tests for the demultiplexer against a reference oracle.

The figure 4-1 loop's contract — priority order, first-match,
copy-all continuation, every engine, with or without the decision
table — is pinned against a 15-line reference implementation over
randomized filter sets and packets.
"""

from hypothesis import given, settings, strategies as st

from repro.core.compiler import compile_expr, word
from repro.core.demux import Engine, PacketFilterDemux
from repro.core.interpreter import evaluate
from repro.core.port import Port
from repro.core.words import pack_words

# --- strategies ---------------------------------------------------------

filter_specs = st.lists(
    st.tuples(
        st.integers(0, 3),     # discriminating word index
        st.integers(0, 3),     # required value
        st.integers(0, 5),     # priority
        st.booleans(),         # copy_all
    ),
    min_size=1,
    max_size=8,
)

packet_word_lists = st.lists(
    st.integers(0, 4), min_size=4, max_size=4
)


def build(demux, specs):
    ports = []
    for index, (field, value, priority, copy_all) in enumerate(specs):
        port = Port(index, queue_limit=10_000)
        port.copy_all = copy_all
        port.bind_filter(compile_expr(word(field) == value, priority=priority))
        demux.attach(port)
        ports.append(port)
    return ports


def reference_delivery(specs, packet):
    """The figure 4-1 loop, written as naively as possible."""
    programs = [
        (compile_expr(word(field) == value, priority=priority), index, copy_all)
        for index, (field, value, priority, copy_all) in enumerate(specs)
    ]
    # Decreasing priority; attach order breaks ties.
    programs.sort(key=lambda item: (-item[0].priority, item[1]))
    delivered = []
    for program, index, copy_all in programs:
        if evaluate(program, packet).accepted:
            delivered.append(index)
            if not copy_all:
                break
    return delivered


class TestDemuxAgainstOracle:
    @given(filter_specs, st.lists(packet_word_lists, min_size=1, max_size=12))
    @settings(max_examples=120)
    def test_every_engine_matches_reference(self, specs, packet_lists):
        packets = [pack_words(words) for words in packet_lists]
        expected = [reference_delivery(specs, packet) for packet in packets]

        for engine in Engine:
            for use_table in (False, True):
                demux = PacketFilterDemux(
                    engine=engine,
                    use_decision_table=use_table,
                    reorder_same_priority=False,
                )
                build(demux, specs)
                for packet, expect in zip(packets, expected):
                    report = demux.deliver(packet)
                    assert list(report.accepted_by) == expect, (
                        engine, use_table, packet.hex()
                    )

    @given(filter_specs, st.lists(packet_word_lists, min_size=1, max_size=12))
    @settings(max_examples=120)
    def test_flow_cache_matches_reference_hot_and_cold(
        self, specs, packet_lists
    ):
        """Every engine with the flow cache on delivers identically to
        the uncached CHECKED baseline — on the cold (miss, classify,
        store) pass and again on the hot (pure cache hit) pass."""
        packets = [pack_words(words) for words in packet_lists]
        expected = [reference_delivery(specs, packet) for packet in packets]

        for engine in Engine:
            demux = PacketFilterDemux(
                engine=engine,
                flow_cache=64,
                reorder_same_priority=False,
            )
            build(demux, specs)
            for passno in ("cold", "hot"):
                for packet, expect in zip(packets, expected):
                    report = demux.deliver(packet)
                    assert list(report.accepted_by) == expect, (
                        engine, passno, packet.hex()
                    )
                    assert report.dropped_by == ()
            # Back-to-back identical packets must hit (no intervening
            # store can evict the slot), and hit deliveries must still
            # agree with the oracle.
            before = demux.flow_cache.hits
            demux.deliver(packets[0])
            report = demux.deliver(packets[0])
            assert demux.flow_cache.hits > before
            assert list(report.accepted_by) == expected[0]

    @given(filter_specs, st.lists(packet_word_lists, min_size=4, max_size=24))
    @settings(max_examples=60)
    def test_reordering_preserves_delivery_sets(self, specs, packet_lists):
        """Reordering may change which same-priority filter wins (the
        paper leaves that unspecified) but must never change *whether*
        a packet is delivered, nor cross priority levels."""
        packets = [pack_words(words) for words in packet_lists]
        demux = PacketFilterDemux(reorder_same_priority=True)
        demux.REORDER_INTERVAL = 4
        ports = build(demux, specs)
        for packet in packets:
            report = demux.deliver(packet)
            expected = reference_delivery(specs, packet)
            assert bool(expected) == report.accepted
            if report.accepted_by:
                # The winner's priority equals the reference winner's.
                winner = next(
                    p for p in ports if p.port_id == report.accepted_by[0]
                )
                reference_winner = next(
                    p for p in ports if p.port_id == expected[0]
                )
                assert winner.priority == reference_winner.priority

    @given(filter_specs, packet_word_lists)
    @settings(max_examples=120)
    def test_conservation(self, specs, words):
        """Every delivered packet is accounted: accepted+dropped+unclaimed."""
        packet = pack_words(words)
        demux = PacketFilterDemux(reorder_same_priority=False)
        ports = build(demux, specs)
        report = demux.deliver(packet)
        queued = sum(port.queued for port in ports)
        assert queued == len(report.accepted_by)
        assert demux.packets_seen == 1
        assert demux.packets_unclaimed == (0 if report.accepted else 1)
