"""The filter compiler middle-end: IR construction and every pass.

The hypothesis engine-equivalence suite (test_demux_properties) pins
whole-pipeline semantics; these tests pin each pass's *mechanism* —
what CSE merges, what the dispatch tree may and may not reorder, what
DCE must never delete — so a pass regression fails here by name
instead of as a distant counterexample.
"""

import pytest

from repro.core.compiler import compile_expr, word
from repro.core.demux import Engine, PacketFilterDemux
from repro.core.interpreter import LanguageLevel, ShortCircuitMode, evaluate
from repro.core.ir import (
    CONST,
    LOAD,
    Anchor,
    Bound,
    ExitIf,
    ValueGraph,
    lower_program,
)
from repro.core.irgen import compile_ir_set
from repro.core.fused import FusedEntry
from repro.core.opt import (
    build_dispatch_tree,
    cse_filter_set,
    live_nodes,
    optimize_filter,
    specialize_filter,
    transfer_filter,
)
from repro.core.decision import TableEntry
from repro.core.port import Port
from repro.core.program import FilterProgram, asm
from repro.core.validator import validate
from repro.core.words import pack_words


def lower(program, mode=ShortCircuitMode.PUSH_RESULT, graph=None):
    return lower_program(program, validate(program, mode=mode), mode, graph=graph)


def entry(rank, program):
    return FusedEntry(
        rank=rank,
        program=program,
        report=validate(program),
        copy_all=False,
    )


# ---------------------------------------------------------------------------
# The value graph: hash-consing, folding, identities
# ---------------------------------------------------------------------------


class TestValueGraph:
    def test_hash_consing_dedupes(self):
        g = ValueGraph()
        assert g.load(6) == g.load(6)
        assert g.const(7) == g.const(7)
        a = g.binop("eq", g.load(6), g.const(7))
        b = g.binop("eq", g.load(6), g.const(7))
        assert a == b

    def test_commutative_canonicalization(self):
        g = ValueGraph()
        x, y = g.load(3), g.load(9)
        assert g.binop("add", x, y) == g.binop("add", y, x)
        assert g.binop("eq", x, y) == g.binop("eq", y, x)
        # Non-commutative kinds keep operand order distinct.
        assert g.binop("sub", x, y) != g.binop("sub", y, x)

    def test_constant_folding(self):
        g = ValueGraph()
        nid = g.binop("add", g.const(0xFFFF), g.const(2))
        assert g.const_value(nid) == 1  # 16-bit wrap

    def test_div_by_const_zero_never_folds(self):
        g = ValueGraph()
        nid = g.binop("div", g.const(4), g.const(0))
        # Must stay a (faultable) div node: the fault rejects the packet.
        assert g.node(nid).kind == "div"
        assert g.faultable(nid)

    def test_identities(self):
        g = ValueGraph()
        x = g.load(5)
        assert g.binop("and", x, g.const(0xFFFF)) == x
        assert g.binop("or", x, g.const(0)) == x
        assert g.binop("xor", x, g.const(0)) == x
        assert g.binop("mul", x, g.const(1)) == x
        assert g.const_value(g.binop("eq", x, x)) == 1
        assert g.const_value(g.binop("lt", x, x)) == 0

    def test_faultable_compare_with_self_not_folded(self):
        g = ValueGraph()
        ind = g.indirect("indw", g.load(2))
        nid = g.binop("eq", ind, ind)
        assert g.const_value(nid) is None


# ---------------------------------------------------------------------------
# Lowering: bounds, anchors, side exits
# ---------------------------------------------------------------------------


class TestLowering:
    def test_bound_matches_deepest_word(self):
        fir = lower(compile_expr(word(6) == 0x0900))
        bounds = [s for s in fir.steps if isinstance(s, Bound)]
        assert bounds and max(b.min_bytes for b in bounds) == 13

    def test_constant_exit_truncates_lowering(self):
        # PUSHONE PUSHONE COR: 1 == 1 is a compile-time fact, so the
        # short-circuit accept is unconditional and the deep word-9
        # access behind it is dead — no bound for it may survive.
        program = FilterProgram(
            asm("PUSHONE", ("PUSHONE", "COR"),
                ("PUSHWORD", 9), ("PUSHZERO", "EQ"))
        )
        fir = lower(program)
        assert fir.graph.const_value(fir.result) == 1
        assert not any(
            isinstance(s, Bound) and s.min_bytes > 1 for s in fir.steps
        )

    def test_anchor_pins_division(self):
        program = FilterProgram(
            asm(("PUSHWORD", 0), ("PUSHWORD", 1, "DIV"),
                ("PUSHZERO", "GT"))
        )
        fir = lower_program(
            program, validate(program, level=LanguageLevel.EXTENDED)
        )
        anchors = [s for s in fir.steps if isinstance(s, Anchor)]
        assert len(anchors) == 1
        assert fir.graph.node(anchors[0].node).kind == "div"

    def test_short_circuit_becomes_exit(self):
        fir = lower(compile_expr((word(0) == 1) & (word(1) == 2)))
        exits = [s for s in fir.steps if isinstance(s, ExitIf)]
        assert exits, "CAND must lower to a side exit"


# ---------------------------------------------------------------------------
# Transfer passes: DCE, folding, CSE, specialization
# ---------------------------------------------------------------------------


class TestPasses:
    def test_cse_merges_loads_across_filters(self):
        firs = [
            lower(compile_expr((word(6) == 0x0900) & (word(7) == i)))
            for i in range(8)
        ]
        merged, stats = cse_filter_set(firs)
        assert stats.nodes_after < stats.nodes_before
        # Every merged filter shares the single word-6 load node.
        shared = merged[0].graph
        load6 = shared.load(6)
        for fir in merged:
            assert fir.graph is shared
            assert load6 in live_nodes(fir)

    def test_dce_drops_unused_nodes(self):
        g = ValueGraph()
        program = compile_expr(word(2) == 5)
        fir = lower(program, graph=g)
        g.binop("mul", g.load(11), g.load(12))  # dead: never referenced
        out = optimize_filter(fir)
        kinds = {out.graph.node(n).kind for n in live_nodes(out)}
        assert "mul" not in kinds
        assert len(out.graph) <= len(live_nodes(fir))

    def test_dce_never_removes_side_exit_predicates(self):
        program = compile_expr((word(0) == 1) & (word(1) == 2))
        fir = optimize_filter(lower(program))
        exits = [s for s in fir.steps if isinstance(s, ExitIf)]
        assert exits, "optimize_filter must keep the live side exit"
        for step in exits:
            assert step.cond in live_nodes(fir)

    def test_transfer_keeps_bounds_and_anchors(self):
        program = FilterProgram(
            asm(("PUSHWORD", 3), ("PUSHWORD", 1, "DIV"),
                ("PUSHZERO", "GE"))
        )
        fir = lower_program(
            program, validate(program, level=LanguageLevel.EXTENDED)
        )
        out = transfer_filter(fir, ValueGraph())
        assert any(isinstance(s, Bound) for s in out.steps)
        assert any(isinstance(s, Anchor) for s in out.steps)

    def test_specialize_rewrites_known_word(self):
        fir = lower(compile_expr((word(6) == 0x0900) & (word(7) == 3)))
        g = ValueGraph()
        out = specialize_filter(fir, g, {(6, 0xFFFF): 0x0900})
        kinds = {
            (g.node(n).kind, g.node(n).arg0) for n in live_nodes(out)
        }
        assert (LOAD, 6) not in kinds
        assert (LOAD, 7) in kinds

    def test_specialize_ignores_masked_facts(self):
        fir = lower(compile_expr(word(6) == 0x0900))
        g = ValueGraph()
        out = specialize_filter(fir, g, {(6, 0xFF00): 0x0900})
        kinds = {(g.node(n).kind, g.node(n).arg0) for n in live_nodes(out)}
        assert (LOAD, 6) in kinds

    def test_exit_resolution_truncates_on_always_taken(self):
        # compile_expr emits the word-7 test as the CAND side exit (the
        # word-6 test is the result node), so a bucket where word 7 is
        # provably wrong fires that exit unconditionally: the filter
        # truncates to a constant reject with no residual exit.
        fir = lower(compile_expr((word(6) == 0x0900) & (word(7) == 3)))
        g = ValueGraph()
        out = specialize_filter(fir, g, {(7, 0xFFFF): 9})
        assert g.const_value(out.result) == 0
        assert not any(isinstance(s, ExitIf) for s in out.steps)

    def test_exit_resolution_drops_never_taken(self):
        fir = lower(compile_expr((word(6) == 0x0900) & (word(7) == 3)))
        g = ValueGraph()
        out = specialize_filter(fir, g, {(7, 0xFFFF): 3})
        assert not any(isinstance(s, ExitIf) for s in out.steps)
        assert g.const_value(out.result) is None  # the word-6 test remains


# ---------------------------------------------------------------------------
# The dispatch tree: reordering predicates, never priorities
# ---------------------------------------------------------------------------


def table_entries(programs):
    return [
        TableEntry(order=(i,), handle=i, program=p)
        for i, p in enumerate(programs)
    ]


class TestDispatchTree:
    def test_buckets_on_best_discriminant(self):
        entries = table_entries(
            [
                compile_expr((word(6) == 0x0900) & (word(7) == i))
                for i in range(6)
            ]
        )
        tree = build_dispatch_tree(entries)
        assert tree.discriminant is not None
        word_index, mask = tree.discriminant
        assert word_index == 7 and mask == 0xFFFF
        assert len(tree.buckets) == 6

    def test_leaf_chains_preserve_priority_order(self):
        # Two filters in the same bucket must stay in rank order even
        # though the tree is free to reorder *predicates*.
        entries = table_entries(
            [
                compile_expr((word(7) == 1) & (word(3) == 9)),
                compile_expr(word(7) == 1),
                compile_expr(word(7) == 2),
            ]
        )
        tree = build_dispatch_tree(entries)
        bucket = tree.buckets[1]
        orders = [e.order for e in bucket.entries]
        assert orders == sorted(orders)

    def test_leftovers_reach_every_bucket_and_fallback(self):
        wildcard = compile_expr(word(0) >= 0)  # bucketable nowhere
        entries = table_entries(
            [
                compile_expr(word(7) == 1),
                compile_expr(word(7) == 2),
                wildcard,
            ]
        )
        tree = build_dispatch_tree(entries)
        wild = [e for e in entries if e.program is wildcard][0]
        for bucket in tree.buckets.values():
            assert wild in bucket.entries
        assert tree.fallback is not None
        assert wild in tree.fallback.entries

    def test_depth_respects_max(self):
        entries = table_entries(
            [
                compile_expr((word(6) == i) & (word(7) == j))
                for i in range(3)
                for j in range(3)
            ]
        )
        tree = build_dispatch_tree(entries, max_depth=1)
        assert tree.depth <= 1


# ---------------------------------------------------------------------------
# The compiled set: scalar/batch agreement, numpy-free fallback
# ---------------------------------------------------------------------------


def build_set(count=8):
    entries = [
        entry(i, compile_expr((word(6) == 0x0900) & (word(7) == i)))
        for i in range(count)
    ]
    return compile_ir_set(entries)


PACKETS = [
    pack_words([0, 0, 0, 0, 0, 0, 0x0900, n % 11]) for n in range(64)
] + [b"", b"\x01", pack_words([0, 0, 0, 0, 0, 0, 0x0800, 1])]


class TestCompiledIRSet:
    def test_stats_report_cse_win(self):
        compiled = build_set()
        stats = compiled.stats
        assert stats.filters == 8
        assert stats.nodes_after_cse < stats.nodes_before_cse
        assert stats.dispatch_depth >= 1

    def test_batch_matches_scalar(self):
        compiled = build_set()
        scalar = [compiled.classify(p) for p in PACKETS]
        assert compiled.classify_batch(PACKETS) == scalar

    def test_batch_matches_scalar_without_numpy(self, monkeypatch):
        import repro.core.irgen as irgen

        monkeypatch.setattr(irgen, "_np", None)
        compiled = build_set()
        scalar = [compiled.classify(p) for p in PACKETS]
        assert compiled.classify_batch(PACKETS) == scalar

    def test_classification_agrees_with_interpreter(self):
        programs = [
            compile_expr((word(6) == 0x0900) & (word(7) == i))
            for i in range(8)
        ]
        compiled = compile_ir_set(
            [entry(i, p) for i, p in enumerate(programs)]
        )
        for packet in PACKETS:
            ranks, _ = compiled.classify(packet)
            expected = tuple(
                i
                for i, p in enumerate(programs)
                if evaluate(p, packet, checked=True)
            )
            assert ranks == expected


# ---------------------------------------------------------------------------
# Engine.IR under binding churn
# ---------------------------------------------------------------------------


class TestEngineChurn:
    def make(self, **kw):
        demux = PacketFilterDemux(engine=Engine.IR, **kw)
        ports = []
        for i in range(6):
            port = Port(i, queue_limit=64)
            port.bind_filter(
                compile_expr((word(6) == 0x0900) & (word(7) == i))
            )
            demux.attach(port)
            ports.append(port)
        return demux, ports

    def test_attach_detach_recompiles(self):
        demux, ports = self.make()
        packet = pack_words([0, 0, 0, 0, 0, 0, 0x0900, 2])
        assert demux.deliver(packet).accepted_by == (2,)
        demux.detach(ports[2])
        assert demux.deliver(packet).accepted_by == ()
        demux.attach(ports[2])
        assert demux.deliver(packet).accepted_by == (ports[2].port_id,)

    def test_copy_all_invalidation(self):
        # Two ports match the same traffic; first-match delivery stops
        # at the winner until it opts into copy-all, and the flip must
        # recompile the baked-in dispatch function.
        demux = PacketFilterDemux(engine=Engine.IR)
        ports = []
        for i in range(2):
            port = Port(i, queue_limit=64)
            port.bind_filter(compile_expr(word(6) == 0x0900))
            demux.attach(port)
            ports.append(port)
        packet = pack_words([0, 0, 0, 0, 0, 0, 0x0900, 1])
        assert demux.deliver(packet).accepted_by == (0,)
        ports[0].copy_all = True
        demux.invalidate()
        assert set(demux.deliver(packet).accepted_by) == {0, 1}

    def test_flow_cache_batch_hits(self):
        demux, _ = self.make(flow_cache=True)
        packets = [
            pack_words([0, 0, 0, 0, 0, 0, 0x0900, n % 6]) for n in range(32)
        ]
        reports = demux.deliver_batch(packets)
        assert [r.accepted_by for r in reports] == [
            (n % 6,) for n in range(32)
        ]
        # A second identical burst is all hits.
        before = demux.flow_cache.hits
        demux.deliver_batch(packets)
        assert demux.flow_cache.hits >= before + len(packets)

    def test_ir_stats_exposed(self):
        demux, _ = self.make()
        stats = demux.ir_stats
        assert stats is not None and stats.filters == 6
        scan = PacketFilterDemux(engine=Engine.COMPILED)
        assert scan.ir_stats is None


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
