"""Unit tests for instruction encoding/decoding (figure 3-6's format)."""

import pytest

from repro.core.instructions import (
    ACTION_FIELD_BITS,
    CLASSIC_OPERATORS,
    EXTENDED_ACTIONS,
    EXTENDED_OPERATORS,
    PUSHWORD_BASE,
    PUSHWORD_MAX_INDEX,
    SHORT_CIRCUIT_OPERATORS,
    BinaryOp,
    EncodingError,
    Instruction,
    StackAction,
    decode_instruction_word,
    encode_instruction_word,
    pushword,
)


class TestFieldLayout:
    def test_action_field_is_six_bits(self):
        assert ACTION_FIELD_BITS == 6

    def test_pushword_fills_the_rest_of_the_action_field(self):
        # PUSHWORD+47 is the last representable action code (63).
        assert PUSHWORD_BASE + PUSHWORD_MAX_INDEX == 63

    def test_operator_rides_in_the_high_bits(self):
        ins = Instruction(StackAction.PUSHZERO, BinaryOp.GT)
        word = encode_instruction_word(ins)
        assert word & 0x3F == StackAction.PUSHZERO
        assert word >> 6 == BinaryOp.GT


class TestPushword:
    def test_zero(self):
        assert pushword(0) == PUSHWORD_BASE

    def test_max(self):
        assert pushword(PUSHWORD_MAX_INDEX) == 63

    def test_too_big_raises(self):
        with pytest.raises(EncodingError):
            pushword(PUSHWORD_MAX_INDEX + 1)

    def test_negative_raises(self):
        with pytest.raises(EncodingError):
            pushword(-1)


class TestInstructionValidation:
    def test_pushlit_requires_literal(self):
        with pytest.raises(EncodingError):
            Instruction(StackAction.PUSHLIT, BinaryOp.EQ)

    def test_literal_forbidden_without_pushlit(self):
        with pytest.raises(EncodingError):
            Instruction(StackAction.PUSHZERO, BinaryOp.EQ, literal=5)

    def test_literal_must_be_16_bits(self):
        with pytest.raises(EncodingError):
            Instruction(StackAction.PUSHLIT, BinaryOp.EQ, literal=0x10000)

    def test_action_code_range(self):
        with pytest.raises(EncodingError):
            Instruction(64, BinaryOp.NOP)

    def test_encoded_length(self):
        assert Instruction(StackAction.PUSHLIT, BinaryOp.EQ, 1).encoded_length == 2
        assert Instruction(StackAction.PUSHONE).encoded_length == 1


class TestClassification:
    def test_pushword_properties(self):
        ins = Instruction(pushword(5))
        assert ins.is_pushword
        assert ins.push_index == 5
        assert ins.pushes

    def test_nopush_does_not_push(self):
        assert not Instruction(StackAction.NOPUSH, BinaryOp.AND).pushes

    def test_indirect_has_zero_net_push(self):
        ins = Instruction(StackAction.PUSHIND)
        assert ins.is_indirect
        assert not ins.pushes

    def test_pops_iff_not_nop(self):
        assert Instruction(StackAction.NOPUSH, BinaryOp.EQ).pops
        assert not Instruction(StackAction.PUSHONE).pops


class TestRoundtrip:
    @pytest.mark.parametrize("action", list(StackAction))
    @pytest.mark.parametrize("operator", list(BinaryOp))
    def test_every_action_operator_combination(self, action, operator):
        literal = 0x1234 if action == StackAction.PUSHLIT else None
        ins = Instruction(int(action), operator, literal)
        word = encode_instruction_word(ins)
        assert decode_instruction_word(word, literal) == ins

    @pytest.mark.parametrize("index", [0, 1, 17, PUSHWORD_MAX_INDEX])
    def test_pushword_roundtrip(self, index):
        ins = Instruction(pushword(index), BinaryOp.CAND)
        assert decode_instruction_word(encode_instruction_word(ins)) == ins

    def test_decode_rejects_unknown_operator(self):
        bad = (999 << 6) | int(StackAction.PUSHONE)
        with pytest.raises(EncodingError):
            decode_instruction_word(bad)

    def test_decode_rejects_reserved_action(self):
        with pytest.raises(EncodingError):
            decode_instruction_word(12)  # action 12 is reserved

    def test_decode_rejects_oversized_word(self):
        with pytest.raises(EncodingError):
            decode_instruction_word(0x10000)

    def test_decode_drops_stray_literal_for_non_pushlit(self):
        word = encode_instruction_word(Instruction(StackAction.PUSHONE))
        assert decode_instruction_word(word, 99).literal is None


class TestOperatorSets:
    def test_classic_and_extended_are_disjoint(self):
        assert not CLASSIC_OPERATORS & EXTENDED_OPERATORS

    def test_short_circuit_operators_are_classic(self):
        assert SHORT_CIRCUIT_OPERATORS <= CLASSIC_OPERATORS

    def test_figure_3_6_operator_inventory(self):
        names = {op.name for op in CLASSIC_OPERATORS}
        assert names == {
            "NOP", "EQ", "NEQ", "LT", "LE", "GT", "GE",
            "AND", "OR", "XOR", "COR", "CAND", "CNOR", "CNAND",
        }

    def test_extended_actions(self):
        assert StackAction.PUSHIND in EXTENDED_ACTIONS
        assert StackAction.PUSHBYTEIND in EXTENDED_ACTIONS


class TestDisplay:
    def test_pushword_str(self):
        assert str(Instruction(pushword(3), BinaryOp.CAND)) == "PUSHWORD+3 | CAND"

    def test_pushlit_str_includes_literal(self):
        text = str(Instruction(StackAction.PUSHLIT, BinaryOp.EQ, 2))
        assert "PUSHLIT" in text and "EQ" in text and "2" in text

    def test_plain_action(self):
        assert str(Instruction(StackAction.PUSHONE)) == "PUSHONE"
