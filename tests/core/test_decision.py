"""Tests for necessary-equality analysis and the decision table."""


from repro.core.compiler import compile_expr, word
from repro.core.decision import (
    DecisionTable,
    NecessaryTest,
    necessary_equalities,
)
from repro.core.interpreter import evaluate
from repro.core.paper_filters import (
    figure_3_8_pup_type_range,
    figure_3_9_pup_socket_35,
)
from repro.core.program import FilterProgram, asm
from repro.core.words import pack_words


class TestNecessaryEqualities:
    def test_figure_3_9_full_extraction(self):
        tests = necessary_equalities(figure_3_9_pup_socket_35())
        assert NecessaryTest(8, 0xFFFF, 35) in tests
        assert NecessaryTest(7, 0xFFFF, 0) in tests
        assert NecessaryTest(1, 0xFFFF, 2) in tests

    def test_figure_3_8_extracts_type_test(self):
        tests = necessary_equalities(figure_3_8_pup_type_range())
        assert NecessaryTest(1, 0xFFFF, 2) in tests

    def test_masked_equality(self):
        program = compile_expr(word(3).low_byte() == 7)
        tests = necessary_equalities(program)
        assert NecessaryTest(3, 0x00FF, 7) in tests

    def test_disjunction_yields_intersection(self):
        program = compile_expr(
            ((word(0) == 1) & (word(5) == 9)) | ((word(0) == 2) & (word(5) == 9))
        )
        tests = necessary_equalities(program)
        # word 5 == 9 is necessary on both branches.
        assert NecessaryTest(5, 0xFFFF, 9) in tests
        # word 0 differs per branch: not necessary.
        assert not any(t.index == 0 for t in tests)

    def test_early_true_operators_disable_analysis(self):
        program = FilterProgram(
            asm(
                ("PUSHWORD", 0), ("PUSHLIT", "COR", 1),
                ("PUSHWORD", 1), ("PUSHLIT", "EQ", 2),
            )
        )
        assert necessary_equalities(program) == frozenset()

    def test_soundness_on_paper_filters(self):
        """If a necessary test fails, the program must reject."""
        for program in (figure_3_8_pup_type_range(), figure_3_9_pup_socket_35()):
            tests = necessary_equalities(program)
            accept = pack_words([0x0102, 2, 30, 0x0132, 0, 0, 0x0101, 0, 35])
            assert evaluate(program, accept).accepted
            for test in tests:
                words = [0x0102, 2, 30, 0x0132, 0, 0, 0x0101, 0, 35]
                words[test.index] = (test.value + 1) & 0xFFFF
                assert not evaluate(program, pack_words(words)).accepted

    def test_always_true_program(self):
        assert necessary_equalities(FilterProgram(asm("PUSHONE"))) == frozenset()


class TestNecessaryTestMatching:
    def test_matches(self):
        test = NecessaryTest(1, 0xFFFF, 2)
        assert test.matches(pack_words([0, 2]))
        assert not test.matches(pack_words([0, 3]))

    def test_short_packet_never_matches(self):
        assert not NecessaryTest(5, 0xFFFF, 0).matches(b"\x00\x00")


def build_table(programs):
    return DecisionTable.build(
        (index, program, (index,)) for index, program in enumerate(programs)
    )


class TestDecisionTable:
    def test_buckets_by_shared_field(self):
        programs = [
            compile_expr((word(6) == t) & (word(7) == p))
            for t in (1, 2, 3) for p in (10, 20)
        ]
        table = build_table(programs)
        assert table.depth >= 1

    def test_candidates_subset_and_order(self):
        programs = [
            compile_expr((word(6) == t) & (word(7) == p))
            for t in (1, 2) for p in (10, 20)
        ]
        table = build_table(programs)
        packet = pack_words([0, 0, 0, 0, 0, 0, 1, 10])
        candidates = list(table.candidates(packet))
        assert candidates == sorted(candidates)
        # Only filters requiring word6==1 (plus any fallback) may appear.
        for index in candidates:
            assert index in (0, 1)

    def test_exactness_against_linear_scan(self):
        """First accepted filter must match the naive loop, always."""
        programs = [
            compile_expr((word(6) == t) & (word(7) == p))
            for t in (1, 2, 3) for p in (10, 20)
        ] + [FilterProgram(asm("PUSHONE"))]  # unanalyzable catch-all
        table = build_table(programs)
        test_packets = [
            pack_words([0, 0, 0, 0, 0, 0, t, p])
            for t in (0, 1, 2, 3, 4) for p in (10, 20, 30)
        ] + [b"", b"\x00"]
        for packet in test_packets:
            naive = next(
                (
                    i for i, prog in enumerate(programs)
                    if evaluate(prog, packet).accepted
                ),
                None,
            )
            via_table = next(
                (
                    i for i in table.candidates(packet)
                    if evaluate(programs[i], packet).accepted
                ),
                None,
            )
            assert naive == via_table, packet.hex()

    def test_short_packet_falls_back(self):
        programs = [
            compile_expr((word(6) == 1) & (word(7) == 10)),
            compile_expr((word(6) == 2) & (word(7) == 10)),
            FilterProgram(asm("PUSHONE")),
        ]
        table = build_table(programs)
        # Too short for word 6: bucketed filters would fault anyway, so
        # only the unanalyzable catch-all is offered.
        assert list(table.candidates(b"")) == [2]

    def test_empty_table(self):
        table = DecisionTable.build([])
        assert list(table.candidates(b"\x00\x00")) == []
        assert len(table) == 0

    def test_single_filter_no_split(self):
        table = build_table([compile_expr(word(0) == 1)])
        assert table.depth == 0
