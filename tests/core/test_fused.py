"""The fused filter-set engine and the flow cache.

Structure tests pin what the fuser is supposed to *generate* (field
dispatch, inlined bodies, constant predicate counts); behaviour tests
pin classification against the checked interpreter; the demux-level
tests pin the invalidation discipline — every mutation of the bound
set flows through one hook, so the fused program, the decision table
and the flow cache can never disagree.
"""

import pytest

from repro.core.compiler import compile_expr, word
from repro.core.demux import Engine, PacketFilterDemux
from repro.core.fused import (
    FlowCache,
    FusedEntry,
    fuse_filter_set,
)
from repro.core.interpreter import ShortCircuitMode
from repro.core.ioctl import PFIoctl
from repro.core.port import Port
from repro.core.validator import validate
from repro.core.words import pack_words


def entry(rank, expr, *, copy_all=False, priority=0):
    program = compile_expr(expr, priority=priority)
    return FusedEntry(
        rank=rank,
        program=program,
        report=validate(program),
        copy_all=copy_all,
    )


class TestFuseFilterSet:
    def test_empty_set(self):
        fused = fuse_filter_set([])
        assert fused.classify(pack_words([1, 2, 3])) == ((), 0)

    def test_dispatches_on_shared_field(self):
        fused = fuse_filter_set([
            entry(0, word(6) == 0x0900),
            entry(1, word(6) == 0x0901),
            entry(2, word(6) == 0x0902),
        ])
        assert fused.discriminant == (6, 0xFFFF)
        packet = pack_words([0, 0, 0, 0, 0, 0, 0x0901, 0])
        ranks, predicates = fused.classify(packet)
        assert tuple(ranks) == (1,)
        # Dispatch went straight to filter 1's bucket: one body entered.
        assert predicates == 1

    def test_miss_value_reaches_no_filter(self):
        fused = fuse_filter_set([
            entry(0, word(6) == 0x0900),
            entry(1, word(6) == 0x0901),
        ])
        packet = pack_words([0, 0, 0, 0, 0, 0, 0x7777, 0])
        ranks, predicates = fused.classify(packet)
        assert tuple(ranks) == ()
        assert predicates == 0  # no chain for that value at all

    def test_unbucketed_filters_merge_in_rank_order(self):
        fused = fuse_filter_set([
            entry(0, word(6) == 0x0900),
            entry(1, word(0) < 5),        # inequality: no necessary value
        ])
        packet = pack_words([1, 0, 0, 0, 0, 0, 0x0900, 0])
        ranks, _ = fused.classify(packet)
        assert tuple(ranks) == (0,)       # rank 0 wins, first-match
        other = pack_words([1, 0, 0, 0, 0, 0, 0x0500, 0])
        ranks, _ = fused.classify(other)
        assert tuple(ranks) == (1,)       # fallback chain catches it

    def test_copy_all_continues_past_accept(self):
        fused = fuse_filter_set([
            entry(0, word(6) == 0x0900, copy_all=True),
            entry(1, word(6) == 0x0900),
            entry(2, word(6) == 0x0900),
        ])
        packet = pack_words([0, 0, 0, 0, 0, 0, 0x0900, 0])
        ranks, predicates = fused.classify(packet)
        assert tuple(ranks) == (0, 1)     # copy-all then first non-copy-all
        assert predicates == 2

    def test_short_packet_takes_fallback_path(self):
        fused = fuse_filter_set([
            entry(0, word(6) == 0x0900),
            entry(1, word(6) == 0x0901),
        ])
        assert fused.discriminant is not None
        # Word 6 is entirely beyond a 4-byte packet: both filters would
        # fault their necessary PUSHWORD, so nothing matches.
        ranks, predicates = fused.classify(b"\x01\x02\x03\x04")
        assert tuple(ranks) == ()

    def test_odd_tail_byte_is_zero_padded(self):
        fused = fuse_filter_set([
            entry(0, word(6) == 0x0900),
            entry(1, word(6) == 0x0A00),
        ])
        packet = pack_words([0, 0, 0, 0, 0, 0])[:12] + b"\x0a"  # 13 bytes
        ranks, _ = fused.classify(packet)
        assert tuple(ranks) == (1,)       # word 6 reads as 0x0A00

    def test_no_push_mode_fuses_without_dispatch(self):
        fused = fuse_filter_set(
            [entry(0, word(6) == 0x0900), entry(1, word(6) == 0x0901)],
            mode=ShortCircuitMode.NO_PUSH,
        )
        assert fused.discriminant is None
        packet = pack_words([0, 0, 0, 0, 0, 0, 0x0901, 0])
        assert tuple(fused.classify(packet)[0]) == (1,)

    def test_single_shared_value_still_dispatches(self):
        # Both filters need word 6 == 0x0900: the dict has one chain,
        # but every other ethertype resolves with zero bodies entered.
        fused = fuse_filter_set([
            entry(0, word(6) == 0x0900),
            entry(1, word(6) == 0x0900),
        ])
        assert fused.discriminant == (6, 0xFFFF)
        miss = pack_words([0, 0, 0, 0, 0, 0, 0x0800, 0])
        assert fused.classify(miss) == ((), 0)

    def test_source_is_kept_for_inspection(self):
        fused = fuse_filter_set([
            entry(0, word(6) == 0x0900),
            entry(1, word(6) == 0x0901),
        ])
        assert "_CHAINS" in fused.source
        assert "def _fused(packet):" in fused.source


class TestFlowCache:
    def test_size_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            FlowCache(100)
        FlowCache(1)
        FlowCache(64)

    def test_miss_store_hit(self):
        cache = FlowCache(16)
        assert cache.lookup(b"ab") is None
        cache.store(b"ab", (3,))
        assert cache.lookup(b"ab") == (3,)
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_invalidate_clears_and_counts(self):
        cache = FlowCache(16)
        cache.store(b"ab", (3,))
        cache.invalidate()
        assert cache.lookup(b"ab") is None
        assert cache.invalidations == 1


class TestDemuxInvalidation:
    """Every order mutation flushes the cache and re-fuses."""

    def _port(self, port_id, expr, *, priority=0):
        port = Port(port_id, queue_limit=100)
        port.bind_filter(compile_expr(expr, priority=priority))
        return port

    def test_attach_and_detach_invalidate(self):
        demux = PacketFilterDemux(engine=Engine.FUSED, flow_cache=True)
        a = self._port(0, word(6) == 0x0900)
        demux.attach(a)
        packet = pack_words([0, 0, 0, 0, 0, 0, 0x0900, 0])
        demux.deliver(packet)
        demux.deliver(packet)
        assert demux.flow_cache.hits == 1

        # A higher-priority filter for the same traffic must win
        # immediately — a stale cache entry would keep routing to a.
        b = self._port(1, word(6) == 0x0900, priority=7)
        demux.attach(b)
        report = demux.deliver(packet)
        assert report.accepted_by == (1,)

        demux.detach(b)
        report = demux.deliver(packet)
        assert report.accepted_by == (0,)

    def test_reorder_invalidates(self):
        demux = PacketFilterDemux(engine=Engine.FUSED, flow_cache=True)
        quiet = self._port(0, word(6) == 0x0900)
        busy = self._port(1, word(6) == 0x0901)
        demux.attach(quiet)
        demux.attach(busy)
        busy_packet = pack_words([0, 0, 0, 0, 0, 0, 0x0901, 0])
        for _ in range(demux.REORDER_INTERVAL):
            demux.deliver(busy_packet)
        # busy now leads the same-priority class; the rank assignments
        # changed, so cached rank tuples were flushed with them.
        assert demux.attached_ports()[0] is busy
        assert demux.flow_cache.invalidations >= 1
        report = demux.deliver(busy_packet)
        assert report.accepted_by == (1,)

    def test_indirect_filters_disable_the_cache(self):
        from repro.core.instructions import (
            BinaryOp, Instruction, StackAction,
        )
        from repro.core.program import FilterProgram

        indirect = FilterProgram(instructions=(
            Instruction(action_code=StackAction.PUSHONE),
            Instruction(action_code=StackAction.PUSHIND),
            Instruction(
                action_code=StackAction.PUSHLIT,
                operator=BinaryOp.EQ,
                literal=0x0304,
            ),
        ))
        from repro.core.interpreter import LanguageLevel

        demux = PacketFilterDemux(
            flow_cache=True, level=LanguageLevel.EXTENDED
        )
        port = Port(0, queue_limit=100)
        port.bind_filter(indirect)
        demux.attach(port)
        packet = pack_words([1, 0x0304, 0, 0])
        demux.deliver(packet)
        demux.deliver(packet)
        assert demux.flow_cache.hits == 0
        assert demux.flow_cache.misses == 0

    def test_copy_all_flip_via_ioctl_invalidates(self):
        """SETCOPYALL on an attached port flushes the fused program and
        cache — the copy-all continuation is baked into both."""
        from repro.sim.process import Ioctl, Open
        from repro.sim.world import World

        world = World()
        host = world.host("monitor")
        device = host.install_packet_filter(
            engine=Engine.FUSED, flow_cache=True
        )
        packet = pack_words([0, 0, 0, 0, 0, 0, 0x0900, 0])
        seen = {}

        def proc():
            fd1 = yield Open("pf")
            yield Ioctl(
                fd1,
                PFIoctl.SETFILTER,
                compile_expr(word(6) == 0x0900, priority=5),
            )
            fd2 = yield Open("pf")
            yield Ioctl(fd2, PFIoctl.SETFILTER, compile_expr(word(6) == 0x0900))
            # Prime the flow cache with the pre-flip classification.
            device.demux.deliver(packet)
            seen["before"] = device.demux.deliver(packet).accepted_by
            yield Ioctl(fd1, PFIoctl.SETCOPYALL, True)
            seen["after"] = device.demux.deliver(packet).accepted_by

        world.run_until_done(host.spawn("setup", proc()))
        assert seen["before"] == (0,)
        assert seen["after"] == (0, 1)

    def test_setcopyall_refuses_stale_fused_program(self):
        """Flipping copy-all on a live port re-fuses: a second filter
        behind a copy-all filter starts receiving copies immediately."""
        demux = PacketFilterDemux(engine=Engine.FUSED, flow_cache=True)
        first = self._port(0, word(6) == 0x0900, priority=5)
        second = self._port(1, word(6) == 0x0900)
        demux.attach(first)
        demux.attach(second)
        packet = pack_words([0, 0, 0, 0, 0, 0, 0x0900, 0])
        assert demux.deliver(packet).accepted_by == (0,)

        first.copy_all = True
        demux.invalidate()     # what the SETCOPYALL ioctl now does
        assert demux.deliver(packet).accepted_by == (0, 1)


class TestFusedEngineEndToEnd:
    def test_predicate_accounting_feeds_mean(self):
        demux = PacketFilterDemux(engine=Engine.FUSED)
        for index, value in enumerate((0x0900, 0x0901, 0x0902)):
            port = Port(index, queue_limit=100)
            port.bind_filter(compile_expr(word(6) == value))
            demux.attach(port)
        packet = pack_words([0, 0, 0, 0, 0, 0, 0x0902, 0])
        report = demux.deliver(packet)
        assert report.predicates_tested == 1   # dispatch skipped the rest
        assert demux.mean_predicates_tested == 1.0

    def test_cache_hit_reports_zero_work(self):
        demux = PacketFilterDemux(engine=Engine.CHECKED, flow_cache=True)
        port = Port(0, queue_limit=100)
        port.bind_filter(compile_expr(word(6) == 0x0900))
        demux.attach(port)
        packet = pack_words([0, 0, 0, 0, 0, 0, 0x0900, 0])
        cold = demux.deliver(packet)
        hot = demux.deliver(packet)
        assert cold.predicates_tested == 1
        assert hot.predicates_tested == 0
        assert hot.instructions_executed == 0
        assert hot.accepted_by == (0,)

    def test_deliver_batch_matches_loop(self):
        specs = [(0x0900, False), (0x0901, True), (0x0901, False)]
        packets = [
            pack_words([0, 0, 0, 0, 0, 0, value, n])
            for n, value in enumerate((0x0900, 0x0901, 0x7777, 0x0901))
        ]

        def fresh():
            demux = PacketFilterDemux(engine=Engine.FUSED)
            for index, (value, copy_all) in enumerate(specs):
                port = Port(index, queue_limit=100)
                port.copy_all = copy_all
                port.bind_filter(compile_expr(word(6) == value))
                demux.attach(port)
            return demux

        batched = fresh().deliver_batch(packets)
        looped = [fresh().deliver(packet) for packet in packets]
        assert [r.accepted_by for r in batched] == [
            r.accepted_by for r in looped
        ]
