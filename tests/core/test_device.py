"""Integration tests: the packet-filter device inside the simulated kernel.

This is the section 3 user interface exercised end-to-end: open/ioctl/
read/write through real (simulated) syscalls, two hosts on a segment.
"""


from repro.core.compiler import compile_expr, word
from repro.core.ioctl import DataLinkInfo, PFIoctl, PortStatus
from repro.core.port import ReadTimeoutPolicy
from repro.core.program import FilterProgram, asm
from repro.sim import (
    BadFileDescriptor,
    BufferPool,
    Close,
    InvalidArgument,
    Ioctl,
    Open,
    Read,
    Select,
    SigWait,
    Sleep,
    SimTimeout,
    World,
    WouldBlock,
    Write,
)

TYPE = 0x0900


def make_world():
    world = World()
    alice = world.host("alice")
    bob = world.host("bob")
    alice.install_packet_filter()
    bob.install_packet_filter()
    return world, alice, bob


def frame_for(src, dst, payload=b"payload", ethertype=TYPE):
    return src.link.frame(dst.address, src.address, ethertype, payload)


def type_filter(value=TYPE, priority=10):
    return compile_expr(word(6) == value, priority=priority)


class TestRoundTrip:
    def test_send_receive(self):
        world, alice, bob = make_world()

        def receiver():
            fd = yield Open("pf")
            yield Ioctl(fd, PFIoctl.SETFILTER, type_filter())
            [packet] = yield Read(fd)
            return packet.data

        def sender():
            fd = yield Open("pf")
            yield Sleep(0.01)
            yield Write(fd, frame_for(alice, bob))
            return True

        rx = bob.spawn("rx", receiver())
        tx = alice.spawn("tx", sender())
        world.run_until_done(rx, tx)
        assert bob.link.payload_of(rx.result) == b"payload"

    def test_entire_packet_including_header_returned(self):
        world, alice, bob = make_world()

        def receiver():
            fd = yield Open("pf")
            yield Ioctl(fd, PFIoctl.SETFILTER, type_filter())
            [packet] = yield Read(fd)
            return packet.data

        rx = bob.spawn("rx", receiver())

        def sender():
            fd = yield Open("pf")
            yield Sleep(0.01)
            yield Write(fd, frame_for(alice, bob))

        alice.spawn("tx", sender())
        world.run_until_done(rx)
        assert rx.result[:6] == bob.address  # data-link header intact


class TestWriteValidation:
    def test_short_frame_rejected(self):
        world, alice, _ = make_world()

        def body():
            fd = yield Open("pf")
            try:
                yield Write(fd, b"xx")
            except Exception as exc:
                return type(exc).__name__
            return "accepted"

        proc = alice.spawn("p", body())
        world.run_until_done(proc)
        assert proc.result == "InvalidArgument"

    def test_oversized_frame_rejected(self):
        world, alice, _ = make_world()

        def body():
            fd = yield Open("pf")
            try:
                yield Write(fd, bytes(alice.link.max_frame_bytes + 1))
            except Exception as exc:
                return type(exc).__name__

        proc = alice.spawn("p", body())
        world.run_until_done(proc)
        assert proc.result == "InvalidArgument"

    def test_multiple_frames_need_write_batching(self):
        world, alice, bob = make_world()
        frames = (frame_for(alice, bob), frame_for(alice, bob))

        def body():
            fd = yield Open("pf")
            try:
                yield Write(fd, frames)
            except Exception as exc:
                failed = type(exc).__name__
            else:
                failed = None
            yield Ioctl(fd, PFIoctl.SETWRITEBATCH, True)
            total = yield Write(fd, frames)
            return failed, total

        proc = alice.spawn("p", body())
        world.run_until_done(proc)
        failed, total = proc.result
        assert failed == "InvalidArgument"
        assert total == 2 * len(frames[0])


class TestIoctlSurface:
    def test_getinfo(self):
        world, alice, _ = make_world()

        def body():
            fd = yield Open("pf")
            return (yield Ioctl(fd, PFIoctl.GETINFO))

        proc = alice.spawn("p", body())
        world.run_until_done(proc)
        info = proc.result
        assert isinstance(info, DataLinkInfo)
        assert info.datalink_type == "ethernet-10mb"
        assert info.address_length == 6
        assert info.header_length == 14
        assert info.local_address == alice.address
        assert info.broadcast_address == b"\xff" * 6

    def test_getstats(self):
        world, alice, bob = make_world()

        def receiver():
            fd = yield Open("pf")
            yield Ioctl(fd, PFIoctl.SETFILTER, type_filter())
            yield Read(fd)
            return (yield Ioctl(fd, PFIoctl.GETSTATS))

        rx = bob.spawn("rx", receiver())

        def sender():
            fd = yield Open("pf")
            yield Sleep(0.01)
            yield Write(fd, frame_for(alice, bob))

        alice.spawn("tx", sender())
        world.run_until_done(rx)
        stats = rx.result
        assert isinstance(stats, PortStatus)
        assert stats.accepted == 1
        assert stats.delivered == 1

    def test_bad_filter_is_an_ioctl_error(self):
        world, alice, _ = make_world()
        bad = FilterProgram(asm(("PUSHONE", "AND")))

        def body():
            fd = yield Open("pf")
            try:
                yield Ioctl(fd, PFIoctl.SETFILTER, bad)
            except Exception as exc:
                return type(exc).__name__

        proc = alice.spawn("p", body())
        world.run_until_done(proc)
        assert proc.result == "InvalidArgument"

    def test_rebind_filter(self):
        """"A new filter can be bound at any time." (section 3)"""
        world, alice, bob = make_world()

        def receiver():
            fd = yield Open("pf")
            yield Ioctl(fd, PFIoctl.SETFILTER, type_filter(0x0111))
            yield Ioctl(fd, PFIoctl.SETFILTER, type_filter(TYPE))
            [packet] = yield Read(fd)
            return packet.data

        rx = bob.spawn("rx", receiver())

        def sender():
            fd = yield Open("pf")
            yield Sleep(0.02)
            yield Write(fd, frame_for(alice, bob))

        alice.spawn("tx", sender())
        world.run_until_done(rx)
        assert rx.result

    def test_flush(self):
        world, alice, bob = make_world()

        def receiver():
            fd = yield Open("pf")
            yield Ioctl(fd, PFIoctl.SETFILTER, type_filter())
            yield Sleep(0.05)  # let two packets queue
            flushed = yield Ioctl(fd, PFIoctl.FLUSH)
            return flushed

        rx = bob.spawn("rx", receiver())

        def sender():
            fd = yield Open("pf")
            yield Sleep(0.01)
            yield Write(fd, frame_for(alice, bob))
            yield Write(fd, frame_for(alice, bob))

        alice.spawn("tx", sender())
        world.run_until_done(rx)
        assert rx.result == 2

    def test_unknown_ioctl(self):
        world, alice, _ = make_world()

        def body():
            fd = yield Open("pf")
            try:
                yield Ioctl(fd, 999)
            except Exception as exc:
                return type(exc).__name__

        proc = alice.spawn("p", body())
        world.run_until_done(proc)
        assert proc.result == "InvalidArgument"


class TestReadPolicies:
    def test_timeout_reports_error(self):
        """Section 3: "if no packet arrives during a timeout period, the
        read call terminates and reports an error"."""
        world, alice, _ = make_world()

        def body():
            fd = yield Open("pf")
            yield Ioctl(fd, PFIoctl.SETFILTER, type_filter())
            yield Ioctl(fd, PFIoctl.SETTIMEOUT, ReadTimeoutPolicy.after(0.1))
            try:
                yield Read(fd)
            except SimTimeout:
                return world.now

        proc = alice.spawn("p", body())
        world.run_until_done(proc)
        assert proc.result >= 0.1

    def test_nonblocking_read(self):
        world, alice, _ = make_world()

        def body():
            fd = yield Open("pf")
            yield Ioctl(fd, PFIoctl.SETFILTER, type_filter())
            yield Ioctl(fd, PFIoctl.SETTIMEOUT, ReadTimeoutPolicy.immediate())
            try:
                yield Read(fd)
            except WouldBlock:
                return "would-block"

        proc = alice.spawn("p", body())
        world.run_until_done(proc)
        assert proc.result == "would-block"

    def test_batching_returns_all_pending(self):
        world, alice, bob = make_world()

        def receiver():
            fd = yield Open("pf")
            yield Ioctl(fd, PFIoctl.SETFILTER, type_filter())
            yield Ioctl(fd, PFIoctl.SETBATCH, True)
            yield Sleep(0.08)
            batch = yield Read(fd)
            return len(batch)

        rx = bob.spawn("rx", receiver())

        def sender():
            fd = yield Open("pf")
            yield Sleep(0.01)
            for _ in range(4):
                yield Write(fd, frame_for(alice, bob))

        alice.spawn("tx", sender())
        world.run_until_done(rx)
        assert rx.result == 4

    def test_unbatched_read_returns_one(self):
        world, alice, bob = make_world()

        def receiver():
            fd = yield Open("pf")
            yield Ioctl(fd, PFIoctl.SETFILTER, type_filter())
            yield Sleep(0.08)
            batch = yield Read(fd)
            return len(batch)

        rx = bob.spawn("rx", receiver())

        def sender():
            fd = yield Open("pf")
            yield Sleep(0.01)
            for _ in range(4):
                yield Write(fd, frame_for(alice, bob))

        alice.spawn("tx", sender())
        world.run_until_done(rx)
        assert rx.result == 1


class TestSynchronization:
    def test_select(self):
        world, alice, bob = make_world()

        def receiver():
            fd = yield Open("pf")
            yield Ioctl(fd, PFIoctl.SETFILTER, type_filter())
            ready = yield Select((fd,), 1.0)
            assert ready == [fd]
            [packet] = yield Read(fd)
            return packet.data

        rx = bob.spawn("rx", receiver())

        def sender():
            fd = yield Open("pf")
            yield Sleep(0.01)
            yield Write(fd, frame_for(alice, bob))

        alice.spawn("tx", sender())
        world.run_until_done(rx)
        assert rx.result

    def test_select_timeout(self):
        world, alice, _ = make_world()

        def body():
            fd = yield Open("pf")
            yield Ioctl(fd, PFIoctl.SETFILTER, type_filter())
            ready = yield Select((fd,), 0.05)
            return ready

        proc = alice.spawn("p", body())
        world.run_until_done(proc)
        assert proc.result == []

    def test_signal_on_reception(self):
        world, alice, bob = make_world()
        SIGIO = 23

        def receiver():
            fd = yield Open("pf")
            yield Ioctl(fd, PFIoctl.SETFILTER, type_filter())
            yield Ioctl(fd, PFIoctl.SETSIGNAL, SIGIO)
            signal = yield SigWait()
            [packet] = yield Read(fd)
            return signal, packet.data

        rx = bob.spawn("rx", receiver())

        def sender():
            fd = yield Open("pf")
            yield Sleep(0.01)
            yield Write(fd, frame_for(alice, bob))

        alice.spawn("tx", sender())
        world.run_until_done(rx)
        signal, data = rx.result
        assert signal == SIGIO


class TestTimestamping:
    def test_timestamp_marks_receive_time(self):
        world, alice, bob = make_world()

        def receiver():
            fd = yield Open("pf")
            yield Ioctl(fd, PFIoctl.SETFILTER, type_filter())
            yield Ioctl(fd, PFIoctl.SETTIMESTAMP, True)
            [packet] = yield Read(fd)
            return packet.timestamp

        rx = bob.spawn("rx", receiver())

        def sender():
            fd = yield Open("pf")
            yield Sleep(0.01)
            yield Write(fd, frame_for(alice, bob))

        alice.spawn("tx", sender())
        world.run_until_done(rx)
        assert rx.result is not None
        assert 0 < rx.result <= world.now


class TestCopyAllThroughDevice:
    def test_monitor_gets_copies(self):
        world, alice, bob = make_world()

        def monitor():
            fd = yield Open("pf")
            yield Ioctl(fd, PFIoctl.SETFILTER, type_filter(priority=99))
            yield Ioctl(fd, PFIoctl.SETCOPYALL, True)
            [packet] = yield Read(fd)
            return packet.data

        def owner():
            fd = yield Open("pf")
            yield Ioctl(fd, PFIoctl.SETFILTER, type_filter(priority=10))
            [packet] = yield Read(fd)
            return packet.data

        mon = bob.spawn("monitor", monitor())
        own = bob.spawn("owner", owner())

        def sender():
            fd = yield Open("pf")
            yield Sleep(0.02)
            yield Write(fd, frame_for(alice, bob))

        alice.spawn("tx", sender())
        world.run_until_done(mon, own)
        assert mon.result == own.result


class TestClose:
    def test_close_detaches_port(self):
        world, alice, bob = make_world()

        def opener():
            fd = yield Open("pf")
            yield Ioctl(fd, PFIoctl.SETFILTER, type_filter())
            yield Close(fd)
            return True

        proc = bob.spawn("p", opener())
        world.run_until_done(proc)
        assert bob.packet_filter.demux.attached_ports() == []

    def test_close_with_queued_packets_and_blocked_reader(self):
        """Closing a port with packets still queued and a peer blocked
        in read must detach the filter, free the queue, and error the
        blocked read — the crash-safety contract of teardown."""
        world, alice, bob = make_world()
        fds = {}

        def owner():
            fd = yield Open("pf")
            fds["pf"] = fd
            yield Ioctl(fd, PFIoctl.SETFILTER, type_filter())
            yield Ioctl(fd, PFIoctl.SETQUEUELEN, 8)
            yield Sleep(0.2)   # packets arrive and queue; peer blocks
            yield Close(fd)
            return True

        owner_proc = bob.spawn("owner", owner())

        def peer():
            yield Sleep(0.1)
            fd = bob.kernel.share_fd(owner_proc, fds["pf"], peer_proc)
            # The port already holds packets the *owner* never read —
            # drain them so this read genuinely blocks, then die with
            # the close.
            while True:
                yield Read(fd)

        peer_proc = bob.spawn("peer", peer())

        def sender():
            fd = yield Open("pf")
            yield Sleep(0.02)
            for _ in range(4):
                yield Write(fd, frame_for(alice, bob))
                yield Sleep(0.005)

        alice.spawn("tx", sender())
        world.run_until_done(owner_proc)
        world.run()
        assert owner_proc.result is True
        # Filter detached and queue freed.
        assert bob.packet_filter.demux.attached_ports() == []
        # The blocked peer was errored out, not left wedged forever.
        assert peer_proc.done
        assert isinstance(peer_proc.error, BadFileDescriptor)

    def test_close_releases_pool_buffers(self):
        """With a shared buffer pool installed, a close with packets
        still queued must return every reservation — the audit comes
        back empty."""
        world, alice, bob = make_world()
        pool = BufferPool(32, port_share=16)
        bob.kernel.buffer_pool = pool

        def opener():
            fd = yield Open("pf")
            yield Ioctl(fd, PFIoctl.SETFILTER, type_filter())
            yield Sleep(0.2)   # let packets queue, never read them
            yield Close(fd)
            return pool.in_use

        proc = bob.spawn("p", opener())

        def sender():
            fd = yield Open("pf")
            yield Sleep(0.02)
            for _ in range(3):
                yield Write(fd, frame_for(alice, bob))
                yield Sleep(0.005)

        alice.spawn("tx", sender())
        world.run_until_done(proc)
        world.run()
        assert proc.result == 0
        assert pool.audit() == {}


class TestSetQueueLimitValidation:
    def _attempt(self, argument):
        world, alice, bob = make_world()

        def body():
            fd = yield Open("pf")
            try:
                yield Ioctl(fd, PFIoctl.SETQUEUELEN, argument)
            except InvalidArgument:
                return "rejected"
            return "accepted"

        proc = bob.spawn("p", body())
        world.run_until_done(proc)
        return proc.result

    def test_zero_rejected(self):
        assert self._attempt(0) == "rejected"

    def test_negative_rejected(self):
        assert self._attempt(-4) == "rejected"

    def test_non_integer_rejected(self):
        assert self._attempt("lots") == "rejected"
        assert self._attempt(None) == "rejected"

    def test_positive_accepted(self):
        assert self._attempt(3) == "accepted"

    def test_rejection_is_an_ioctl_error_not_a_crash(self):
        """The regression this guards: int(argument) used to raise a
        plain ValueError out of the syscall layer, which is not a
        SimError and would have escaped the event loop."""
        world, alice, bob = make_world()

        def body():
            fd = yield Open("pf")
            try:
                yield Ioctl(fd, PFIoctl.SETQUEUELEN, 0)
            except InvalidArgument:
                pass
            # The process (and the world) survive to do real work.
            yield Ioctl(fd, PFIoctl.SETQUEUELEN, 16)
            return "alive"

        proc = bob.spawn("p", body())
        world.run_until_done(proc)
        assert proc.result == "alive"
