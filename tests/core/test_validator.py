"""Tests for bind-time validation (section 7's hoisted checks)."""

import pytest

from repro.core.interpreter import LanguageLevel, ShortCircuitMode
from repro.core.paper_filters import (
    figure_3_8_pup_type_range,
    figure_3_9_pup_socket_35,
)
from repro.core.program import FilterProgram, asm
from repro.core.validator import ValidationError, validate


def program_of(*items, priority=0):
    return FilterProgram(asm(*items), priority=priority)


class TestAcceptance:
    def test_figure_3_8_validates(self):
        report = validate(figure_3_8_pup_type_range())
        assert report.max_stack_depth == 4
        assert not report.uses_extensions
        assert not report.uses_short_circuit

    def test_figure_3_9_validates(self):
        report = validate(figure_3_9_pup_socket_35())
        assert report.uses_short_circuit
        assert not report.needs_runtime_bounds_check

    def test_min_packet_bytes(self):
        # Figure 3-9 touches word 8, so byte 16 must exist: 17 bytes.
        assert validate(figure_3_9_pup_socket_35()).min_packet_bytes == 17

    def test_min_packet_bytes_no_packet_access(self):
        assert validate(program_of("PUSHONE")).min_packet_bytes == 0


class TestRejection:
    def test_empty_program(self):
        with pytest.raises(ValidationError):
            validate(FilterProgram([]))

    def test_underflow(self):
        with pytest.raises(ValidationError, match="underflow"):
            validate(program_of(("PUSHONE", "AND")))

    def test_overflow(self):
        with pytest.raises(ValidationError, match="exceeds"):
            validate(program_of(*["PUSHONE"] * 5), max_stack=4)

    def test_ends_with_empty_stack(self):
        # Reachable only in NO_PUSH mode (a trailing short-circuit op
        # leaves nothing when it continues).
        program = program_of("PUSHONE", ("PUSHONE", "CAND"))
        with pytest.raises(ValidationError, match="empty stack"):
            validate(program, mode=ShortCircuitMode.NO_PUSH)

    def test_extension_operator_needs_extended_level(self):
        program = program_of(("PUSHLIT", 1), ("PUSHLIT", "ADD", 2))
        with pytest.raises(ValidationError, match="EXTENDED"):
            validate(program, level=LanguageLevel.CLASSIC)
        validate(program, level=LanguageLevel.EXTENDED)  # ok

    def test_indirect_push_needs_extended_level(self):
        program = program_of("PUSHONE", "PUSHIND")
        with pytest.raises(ValidationError):
            validate(program)
        report = validate(program, level=LanguageLevel.EXTENDED)
        assert report.needs_runtime_bounds_check
        assert report.uses_extensions

    def test_indirect_push_underflow(self):
        with pytest.raises(ValidationError, match="underflow"):
            validate(program_of("PUSHIND"), level=LanguageLevel.EXTENDED)

    def test_div_flagged(self):
        program = program_of(("PUSHLIT", 6), ("PUSHLIT", "DIV", 2))
        report = validate(program, level=LanguageLevel.EXTENDED)
        assert report.may_divide_by_zero


class TestModeSensitivity:
    def test_no_push_mode_tracks_shallower_stack(self):
        # PUSH a, PUSH b, CAND: PUSH_RESULT leaves 1, NO_PUSH leaves 0.
        program = program_of(("PUSHLIT", 5), ("PUSHLIT", "CAND", 5))
        validate(program, mode=ShortCircuitMode.PUSH_RESULT)
        with pytest.raises(ValidationError):
            validate(program, mode=ShortCircuitMode.NO_PUSH)

    def test_figure_3_9_valid_in_both_modes(self):
        validate(figure_3_9_pup_socket_35(), mode=ShortCircuitMode.PUSH_RESULT)
        validate(figure_3_9_pup_socket_35(), mode=ShortCircuitMode.NO_PUSH)


class TestSoundness:
    """A validated program never faults at runtime on long-enough packets."""

    @pytest.mark.parametrize(
        "program",
        [
            figure_3_8_pup_type_range(),
            figure_3_9_pup_socket_35(),
        ],
        ids=["fig3-8", "fig3-9"],
    )
    def test_no_fault_on_minimum_length_packet(self, program):
        from repro.core.interpreter import FaultCode, evaluate

        report = validate(program)
        packet = bytes(report.min_packet_bytes)
        result = evaluate(program, packet, checked=True)
        assert result.fault == FaultCode.NONE

    def test_shorter_packet_faults_bounds(self):
        from repro.core.interpreter import FaultCode, evaluate

        program = figure_3_9_pup_socket_35()
        report = validate(program)
        packet = bytes(report.min_packet_bytes - 1)
        result = evaluate(program, packet)
        # Either it short-circuited before the deep word (possible) or
        # it faulted; with an all-zero packet word 8 is 0 != 35 -> the
        # first CAND needs word 8, which is out of bounds.
        assert result.fault == FaultCode.PACKET_BOUNDS
