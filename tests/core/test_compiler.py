"""Tests for the run-time filter compiler ("library procedure")."""

import pytest

from repro.core.compiler import CompileError, compile_expr, word
from repro.core.instructions import BinaryOp, StackAction
from repro.core.interpreter import evaluate
from repro.core.validator import validate
from repro.core.words import pack_words

PUP_PACKET = pack_words([0x0102, 2, 30, 0x0132, 0, 0, 0x0101, 0, 35])


class TestFieldExpressions:
    def test_eq_builds_test(self):
        test = word(1) == 2
        assert test.op == "=="
        assert test.field.index == 1
        assert test.value == 2

    def test_all_comparisons(self):
        for op, expr in [
            ("==", word(0) == 1), ("!=", word(0) != 1),
            ("<", word(0) < 1), ("<=", word(0) <= 1),
            (">", word(0) > 1), (">=", word(0) >= 1),
        ]:
            assert expr.op == op

    def test_masking(self):
        field = word(3).masked(0x00FF)
        assert field.mask == 0x00FF
        assert word(3).low_byte().mask == 0x00FF
        assert word(3).high_byte().mask == 0xFF00

    def test_masks_compose(self):
        assert word(3).masked(0x0FFF).masked(0x00F0).mask == 0x00F0

    def test_value_must_be_16_bits(self):
        with pytest.raises(CompileError):
            word(0) == 0x10000

    def test_value_must_be_int(self):
        with pytest.raises(CompileError):
            word(0) == "two"

    def test_negative_word_index(self):
        with pytest.raises(CompileError):
            word(-1)

    def test_likelihood_bounds(self):
        with pytest.raises(CompileError):
            (word(0) == 1).likely(1.5)


class TestCompilation:
    def test_single_equality(self):
        program = compile_expr(word(1) == 2)
        assert evaluate(program, PUP_PACKET).accepted
        assert not evaluate(program, pack_words([0, 3])).accepted

    def test_conjunction_short_circuits(self):
        expr = (word(1) == 2) & (word(8) == 35)
        program = compile_expr(expr)
        operators = [ins.operator for ins in program]
        assert BinaryOp.CAND in operators
        assert operators[-1] == BinaryOp.EQ
        assert evaluate(program, PUP_PACKET).accepted

    def test_conjunction_without_short_circuit(self):
        expr = (word(1) == 2) & (word(8) == 35)
        program = compile_expr(expr, short_circuit=False)
        operators = [ins.operator for ins in program]
        assert BinaryOp.CAND not in operators
        assert BinaryOp.AND in operators
        assert evaluate(program, PUP_PACKET).accepted

    def test_reorder_puts_unlikely_test_first(self):
        expr = (word(1) == 2).likely(0.9) & (word(8) == 35).likely(0.01)
        program = compile_expr(expr)
        # The first instruction should push word 8 (the rare test).
        assert program.instructions[0].push_index == 8

    def test_reorder_disabled_keeps_source_order(self):
        expr = (word(1) == 2).likely(0.9) & (word(8) == 35).likely(0.01)
        program = compile_expr(expr, reorder=False)
        assert program.instructions[0].push_index == 1

    def test_disjunction(self):
        expr = (word(1) == 2) | (word(1) == 0x800)
        program = compile_expr(expr)
        assert evaluate(program, PUP_PACKET).accepted
        assert evaluate(program, pack_words([0, 0x800])).accepted
        assert not evaluate(program, pack_words([0, 3])).accepted

    def test_mixed_and_or(self):
        expr = ((word(1) == 2) | (word(1) == 3)) & (word(8) == 35)
        program = compile_expr(expr)
        assert evaluate(program, PUP_PACKET).accepted
        wrong_socket = pack_words([0, 2, 0, 0, 0, 0, 0, 0, 36])
        assert not evaluate(program, wrong_socket).accepted

    def test_range_test_matches_figure_3_8(self):
        expr = (
            (word(1) == 2)
            & (word(3).low_byte() > 0)
            & (word(3).low_byte() <= 100)
        )
        program = compile_expr(expr, priority=10)
        assert evaluate(program, PUP_PACKET).accepted
        type_200 = pack_words([0, 2, 0, 0x01C8])
        assert not evaluate(program, type_200).accepted

    def test_special_masks_use_dedicated_actions(self):
        program = compile_expr(word(3).low_byte() == 7)
        actions = [ins.action_code for ins in program]
        assert StackAction.PUSH00FF in actions

    def test_general_mask_uses_pushlit(self):
        program = compile_expr(word(3).masked(0x0F0F) == 5)
        literals = [ins.literal for ins in program if ins.literal is not None]
        assert 0x0F0F in literals

    def test_special_values_use_dedicated_actions(self):
        program = compile_expr(word(2) == 0)
        actions = [ins.action_code for ins in program]
        assert StackAction.PUSHZERO in actions

    def test_all_compiled_programs_validate(self):
        exprs = [
            word(1) == 2,
            (word(1) == 2) & (word(8) == 35) & (word(7) == 0),
            (word(1) == 2) | (word(2) > 5),
            ((word(0) != 0) & (word(1) <= 9)) | (word(3).low_byte() == 1),
        ]
        for expr in exprs:
            validate(compile_expr(expr))

    def test_priority_carried(self):
        assert compile_expr(word(0) == 1, priority=42).priority == 42

    def test_short_circuit_saves_work_on_mismatch(self):
        expr = (word(8) == 35).likely(0.01) & (word(1) == 2) & (word(7) == 0)
        fast = compile_expr(expr, short_circuit=True)
        slow = compile_expr(expr, short_circuit=False)
        miss = pack_words([0, 2, 0, 0, 0, 0, 0, 0, 99])
        fast_result = evaluate(fast, miss)
        slow_result = evaluate(slow, miss)
        assert fast_result.accepted == slow_result.accepted is False
        assert (
            fast_result.instructions_executed
            < slow_result.instructions_executed
        )
