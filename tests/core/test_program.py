"""Unit tests for FilterProgram wire encoding and the tiny assembler."""

import pytest

from repro.core.instructions import BinaryOp, EncodingError, StackAction
from repro.core.paper_filters import (
    figure_3_8_pup_type_range,
    figure_3_9_pup_socket_35,
)
from repro.core.program import FilterProgram, MAX_PRIORITY, asm


class TestAsm:
    def test_bare_string_action(self):
        [ins] = asm("PUSHONE")
        assert ins.action_code == StackAction.PUSHONE
        assert ins.operator == BinaryOp.NOP

    def test_bare_string_operator_means_nopush(self):
        [ins] = asm("AND")
        assert ins.action_code == StackAction.NOPUSH
        assert ins.operator == BinaryOp.AND

    def test_pushword_tuple(self):
        [ins] = asm(("PUSHWORD", 7))
        assert ins.push_index == 7

    def test_action_operator_literal(self):
        [ins] = asm(("PUSHLIT", "CAND", 35))
        assert ins.operator == BinaryOp.CAND
        assert ins.literal == 35

    def test_unknown_mnemonic(self):
        with pytest.raises(EncodingError):
            asm("FROB")

    def test_trailing_operands_rejected(self):
        with pytest.raises(EncodingError):
            asm(("PUSHONE", "AND", 1, 2))


class TestEncodeDecode:
    def test_roundtrip_figure_3_8(self):
        program = figure_3_8_pup_type_range()
        assert FilterProgram.decode(program.encode()) == program

    def test_roundtrip_figure_3_9(self):
        program = figure_3_9_pup_socket_35()
        assert FilterProgram.decode(program.encode()) == program

    def test_wire_header_matches_paper_initializers(self):
        # struct enfilter f = { 10, 12, ... } and { 10, 8, ... }
        assert list(figure_3_8_pup_type_range().encode()[:2]) == [10, 12]
        assert list(figure_3_9_pup_socket_35().encode()[:2]) == [10, 8]

    def test_decode_rejects_truncated_header(self):
        with pytest.raises(EncodingError):
            FilterProgram.decode([10])

    def test_decode_rejects_wrong_length_field(self):
        words = list(figure_3_9_pup_socket_35().encode())
        words[1] += 1
        with pytest.raises(EncodingError):
            FilterProgram.decode(words)

    def test_decode_rejects_pushlit_missing_literal(self):
        program = FilterProgram(asm(("PUSHLIT", "EQ", 5)))
        words = list(program.encode())
        words = words[:-1]
        words[1] -= 1
        with pytest.raises(EncodingError):
            FilterProgram.decode(words)


class TestStructure:
    def test_priority_bounds(self):
        with pytest.raises(EncodingError):
            FilterProgram(asm("PUSHONE"), priority=MAX_PRIORITY + 1)
        with pytest.raises(EncodingError):
            FilterProgram(asm("PUSHONE"), priority=-1)

    def test_words_examined(self):
        assert figure_3_9_pup_socket_35().words_examined() == 9
        assert figure_3_8_pup_type_range().words_examined() == 4

    def test_words_examined_no_pushes(self):
        assert FilterProgram(asm("PUSHONE")).words_examined() == 0

    def test_uses_short_circuit(self):
        assert figure_3_9_pup_socket_35().uses_short_circuit()
        assert not figure_3_8_pup_type_range().uses_short_circuit()

    def test_len_counts_instructions_not_words(self):
        assert len(figure_3_9_pup_socket_35()) == 6
        assert figure_3_9_pup_socket_35().encoded_length == 8

    def test_with_priority(self):
        program = figure_3_9_pup_socket_35().with_priority(3)
        assert program.priority == 3
        assert program.instructions == figure_3_9_pup_socket_35().instructions

    def test_value_equality_and_hash(self):
        assert figure_3_9_pup_socket_35() == figure_3_9_pup_socket_35()
        assert hash(figure_3_9_pup_socket_35()) == hash(figure_3_9_pup_socket_35())

    def test_disassemble_mentions_every_instruction(self):
        text = figure_3_8_pup_type_range().disassemble()
        assert "PUSHWORD+1" in text
        assert "PUSH00FF | AND" in text
        assert text.count("\n") == len(figure_3_8_pup_type_range())
