"""Tests for the ``python -m repro`` front door."""

import json

import pytest

from repro.__main__ import main


class TestCLI:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "SOSP 1987" in out
        assert "table-6-10" in out

    def test_default_is_info(self, capsys):
        assert main([]) == 0
        assert "reproduced experiments" in capsys.readouterr().out

    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        assert "it works" in capsys.readouterr().out

    def test_trace(self, capsys):
        assert main(["trace"]) == 0
        out = capsys.readouterr().out
        assert "ACCEPT" in out
        assert "short-circuit return" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_trace_scenario_exports_valid_json(self, tmp_path, capsys):
        from repro.bench.traceout import validate_trace

        path = tmp_path / "trace.json"
        assert main(["trace", "receive", "-o", str(path)]) == 0
        assert "trace events" in capsys.readouterr().out
        doc = json.loads(path.read_text())
        assert validate_trace(doc) == []
        assert doc["otherData"]["generator"] == "repro.bench.traceout"

    def test_trace_scenario_requires_output(self):
        with pytest.raises(SystemExit):
            main(["trace", "receive"])

    def test_trace_rejects_unknown_scenario(self):
        with pytest.raises(SystemExit):
            main(["trace", "nonsense", "-o", "x.json"])

    def test_profile_renders_table(self, capsys):
        assert main(["profile", "receive"]) == 0
        out = capsys.readouterr().out
        assert "charge profile" in out
        assert "watchdog alerts:" in out

    def test_profile_json_round_trips(self, capsys):
        assert main(["profile", "receive", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["scenario"] == "receive"
        assert report["host"] == "receiver"
        assert report["span_outcomes"].get("delivered", 0) > 0
        assert "p50" in report["stage_percentiles_seconds"]
        assert isinstance(report["alerts"], list)
        assert report["telemetry_latest"]

    def test_profile_trace_flag_writes_file(self, tmp_path, capsys):
        from repro.bench.traceout import validate_trace

        path = tmp_path / "profiled.json"
        assert main(["profile", "receive", "--trace", str(path)]) == 0
        assert validate_trace(json.loads(path.read_text())) == []
