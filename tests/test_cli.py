"""Tests for the ``python -m repro`` front door."""

import json

import pytest

from repro.__main__ import main


class TestCLI:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "SOSP 1987" in out
        assert "table-6-10" in out

    def test_default_is_info(self, capsys):
        assert main([]) == 0
        assert "reproduced experiments" in capsys.readouterr().out

    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        assert "it works" in capsys.readouterr().out

    def test_trace(self, capsys):
        assert main(["trace"]) == 0
        out = capsys.readouterr().out
        assert "ACCEPT" in out
        assert "short-circuit return" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_trace_scenario_exports_valid_json(self, tmp_path, capsys):
        from repro.bench.traceout import validate_trace

        path = tmp_path / "trace.json"
        assert main(["trace", "receive", "-o", str(path)]) == 0
        assert "trace events" in capsys.readouterr().out
        doc = json.loads(path.read_text())
        assert validate_trace(doc) == []
        assert doc["otherData"]["generator"] == "repro.bench.traceout"

    def test_trace_scenario_requires_output(self):
        with pytest.raises(SystemExit):
            main(["trace", "receive"])

    def test_trace_rejects_unknown_scenario(self):
        with pytest.raises(SystemExit):
            main(["trace", "nonsense", "-o", "x.json"])

    def test_profile_renders_table(self, capsys):
        assert main(["profile", "receive"]) == 0
        out = capsys.readouterr().out
        assert "charge profile" in out
        assert "watchdog alerts:" in out

    def test_profile_json_round_trips(self, capsys):
        assert main(["profile", "receive", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["scenario"] == "receive"
        assert report["host"] == "receiver"
        assert report["span_outcomes"].get("delivered", 0) > 0
        assert "p50" in report["stage_percentiles_seconds"]
        assert isinstance(report["alerts"], list)
        assert report["telemetry_latest"]

    def test_profile_trace_flag_writes_file(self, tmp_path, capsys):
        from repro.bench.traceout import validate_trace

        path = tmp_path / "profiled.json"
        assert main(["profile", "receive", "--trace", str(path)]) == 0
        assert validate_trace(json.loads(path.read_text())) == []


TOPO_ARGS = ["--shards", "2", "--duration", "0.1", "--seed", "0"]


class TestObservabilityCLI:
    def test_profile_topology_reports_sync_breakdown(self, capsys):
        assert main(["profile", "flow_storm", *TOPO_ARGS]) == 0
        out = capsys.readouterr().out
        assert "sync protocol:" in out
        assert "window advance:" in out
        assert "lan0" in out and "lan1" in out

    def test_profile_topology_json_has_nonzero_waits(self, capsys):
        assert main(["profile", "flow_storm", *TOPO_ARGS, "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["topology"] == "flow_storm"
        assert report["shards"] == 2
        assert len(report["sync"]["shards"]) == 2
        for shard in report["sync"]["shards"]:
            assert shard["grant_wait_seconds"] > 0.0
            assert shard["grants"] > 0
        assert report["sync"]["wall_per_window"] > 0.0
        assert report["span_latency"]["p50"] is not None

    def test_top_plain_renders_dashboard(self, capsys):
        assert main(["top", "flow_storm", *TOPO_ARGS, "--plain"]) == 0
        out = capsys.readouterr().out
        assert "cluster: 2 shard(s)" in out
        assert "ckpt age" in out
        assert "done:" in out
        assert "\x1b" not in out   # --plain never emits ANSI

    def test_top_plain_streams_alerts(self, capsys):
        assert main([
            "top", "partition_storm", "--shards", "2", "--plain",
        ]) == 0
        captured = capsys.readouterr()
        assert "ALERT [partition:" in captured.err

    def test_trace_topology_exports_stitched_json(self, tmp_path, capsys):
        from repro.bench.traceout import validate_trace

        path = tmp_path / "stitched.json"
        assert main([
            "trace", "flow_storm", *TOPO_ARGS, "-o", str(path),
        ]) == 0
        doc = json.loads(path.read_text())
        assert validate_trace(doc) == []
        assert doc["otherData"]["shards"] == 2
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert {"s", "f"} <= phases

    def test_shard_trace_flag_writes_stitched_file(self, tmp_path, capsys):
        from repro.bench.traceout import validate_trace

        path = tmp_path / "shard.json"
        assert main([
            "shard", "flow_storm", *TOPO_ARGS, "--trace", str(path),
        ]) == 0
        assert validate_trace(json.loads(path.read_text())) == []

    def test_shard_json_surfaces_observability_fields(self, capsys):
        assert main(["shard", "flow_storm", *TOPO_ARGS, "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["recovered_shards"] == []
        assert summary["wall_per_window"] > 0.0
        assert [d["shard"] for d in summary["shard_details"]] == [0, 1]
        for detail in summary["shard_details"]:
            assert detail["windows"] == summary["windows"]
            assert detail["events_fired"] > 0
        assert summary["sync"]["windows"] == summary["windows"]
        assert summary["span_latency"]["p50"] is not None
