"""Tests for the ``python -m repro`` front door."""

import pytest

from repro.__main__ import main


class TestCLI:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "SOSP 1987" in out
        assert "table-6-10" in out

    def test_default_is_info(self, capsys):
        assert main([]) == 0
        assert "reproduced experiments" in capsys.readouterr().out

    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        assert "it works" in capsys.readouterr().out

    def test_trace(self, capsys):
        assert main(["trace"]) == 0
        out = capsys.readouterr().out
        assert "ACCEPT" in out
        assert "short-circuit return" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
