"""Applications built on the packet filter (section 5)."""

from .monitor import NetworkMonitor, TraceRecord, TrafficSummary, decode_frame
from .tracefile import load_trace, save_trace, summarize_trace

__all__ = [
    "NetworkMonitor", "TraceRecord", "TrafficSummary", "decode_frame",
    "save_trace", "load_trace", "summarize_trace",
]
