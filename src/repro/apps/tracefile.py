"""Saving and loading capture traces — the workstation-tools half of §5.4.

"All the tools of the workstation are available for manipulating and
analyzing packet traces."  This module is the interchange piece: a
monitor's :class:`~repro.apps.monitor.TraceRecord` list round-trips
through a simple JSON-lines file (one record per line, schema
versioned), so traces can be saved, diffed, grepped, and re-analyzed
offline — the 1987 equivalent of a pcap file.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import Iterable

from .monitor import TraceRecord, TrafficSummary

__all__ = ["save_trace", "load_trace", "summarize_trace", "FORMAT_VERSION"]

FORMAT_VERSION = 1


class TraceFileError(ValueError):
    """The file is not a readable trace."""


def save_trace(path: str | Path, records: Iterable[TraceRecord]) -> int:
    """Write records as JSON lines; returns the count written.

    The first line is a header carrying the format version, so future
    schema changes stay detectable.
    """
    path = Path(path)
    count = 0
    with path.open("w") as handle:
        handle.write(json.dumps({"format": "pftrace", "version": FORMAT_VERSION}))
        handle.write("\n")
        for record in records:
            handle.write(json.dumps(asdict(record), sort_keys=True))
            handle.write("\n")
            count += 1
    return count


def load_trace(path: str | Path) -> list[TraceRecord]:
    """Read a trace written by :func:`save_trace`."""
    path = Path(path)
    with path.open() as handle:
        header_line = handle.readline()
        try:
            header = json.loads(header_line)
        except json.JSONDecodeError as exc:
            raise TraceFileError(f"{path}: not a trace file") from exc
        if header.get("format") != "pftrace":
            raise TraceFileError(f"{path}: not a pftrace file")
        if header.get("version") != FORMAT_VERSION:
            raise TraceFileError(
                f"{path}: trace version {header.get('version')} "
                f"(this reader understands {FORMAT_VERSION})"
            )
        records = []
        for line_number, line in enumerate(handle, start=2):
            if not line.strip():
                continue
            try:
                fields = json.loads(line)
                records.append(TraceRecord(**fields))
            except (json.JSONDecodeError, TypeError) as exc:
                raise TraceFileError(
                    f"{path}:{line_number}: bad trace record"
                ) from exc
        return records


def summarize_trace(records: Iterable[TraceRecord]) -> TrafficSummary:
    """Rebuild a live summary from a stored trace (offline analysis)."""
    summary = TrafficSummary()
    for record in records:
        summary.account(record)
    return summary
