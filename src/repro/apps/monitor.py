"""The integrated network monitor of section 5.4.

"One of us has been using the packet filter, on a MicroVAX-II
workstation, as the basis for a variety of experimental network
monitoring tools. ...  Since one can easily write arbitrarily elaborate
programs to analyze the trace data, and even to do substantial analysis
in real time, an integrated network monitor appears to be far more
useful than a dedicated one."

The monitor is an ordinary user process: a promiscuous NIC, a
packet-filter port with an accept-everything filter bound in *copy-all*
mode ("useful in implementing monitoring facilities without disturbing
the processes being monitored"), timestamping on, batching on.  It
decodes whatever it recognizes (IP/UDP/TCP, Pup/BSP, VMTP, RARP) and
accumulates a live traffic summary — the "substantial analysis in real
time".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.ioctl import PFIoctl
from ..core.port import ReadTimeoutPolicy
from ..net.ethernet import LinkSpec
from ..protocols import ethertypes
from ..protocols.ip import IPError, IPHeader, PROTO_TCP, PROTO_UDP, format_ip
from ..protocols.pup import PupError, PupHeader
from ..protocols.vmtp import VMTPError, VMTPPacket
from ..baselines.user_demux import catch_all_filter
from ..sim.errors import SimTimeout
from ..sim.process import Ioctl, Open, Read

__all__ = ["TraceRecord", "TrafficSummary", "NetworkMonitor", "decode_frame"]


@dataclass(frozen=True)
class TraceRecord:
    """One captured packet, decoded as far as we know how."""

    timestamp: float | None
    length: int
    source: str
    destination: str
    protocol: str
    info: str
    drops_before: int = 0


@dataclass
class TrafficSummary:
    """Live counters, per protocol and per talker."""

    packets: int = 0
    bytes: int = 0
    by_protocol: dict = field(default_factory=dict)
    by_source: dict = field(default_factory=dict)

    def account(self, record: TraceRecord) -> None:
        self.packets += 1
        self.bytes += record.length
        self.by_protocol[record.protocol] = (
            self.by_protocol.get(record.protocol, 0) + 1
        )
        self.by_source[record.source] = self.by_source.get(record.source, 0) + 1

    def top_talkers(self, n: int = 5) -> list[tuple[str, int]]:
        return sorted(self.by_source.items(), key=lambda kv: -kv[1])[:n]


def decode_frame(link: LinkSpec, frame: bytes) -> tuple[str, str]:
    """Best-effort decode; returns (protocol, info)."""
    ethertype = link.ethertype_of(frame)
    payload = link.payload_of(frame)

    if ethertype == ethertypes.ETHERTYPE_IP:
        try:
            header, body = IPHeader.decode(payload)
        except IPError:
            return "ip?", "bad IP header"
        inner = {PROTO_TCP: "tcp", PROTO_UDP: "udp"}.get(header.protocol)
        info = f"{format_ip(header.src)} > {format_ip(header.dst)}"
        return (inner or f"ip-proto-{header.protocol}", info)

    if ethertype in (
        ethertypes.ETHERTYPE_PUP_3MB,
        ethertypes.ETHERTYPE_PUP_10MB,
    ):
        try:
            header, _ = PupHeader.decode(payload)
        except PupError:
            return "pup?", "bad Pup header"
        return (
            "pup",
            f"type {header.pup_type} "
            f"{header.src.net}#{header.src.host}#{header.src.socket:x} > "
            f"{header.dst.net}#{header.dst.host}#{header.dst.socket:x}",
        )

    if ethertype == ethertypes.ETHERTYPE_VMTP:
        try:
            packet = VMTPPacket.decode(payload)
        except VMTPError:
            return "vmtp?", "bad VMTP header"
        return (
            "vmtp",
            f"{packet.kind.name.lower()} client {packet.client} "
            f"server {packet.server} txn {packet.transaction} "
            f"seg {packet.seg_index + 1}/{packet.seg_count}",
        )

    if ethertype == ethertypes.ETHERTYPE_RARP:
        return "rarp", f"op {payload[7] if len(payload) > 7 else '?'}"

    return f"type-{ethertype:#06x}", f"{len(payload)} bytes"


class NetworkMonitor:
    """The monitoring process.  Spawn its :meth:`run` on a promiscuous
    host whose kernel has ``pf_sees_all`` enabled (so the monitor sees
    traffic claimed by kernel protocols too)."""

    def __init__(
        self,
        host,
        *,
        capture_limit: int | None = None,
        idle_timeout: float = 0.5,
    ) -> None:
        self.host = host
        self.capture_limit = capture_limit
        self.idle_timeout = idle_timeout
        self.trace: list[TraceRecord] = []
        self.summary = TrafficSummary()

    def run(self):
        """Capture until ``capture_limit`` packets or the wire goes
        idle for ``idle_timeout``; returns the trace."""
        fd = yield Open("pf")
        yield Ioctl(fd, PFIoctl.SETFILTER, catch_all_filter(priority=255))
        yield Ioctl(fd, PFIoctl.SETCOPYALL, True)
        yield Ioctl(fd, PFIoctl.SETTIMESTAMP, True)
        yield Ioctl(fd, PFIoctl.SETBATCH, True)
        yield Ioctl(fd, PFIoctl.SETQUEUELEN, 128)
        yield Ioctl(
            fd, PFIoctl.SETTIMEOUT, ReadTimeoutPolicy.after(self.idle_timeout)
        )
        link = self.host.link
        while True:
            try:
                batch = yield Read(fd)
            except SimTimeout:
                return self.trace
            for delivered in batch:
                protocol, info = decode_frame(link, delivered.data)
                record = TraceRecord(
                    timestamp=delivered.timestamp,
                    length=len(delivered.data),
                    source=link.source_of(delivered.data).hex(),
                    destination=link.destination_of(delivered.data).hex(),
                    protocol=protocol,
                    info=info,
                    drops_before=delivered.drops_before,
                )
                self.trace.append(record)
                self.summary.account(record)
                if (
                    self.capture_limit is not None
                    and len(self.trace) >= self.capture_limit
                ):
                    return self.trace

    def format_trace(self, limit: int = 20) -> str:
        """tcpdump-style rendering of the first ``limit`` records."""
        lines = []
        for record in self.trace[:limit]:
            stamp = (
                f"{record.timestamp:.6f}" if record.timestamp is not None
                else "-"
            )
            lines.append(
                f"{stamp}  {record.source} > {record.destination} "
                f"{record.protocol:>6} {record.length:4}B  {record.info}"
            )
        return "\n".join(lines)

    def format_costs(self) -> str:
        """What the kernel spent while we watched — the "substantial
        analysis in real time" extended to the kernel's own time, read
        from the world's charge ledger.  Needs a ledger-enabled world
        (``World(ledger=True)``); says so when there isn't one."""
        ledger = getattr(self.host.kernel, "ledger", None)
        if ledger is None:
            return "(charge ledger not enabled on this world)"
        rows = ledger.breakdown(self.host.name)
        total = sum(row["cost"] for row in rows.values())
        lines = [
            f"kernel cost on {self.host.name}: {total * 1000.0:.3f} ms"
        ]
        for name, row in sorted(rows.items(), key=lambda kv: -kv[1]["cost"]):
            lines.append(
                f"  {name:<20}{row['events']:>7} events"
                f"{row['cost'] * 1000.0:>10.3f} ms"
            )
        drops = ledger.drop_summary(self.host.name)
        if drops:
            lines.append("drops:")
            for reason, count in sorted(drops.items(), key=lambda kv: -kv[1]):
                lines.append(f"  {reason:<20}{count:>7}")
        return "\n".join(lines)
