"""The user-level demultiplexing process — the figure 2-1 baseline.

This is the design the packet filter exists to beat: one privileged
process receives *every* packet and forwards each to its destination
process over a pipe.  Per received packet (section 6.5.1's analysis):

* at least two context switches (into the demultiplexer, then into the
  receiving process),
* two extra data transfers ("Since Unix does not support memory
  sharing, the demultiplexing process requires two additional data
  transfers to get the packet into the final receiving process"),
* and extra system calls for the pipe write and pipe read.

Tables 6-5, 6-8 and 6-9 measure exactly this arrangement; the
:class:`UserDemuxSystem` here is what those benchmarks instantiate.
The demultiplexer itself receives packets through a single high-
priority catch-all packet-filter port — mirroring the paper's own
methodology, where the measured difference is everything *after* the
packet reaches a user process.
"""

from __future__ import annotations

from typing import Callable

from ..core.ioctl import PFIoctl
from ..core.program import FilterProgram, asm
from ..sim.host import Host
from ..sim.pipe import Pipe
from ..sim.process import Ioctl, Open, Process, Read, Write

__all__ = ["catch_all_filter", "UserDemuxSystem", "Inbox"]


def catch_all_filter(priority: int = 200) -> FilterProgram:
    """A filter that accepts every packet (PUSHONE; top of stack ≠ 0),
    bound at high priority so the demux process sees everything first."""
    return FilterProgram(asm("PUSHONE"), priority=priority)


class Inbox:
    """A destination process's receive end of the demultiplexer.

    Pipes are byte streams, so forwarded packets travel with a 2-byte
    length prefix; the inbox deframes them, buffering whatever a read
    drained beyond the current packet (that surplus is what makes a
    batched pipe read pay off).
    """

    def __init__(self, key: object) -> None:
        self.key = key
        self.fd: int | None = None    # filled in by register()
        self.packets = 0
        self._buffer = bytearray()

    def read(self):
        """Receive one packet (yield from inside the destination body)."""
        if self.fd is None:
            raise RuntimeError("inbox is not registered to a process")
        while True:
            if len(self._buffer) >= 2:
                need = 2 + int.from_bytes(self._buffer[:2], "big")
                if len(self._buffer) >= need:
                    packet = bytes(self._buffer[2:need])
                    del self._buffer[:need]
                    self.packets += 1
                    return packet
            data = yield Read(self.fd)
            if not data:
                return None  # demultiplexer went away
            self._buffer.extend(data)


def frame_packet(packet: bytes) -> bytes:
    """Length-prefix one packet for the pipe byte stream."""
    return len(packet).to_bytes(2, "big") + packet


class UserDemuxSystem:
    """One host's user-level demultiplexer and its destination registry.

    ``classify(frame) -> key`` is the demultiplexer's decision function
    (e.g. parse the UDP port or Pup socket).  Destinations are
    registered per key; each gets a pipe from the demux process.

    Typical scenario construction::

        demux = UserDemuxSystem(host, classify=my_classifier)
        inbox = demux.add_destination("telnet")
        dest = host.spawn("dest", dest_body(inbox))
        demux.register(inbox, dest)
        host.spawn("demuxd", demux.run())
    """

    def __init__(
        self,
        host: Host,
        classify: Callable[[bytes], object],
        *,
        batching: bool = False,
        decision_compute: float = 0.0,
    ) -> None:
        self.host = host
        self.classify = classify
        self.batching = batching
        #: Extra per-packet user CPU the demultiplexer spends deciding;
        #: tables 6-8/6-9 were measured "without any real
        #: decision-making on the part of the demultiplexer", i.e. 0.
        self.decision_compute = decision_compute
        self._pipes: dict[object, Pipe] = {}
        self._write_fds: dict[object, int] = {}
        self.packets_forwarded = 0
        self.packets_unroutable = 0

    # -- wiring -------------------------------------------------------------

    def add_destination(self, key: object) -> Inbox:
        if key in self._pipes:
            raise ValueError(f"destination {key!r} already registered")
        self._pipes[key] = Pipe(self.host.kernel)
        return Inbox(key)

    def register(self, inbox: Inbox, process: Process) -> None:
        """Give ``process`` the read end of its inbox's pipe (the
        stand-in for fork-inherited descriptors)."""
        pipe = self._pipes[inbox.key]
        inbox.fd = process.allocate_fd(pipe.read_end)

    def attach(self, demux_process: Process) -> None:
        """Give the spawned demultiplexing process the write ends.

        Call right after ``host.spawn("demuxd", demux.run())`` — fds
        are installed before the process's first instruction runs.
        """
        for key, pipe in self._pipes.items():
            self._write_fds[key] = demux_process.allocate_fd(pipe.write_end)

    # -- the demultiplexing process itself ----------------------------------------

    def run(self):
        """Process body: receive everything, forward by key."""
        from ..sim.process import Compute

        fd = yield Open("pf")
        yield Ioctl(fd, PFIoctl.SETFILTER, catch_all_filter())
        yield Ioctl(fd, PFIoctl.SETBATCH, self.batching)
        if self.batching:
            yield Ioctl(fd, PFIoctl.SETQUEUELEN, 64)
        if not self._write_fds:
            raise RuntimeError("attach() was not called after spawn")
        while True:
            batch = yield Read(fd)
            grouped: dict[object, list[bytes]] = {}
            for delivered in batch:
                if self.decision_compute:
                    yield Compute(self.decision_compute)
                key = self.classify(delivered.data)
                if key not in self._write_fds:
                    self.packets_unroutable += 1
                    continue
                grouped.setdefault(key, []).append(
                    frame_packet(delivered.data)
                )
            for key, frames in grouped.items():
                # One vectored pipe write per destination per batch —
                # the pipe-side amortization batching buys (table 6-9).
                yield Write(self._write_fds[key], tuple(frames))
                self.packets_forwarded += len(frames)
