"""The baselines the paper argues against, built so they can lose fairly."""

from .user_demux import Inbox, UserDemuxSystem, catch_all_filter

__all__ = ["UserDemuxSystem", "Inbox", "catch_all_filter"]
