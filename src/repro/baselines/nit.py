"""Sun's NIT, as the paper found it — the single-field straw man.

Section 5.4's footnote: "[Sun's etherfind] is based on Sun's Network
Interface Tap (NIT) facility, which is similar to the packet filter but
only allows filtering on a single packet field!  (Sun expects to
include our packet-filtering mechanism in a future release of NIT.)"

This module implements that weaker design so its cost can be measured:
a kernel demultiplexer whose per-port predicate is exactly one
``(word offset, mask, value)`` triple.  A protocol that discriminates
on one field (an Ethernet type) fits; anything finer — a Pup socket
*and* the Pup type, a VMTP client *and* kind — cannot be expressed, so
a NIT-based program must over-capture and finish demultiplexing in user
space, paying the figure 2-1 costs the packet filter exists to avoid.

``benchmarks/test_ablation_nit_single_field.py`` measures the price.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.port import Port
from ..core.words import get_word

__all__ = ["SingleFieldPredicate", "NITDemux"]


@dataclass(frozen=True)
class SingleFieldPredicate:
    """All NIT lets you say: ``packet.word[offset] & mask == value``."""

    offset: int
    value: int
    mask: int = 0xFFFF
    priority: int = 0

    def matches(self, packet: bytes) -> bool:
        try:
            return (get_word(packet, self.offset) & self.mask) == self.value
        except IndexError:
            return False


class NITDemux:
    """A NIT-style demultiplexer: one field test per port.

    Interface parallels :class:`repro.core.demux.PacketFilterDemux`
    closely enough for the benchmarks to swap them; what it *cannot*
    parallel is expressiveness, which is the point.
    """

    def __init__(self) -> None:
        self._entries: list[tuple[SingleFieldPredicate, Port]] = []
        self.packets_seen = 0
        self.packets_unclaimed = 0
        self.total_predicates_tested = 0

    def attach(self, port: Port, predicate: SingleFieldPredicate) -> None:
        self._entries.append((predicate, port))
        self._entries.sort(key=lambda item: -item[0].priority)

    def deliver(self, packet: bytes, timestamp: float | None = None) -> bool:
        self.packets_seen += 1
        tested = 0
        for predicate, port in self._entries:
            tested += 1
            if predicate.matches(packet):
                self.total_predicates_tested += tested
                port.enqueue(packet, timestamp)
                return True
        self.total_predicates_tested += tested
        self.packets_unclaimed += 1
        return False

    @property
    def mean_predicates_tested(self) -> float:
        if self.packets_seen == 0:
            return 0.0
        return self.total_predicates_tested / self.packets_seen
