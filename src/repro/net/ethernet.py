"""Ethernet framing for the two data links the paper measures on.

The evaluation uses both the 3 Mbit/s *Experimental* Ethernet (Metcalfe
& Boggs 1976 — one-byte addresses, the network Pup grew up on; figures
3-7/3-8/3-9 assume its 4-byte header) and the 10 Mbit/s DIX Ethernet
(six-byte addresses, 14-byte header).

Frames are plain ``bytes``; a :class:`LinkSpec` describes how to build
and parse the header for its link type, and doubles as the GETINFO
answer of section 3.3 (address length, header length, MTU, broadcast
address, data-link type).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "LinkSpec",
    "ETHERNET_10MB",
    "ETHERNET_3MB",
    "FrameError",
]


class FrameError(ValueError):
    """A frame is malformed for its link type."""


@dataclass(frozen=True)
class LinkSpec:
    """Framing rules and link constants for one data-link type."""

    name: str
    address_length: int    #: bytes per station address
    header_length: int     #: dst + src + type
    max_frame_bytes: int   #: MTU including the data-link header
    min_frame_bytes: int   #: shortest legal frame
    bandwidth_bps: int     #: raw signalling rate
    broadcast: bytes       #: the all-stations address

    def encode_header(self, dst: bytes, src: bytes, ethertype: int) -> bytes:
        for label, addr in (("destination", dst), ("source", src)):
            if len(addr) != self.address_length:
                raise FrameError(
                    f"{label} address {addr!r} is not "
                    f"{self.address_length} bytes for {self.name}"
                )
        if not 0 <= ethertype <= 0xFFFF:
            raise FrameError(f"ethertype {ethertype:#x} is not 16 bits")
        return dst + src + ethertype.to_bytes(2, "big")

    def frame(self, dst: bytes, src: bytes, ethertype: int, payload: bytes) -> bytes:
        """Build a complete frame; enforces the link MTU."""
        data = self.encode_header(dst, src, ethertype) + payload
        if len(data) > self.max_frame_bytes:
            raise FrameError(
                f"{len(data)}-byte frame exceeds {self.name} maximum "
                f"of {self.max_frame_bytes}"
            )
        return data

    def destination_of(self, frame: bytes) -> bytes:
        self._check_length(frame)
        return frame[: self.address_length]

    def source_of(self, frame: bytes) -> bytes:
        self._check_length(frame)
        return frame[self.address_length : 2 * self.address_length]

    def ethertype_of(self, frame: bytes) -> int:
        self._check_length(frame)
        offset = 2 * self.address_length
        return int.from_bytes(frame[offset : offset + 2], "big")

    def payload_of(self, frame: bytes) -> bytes:
        self._check_length(frame)
        return frame[self.header_length :]

    def transmission_time(self, nbytes: int) -> float:
        """Seconds to serialize ``nbytes`` onto the wire."""
        return (nbytes * 8) / self.bandwidth_bps

    def _check_length(self, frame: bytes) -> None:
        if len(frame) < self.header_length:
            raise FrameError(
                f"{len(frame)}-byte frame shorter than the {self.name} header"
            )


ETHERNET_10MB = LinkSpec(
    name="ethernet-10mb",
    address_length=6,
    header_length=14,
    max_frame_bytes=1514,
    min_frame_bytes=64,
    bandwidth_bps=10_000_000,
    broadcast=b"\xff" * 6,
)
"""The standard 10 Mbit/s Ethernet of the VMTP/TCP measurements."""

ETHERNET_3MB = LinkSpec(
    name="ethernet-3mb",
    address_length=1,
    header_length=4,
    max_frame_bytes=600,
    min_frame_bytes=4,
    bandwidth_bps=2_940_000,
    broadcast=b"\x00",
)
"""The 3 Mbit/s Experimental Ethernet of figures 3-7..3-9 (the actual
signalling rate was 2.94 Mbit/s; address 0 is broadcast)."""
