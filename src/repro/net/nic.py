"""Network interfaces: address filtering, input queueing, drop counting.

The NIC is where the section 3.3 "count of the number of packets lost
due to queue overflows in the network interface" comes from: received
frames wait in a bounded input queue for the kernel's receive interrupt,
and a full queue drops (and counts).

A NIC in promiscuous mode accepts every frame on the segment regardless
of destination — what the section 5.4 network monitor runs on.
"""

from __future__ import annotations

from collections import deque

from ..sim.ledger import (
    Primitive,
    STAGE_WIRE_ARRIVAL,
)
from .ethernet import LinkSpec

__all__ = ["NIC", "DEFAULT_INPUT_QUEUE"]

DEFAULT_INPUT_QUEUE = 16
"""Frames the interface can hold before the kernel services them."""


class NIC:
    """One station's interface to an :class:`EthernetSegment`."""

    def __init__(
        self,
        address: bytes,
        link: LinkSpec,
        *,
        input_queue_limit: int = DEFAULT_INPUT_QUEUE,
        promiscuous: bool = False,
        rx_batch: int = 1,
    ) -> None:
        if len(address) != link.address_length:
            raise ValueError(
                f"address {address!r} wrong length for {link.name}"
            )
        self.address = address
        self.link = link
        self.promiscuous = promiscuous
        self.input_queue_limit = input_queue_limit
        self.rx_batch = max(1, rx_batch)
        """Frames handed to the kernel per service event.  1 keeps the
        classic interrupt-per-frame path; larger values coalesce queued
        frames into one ``network_input_batch`` call — interrupt
        mitigation, with the batch size bounding added latency."""
        self.rx_mitigation = 0.0
        """Seconds to hold the receive interrupt after a frame arrives
        (only with ``rx_batch`` > 1), letting a wire burst accumulate in
        the input queue — frames are spaced by serialization delay, so
        without a hold window each one gets its own service event.  The
        interrupt fires early the moment ``rx_batch`` frames are queued,
        so the window bounds latency, not batch size."""
        self._service_event = None
        self.segment = None   # set by EthernetSegment.attach
        self.kernel = None    # set by SimKernel.attach_nic
        self._input_queue: deque[bytes] = deque()
        self._input_ids: deque[int | None] = deque()  # ledger span ids
        self._service_scheduled = False
        self.frames_received = 0
        self.frames_dropped = 0    #: input-queue overflow losses
        self.frames_ignored = 0    #: address-filtered out
        self.frames_sent = 0

    # -- transmit ---------------------------------------------------------

    def transmit(self, frame: bytes) -> None:
        if self.segment is None:
            raise RuntimeError("NIC is not attached to a segment")
        self.frames_sent += 1
        self.segment.transmit(self, frame)

    # -- receive ------------------------------------------------------------

    def wants(self, frame: bytes) -> bool:
        if self.promiscuous:
            return True
        dst = self.link.destination_of(frame)
        return dst == self.address or dst == self.link.broadcast

    def receive(self, frame: bytes) -> None:
        """Frame arrives off the wire (called by the segment)."""
        if not self.wants(frame):
            self.frames_ignored += 1
            return
        # The kernel may be a bare test stub; only touch its ledger (and
        # name/clock) when one is actually attached.
        ledger = getattr(self.kernel, "ledger", None)
        if len(self._input_queue) >= self.input_queue_limit:
            self.frames_dropped += 1
            if ledger is not None:
                now = self.kernel.scheduler.now
                packet_id = ledger.begin_packet(
                    self.kernel.name,
                    at=now,
                    flow=self.link.ethertype_of(frame),
                    stage=STAGE_WIRE_ARRIVAL,
                )
                ledger.record(
                    Primitive.DROP_INTERFACE,
                    host=self.kernel.name,
                    at=now,
                    component="nic",
                    packet_id=packet_id,
                )
                ledger.close_packet(packet_id, "dropped_interface", now)
            return
        self.frames_received += 1
        packet_id = None
        if ledger is not None:
            packet_id = ledger.begin_packet(
                self.kernel.name,
                at=self.kernel.scheduler.now,
                flow=self.link.ethertype_of(frame),
                stage=STAGE_WIRE_ARRIVAL,
            )
        self._input_queue.append(frame)
        self._input_ids.append(packet_id)
        self._schedule_service()

    def _schedule_service(self) -> None:
        """Arrange for the kernel's receive interrupt to drain the queue.

        With ``rx_batch`` == 1, one event per frame so interrupt costs
        serialize on the host CPU the way per-frame interrupts did.
        With batching and a mitigation window, the first frame arms a
        held interrupt; a full batch fires it immediately.
        """
        if self.kernel is None:
            return
        batching = self.rx_batch > 1 and self.rx_mitigation > 0.0
        full = len(self._input_queue) >= self.rx_batch
        if self._service_scheduled:
            if (
                batching
                and full
                and self._service_event.time > self.kernel.scheduler.now
            ):
                # Full batch before the hold expired: fire now.
                self._service_event.cancel()
                self._service_event = self.kernel.scheduler.schedule(
                    0.0, self._service
                )
            return
        self._service_scheduled = True
        # A hold window only makes sense while the queue is short of a
        # batch; with one (or more) complete batches already queued the
        # interrupt fires immediately — the window bounds latency, it
        # never delays work that is already ready.
        delay = self.rx_mitigation if batching and not full else 0.0
        self._service_event = self.kernel.scheduler.schedule(
            delay, self._service
        )

    def _service(self) -> None:
        self._service_scheduled = False
        if not self._input_queue:
            return
        if self.rx_batch <= 1:
            frame = self._input_queue.popleft()
            packet_id = self._input_ids.popleft() if self._input_ids else None
            if packet_id is None:
                # Also the path taken with bare test-stub kernels, whose
                # network_input doesn't take a packet id.
                self.kernel.network_input(self, frame)
            else:
                self.kernel.network_input(self, frame, packet_id)
        else:
            frames = []
            packet_ids = []
            while self._input_queue and len(frames) < self.rx_batch:
                frames.append(self._input_queue.popleft())
                packet_ids.append(
                    self._input_ids.popleft() if self._input_ids else None
                )
            if any(pid is not None for pid in packet_ids):
                self.kernel.network_input_batch(
                    self, frames, packet_ids=packet_ids
                )
            else:
                self.kernel.network_input_batch(self, frames)
        if self._input_queue:
            self._schedule_service()
