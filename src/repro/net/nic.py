"""Network interfaces: address filtering, input queueing, drop counting.

The NIC is where the section 3.3 "count of the number of packets lost
due to queue overflows in the network interface" comes from: received
frames wait in a bounded input queue for the kernel's receive interrupt,
and a full queue drops (and counts).

A NIC in promiscuous mode accepts every frame on the segment regardless
of destination — what the section 5.4 network monitor runs on.
"""

from __future__ import annotations

from collections import deque

from ..sim.ledger import (
    Primitive,
    STAGE_WIRE_ARRIVAL,
)
from .ethernet import LinkSpec

__all__ = ["NIC", "DEFAULT_INPUT_QUEUE"]

DEFAULT_INPUT_QUEUE = 16
"""Frames the interface can hold before the kernel services them."""


class NIC:
    """One station's interface to an :class:`EthernetSegment`."""

    def __init__(
        self,
        address: bytes,
        link: LinkSpec,
        *,
        input_queue_limit: int = DEFAULT_INPUT_QUEUE,
        promiscuous: bool = False,
        rx_batch: int = 1,
    ) -> None:
        if len(address) != link.address_length:
            raise ValueError(
                f"address {address!r} wrong length for {link.name}"
            )
        self.address = address
        self.link = link
        self.promiscuous = promiscuous
        self.input_queue_limit = input_queue_limit
        self.rx_batch = max(1, rx_batch)
        """Frames handed to the kernel per service event.  1 keeps the
        classic interrupt-per-frame path; larger values coalesce queued
        frames into one ``network_input_batch`` call — interrupt
        mitigation, with the batch size bounding added latency."""
        self.rx_mitigation = 0.0
        """Seconds to hold the receive interrupt after a frame arrives
        (only with ``rx_batch`` > 1), letting a wire burst accumulate in
        the input queue — frames are spaced by serialization delay, so
        without a hold window each one gets its own service event.  The
        interrupt fires early the moment ``rx_batch`` frames are queued,
        so the window bounds latency, not batch size."""
        self._service_event = None
        self.segment = None   # set by EthernetSegment.attach
        self.kernel = None    # set by SimKernel.attach_nic
        self._input_queue: deque[bytes] = deque()
        self._input_ids: deque[int | None] = deque()  # ledger span ids
        self._service_scheduled = False
        self.frames_received = 0
        self.frames_dropped = 0    #: input-queue overflow losses
        self.frames_ignored = 0    #: address-filtered out
        self.frames_sent = 0
        self.polling = False
        """In budgeted-polling mode: an ``RxPolicy`` watermark was
        crossed and the poll loop, not per-frame interrupts, drains the
        ring (receive-livelock avoidance)."""
        self._poll_event = None
        self.polls = 0              #: poll quanta executed
        self.frames_polled = 0      #: frames drained by the poll loop
        self.poll_mode_entries = 0  #: interrupt -> polling transitions
        self.frames_shed = 0        #: admission drops: policy early shed
        self.frames_nobuf = 0       #: admission drops: buffer pool refusal

    def telemetry_gauges(self) -> dict:
        """Gauge callables for the telemetry sampler — ring occupancy,
        poll-mode state, and the admission-drop counters.  The kernel
        publishes these at :meth:`SimKernel.attach_nic` time; the
        sampler never imports this module."""
        return {
            "ring_depth": lambda: len(self._input_queue),
            "polling": lambda: 1.0 if self.polling else 0.0,
            "polls": lambda: self.polls,
            "poll_mode_entries": lambda: self.poll_mode_entries,
            "frames_received": lambda: self.frames_received,
            "frames_dropped": lambda: self.frames_dropped,
            "frames_shed": lambda: self.frames_shed,
            "frames_nobuf": lambda: self.frames_nobuf,
        }

    # -- transmit ---------------------------------------------------------

    def transmit(self, frame: bytes) -> None:
        if self.segment is None:
            raise RuntimeError("NIC is not attached to a segment")
        self.frames_sent += 1
        self.segment.transmit(self, frame)

    # -- receive ------------------------------------------------------------

    def wants(self, frame: bytes) -> bool:
        if self.promiscuous:
            return True
        dst = self.link.destination_of(frame)
        return dst == self.address or dst == self.link.broadcast

    def receive(self, frame: bytes) -> None:
        """Frame arrives off the wire (called by the segment)."""
        if not self.wants(frame):
            self.frames_ignored += 1
            return
        # The kernel may be a bare test stub; only touch its ledger (and
        # name/clock) when one is actually attached.
        kernel = self.kernel
        ledger = getattr(kernel, "ledger", None)
        policy = getattr(kernel, "rx_policy", None)
        if policy is not None or getattr(kernel, "buffer_pool", None) is not None:
            cause = kernel.admit_frame(self, frame)
        elif len(self._input_queue) >= self.input_queue_limit:
            cause = Primitive.DROP_INTERFACE
        else:
            cause = None
        if cause is not None:
            self._drop_at_admission(frame, cause, ledger)
            return
        self.frames_received += 1
        packet_id = None
        if ledger is not None:
            packet_id = ledger.begin_packet(
                self.kernel.name,
                at=self.kernel.scheduler.now,
                flow=self.link.ethertype_of(frame),
                stage=STAGE_WIRE_ARRIVAL,
            )
        self._input_queue.append(frame)
        self._input_ids.append(packet_id)
        if self.polling:
            return  # the poll loop owns draining; arrivals just queue
        if policy is not None and len(self._input_queue) >= policy.poll_enter:
            self._enter_polling()
        else:
            self._schedule_service()

    def _drop_at_admission(self, frame: bytes, cause, ledger) -> None:
        """Refused at ring enqueue: count it and close its fate in the
        ledger, so the drop census accounts for every wire arrival —
        the charge goes through ``kernel.account`` like any other event."""
        if cause is Primitive.DROP_SHED:
            self.frames_shed += 1
        elif cause is Primitive.DROP_NOBUF:
            self.frames_nobuf += 1
        else:
            self.frames_dropped += 1
        account = getattr(self.kernel, "account", None)
        if account is None:
            return  # bare test-stub kernel: local counters only
        packet_id = None
        if ledger is not None:
            packet_id = ledger.begin_packet(
                self.kernel.name,
                at=self.kernel.scheduler.now,
                flow=self.link.ethertype_of(frame),
                stage=STAGE_WIRE_ARRIVAL,
            )
        account(cause, component="nic", packet_id=packet_id)
        if ledger is not None:
            # The legacy primitive's value predates the "dropped_*"
            # outcome naming; every newer cause matches its outcome.
            outcome = (
                "dropped_interface"
                if cause is Primitive.DROP_INTERFACE
                else cause.value
            )
            ledger.close_packet(packet_id, outcome, self.kernel.scheduler.now)

    def _schedule_service(self) -> None:
        """Arrange for the kernel's receive interrupt to drain the queue.

        With ``rx_batch`` == 1, one event per frame so interrupt costs
        serialize on the host CPU the way per-frame interrupts did.
        With batching and a mitigation window, the first frame arms a
        held interrupt; a full batch fires it immediately.
        """
        if self.kernel is None:
            return
        if getattr(self.kernel, "rx_policy", None) is not None:
            # CPU-gated: with an overload policy the receive interrupt
            # runs when the CPU cursor frees, not instantaneously, so
            # the ring holds real backlog and can genuinely fill — the
            # precondition for watermarks, shedding and polling.
            if self._service_scheduled:
                return
            self._service_scheduled = True
            self._service_event = self.kernel.scheduler.schedule_at(
                self.kernel.cpu_available_at, self._service
            )
            return
        batching = self.rx_batch > 1 and self.rx_mitigation > 0.0
        full = len(self._input_queue) >= self.rx_batch
        if self._service_scheduled:
            if (
                batching
                and full
                and self._service_event.time > self.kernel.scheduler.now
            ):
                # Full batch before the hold expired: fire now.
                self._service_event.cancel()
                self._service_event = self.kernel.scheduler.schedule(
                    0.0, self._service
                )
            return
        self._service_scheduled = True
        # A hold window only makes sense while the queue is short of a
        # batch; with one (or more) complete batches already queued the
        # interrupt fires immediately — the window bounds latency, it
        # never delays work that is already ready.
        delay = self.rx_mitigation if batching and not full else 0.0
        self._service_event = self.kernel.scheduler.schedule(
            delay, self._service
        )

    def _service(self) -> None:
        self._service_scheduled = False
        if not self._input_queue or self.polling:
            return
        pool = getattr(self.kernel, "buffer_pool", None)
        if self.rx_batch <= 1:
            frame = self._input_queue.popleft()
            packet_id = self._input_ids.popleft() if self._input_ids else None
            if pool is not None:
                # The ring slot frees as the frame is handed up; a port
                # that keeps it takes its own reservation at enqueue.
                pool.release(("ring", self.kernel.name))
            if packet_id is None:
                # Also the path taken with bare test-stub kernels, whose
                # network_input doesn't take a packet id.
                self.kernel.network_input(self, frame)
            else:
                self.kernel.network_input(self, frame, packet_id)
        else:
            frames = []
            packet_ids = []
            while self._input_queue and len(frames) < self.rx_batch:
                frames.append(self._input_queue.popleft())
                packet_ids.append(
                    self._input_ids.popleft() if self._input_ids else None
                )
            if pool is not None:
                pool.release(("ring", self.kernel.name), len(frames))
            if any(pid is not None for pid in packet_ids):
                self.kernel.network_input_batch(
                    self, frames, packet_ids=packet_ids
                )
            else:
                self.kernel.network_input_batch(self, frames)
        if self._input_queue:
            self._schedule_service()

    # -- budgeted polling (receive-livelock avoidance) ---------------------

    def _enter_polling(self) -> None:
        """Abandon per-frame interrupts for budgeted polling: the ring
        crossed the policy's ``poll_enter`` watermark."""
        self.polling = True
        self.poll_mode_entries += 1
        if self._service_scheduled and self._service_event is not None:
            self._service_event.cancel()
            self._service_scheduled = False
        self._poll_event = self.kernel.scheduler.schedule_at(
            self.kernel.cpu_available_at, self._poll
        )

    def _poll(self) -> None:
        """One poll quantum: drain up to ``poll_quota`` frames under a
        single interrupt-service charge, then leave the CPU alone long
        enough that user processes keep their guaranteed share.
        """
        kernel = self.kernel
        policy = getattr(kernel, "rx_policy", None)
        self._poll_event = None
        if policy is None or not self._input_queue:
            # Load has passed (or the policy was removed mid-flight):
            # back to interrupt-per-frame service.
            self.polling = False
            if self._input_queue:
                self._schedule_service()
            return
        start = kernel.cpu_available_at
        frames: list[bytes] = []
        packet_ids: list[int | None] = []
        while self._input_queue and len(frames) < policy.poll_quota:
            frames.append(self._input_queue.popleft())
            packet_ids.append(
                self._input_ids.popleft() if self._input_ids else None
            )
        pool = getattr(kernel, "buffer_pool", None)
        if pool is not None:
            pool.release(("ring", kernel.name), len(frames))
        self.polls += 1
        self.frames_polled += len(frames)
        if any(pid is not None for pid in packet_ids):
            kernel.network_input_batch(self, frames, packet_ids=packet_ids)
        else:
            kernel.network_input_batch(self, frames)
        if not self._input_queue:
            self.polling = False
            return
        # The user-share reservation: this quantum consumed
        # ``end - start`` of CPU, so the next one waits out a
        # proportional gap — receive processing can never exceed
        # ``1 - user_share`` of the timeline no matter the offered load.
        end = kernel.cpu_available_at
        next_at = max(
            end + policy.user_gap(end - start),
            kernel.scheduler.now + policy.poll_period,
        )
        self._poll_event = kernel.scheduler.schedule_at(next_at, self._poll)
