"""The shared broadcast medium: one Ethernet segment.

Models the two properties the evaluation depends on: frames serialize
onto a shared cable at the link bandwidth (so bulk transfers can become
network-limited, as the paper observes for BSP file transfer), and every
station sees every frame (so address filtering happens in the NIC and a
promiscuous monitor sees it all — section 5.4).

Deterministic fault injection lives here too.  The section 3 protocols
are built on "write; read with timeout; retry if necessary", and the
tests drive that paradigm through this module two ways:

* the legacy knobs — ``loss_rate`` (uniform), ``duplicate_rate`` and the
  ``drop_filter`` predicate — for simple "lose exactly the third data
  packet" setups;
* a :class:`ChaosConfig`, attachable per sender direction via
  :meth:`EthernetSegment.set_chaos`, adding burst loss (a two-state
  Gilbert–Elliott channel), bounded reordering jitter, bit-flip
  corruption and delayed duplication, all drawn from per-direction
  seeded generators so runs replay exactly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from .ethernet import LinkSpec

__all__ = ["ChaosConfig", "EgressFrame", "EthernetSegment"]


# Defined before the ``..sim`` imports below: importing ``repro.sim``
# initializes that whole package, whose topology module imports this
# class back — it must already exist on the partially-built module.
@dataclass(frozen=True, slots=True)
class EgressFrame:
    """One frame leaving its segment for another — the *only* kind of
    cross-shard event in a partitioned simulation.

    Records are plain picklable data: a bridge endpoint captures the
    frame locally, stamps the time its far side should begin
    retransmitting (capture time + store-and-forward delay — always at
    least the topology's lookahead in the future), and the shard
    runtime ships the record over a pipe to whichever process owns the
    destination segment.  ``(deliver_at, src_segment, link_id, seq)``
    is a total order, so injection order — and therefore scheduler
    tie-breaking — is identical no matter how segments are partitioned
    into processes.
    """

    deliver_at: float    #: when the far side starts transmitting
    dst_segment: str     #: segment the frame is injected into
    src_segment: str     #: segment it was captured on
    link_id: str         #: which bridge carried it
    seq: int             #: per-endpoint monotone capture counter
    frame: bytes

    @property
    def sort_key(self) -> tuple:
        return (self.deliver_at, self.src_segment, self.link_id, self.seq)


from ..sim.clock import EventScheduler  # noqa: E402  (see EgressFrame note)
from ..sim.ledger import Primitive  # noqa: E402


def _check_rate(name: str, value: float, *, closed: bool = True) -> None:
    top_ok = value <= 1.0 if closed else value < 1.0
    if not (0.0 <= value and top_ok):
        bound = "[0, 1]" if closed else "[0, 1)"
        raise ValueError(f"{name} must be in {bound}, got {value!r}")


@dataclass(frozen=True)
class ChaosConfig:
    """One direction's fault-injection profile.

    All probabilities are per frame.  Burst loss follows a two-state
    Gilbert–Elliott channel: a GOOD state losing ``loss_rate`` of
    frames, a BAD state losing ``burst_loss_rate``, with per-frame
    transition probabilities ``burst_enter_rate`` (GOOD→BAD) and
    ``burst_exit_rate`` (BAD→GOOD).  Leaving ``burst_enter_rate`` at 0
    degenerates to uniform loss.

    Reordering holds a selected frame back by a uniform draw from
    (0, ``reorder_jitter``] seconds of extra delivery delay, so it can
    land behind frames transmitted after it.  Corruption flips
    ``corrupt_bits`` random bits per selected frame — by default only in
    the data-link *payload*, so damage reaches the protocols (whose
    checksums must catch it) rather than being absorbed by address
    filtering; set ``corrupt_headers`` to also damage the link header.
    Duplicates are delivered as distinct, later events (at least one
    frame serialization time after the original).
    """

    loss_rate: float = 0.0          #: uniform (GOOD-state) loss probability
    burst_enter_rate: float = 0.0   #: P(GOOD -> BAD) per frame
    burst_exit_rate: float = 0.3    #: P(BAD -> GOOD) per frame
    burst_loss_rate: float = 0.9    #: loss probability while BAD
    duplicate_rate: float = 0.0     #: P(frame is delivered twice)
    reorder_rate: float = 0.0       #: P(frame is held back)
    reorder_jitter: float = 2e-3    #: max extra delay for held frames (s)
    corrupt_rate: float = 0.0       #: P(frame is bit-flipped)
    corrupt_bits: int = 1           #: bits flipped per corrupted frame
    corrupt_headers: bool = False   #: allow flips in the link header too

    def __post_init__(self) -> None:
        _check_rate("loss_rate", self.loss_rate, closed=False)
        _check_rate("burst_enter_rate", self.burst_enter_rate)
        _check_rate("burst_exit_rate", self.burst_exit_rate)
        _check_rate("burst_loss_rate", self.burst_loss_rate, closed=False)
        _check_rate("duplicate_rate", self.duplicate_rate)
        _check_rate("reorder_rate", self.reorder_rate)
        _check_rate("corrupt_rate", self.corrupt_rate)
        if self.reorder_jitter < 0.0:
            raise ValueError("reorder_jitter must be non-negative")
        if self.corrupt_bits < 1:
            raise ValueError("corrupt_bits must be at least 1")

    def expected_loss_rate(self) -> float:
        """Long-run frame loss probability of the Gilbert–Elliott chain.

        The stationary BAD-state occupancy is
        ``enter / (enter + exit)``; the overall rate blends the two
        states' loss probabilities.  Handy for sizing soak workloads.
        """
        if self.burst_enter_rate == 0.0:
            return self.loss_rate
        denominator = self.burst_enter_rate + self.burst_exit_rate
        if denominator == 0.0:
            # Absorbing states: whichever state we start in persists;
            # chains start GOOD.
            return self.loss_rate
        bad = self.burst_enter_rate / denominator
        return (1.0 - bad) * self.loss_rate + bad * self.burst_loss_rate


class _ChaosState:
    """Per-direction chaos: one RNG, one Gilbert–Elliott state."""

    def __init__(self, config: ChaosConfig, seed_material: bytes) -> None:
        self.config = config
        # bytes seeds go through CPython's deterministic SHA-512 path,
        # so the stream is stable across processes (unlike hash()-based
        # seeding of tuples).
        self.random = random.Random(seed_material)
        self.bad = False

    def advance_channel(self) -> None:
        """One Gilbert–Elliott transition (consumed once per frame)."""
        config = self.config
        if config.burst_enter_rate == 0.0:
            return
        if self.bad:
            if self.random.random() < config.burst_exit_rate:
                self.bad = False
        elif self.random.random() < config.burst_enter_rate:
            self.bad = True

    def sample_loss(self) -> bool:
        config = self.config
        rate = config.burst_loss_rate if self.bad else config.loss_rate
        return bool(rate) and self.random.random() < rate

    def sample_corrupt(self) -> bool:
        config = self.config
        return bool(config.corrupt_rate) and (
            self.random.random() < config.corrupt_rate
        )

    def sample_reorder(self) -> float:
        """Extra delivery delay (0.0 when the frame goes out in order)."""
        config = self.config
        if config.reorder_rate and self.random.random() < config.reorder_rate:
            return self.random.random() * config.reorder_jitter
        return 0.0

    def sample_duplicate(self) -> bool:
        config = self.config
        return bool(config.duplicate_rate) and (
            self.random.random() < config.duplicate_rate
        )

    def corrupt(self, frame: bytes, header_bytes: int) -> bytes:
        config = self.config
        start = 0 if config.corrupt_headers else header_bytes
        if start >= len(frame):
            start = 0
        data = bytearray(frame)
        for _ in range(config.corrupt_bits):
            position = self.random.randrange(start, len(data))
            data[position] ^= 1 << self.random.randrange(8)
        return bytes(data)


class EthernetSegment:
    """One cable, many NICs."""

    def __init__(
        self,
        scheduler: EventScheduler,
        link: LinkSpec,
        *,
        loss_rate: float = 0.0,
        duplicate_rate: float = 0.0,
        seed: int = 0,
        propagation_delay: float = 5e-6,
    ) -> None:
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError("loss rate must be in [0, 1)")
        # Duplicating every frame is a legitimate stress mode (unlike
        # losing every frame), so 1.0 stays legal here.
        if not 0.0 <= duplicate_rate <= 1.0:
            raise ValueError("duplicate rate must be in [0, 1]")
        self.scheduler = scheduler
        self.link = link
        self.loss_rate = loss_rate
        self.duplicate_rate = duplicate_rate
        self.propagation_delay = propagation_delay
        self.seed = seed
        self._random = random.Random(seed)
        self._nics: list = []
        self._busy_until = 0.0
        self.frames_carried = 0
        self.frames_lost = 0
        self.frames_duplicated = 0
        self.frames_reordered = 0
        self.frames_corrupted = 0
        self.bytes_carried = 0
        #: Optional predicate; returning True drops the frame (tests use
        #: this for deterministic "lose exactly the third data packet").
        self.drop_filter: Callable[[bytes, int], bool] | None = None
        self._chaos_default: ChaosConfig | None = None
        self._chaos_overrides: dict[bytes, ChaosConfig | None] = {}
        self._chaos_states: dict[bytes, _ChaosState] = {}
        #: optional :class:`repro.sim.ledger.Ledger`; wire-level fates
        #: (loss, corruption, reordering, duplication) are recorded on
        #: it under host :attr:`wire_label` when attached.
        self.ledger = None
        #: Ledger host name for wire-level events.  A lone segment keeps
        #: the historic "wire"; a topology names each cable
        #: ``wire:<segment>`` so per-segment ledgers stay host-disjoint
        #: and therefore mergeable.
        self.wire_label = "wire"
        #: Frames captured by bridge endpoints, bound for other
        #: segments.  Drained by the shard runtime at synchronization
        #: barriers; plain picklable records.
        self._egress: list[EgressFrame] = []

    def _note(self, primitive: Primitive) -> None:
        if self.ledger is not None:
            self.ledger.record(
                primitive,
                host=self.wire_label,
                at=self.scheduler.now,
                component="segment",
            )

    def note_wire_fate(self, primitive: Primitive) -> None:
        """Record a cost-free wire-level fate under this segment's
        ledger label.  Bridge endpoints use it for link-down drops —
        the frame died on this cable's uplink, so it is accounted here,
        keeping per-segment ledgers host-disjoint and mergeable."""
        self._note(primitive)

    # -- inter-segment egress -----------------------------------------------

    def push_egress(self, record: EgressFrame) -> None:
        """Queue a frame bound for another segment (bridge endpoints
        call this; the shard runtime routes it at the next barrier)."""
        self._egress.append(record)

    def drain_egress(self) -> list[EgressFrame]:
        """Take (and clear) the queued inter-segment frames."""
        drained = self._egress
        self._egress = []
        return drained

    def attach(self, nic) -> None:
        nic.segment = self
        self._nics.append(nic)

    # -- chaos configuration ------------------------------------------------

    def set_chaos(
        self, config: ChaosConfig | None, *, sender: bytes | None = None
    ) -> None:
        """Attach (or clear, with None) a chaos profile.

        Without ``sender`` the profile applies to every transmitting
        station; with a station address it overrides the default for
        that direction only — asymmetric links (a clean request path
        over a lossy response path, or vice versa) are one override
        each.  Each direction draws from its own generator, seeded from
        the segment seed and the sender address, so one direction's
        traffic volume never perturbs another's fault pattern.
        """
        if sender is None:
            self._chaos_default = config
            # Default changed: rebuild any state lazily created from it.
            for address in list(self._chaos_states):
                if address not in self._chaos_overrides:
                    del self._chaos_states[address]
        else:
            sender = bytes(sender)
            self._chaos_overrides[sender] = config
            self._chaos_states.pop(sender, None)

    def _chaos_for(self, sender_address: bytes) -> _ChaosState | None:
        state = self._chaos_states.get(sender_address)
        if state is not None:
            return state
        if sender_address in self._chaos_overrides:
            config = self._chaos_overrides[sender_address]
        else:
            config = self._chaos_default
        if config is None:
            return None
        material = (
            b"chaos:"
            + self.seed.to_bytes(8, "big", signed=True)
            + bytes(sender_address)
        )
        state = _ChaosState(config, material)
        self._chaos_states[sender_address] = state
        return state

    # -- transmission -------------------------------------------------------

    def transmit(self, sender, frame: bytes) -> float:
        """Serialize ``frame`` onto the cable; returns delivery time.

        The cable is half-duplex: a transmission begins when the cable
        falls idle (an idealized CSMA — no collisions are modelled, as
        none of the paper's numbers depend on them).
        """
        now = self.scheduler.now
        start = max(now, self._busy_until)
        wire_time = self.link.transmission_time(len(frame))
        end = start + wire_time
        self._busy_until = end
        self.frames_carried += 1
        self.bytes_carried += len(frame)

        chaos = self._chaos_for(sender.address)
        if chaos is not None:
            chaos.advance_channel()

        dropped = False
        if self.drop_filter is not None and self.drop_filter(
            frame, self.frames_carried
        ):
            dropped = True
        elif self.loss_rate and self._random.random() < self.loss_rate:
            dropped = True
        elif chaos is not None and chaos.sample_loss():
            dropped = True
        if dropped:
            self.frames_lost += 1
            self._note(Primitive.WIRE_LOSS)
            return end

        delivered = frame
        if chaos is not None and chaos.sample_corrupt():
            delivered = chaos.corrupt(frame, self.link.header_length)
            self.frames_corrupted += 1
            self._note(Primitive.WIRE_CORRUPT)

        deliver_at = end + self.propagation_delay
        if chaos is not None:
            jitter = chaos.sample_reorder()
            if jitter > 0.0:
                deliver_at += jitter
                self.frames_reordered += 1
                self._note(Primitive.WIRE_REORDER)

        duplicate_rng = None
        if self.duplicate_rate and self._random.random() < self.duplicate_rate:
            duplicate_rng = self._random
        elif chaos is not None and chaos.sample_duplicate():
            duplicate_rng = chaos.random

        self._deliver(sender, delivered, deliver_at)
        if duplicate_rng is not None:
            # The copy is a distinct, later arrival: real duplicates
            # (bridge echoes, retransmitting repeaters) trail the
            # original by at least its own wire time, so a duplicate
            # can land *behind* frames transmitted after it.
            lag = wire_time * (1.0 + duplicate_rng.random())
            self._deliver(sender, delivered, deliver_at + lag)
            self.frames_duplicated += 1
            self._note(Primitive.WIRE_DUPLICATE)
        return deliver_at

    def _deliver(self, sender, frame: bytes, deliver_at: float) -> None:
        for nic in self._nics:
            if nic is sender:
                continue
            self.scheduler.schedule_at(deliver_at, nic.receive, frame)
