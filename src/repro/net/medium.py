"""The shared broadcast medium: one Ethernet segment.

Models the two properties the evaluation depends on: frames serialize
onto a shared cable at the link bandwidth (so bulk transfers can become
network-limited, as the paper observes for BSP file transfer), and every
station sees every frame (so address filtering happens in the NIC and a
promiscuous monitor sees it all — section 5.4).

Deterministic loss/duplication/reordering injection hooks exist for the
protocol tests: BSP and TCP must deliver an intact byte stream through
an unreliable link, and the property tests drive that through here.
"""

from __future__ import annotations

import random
from typing import Callable

from ..sim.clock import EventScheduler
from .ethernet import LinkSpec

__all__ = ["EthernetSegment"]


class EthernetSegment:
    """One cable, many NICs."""

    def __init__(
        self,
        scheduler: EventScheduler,
        link: LinkSpec,
        *,
        loss_rate: float = 0.0,
        duplicate_rate: float = 0.0,
        seed: int = 0,
        propagation_delay: float = 5e-6,
    ) -> None:
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError("loss rate must be in [0, 1)")
        self.scheduler = scheduler
        self.link = link
        self.loss_rate = loss_rate
        self.duplicate_rate = duplicate_rate
        self.propagation_delay = propagation_delay
        self._random = random.Random(seed)
        self._nics: list = []
        self._busy_until = 0.0
        self.frames_carried = 0
        self.frames_lost = 0
        self.bytes_carried = 0
        #: Optional predicate; returning True drops the frame (tests use
        #: this for deterministic "lose exactly the third data packet").
        self.drop_filter: Callable[[bytes, int], bool] | None = None

    def attach(self, nic) -> None:
        nic.segment = self
        self._nics.append(nic)

    def transmit(self, sender, frame: bytes) -> float:
        """Serialize ``frame`` onto the cable; returns delivery time.

        The cable is half-duplex: a transmission begins when the cable
        falls idle (an idealized CSMA — no collisions are modelled, as
        none of the paper's numbers depend on them).
        """
        now = self.scheduler.now
        start = max(now, self._busy_until)
        end = start + self.link.transmission_time(len(frame))
        self._busy_until = end
        self.frames_carried += 1
        self.bytes_carried += len(frame)

        dropped = False
        if self.drop_filter is not None and self.drop_filter(
            frame, self.frames_carried
        ):
            dropped = True
        elif self.loss_rate and self._random.random() < self.loss_rate:
            dropped = True
        if dropped:
            self.frames_lost += 1
            return end

        deliver_at = end + self.propagation_delay
        copies = 1
        if self.duplicate_rate and self._random.random() < self.duplicate_rate:
            copies = 2
        for _ in range(copies):
            for nic in self._nics:
                if nic is sender:
                    continue
                self.scheduler.schedule_at(deliver_at, nic.receive, frame)
        return deliver_at
