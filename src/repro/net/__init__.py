"""Network substrate: Ethernet segments, link specs, and NICs.

Both data links of the paper's evaluation are here: the 10 Mbit/s
standard Ethernet and the 3 Mbit/s Experimental Ethernet that Pup (and
figures 3-7..3-9) live on.
"""

from .ethernet import ETHERNET_3MB, ETHERNET_10MB, FrameError, LinkSpec
from .medium import ChaosConfig, EgressFrame, EthernetSegment
from .nic import NIC

__all__ = [
    "LinkSpec",
    "ETHERNET_10MB",
    "ETHERNET_3MB",
    "FrameError",
    "ChaosConfig",
    "EgressFrame",
    "EthernetSegment",
    "NIC",
]
