"""RARP — the section 5.3 case study, as a working implementation.

"The Reverse Address Resolution Protocol (RARP) was designed to allow
workstations to determine their Internet Protocol (IP) addresses
without relying on any local stable storage...  With the packet filter,
however, a RARP implementation was easy; the work was done in a few
weeks by a student who had no experience with network programming, and
who had no need to learn how to modify the Unix kernel."

RARP is a *parallel layer to IP* (that was the design question the
paper recounts), so it cannot be built on sockets — it needs raw link
access, which is exactly what the packet filter provides.  Wire format
per RFC 903 (ARP packet format with opcodes 3/4 on Ethernet type
0x8035).

Both endpoints are user processes over the packet filter:

* :class:`RARPServer` — filter accepts `ethertype == RARP && op ==
  REVERSE_REQUEST`; answers from a MAC→IP table;
* :func:`rarp_discover` — a diskless client: broadcast the request,
  read with timeout, retry; returns the assigned IP address.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.compiler import compile_expr, word
from ..core.ioctl import PFIoctl
from ..core.port import ReadTimeoutPolicy
from ..core.program import FilterProgram
from ..sim.errors import SimTimeout
from ..sim.process import Ioctl, Open, Read, Write
from .ethertypes import ETHERTYPE_RARP

__all__ = [
    "RARPPacket",
    "RARPError",
    "OP_REVERSE_REQUEST",
    "OP_REVERSE_REPLY",
    "rarp_server_filter",
    "rarp_client_filter",
    "RARPServer",
    "rarp_discover",
]

OP_REVERSE_REQUEST = 3
OP_REVERSE_REPLY = 4

# ARP body word offsets within a 10 Mb/s Ethernet frame (header = 7 words).
_WORD_OP = 10
_WORD_ETHERTYPE = 6

RARP_RETRY_TIMEOUT = 0.5
RARP_MAX_TRIES = 4


class RARPError(ValueError):
    """Malformed RARP packet."""


@dataclass(frozen=True)
class RARPPacket:
    """An ARP-format packet for 6-byte hardware / 4-byte IP addresses."""

    op: int
    sender_hw: bytes
    sender_ip: int
    target_hw: bytes
    target_ip: int

    def encode(self) -> bytes:
        if len(self.sender_hw) != 6 or len(self.target_hw) != 6:
            raise RARPError("hardware addresses must be 6 bytes")
        body = bytearray(28)
        body[0:2] = (1).to_bytes(2, "big")        # htype: Ethernet
        body[2:4] = (0x0800).to_bytes(2, "big")   # ptype: IP
        body[4] = 6                               # hlen
        body[5] = 4                               # plen
        body[6:8] = self.op.to_bytes(2, "big")
        body[8:14] = self.sender_hw
        body[14:18] = self.sender_ip.to_bytes(4, "big")
        body[18:24] = self.target_hw
        body[24:28] = self.target_ip.to_bytes(4, "big")
        return bytes(body)

    @classmethod
    def decode(cls, data: bytes) -> "RARPPacket":
        if len(data) < 28:
            raise RARPError("packet shorter than an ARP body")
        if data[4] != 6 or data[5] != 4:
            raise RARPError("not an Ethernet/IP ARP packet")
        return cls(
            op=int.from_bytes(data[6:8], "big"),
            sender_hw=bytes(data[8:14]),
            sender_ip=int.from_bytes(data[14:18], "big"),
            target_hw=bytes(data[18:24]),
            target_ip=int.from_bytes(data[24:28], "big"),
        )


def rarp_server_filter(priority: int = 5) -> FilterProgram:
    """Accept reverse-ARP requests (and nothing else)."""
    return compile_expr(
        (word(_WORD_ETHERTYPE) == ETHERTYPE_RARP).likely(0.1)
        & (word(_WORD_OP) == OP_REVERSE_REQUEST).likely(0.5),
        priority=priority,
    )


def rarp_client_filter(priority: int = 5) -> FilterProgram:
    """Accept reverse-ARP replies."""
    return compile_expr(
        (word(_WORD_ETHERTYPE) == ETHERTYPE_RARP).likely(0.1)
        & (word(_WORD_OP) == OP_REVERSE_REPLY).likely(0.5),
        priority=priority,
    )


class RARPServer:
    """The RARP daemon: a user process with a MAC→IP table.

    Usage::

        server = RARPServer(host, {client.address: ip_address("10.0.0.7")})
        host.spawn("rarpd", server.run())
    """

    def __init__(self, host, table: dict[bytes, int]) -> None:
        self.host = host
        self.table = dict(table)
        self.requests_answered = 0
        self.requests_unknown = 0

    def run(self):
        fd = yield Open("pf")
        yield Ioctl(fd, PFIoctl.SETFILTER, rarp_server_filter())
        while True:
            batch = yield Read(fd)
            for delivered in batch:
                try:
                    request = RARPPacket.decode(
                        self.host.link.payload_of(delivered.data)
                    )
                except RARPError:
                    continue
                ip = self.table.get(request.target_hw)
                if ip is None:
                    self.requests_unknown += 1
                    continue
                reply = RARPPacket(
                    op=OP_REVERSE_REPLY,
                    sender_hw=self.host.address,
                    sender_ip=self.table.get(self.host.address, 0),
                    target_hw=request.target_hw,
                    target_ip=ip,
                )
                frame = self.host.link.frame(
                    request.sender_hw,
                    self.host.address,
                    ETHERTYPE_RARP,
                    reply.encode(),
                )
                yield Write(fd, frame)
                self.requests_answered += 1


def rarp_discover(
    host,
    *,
    retries: int = RARP_MAX_TRIES,
    timeout: float = RARP_RETRY_TIMEOUT,
):
    """Diskless-boot client: find out this host's own IP (yield from).

    Returns the IP address as an int; raises :class:`SimTimeout` when no
    server answers after the retries.  Chaos soaks raise ``retries`` to
    ride out loss bursts.
    """
    fd = yield Open("pf")
    yield Ioctl(fd, PFIoctl.SETFILTER, rarp_client_filter())
    yield Ioctl(
        fd, PFIoctl.SETTIMEOUT, ReadTimeoutPolicy.after(timeout)
    )
    request = RARPPacket(
        op=OP_REVERSE_REQUEST,
        sender_hw=host.address,
        sender_ip=0,
        target_hw=host.address,
        target_ip=0,
    )
    frame = host.link.frame(
        host.link.broadcast, host.address, ETHERTYPE_RARP, request.encode()
    )
    for _ in range(retries):
        yield Write(fd, frame)
        try:
            batch = yield Read(fd)
        except SimTimeout:
            continue
        for delivered in batch:
            try:
                reply = RARPPacket.decode(host.link.payload_of(delivered.data))
            except RARPError:
                continue
            if (
                reply.op == OP_REVERSE_REPLY
                and reply.target_hw == host.address
            ):
                return reply.target_ip
    raise SimTimeout("no RARP server answered")
