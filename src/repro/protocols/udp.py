"""UDP header codec.

Checksum 0 means "not computed" — the configuration table 6-1 measured
("an unchecksummed UDP datagram"); the kernel stack charges checksum
cost only when one is present.
"""

from __future__ import annotations

from dataclasses import dataclass

from .ip import internet_checksum

__all__ = ["UDPHeader", "UDPError", "UDP_HEADER_BYTES"]

UDP_HEADER_BYTES = 8


class UDPError(ValueError):
    """Malformed UDP datagram."""


@dataclass(frozen=True)
class UDPHeader:
    """Source/destination ports; length is derived on encode."""

    src_port: int
    dst_port: int
    with_checksum: bool = False

    def encode(self, payload: bytes) -> bytes:
        length = UDP_HEADER_BYTES + len(payload)
        if length > 0xFFFF:
            raise UDPError("UDP datagram too long")
        head = (
            self.src_port.to_bytes(2, "big")
            + self.dst_port.to_bytes(2, "big")
            + length.to_bytes(2, "big")
            + b"\x00\x00"
        )
        if self.with_checksum:
            checksum = internet_checksum(head + payload) or 0xFFFF
            head = head[:6] + checksum.to_bytes(2, "big")
        return head + payload

    @classmethod
    def decode(cls, segment: bytes) -> tuple["UDPHeader", bytes]:
        if len(segment) < UDP_HEADER_BYTES:
            raise UDPError("segment shorter than the UDP header")
        length = int.from_bytes(segment[4:6], "big")
        if length < UDP_HEADER_BYTES or length > len(segment):
            raise UDPError("bad UDP length")
        checksum = int.from_bytes(segment[6:8], "big")
        header = cls(
            src_port=int.from_bytes(segment[0:2], "big"),
            dst_port=int.from_bytes(segment[2:4], "big"),
            with_checksum=checksum != 0,
        )
        return header, segment[UDP_HEADER_BYTES:length]
