"""VMTP — the request-response transport of section 5.2 / tables 6-2/6-3.

Cheriton's VMTP (SIGCOMM '86) is a *message transaction* protocol: a
client sends a request message, the server replies with a response
message, and messages larger than one packet travel as a numbered
*segment group*.  The paper used it for the head-to-head comparison
because it existed both ways: "there is both a packet-filter based
implementation and a kernel-resident implementation ... they follow
essentially the same pattern of packet transport."

We reproduce that structure exactly:

* this module defines the **wire format** (shared, so the two
  implementations really do exchange the same packets) and the
  **user-level implementation** — processes speaking VMTP through the
  packet filter, with received-packet batching (table 6-4's knob);
* :mod:`repro.kernelnet.vmtp` is the kernel-resident implementation.

The header is laid out on 16-bit boundaries so packet-filter programs
can select on it the way figure 3-9 selects on Pup sockets — after the
14-byte 10 Mb/s Ethernet header, packet words 7..12 are::

    word 7   kind (high byte)        REQUEST / RESPONSE / RSPACK
    word 8   client id
    word 9   server id
    word 10  transaction number
    word 11  segment index (high byte) | segment count (low byte)
    word 12  total message length in bytes

Like the measured configuration, the paper's VMTP checksummed nothing
("note that TCP checksums all data, whereas these implementations of
VMTP do not").  Ours carries a 2-byte trailer (Pup's add-and-left-cycle
sum, 0xFFFF = unchecksummed) so bit-flip fault injection is detectable;
the sum is computed outside the simulated cost model, so the measured
tables keep parity with the paper's unchecksummed configuration.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..core.compiler import compile_expr, word
from ..core.ioctl import PFIoctl
from ..core.port import ReadTimeoutPolicy
from ..core.program import FilterProgram
from ..sim.costs import CostModel
from ..sim.errors import SimTimeout
from ..sim.ledger import Primitive
from ..sim.process import Compute, Ioctl, Open, Read, Select, Write
from .ethertypes import ETHERTYPE_VMTP
from .pup import NO_CHECKSUM, pup_checksum
from .rto import RetransmitTimer

__all__ = [
    "VMTPKind",
    "VMTPPacket",
    "VMTPError",
    "VMTP_HEADER_BYTES",
    "VMTP_TRAILER_BYTES",
    "VMTP_SEGMENT_BYTES",
    "VMTP_MAX_SEGMENTS",
    "client_filter",
    "server_filter",
    "VMTPClient",
    "VMTPServer",
]

VMTP_HEADER_BYTES = 14
VMTP_TRAILER_BYTES = 2
"""Checksum trailer after the payload (0xFFFF = unchecksummed)."""
VMTP_SEGMENT_BYTES = 1024
"""Payload bytes per packet — 1 KByte segments, as in VMTP."""
VMTP_MAX_SEGMENTS = 16
"""Segments per message group (16 KBytes), VMTP's segment-group size."""

REQUEST_RETRY_TIMEOUT = 0.1
"""Initial request-retry timeout; with ``adaptive_rto`` (the default)
it only seeds the Jacobson timer, which then tracks the measured
transaction round trip."""
MAX_REQUEST_RETRIES = 8

ALL_SEGMENTS = 0xFFFF
"""Segment mask requesting the whole group."""

# Word offsets *within the Ethernet frame* for filter programs
# (10 Mb/s link: 14-byte header = words 0..6, type in word 6).
WORD_ETHERTYPE = 6
WORD_KIND = 7
WORD_CLIENT = 8
WORD_SERVER = 9
WORD_TRANSACTION = 10


class VMTPError(ValueError):
    """Malformed VMTP packet."""


class VMTPKind(enum.IntEnum):
    REQUEST = 1
    RESPONSE = 2
    RSPACK = 3   #: client's acknowledgement of a complete response


@dataclass(frozen=True)
class VMTPPacket:
    """One VMTP packet (one segment of a message group).

    ``segment_mask`` rides on REQUEST packets: bit *i* set means the
    client still needs segment *i* of the response — VMTP's selective
    retransmission, which matters when receive-queue overflows drop
    parts of a group (the very effect behind table 6-4's batching gap).
    """

    kind: VMTPKind
    client: int
    server: int
    transaction: int
    seg_index: int
    seg_count: int
    total_length: int
    segment_mask: int = ALL_SEGMENTS
    payload: bytes = b""

    def encode(self, *, with_checksum: bool = True) -> bytes:
        head = bytearray(VMTP_HEADER_BYTES)
        head[0] = self.kind
        head[2:4] = self.client.to_bytes(2, "big")
        head[4:6] = self.server.to_bytes(2, "big")
        head[6:8] = self.transaction.to_bytes(2, "big")
        head[8] = self.seg_index
        head[9] = self.seg_count
        head[10:12] = self.total_length.to_bytes(2, "big")
        head[12:14] = self.segment_mask.to_bytes(2, "big")
        body = bytes(head) + self.payload
        checksum = pup_checksum(body) if with_checksum else NO_CHECKSUM
        return body + checksum.to_bytes(2, "big")

    @classmethod
    def decode(cls, data: bytes) -> "VMTPPacket":
        if len(data) < VMTP_HEADER_BYTES + VMTP_TRAILER_BYTES:
            raise VMTPError("packet shorter than the VMTP header + trailer")
        checksum = int.from_bytes(data[-VMTP_TRAILER_BYTES:], "big")
        body = data[:-VMTP_TRAILER_BYTES]
        if checksum != NO_CHECKSUM and checksum != pup_checksum(body):
            raise VMTPError("VMTP checksum mismatch")
        try:
            kind = VMTPKind(body[0])
        except ValueError as exc:
            raise VMTPError(f"unknown VMTP kind {body[0]}") from exc
        return cls(
            kind=kind,
            client=int.from_bytes(body[2:4], "big"),
            server=int.from_bytes(body[4:6], "big"),
            transaction=int.from_bytes(body[6:8], "big"),
            seg_index=body[8],
            seg_count=body[9],
            total_length=int.from_bytes(body[10:12], "big"),
            segment_mask=int.from_bytes(body[12:14], "big"),
            payload=body[VMTP_HEADER_BYTES:],
        )


def segment_message(
    kind: VMTPKind,
    client: int,
    server: int,
    transaction: int,
    message: bytes,
    *,
    segment_mask: int = ALL_SEGMENTS,
) -> list[VMTPPacket]:
    """Split ``message`` into its segment group."""
    if len(message) > VMTP_SEGMENT_BYTES * VMTP_MAX_SEGMENTS:
        raise VMTPError(
            f"{len(message)}-byte message exceeds the "
            f"{VMTP_SEGMENT_BYTES * VMTP_MAX_SEGMENTS}-byte group limit"
        )
    chunks = [
        message[offset : offset + VMTP_SEGMENT_BYTES]
        for offset in range(0, len(message), VMTP_SEGMENT_BYTES)
    ] or [b""]
    return [
        VMTPPacket(
            kind=kind,
            client=client,
            server=server,
            transaction=transaction,
            seg_index=index,
            seg_count=len(chunks),
            total_length=len(message),
            segment_mask=segment_mask,
            payload=chunk,
        )
        for index, chunk in enumerate(chunks)
    ]


def select_segments(group: list[VMTPPacket], mask: int) -> list[VMTPPacket]:
    """The subset of a cached group a selective-retransmit mask asks for."""
    return [packet for packet in group if mask & (1 << packet.seg_index)]


class MessageAssembler:
    """Collects a segment group back into a message (either side)."""

    def __init__(self) -> None:
        self._segments: dict[int, bytes] = {}
        self._count: int | None = None

    def add(self, packet: VMTPPacket) -> bytes | None:
        """Returns the whole message once every segment has arrived."""
        self._count = packet.seg_count
        self._segments[packet.seg_index] = packet.payload
        if len(self._segments) == self._count:
            return b"".join(self._segments[i] for i in range(self._count))
        return None

    def missing_mask(self) -> int:
        """Selective-retransmission mask: bit i set = segment i needed."""
        if self._count is None:
            return ALL_SEGMENTS
        mask = 0
        for index in range(self._count):
            if index not in self._segments:
                mask |= 1 << index
        return mask


# ---------------------------------------------------------------------------
# packet-filter programs for VMTP endpoints
# ---------------------------------------------------------------------------


def client_filter(client_id: int, priority: int = 12) -> FilterProgram:
    """Accept RESPONSE packets addressed to this client.

    The client-id word is tested first via CAND — it is the
    discriminating field, per the figure 3-9 ordering heuristic.
    """
    expr = (
        (word(WORD_CLIENT) == client_id).likely(0.05)
        & (word(WORD_KIND).high_byte() == VMTPKind.RESPONSE << 8).likely(0.4)
        & (word(WORD_ETHERTYPE) == ETHERTYPE_VMTP).likely(0.6)
    )
    return compile_expr(expr, priority=priority)


def server_filter(server_id: int, priority: int = 10) -> FilterProgram:
    """Accept REQUEST (and RSPACK) packets addressed to this server."""
    expr = (
        (word(WORD_SERVER) == server_id).likely(0.05)
        & (word(WORD_ETHERTYPE) == ETHERTYPE_VMTP).likely(0.6)
    )
    return compile_expr(expr, priority=priority)


# ---------------------------------------------------------------------------
# the user-level implementation (over the packet filter)
# ---------------------------------------------------------------------------


class VMTPClient:
    """User-level VMTP client endpoint.

    Usage inside a process body::

        client = VMTPClient(host, client_id=7,
                            server_station=server.address, server_id=35)
        yield from client.start()
        response = yield from client.call(b"read /etc/motd")

    ``batching=True`` turns on received-packet batching (figure 3-5);
    table 6-4 measures exactly this knob.
    """

    def __init__(
        self,
        host,
        client_id: int,
        server_station: bytes,
        server_id: int,
        *,
        batching: bool = True,
        device: str = "pf",
        inbox=None,
        adaptive_rto: bool = True,
        max_retries: int = MAX_REQUEST_RETRIES,
    ) -> None:
        self.host = host
        self.client_id = client_id
        self.server_station = server_station
        self.server_id = server_id
        self.batching = batching
        self.device = device
        self.max_retries = max_retries
        #: Jacobson-style adaptive retry timer; None keeps the
        #: historical fixed-timeout behaviour (the benchmark baseline).
        self.rto: RetransmitTimer | None = (
            RetransmitTimer(REQUEST_RETRY_TIMEOUT) if adaptive_rto else None
        )
        if self.rto is not None:
            publish = getattr(host.kernel, "publish_gauges", None)
            if publish is not None:
                publish(
                    f"rto.vmtp{client_id}.",
                    self.rto.telemetry_gauges(),
                    unit="s",
                )
        self._armed_timeout = REQUEST_RETRY_TIMEOUT
        self.corrupt_dropped = 0
        #: When set (a :class:`repro.baselines.user_demux.Inbox`), receive
        #: through a user-level demultiplexing process instead of a
        #: filtered port — the table 6-5 configuration ("using an extra
        #: process to receive packets, which are then passed to the
        #: actual VMTP process via a Unix pipe").  Sends still go out a
        #: raw packet-filter port.
        self.inbox = inbox
        self.fd: int | None = None
        self._transaction = 0
        self.packets_sent = 0
        self.packets_received = 0
        self.retries = 0

    @property
    def _costs(self) -> CostModel:
        return self.host.kernel.costs

    def start(self):
        """Open the port and bind the client's filter (a sub-generator:
        call with ``yield from``)."""
        self.fd = yield Open(self.device)
        if self.inbox is not None:
            return  # receive side goes through the demux process's pipe
        yield Ioctl(self.fd, PFIoctl.SETFILTER, client_filter(self.client_id))
        yield Ioctl(self.fd, PFIoctl.SETBATCH, self.batching)
        if self.batching:
            # A batching implementation raises the input queue so a whole
            # segment group can accumulate between reads; without it, the
            # port keeps the small default and bursts overflow — the
            # "dropped packets" the paper credits for much of table 6-4.
            yield Ioctl(self.fd, PFIoctl.SETQUEUELEN, 4 * VMTP_MAX_SEGMENTS)
        self._armed_timeout = self._read_timeout()
        yield Ioctl(
            self.fd,
            PFIoctl.SETTIMEOUT,
            ReadTimeoutPolicy.after(self._armed_timeout),
        )

    def _read_timeout(self) -> float:
        return (
            self.rto.timeout if self.rto is not None
            else REQUEST_RETRY_TIMEOUT
        )

    def _rearm_timer(self):
        """Push the adaptive timeout to the port when it drifted enough
        to matter (sub-generator; no-op for the fixed baseline and for
        the inbox path, whose Select reads the timer directly)."""
        if self.inbox is not None:
            return
        if self.rto is not None and self.rto.needs_rearm(self._armed_timeout):
            self._armed_timeout = self.rto.timeout
            yield Ioctl(
                self.fd,
                PFIoctl.SETTIMEOUT,
                ReadTimeoutPolicy.after(self._armed_timeout),
            )

    def _frame(self, packet: VMTPPacket) -> bytes:
        return self.host.link.frame(
            self.server_station,
            self.host.address,
            ETHERTYPE_VMTP,
            packet.encode(),
        )

    def call(self, request: bytes):
        """One message transaction; returns the response message.

        Implements the section 3 paradigm verbatim: "Simple programs can
        be written using a 'write; read with timeout; retry if
        necessary' paradigm."
        """
        if self.fd is None:
            raise RuntimeError("call start() first")
        self._transaction = (self._transaction + 1) & 0xFFFF
        transaction = self._transaction
        assembler = MessageAssembler()
        clock = self.host.kernel.scheduler

        for attempt in range(self.max_retries):
            if attempt:
                self.retries += 1
                if self.rto is not None:
                    self.rto.note_timeout()
                    yield from self._rearm_timer()
            # First attempt asks for everything; retries carry the
            # selective-retransmission mask of still-missing segments.
            segments = segment_message(
                VMTPKind.REQUEST, self.client_id, self.server_id,
                transaction, request,
                segment_mask=assembler.missing_mask(),
            )
            for packet in segments:
                yield Compute(self._costs.user_transport_per_packet)
                yield Write(self.fd, self._frame(packet))
                self.packets_sent += 1

            # Karn: only the first attempt yields an unambiguous
            # request -> first-response-segment round-trip sample.
            sample_time = (
                clock.now if self.rto is not None and attempt == 0 else None
            )
            response = yield from self._await_response(
                transaction, assembler, sample_time
            )
            if response is not None:
                # Acknowledge the response group so the server can free it.
                ack = VMTPPacket(
                    kind=VMTPKind.RSPACK,
                    client=self.client_id,
                    server=self.server_id,
                    transaction=transaction,
                    seg_index=0,
                    seg_count=1,
                    total_length=0,
                )
                yield Compute(self._costs.user_transport_per_packet)
                yield Write(self.fd, self._frame(ack))
                self.packets_sent += 1
                return response
        raise SimTimeout(f"no response after {self.max_retries} attempts")

    def _await_response(
        self,
        transaction: int,
        assembler: MessageAssembler,
        sample_time: float | None = None,
    ):
        """Collect response segments until complete or read timeout."""
        clock = self.host.kernel.scheduler
        while True:
            if self.inbox is not None:
                ready = yield Select((self.inbox.fd,), self._read_timeout())
                if not ready:
                    return None  # retry the request
                frames = [(yield from self.inbox.read())]
            else:
                try:
                    batch = yield Read(self.fd)
                except SimTimeout:
                    return None  # retry the request
                frames = [delivered.data for delivered in batch]
            for frame in frames:
                self.packets_received += 1
                payload = self.host.link.payload_of(frame)
                yield Compute(
                    self._costs.user_transport_per_packet
                    + len(payload) / 1024.0 * self._costs.user_copy_per_kbyte
                )
                try:
                    packet = VMTPPacket.decode(payload)
                except VMTPError:
                    # Bit-flipped or truncated: the checksum trailer
                    # caught it; the retry mask re-fetches the segment.
                    self.corrupt_dropped += 1
                    self.host.kernel.account(
                        Primitive.DROP_CORRUPT, component="vmtp"
                    )
                    continue
                if (
                    packet.kind != VMTPKind.RESPONSE
                    or packet.transaction != transaction
                ):
                    continue  # stale duplicate from an earlier transaction
                if sample_time is not None and self.rto is not None:
                    self.rto.observe(clock.now - sample_time)
                    sample_time = None
                    yield from self._rearm_timer()
                message = assembler.add(packet)
                if message is not None:
                    return message


class VMTPServer:
    """User-level VMTP server endpoint.

    Usage::

        server = VMTPServer(host, server_id=35)
        yield from server.start()
        while True:
            request, reply = yield from server.receive()
            yield from reply(handle(request))

    Duplicate requests for the last completed transaction retransmit the
    cached response instead of re-invoking the service — VMTP's
    at-most-once transaction behaviour, and a supply of the "duplicate
    packets" figure 2-3 talks about.
    """

    def __init__(self, host, server_id: int, *, batching: bool = True,
                 device: str = "pf") -> None:
        self.host = host
        self.server_id = server_id
        self.batching = batching
        self.device = device
        self.fd: int | None = None
        # Client identity is (station, client id), as ids are only
        # unique per host.
        self._assemblers: dict[tuple, MessageAssembler] = {}
        self._done: dict[tuple, tuple[int, list[VMTPPacket]]] = {}
        self._in_progress: dict[tuple, int] = {}
        self.packets_received = 0
        self.packets_sent = 0
        self.duplicate_requests = 0
        self.corrupt_dropped = 0

    @property
    def _costs(self) -> CostModel:
        return self.host.kernel.costs

    def start(self):
        self.fd = yield Open(self.device)
        yield Ioctl(self.fd, PFIoctl.SETFILTER, server_filter(self.server_id))
        yield Ioctl(self.fd, PFIoctl.SETBATCH, self.batching)

    def receive(self):
        """Wait for one complete request; returns ``(request, reply)``
        where ``reply(message)`` is a sub-generator that sends the
        response group."""
        if self.fd is None:
            raise RuntimeError("call start() first")
        while True:
            batch = yield Read(self.fd)
            for delivered in batch:
                self.packets_received += 1
                payload = self.host.link.payload_of(delivered.data)
                yield Compute(
                    self._costs.user_transport_per_packet
                    + len(payload) / 1024.0 * self._costs.user_copy_per_kbyte
                )
                try:
                    packet = VMTPPacket.decode(payload)
                except VMTPError:
                    # Damaged request segment: drop; the client's retry
                    # (selective mask) resends it.
                    self.corrupt_dropped += 1
                    self.host.kernel.account(
                        Primitive.DROP_CORRUPT, component="vmtp"
                    )
                    continue
                station = self.host.link.source_of(delivered.data)
                who = (station, packet.client)
                if packet.kind == VMTPKind.RSPACK:
                    self._done.pop(who, None)
                    continue
                if packet.kind != VMTPKind.REQUEST:
                    continue
                done = self._done.get(who)
                if done is not None and done[0] == packet.transaction:
                    # Duplicate of an answered request: resend from the
                    # cache — only the segments the mask still wants.
                    self.duplicate_requests += 1
                    wanted = select_segments(done[1], packet.segment_mask)
                    yield from self._send_group(station, wanted)
                    continue
                if self._in_progress.get(who) == packet.transaction:
                    # Retry of a request we are still serving: the
                    # response is on its way, don't re-invoke the service.
                    self.duplicate_requests += 1
                    continue
                key = (who, packet.transaction)
                assembler = self._assemblers.setdefault(key, MessageAssembler())
                request = assembler.add(packet)
                if request is None:
                    continue
                del self._assemblers[key]
                self._in_progress[who] = packet.transaction
                return request, self._make_reply(station, packet)

    def _make_reply(self, station: bytes, request: VMTPPacket):
        def reply(message: bytes):
            group = segment_message(
                VMTPKind.RESPONSE,
                request.client,
                self.server_id,
                request.transaction,
                message,
            )
            self._done[(station, request.client)] = (request.transaction, group)
            yield from self._send_group(station, group)

        return reply

    def _send_group(self, station: bytes, group: list[VMTPPacket]):
        frames = []
        for packet in group:
            yield Compute(self._costs.user_transport_per_packet)
            frames.append(
                self.host.link.frame(
                    station, self.host.address, ETHERTYPE_VMTP, packet.encode()
                )
            )
        for frame in frames:
            yield Write(self.fd, frame)
            self.packets_sent += 1
