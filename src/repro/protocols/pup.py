"""Pup — the PARC Universal Packet of figure 3-7 and section 5.1.

"At Stanford, almost all of the Pup protocols were implemented for
Unix, based entirely on the packet filter."  Pup is the protocol the
paper's example filters select on, so the header layout here follows
figure 3-7 word for word:

    +--------+--------+
    |    PupLength    |   bytes, including the 20-byte header and the
    +--------+--------+   2-byte checksum
    |HopCount|PupType |
    +--------+--------+
    |  Pup identifier |   32 bits
    |                 |
    +--------+--------+
    | DstNet |DstHost |
    +--------+--------+
    |    DstSocket    |   32 bits
    |                 |
    +--------+--------+
    | SrcNet |SrcHost |
    +--------+--------+
    |    SrcSocket    |   32 bits
    |                 |
    +--------+--------+
    |      Data       |   0..532 bytes (so a maximal Pup is 554 bytes;
    +--------+--------+   framed on Ethernet that is the paper's
    |    Checksum     |   "maximum packet size of 568 bytes")
    +--------+--------+

The checksum is Pup's add-and-left-cycle ones-complement sum;
0xFFFF means "unchecksummed", which the Stanford implementations used
for local traffic and which keeps parity with the unchecksummed VMTP
measurements.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..net.ethernet import LinkSpec

__all__ = [
    "PupAddress",
    "PupHeader",
    "PupError",
    "PUP_HEADER_BYTES",
    "PUP_CHECKSUM_BYTES",
    "PUP_MAX_DATA",
    "PUP_MAX_BYTES",
    "NO_CHECKSUM",
    "pup_checksum",
    "pup_word_base",
]

PUP_HEADER_BYTES = 20
PUP_CHECKSUM_BYTES = 2
PUP_MAX_DATA = 532
PUP_MAX_BYTES = PUP_HEADER_BYTES + PUP_MAX_DATA + PUP_CHECKSUM_BYTES  # 554
NO_CHECKSUM = 0xFFFF


class PupError(ValueError):
    """Malformed Pup packet."""


def pup_checksum(data: bytes) -> int:
    """Pup's add-and-left-cycle ones-complement checksum over 16-bit
    words (never yields 0xFFFF, which is reserved for "none")."""
    total = 0
    if len(data) % 2:
        data = data + b"\x00"
    for i in range(0, len(data), 2):
        total += (data[i] << 8) | data[i + 1]
        total = (total & 0xFFFF) + (total >> 16)
        total = ((total << 1) | (total >> 15)) & 0xFFFF  # left cycle
    if total == NO_CHECKSUM:
        total = 0
    return total


def pup_word_base(link: LinkSpec) -> int:
    """Packet word index where the Pup header starts, for filters.

    2 on the 3 Mb/s Experimental Ethernet (figure 3-7's numbering),
    7 on the 10 Mb/s Ethernet the BSP measurements used.
    """
    return link.header_length // 2


@dataclass(frozen=True)
class PupAddress:
    """A Pup endpoint: 8-bit network, 8-bit host, 32-bit socket."""

    net: int
    host: int
    socket: int

    def __post_init__(self) -> None:
        if not 0 <= self.net <= 0xFF:
            raise PupError(f"net {self.net} is not 8 bits")
        if not 0 <= self.host <= 0xFF:
            raise PupError(f"host {self.host} is not 8 bits")
        if not 0 <= self.socket <= 0xFFFFFFFF:
            raise PupError(f"socket {self.socket} is not 32 bits")


@dataclass(frozen=True)
class PupHeader:
    """A decoded Pup (header fields; data travels separately)."""

    pup_type: int
    identifier: int
    dst: PupAddress
    src: PupAddress
    hop_count: int = 0

    def encode(self, data: bytes, *, with_checksum: bool = False) -> bytes:
        if len(data) > PUP_MAX_DATA:
            raise PupError(f"{len(data)} bytes exceeds Pup data maximum")
        length = PUP_HEADER_BYTES + len(data) + PUP_CHECKSUM_BYTES
        head = bytearray(PUP_HEADER_BYTES)
        head[0:2] = length.to_bytes(2, "big")
        head[2] = self.hop_count
        head[3] = self.pup_type
        head[4:8] = self.identifier.to_bytes(4, "big")
        head[8] = self.dst.net
        head[9] = self.dst.host
        head[10:14] = self.dst.socket.to_bytes(4, "big")
        head[14] = self.src.net
        head[15] = self.src.host
        head[16:20] = self.src.socket.to_bytes(4, "big")
        body = bytes(head) + data
        checksum = pup_checksum(body) if with_checksum else NO_CHECKSUM
        return body + checksum.to_bytes(2, "big")

    @classmethod
    def decode(cls, packet: bytes) -> tuple["PupHeader", bytes]:
        """Parse; returns (header, data).  Verifies the checksum when
        one is present."""
        if len(packet) < PUP_HEADER_BYTES + PUP_CHECKSUM_BYTES:
            raise PupError("packet shorter than a minimal Pup")
        length = int.from_bytes(packet[0:2], "big")
        if length < PUP_HEADER_BYTES + PUP_CHECKSUM_BYTES or length > len(packet):
            raise PupError(f"bad Pup length {length}")
        checksum = int.from_bytes(packet[length - 2 : length], "big")
        if checksum != NO_CHECKSUM:
            expected = pup_checksum(packet[: length - 2])
            if checksum != expected:
                raise PupError("Pup checksum mismatch")
        header = cls(
            pup_type=packet[3],
            identifier=int.from_bytes(packet[4:8], "big"),
            dst=PupAddress(
                net=packet[8],
                host=packet[9],
                socket=int.from_bytes(packet[10:14], "big"),
            ),
            src=PupAddress(
                net=packet[14],
                host=packet[15],
                socket=int.from_bytes(packet[16:20], "big"),
            ),
            hop_count=packet[2],
        )
        return header, packet[PUP_HEADER_BYTES : length - 2]
