"""Pup Echo — the Pup suite's ping (EchoMe / ImAnEcho).

The Pup protocol family assigned type 1 to ``EchoMe`` and type 2 to
``ImAnEcho``: a host returns any EchoMe Pup to its sender with the type
flipped and the data intact.  Echo servers were the first thing every
Pup implementation ran, and the natural smoke test for a packet-filter
protocol stack — a complete user-level protocol in two page-fitting
functions.

Both ends run over the packet filter with figure 3-9-style socket
filters, on either Ethernet (the 3 Mb/s experimental one included,
where the word offsets are exactly the paper's figure 3-7).
"""

from __future__ import annotations

from ..sim.errors import SimTimeout
from ..sim.process import Ioctl, Open, Read, Write
from ..core.ioctl import PFIoctl
from ..core.port import ReadTimeoutPolicy
from .bsp import bsp_socket_filter, pup_ethertype
from .pup import PupAddress, PupError, PupHeader

__all__ = [
    "PUP_ECHO_ME",
    "PUP_IM_AN_ECHO",
    "ECHO_SOCKET",
    "pup_echo_server",
    "pup_ping",
]

PUP_ECHO_ME = 1      #: Pup type: please echo this
PUP_IM_AN_ECHO = 2   #: Pup type: the echo
ECHO_SOCKET = 5      #: the well-known Pup echo socket

PING_TIMEOUT = 0.25
PING_RETRIES = 4


def pup_echo_server(host, *, socket: int = ECHO_SOCKET):
    """Process body: answer every EchoMe on ``socket``, forever."""
    fd = yield Open("pf")
    yield Ioctl(
        fd, PFIoctl.SETFILTER, bsp_socket_filter(host.link, socket)
    )
    while True:
        batch = yield Read(fd)
        for delivered in batch:
            try:
                header, data = PupHeader.decode(
                    host.link.payload_of(delivered.data)
                )
            except PupError:
                continue
            if header.pup_type != PUP_ECHO_ME:
                continue
            reply = PupHeader(
                pup_type=PUP_IM_AN_ECHO,
                identifier=header.identifier,
                dst=header.src,
                src=header.dst,
            )
            station = host.link.source_of(delivered.data)
            yield Write(
                fd,
                host.link.frame(
                    station,
                    host.address,
                    pup_ethertype(host.link),
                    reply.encode(data, with_checksum=True),
                ),
            )


def pup_ping(
    host,
    station: bytes,
    *,
    count: int = 3,
    data: bytes = b"pup echo probe",
    local_socket: int = 0x77,
    remote_socket: int = ECHO_SOCKET,
    retries: int = PING_RETRIES,
    timeout: float = PING_TIMEOUT,
):
    """Sub-generator: ping ``station`` ``count`` times.

    Returns a list of round-trip times in seconds (one per successful
    echo); raises :class:`SimTimeout` if an echo never comes back after
    the retries — the "write; read with timeout; retry" paradigm again.
    Chaos soaks raise ``retries`` to ride out loss bursts.
    """
    fd = yield Open("pf")
    yield Ioctl(
        fd, PFIoctl.SETFILTER, bsp_socket_filter(host.link, local_socket)
    )
    yield Ioctl(fd, PFIoctl.SETTIMEOUT, ReadTimeoutPolicy.after(timeout))

    scheduler = host.kernel.scheduler
    round_trips = []
    for sequence in range(count):
        probe = PupHeader(
            pup_type=PUP_ECHO_ME,
            identifier=sequence,
            dst=PupAddress(net=1, host=station[-1], socket=remote_socket),
            src=PupAddress(net=1, host=host.address[-1], socket=local_socket),
        )
        frame = host.link.frame(
            station, host.address, pup_ethertype(host.link),
            probe.encode(data, with_checksum=True),
        )
        echoed = None
        for _attempt in range(retries):
            sent_at = scheduler.now
            yield Write(fd, frame)
            try:
                batch = yield Read(fd)
            except SimTimeout:
                continue
            for delivered in batch:
                try:
                    header, payload = PupHeader.decode(
                        host.link.payload_of(delivered.data)
                    )
                except PupError:
                    continue
                if (
                    header.pup_type == PUP_IM_AN_ECHO
                    and header.identifier == sequence
                    and payload == data
                ):
                    echoed = scheduler.now - sent_at
                    break
            if echoed is not None:
                break
        if echoed is None:
            raise SimTimeout(f"echo {sequence} never returned")
        round_trips.append(echoed)
    return round_trips
