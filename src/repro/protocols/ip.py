"""IPv4 header codec — including options, because variable-length
headers are exactly the case section 7 says the classic filter language
struggles with ("since the IP header may include optional fields, fields
in higher layer protocol headers are not at constant offsets").

Addresses are plain 32-bit integers (use :func:`ip_address` to build
them from dotted notation) and the header checksum is the real RFC 791
ones-complement sum, verified on input by the kernel stack.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "IPHeader",
    "IPError",
    "PROTO_TCP",
    "PROTO_UDP",
    "ip_address",
    "format_ip",
    "internet_checksum",
]

PROTO_TCP = 6
PROTO_UDP = 17

IP_MIN_HEADER = 20


class IPError(ValueError):
    """Malformed IP datagram."""


def ip_address(dotted: str) -> int:
    """``"10.0.0.2"`` -> the 32-bit address as an int."""
    parts = dotted.split(".")
    if len(parts) != 4:
        raise IPError(f"bad IPv4 address {dotted!r}")
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise IPError(f"bad IPv4 address {dotted!r}")
        value = (value << 8) | octet
    return value


def format_ip(address: int) -> str:
    """Inverse of :func:`ip_address`."""
    return ".".join(str((address >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def internet_checksum(data: bytes) -> int:
    """RFC 1071 ones-complement sum of 16-bit words."""
    total = 0
    if len(data) % 2:
        data = data + b"\x00"
    for i in range(0, len(data), 2):
        total += (data[i] << 8) | data[i + 1]
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


@dataclass(frozen=True)
class IPHeader:
    """A decoded IPv4 header (options preserved verbatim)."""

    src: int
    dst: int
    protocol: int
    ttl: int = 64
    identification: int = 0
    tos: int = 0
    options: bytes = b""
    total_length: int | None = None  # filled in by encode/decode

    @property
    def header_length(self) -> int:
        return IP_MIN_HEADER + len(self.padded_options)

    @property
    def ihl(self) -> int:
        """Header length in 32-bit words — the field the EXTENDED-language
        filter of :mod:`repro.core.extensions` reads at match time."""
        return self.header_length // 4

    @property
    def padded_options(self) -> bytes:
        pad = (-len(self.options)) % 4
        return self.options + b"\x00" * pad

    def encode(self, payload: bytes) -> bytes:
        """Serialize header + payload into a datagram."""
        total = self.header_length + len(payload)
        if total > 0xFFFF:
            raise IPError(f"datagram of {total} bytes exceeds IPv4 maximum")
        header = bytearray(self.header_length)
        header[0] = (4 << 4) | self.ihl
        header[1] = self.tos
        header[2:4] = total.to_bytes(2, "big")
        header[4:6] = self.identification.to_bytes(2, "big")
        header[6:8] = b"\x00\x00"  # flags/fragment: never fragmented here
        header[8] = self.ttl
        header[9] = self.protocol
        header[10:12] = b"\x00\x00"  # checksum placeholder
        header[12:16] = self.src.to_bytes(4, "big")
        header[16:20] = self.dst.to_bytes(4, "big")
        header[20:] = self.padded_options
        checksum = internet_checksum(bytes(header))
        header[10:12] = checksum.to_bytes(2, "big")
        return bytes(header) + payload

    @classmethod
    def decode(cls, datagram: bytes) -> tuple["IPHeader", bytes]:
        """Parse a datagram; returns (header, payload).

        Raises :class:`IPError` on truncation, bad version, or a
        checksum mismatch.
        """
        if len(datagram) < IP_MIN_HEADER:
            raise IPError("datagram shorter than the minimum IP header")
        version = datagram[0] >> 4
        if version != 4:
            raise IPError(f"IP version {version} is not 4")
        ihl = datagram[0] & 0x0F
        header_length = ihl * 4
        if header_length < IP_MIN_HEADER or len(datagram) < header_length:
            raise IPError(f"bad IHL {ihl}")
        if internet_checksum(datagram[:header_length]) != 0:
            raise IPError("IP header checksum mismatch")
        total_length = int.from_bytes(datagram[2:4], "big")
        if total_length < header_length or total_length > len(datagram):
            raise IPError("bad IP total length")
        header = cls(
            src=int.from_bytes(datagram[12:16], "big"),
            dst=int.from_bytes(datagram[16:20], "big"),
            protocol=datagram[9],
            ttl=datagram[8],
            identification=int.from_bytes(datagram[4:6], "big"),
            tos=datagram[1],
            options=datagram[IP_MIN_HEADER:header_length],
            total_length=total_length,
        )
        return header, datagram[header_length:total_length]
