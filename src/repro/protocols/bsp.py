"""BSP — the Pup Byte Stream Protocol, entirely at user level (§5.1/§6.4).

The paper's table 6-6 compares "a Pup/BSP implementation using the
packet filter" against kernel TCP.  This is that implementation: a
windowed, acknowledged, retransmitting byte stream built from Pup
packets, running in ordinary user processes whose only privilege is a
packet-filter port.

Protocol shape (a faithful simplification of Stanford's BSP):

* data travels in ``BSP_DATA`` Pups of at most 532 data bytes — the
  "maximum packet size of 568 bytes" of §6.4 once framed;
* the 32-bit Pup *identifier* field carries the byte sequence number;
* the receiver acknowledges every in-order arrival with a ``BSP_ACK``
  whose identifier is the next expected byte (go-back-N: out-of-order
  data just re-asserts the current position);
* the sender keeps a byte window open and retransmits from the
  unacknowledged mark on timeout;
* the stream ends with a ``BSP_END`` that consumes one sequence number
  and is acknowledged like data.

Each endpoint's receive filter is exactly the figure 3-9 program — test
the (unlikely) destination-socket words first with CAND, the packet
type last — generalized over the link type, since BSP measurements ran
on the 10 Mb/s Ethernet where the Pup header sits 7 words in.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.ioctl import PFIoctl
from ..core.port import ReadTimeoutPolicy
from ..core.program import FilterProgram, asm
from ..net.ethernet import LinkSpec
from ..sim.errors import SimTimeout
from ..sim.ledger import Primitive
from ..sim.process import Compute, Ioctl, Open, Read, Write
from .ethertypes import ETHERTYPE_PUP_3MB, ETHERTYPE_PUP_10MB
from .pup import (
    PUP_MAX_DATA,
    PupAddress,
    PupError,
    PupHeader,
    pup_word_base,
)
from .rto import RetransmitTimer

__all__ = [
    "BSP_DATA",
    "BSP_ACK",
    "BSP_END",
    "bsp_socket_filter",
    "pup_ethertype",
    "BSPEndpoint",
    "StreamStats",
]

BSP_DATA = 0o20   #: data Pup; identifier = byte sequence number
BSP_ACK = 0o23    #: ack Pup; identifier = next byte expected
BSP_END = 0o31    #: end-of-stream marker; consumes one sequence number

DEFAULT_WINDOW_PACKETS = 4
RETRANSMIT_TIMEOUT = 0.2
"""Initial retransmission timeout.  With ``adaptive_rto`` (the
default) this only seeds the :class:`~repro.protocols.rto.
RetransmitTimer`, which then tracks the measured round trip."""
MAX_RETRIES = 10


def pup_ethertype(link: LinkSpec) -> int:
    """Pup's data-link type value on this link."""
    return ETHERTYPE_PUP_3MB if link.address_length == 1 else ETHERTYPE_PUP_10MB


def bsp_socket_filter(
    link: LinkSpec, socket: int, priority: int = 10
) -> FilterProgram:
    """The figure 3-9 filter generalized: accept Pups for ``socket``.

    Socket-low word first (CAND), socket-high second (CAND), packet
    type last (EQ) — the paper's exact ordering rationale: "in most
    packets the DstSocket is likely not to match and so the
    short-circuit operation will exit immediately."
    """
    base = pup_word_base(link)
    ether_word = base - 1
    low = socket & 0xFFFF
    high = (socket >> 16) & 0xFFFF
    return FilterProgram(
        asm(
            ("PUSHWORD", base + 6), ("PUSHLIT", "CAND", low),
            ("PUSHWORD", base + 5), ("PUSHLIT", "CAND", high),
            ("PUSHWORD", ether_word), ("PUSHLIT", "EQ", pup_ethertype(link)),
        ),
        priority=priority,
    )


@dataclass
class StreamStats:
    """Transfer accounting for one direction of a BSP stream."""

    data_packets_sent: int = 0
    data_packets_received: int = 0
    acks_sent: int = 0
    acks_received: int = 0
    retransmissions: int = 0   #: timeout-triggered go-back-N events
    duplicates_dropped: int = 0
    corrupt_dropped: int = 0   #: packets rejected by the Pup checksum
    bytes_delivered: int = 0


class BSPEndpoint:
    """One BSP endpoint (one Pup socket on one host).

    Sub-generator API, used inside process bodies::

        endpoint = BSPEndpoint(host, local_socket=44)
        yield from endpoint.start()
        yield from endpoint.send_stream(dst_station, dst_address, data)
        # or, on the other side:
        data = yield from endpoint.recv_all()
    """

    def __init__(
        self,
        host,
        local_socket: int,
        *,
        net: int = 1,
        batching: bool = True,
        window_packets: int = DEFAULT_WINDOW_PACKETS,
        data_per_packet: int = PUP_MAX_DATA,
        device: str = "pf",
        adaptive_rto: bool = True,
        max_retries: int = MAX_RETRIES,
        checksumming: bool = True,
    ) -> None:
        if not 1 <= data_per_packet <= PUP_MAX_DATA:
            raise ValueError("data_per_packet outside 1..532")
        self.host = host
        self.net = net
        self.local_socket = local_socket
        self.batching = batching
        self.window_bytes = window_packets * data_per_packet
        self.data_per_packet = data_per_packet
        self.device = device
        self.max_retries = max_retries
        self.checksumming = checksumming
        #: Jacobson-style adaptive retransmission timer; None runs the
        #: historical fixed-timeout behaviour (the benchmark baseline).
        self.rto: RetransmitTimer | None = (
            RetransmitTimer(RETRANSMIT_TIMEOUT) if adaptive_rto else None
        )
        if self.rto is not None:
            publish = getattr(host.kernel, "publish_gauges", None)
            if publish is not None:
                publish(
                    f"rto.bsp{local_socket:#x}.",
                    self.rto.telemetry_gauges(),
                    unit="s",
                )
        self._armed_timeout = RETRANSMIT_TIMEOUT
        self.fd: int | None = None
        self.stats = StreamStats()
        # receiver state
        self._rcv_next = 0
        self._chunks: list[bytes] = []
        self._ended = False
        self._peer: tuple[bytes, PupAddress] | None = None

    @property
    def address(self) -> PupAddress:
        """This endpoint's Pup address (host byte from the station)."""
        return PupAddress(
            net=self.net,
            host=self.host.address[-1],
            socket=self.local_socket,
        )

    @property
    def _costs(self):
        return self.host.kernel.costs

    def start(self):
        """Open the PF port and bind the socket filter (yield from)."""
        self.fd = yield Open(self.device)
        yield Ioctl(
            self.fd,
            PFIoctl.SETFILTER,
            bsp_socket_filter(self.host.link, self.local_socket),
        )
        yield Ioctl(self.fd, PFIoctl.SETBATCH, self.batching)
        self._armed_timeout = (
            self.rto.timeout if self.rto is not None else RETRANSMIT_TIMEOUT
        )
        yield Ioctl(
            self.fd, PFIoctl.SETTIMEOUT,
            ReadTimeoutPolicy.after(self._armed_timeout),
        )

    def _rearm_timer(self):
        """Push the adaptive timeout to the port when it drifted enough
        to matter (sub-generator; no-op for the fixed baseline)."""
        if self.rto is not None and self.rto.needs_rearm(self._armed_timeout):
            self._armed_timeout = self.rto.timeout
            yield Ioctl(
                self.fd, PFIoctl.SETTIMEOUT,
                ReadTimeoutPolicy.after(self._armed_timeout),
            )

    # ------------------------------------------------------------------
    # packet plumbing
    # ------------------------------------------------------------------

    def _pup_frame(
        self,
        station: bytes,
        dst: PupAddress,
        pup_type: int,
        identifier: int,
        data: bytes = b"",
    ) -> bytes:
        header = PupHeader(
            pup_type=pup_type,
            identifier=identifier,
            dst=dst,
            src=self.address,
        )
        return self.host.link.frame(
            station,
            self.host.address,
            pup_ethertype(self.host.link),
            header.encode(data, with_checksum=self.checksumming),
        )

    # ------------------------------------------------------------------
    # sending side
    # ------------------------------------------------------------------

    def send_stream(
        self,
        station: bytes,
        dst: PupAddress,
        data: bytes,
        *,
        disk_ms_per_kbyte: float = 0.0,
    ):
        """Transmit ``data`` reliably to the peer endpoint (yield from).

        ``disk_ms_per_kbyte`` > 0 models an FTP-style synchronous file
        source: each packet's worth of data costs a blocking disk read
        before it can be sent (the §6.4 file-transfer variant).
        """
        if self.fd is None:
            raise RuntimeError("call start() first")
        from ..sim.process import Sleep
        clock = self.host.kernel.scheduler
        una = 0            # lowest unacknowledged byte
        nxt = 0            # next byte to transmit
        read_mark = 0      # bytes already read from the (disk) source
        end_seq = len(data)        # END consumes sequence number end_seq
        done_seq = end_seq + 1     # ack that finishes the stream
        end_sent_at_una = -1
        retries = 0
        # One RTT sample in flight at a time: the ack covering byte
        # ``sample_seq`` timestamps the round trip.  Invalidated on any
        # retransmission (Karn's algorithm).
        sample_seq: int | None = None
        sample_time = 0.0

        while una < done_seq:
            # Fill the window.
            while nxt < len(data) and nxt - una < self.window_bytes:
                chunk = data[nxt : nxt + self.data_per_packet]
                if disk_ms_per_kbyte and nxt + len(chunk) > read_mark:
                    # Fresh data (not a retransmission): read it from
                    # the (synchronous) file system first.
                    yield Sleep(disk_ms_per_kbyte * 1e-3 * len(chunk) / 1024.0)
                    read_mark = nxt + len(chunk)
                yield Compute(self._costs.user_transport_per_packet)
                yield Write(
                    self.fd,
                    self._pup_frame(station, dst, BSP_DATA, nxt, chunk),
                )
                self.stats.data_packets_sent += 1
                nxt += len(chunk)
                if self.rto is not None and sample_seq is None:
                    sample_seq = nxt
                    sample_time = clock.now
            if nxt >= len(data) and una >= len(data) and end_sent_at_una != una:
                yield Compute(self._costs.user_transport_per_packet)
                yield Write(
                    self.fd, self._pup_frame(station, dst, BSP_END, end_seq)
                )
                end_sent_at_una = una
                if self.rto is not None and sample_seq is None:
                    sample_seq = done_seq
                    sample_time = clock.now

            # Collect acknowledgements (read with timeout; retry if
            # necessary — the section 3 paradigm).
            try:
                batch = yield Read(self.fd)
            except SimTimeout:
                retries += 1
                if retries > self.max_retries:
                    raise SimTimeout("BSP stream abandoned: no acks")
                nxt = una           # go-back-N
                end_sent_at_una = -1
                self.stats.retransmissions += 1
                if self.rto is not None:
                    self.rto.note_timeout()
                    sample_seq = None     # Karn: ambiguous from here on
                    yield from self._rearm_timer()
                continue
            for delivered in batch:
                yield Compute(self._costs.user_transport_per_packet)
                try:
                    header, _ = PupHeader.decode(
                        self.host.link.payload_of(delivered.data)
                    )
                except PupError:
                    self.stats.corrupt_dropped += 1
                    self.host.kernel.account(
                        Primitive.DROP_CORRUPT, component="bsp"
                    )
                    continue
                if header.pup_type != BSP_ACK:
                    continue
                if header.identifier > una:
                    una = header.identifier
                    retries = 0
                    self.stats.acks_received += 1
                    if (
                        self.rto is not None
                        and sample_seq is not None
                        and una >= sample_seq
                    ):
                        self.rto.observe(clock.now - sample_time)
                        sample_seq = None
                        yield from self._rearm_timer()

    # ------------------------------------------------------------------
    # receiving side
    # ------------------------------------------------------------------

    def recv_some(self):
        """Wait for the next in-order data chunk (yield from).

        Returns ``None`` once the stream has ended — the incremental
        interface the Telnet display loop needs.
        """
        if self.fd is None:
            raise RuntimeError("call start() first")
        while True:
            if self._chunks:
                chunk = self._chunks.pop(0)
                self.stats.bytes_delivered += len(chunk)
                return chunk
            if self._ended:
                return None
            try:
                batch = yield Read(self.fd)
            except SimTimeout:
                continue
            for delivered in batch:
                yield from self._ingest(delivered.data)

    def recv_all(self):
        """Collect the whole stream until END (yield from)."""
        parts: list[bytes] = []
        while True:
            chunk = yield from self.recv_some()
            if chunk is None:
                return b"".join(parts)
            parts.append(chunk)

    def linger(self, *, timeout: float = 1.0, quiet: int = 3):
        """Dally after the stream ends, re-acking retransmitted ENDs
        (yield from) — Pup BSP's dally period, TCP's TIME_WAIT.

        The final ack can be lost like any other packet; a receiver
        that closes the moment END arrives leaves the sender
        retransmitting into a deaf port until its retry budget aborts
        the stream.  Stay subscribed until ``quiet`` consecutive
        timeout windows pass in silence; the quiet span must outlast
        the sender's longest backed-off retransmission gap.
        """
        yield Ioctl(
            self.fd, PFIoctl.SETTIMEOUT, ReadTimeoutPolicy.after(timeout)
        )
        silent = 0
        while silent < quiet:
            try:
                batch = yield Read(self.fd)
            except SimTimeout:
                silent += 1
                continue
            silent = 0
            for delivered in batch:
                yield from self._ingest(delivered.data)

    def _ingest(self, frame: bytes):
        costs = self._costs
        payload = self.host.link.payload_of(frame)
        yield Compute(
            costs.user_transport_per_packet
            + len(payload) / 1024.0 * costs.user_copy_per_kbyte
        )
        try:
            header, data = PupHeader.decode(payload)
        except PupError:
            # Truncated or checksum-rejected (bit-flipped) packet: drop
            # it; the sender's retransmission carries the clean copy.
            self.stats.corrupt_dropped += 1
            self.host.kernel.account(Primitive.DROP_CORRUPT, component="bsp")
            return
        station = self.host.link.source_of(frame)
        reply_to = PupAddress(
            net=header.src.net, host=header.src.host, socket=header.src.socket
        )

        if header.pup_type == BSP_DATA:
            if header.identifier == self._rcv_next:
                self._rcv_next += len(data)
                self._chunks.append(data)
                self.stats.data_packets_received += 1
            else:
                self.stats.duplicates_dropped += 1
            yield from self._send_ack(station, reply_to)
        elif header.pup_type == BSP_END:
            if header.identifier == self._rcv_next:
                self._rcv_next += 1
                self._ended = True
            yield from self._send_ack(station, reply_to)

    def _send_ack(self, station: bytes, dst: PupAddress):
        yield Compute(self._costs.user_transport_per_packet)
        yield Write(
            self.fd, self._pup_frame(station, dst, BSP_ACK, self._rcv_next)
        )
        self.stats.acks_sent += 1
