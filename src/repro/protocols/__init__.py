"""Packet formats and user-level protocol implementations.

The codecs (IP, UDP, TCP, Pup, VMTP, RARP) are shared with the kernel
stack; the *implementations* here — BSP, VMTP client/server, RARP,
telnet — all run in user processes over the packet filter, which is the
paper's whole point.
"""

from . import ethertypes
from .bsp import BSPEndpoint, bsp_socket_filter
from .ip import IPHeader, format_ip, internet_checksum, ip_address
from .pup import PupAddress, PupHeader, pup_checksum, pup_word_base
from .pup_echo import pup_echo_server, pup_ping
from .rarp import RARPPacket, RARPServer, rarp_discover
from .tcp import TCPFlags, TCPSegment
from .telnet import (
    telnet_bsp_server,
    telnet_bsp_user,
    telnet_tcp_server,
    telnet_tcp_user,
)
from .udp import UDPHeader
from .vmtp import VMTPClient, VMTPKind, VMTPPacket, VMTPServer

__all__ = [
    "ethertypes",
    "IPHeader", "ip_address", "format_ip", "internet_checksum",
    "UDPHeader", "TCPSegment", "TCPFlags",
    "PupHeader", "PupAddress", "pup_checksum", "pup_word_base",
    "BSPEndpoint", "bsp_socket_filter",
    "pup_echo_server", "pup_ping",
    "VMTPClient", "VMTPServer", "VMTPPacket", "VMTPKind",
    "RARPServer", "RARPPacket", "rarp_discover",
    "telnet_bsp_server", "telnet_bsp_user",
    "telnet_tcp_server", "telnet_tcp_user",
]
