"""Adaptive retransmission timeouts for the user-level protocols.

Section 3's "write; read with timeout; retry if necessary" paradigm
leaves the *value* of the timeout to the protocol, and the original
implementations (like ours, until this module) hard-coded one.  A fixed
timer is wrong in both directions: shorter than the path's worst-case
round trip it retransmits spuriously (go-back-N then resends a whole
window that was never lost); much longer than the typical round trip it
sits idle after a genuine loss.

:class:`RetransmitTimer` is the classic Jacobson/Karels estimator
(SIGCOMM '88) that both BSP and VMTP now share:

* ``observe(rtt)`` folds in a round-trip sample —
  ``srtt += alpha * err`` and ``rttvar`` tracks mean deviation; the
  timeout is ``srtt + k * rttvar`` (but never below ``slack * srtt`` —
  a steady path decays the variance term to nothing, and a timer equal
  to the typical round trip fires spuriously on any hiccup), clamped
  to ``[min_timeout, max_timeout]``;
* ``note_timeout()`` applies exponential backoff (doubling, capped) —
  and the caller must then stop sampling retransmitted packets until an
  unambiguous exchange completes (Karn's algorithm; both protocol
  integrations do this by invalidating their outstanding sample on any
  retransmission).

The timer is transport-agnostic: protocols arm it through the packet
filter's ``SETTIMEOUT`` read policy (or a ``Select`` timeout), and
:meth:`needs_rearm` rate-limits the re-arming ioctl to material changes
so the adaptive path does not distort syscall-count measurements.
"""

from __future__ import annotations

__all__ = ["RetransmitTimer"]


class RetransmitTimer:
    """Jacobson/Karels smoothed-RTT retransmission timer."""

    #: Relative change below which re-arming the device timeout is not
    #: worth a syscall (see :meth:`needs_rearm`).
    REARM_TOLERANCE = 0.1

    def __init__(
        self,
        initial: float,
        *,
        min_timeout: float | None = None,
        max_timeout: float = 2.0,
        alpha: float = 0.125,
        beta: float = 0.25,
        k: float = 4.0,
        slack: float = 2.0,
        backoff_factor: float = 2.0,
    ) -> None:
        if initial <= 0.0:
            raise ValueError("initial timeout must be positive")
        if min_timeout is None:
            # Default floor = the protocol's historical fixed timeout:
            # adaptation only ever *raises* the timer above the old
            # constant (RFC 6298's conservative-minimum stance).  RTT
            # samples under-represent ack silence when a slow consumer
            # acknowledges in clusters, so an unfloored estimator
            # converges below the real ack gap and retransmits whole
            # windows that were never lost.
            min_timeout = min(initial, max_timeout)
        if not 0.0 < min_timeout <= max_timeout:
            raise ValueError("need 0 < min_timeout <= max_timeout")
        if backoff_factor < 1.0:
            raise ValueError("backoff factor must be at least 1")
        if slack < 1.0:
            raise ValueError("slack factor must be at least 1")
        self.min_timeout = min_timeout
        self.max_timeout = max_timeout
        self.alpha = alpha
        self.beta = beta
        self.k = k
        self.slack = slack
        self.backoff_factor = backoff_factor
        self.srtt: float | None = None
        self.rttvar: float | None = None
        self._base = min(max(initial, min_timeout), max_timeout)
        self._backoff = 1.0
        self.samples = 0     #: RTT observations folded in
        self.timeouts = 0    #: backoff events (retransmission timeouts)

    @property
    def timeout(self) -> float:
        """The current retransmission timeout, backoff and cap applied."""
        return min(self._base * self._backoff, self.max_timeout)

    @property
    def backoff(self) -> float:
        """The current backoff multiplier (1.0 outside an episode)."""
        return self._backoff

    def telemetry_gauges(self) -> dict:
        """Gauge callables for the telemetry sampler — the live timeout,
        the smoothed estimate, the backoff multiplier (what the
        backoff-storm watchdog watches) and the lifetime counters.  The
        owning protocol endpoint publishes these under its own prefix."""
        return {
            "timeout": lambda: self.timeout,
            "srtt": lambda: self.srtt if self.srtt is not None else 0.0,
            "backoff": lambda: self._backoff,
            "samples": lambda: self.samples,
            "timeouts": lambda: self.timeouts,
        }

    def observe(self, rtt: float) -> None:
        """Fold in one round-trip sample (never from a retransmitted
        exchange — Karn's algorithm is the caller's responsibility)."""
        if rtt < 0.0:
            raise ValueError("round-trip samples cannot be negative")
        if self.srtt is None:
            self.srtt = rtt
            self.rttvar = rtt / 2.0
        else:
            error = rtt - self.srtt
            self.rttvar = (1.0 - self.beta) * self.rttvar + self.beta * abs(
                error
            )
            self.srtt = self.srtt + self.alpha * error
        # When samples are steady, rttvar decays and srtt + k*rttvar
        # collapses onto the mean round trip itself — and a timer equal
        # to the typical RTT fires spuriously on any hiccup (the reason
        # TCP keeps a conservative RTO floor).  The slack factor keeps
        # the timeout a multiple of srtt even at zero variance.
        self._base = min(
            max(
                self.srtt + self.k * self.rttvar,
                self.srtt * self.slack,
                self.min_timeout,
            ),
            self.max_timeout,
        )
        # A fresh unambiguous sample ends any backoff episode.
        self._backoff = 1.0
        self.samples += 1

    def note_timeout(self) -> None:
        """A retransmission timer fired: back off exponentially."""
        self.timeouts += 1
        if self._base * self._backoff < self.max_timeout:
            self._backoff *= self.backoff_factor

    def needs_rearm(self, armed: float) -> bool:
        """Whether ``timeout`` has drifted enough from the value last
        armed at the device to be worth another SETTIMEOUT syscall."""
        return abs(self.timeout - armed) > self.REARM_TOLERANCE * armed

    def __repr__(self) -> str:
        return (
            f"RetransmitTimer(timeout={self.timeout:.4f}, "
            f"srtt={self.srtt}, rttvar={self.rttvar}, "
            f"samples={self.samples}, timeouts={self.timeouts})"
        )
