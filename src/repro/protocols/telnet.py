"""Telnet (remote terminal output) — the table 6-7 workload.

"A program on the 'server' host prints characters which are transmitted
across the network and displayed at the 'user' host."

Two transports, as measured: Pup/BSP over the packet filter, and the
kernel IP/TCP.  Characters flow in small write bursts (a terminal
session's natural granularity), and the user host writes everything it
receives to a rate-limited :class:`repro.sim.display.DisplayDevice`.
The measurement is characters displayed per second — which both
transports can saturate, making the display the bottleneck; that is the
table's point.
"""

from __future__ import annotations

from ..kernelnet.sockets import SockIoctl
from ..sim.process import Close, Ioctl, Open, Read, Write
from .bsp import BSPEndpoint
from .pup import PupAddress

__all__ = [
    "TELNET_BURST_CHARS",
    "telnet_bsp_server",
    "telnet_bsp_user",
    "telnet_tcp_server",
    "telnet_tcp_user",
]

TELNET_BURST_CHARS = 32
"""Characters per protocol write — a printing program's flush size."""

TELNET_TCP_PORT = 23
TELNET_BSP_SERVER_SOCKET = 0x1700
TELNET_BSP_USER_SOCKET = 0x1701


def telnet_bsp_server(host, user_station: bytes, text: bytes):
    """Server side over BSP: stream ``text`` to the user host."""
    endpoint = BSPEndpoint(
        host,
        local_socket=TELNET_BSP_SERVER_SOCKET,
        data_per_packet=TELNET_BURST_CHARS,
    )
    yield from endpoint.start()
    dst = PupAddress(
        net=1, host=user_station[-1], socket=TELNET_BSP_USER_SOCKET
    )
    yield from endpoint.send_stream(user_station, dst, text)
    return endpoint.stats


def telnet_bsp_user(host, display_device: str = "display"):
    """User side over BSP: display every received character.

    Returns ``(characters_displayed, finished_at)``.
    """
    endpoint = BSPEndpoint(host, local_socket=TELNET_BSP_USER_SOCKET)
    yield from endpoint.start()
    display_fd = yield Open(display_device)
    total = 0
    while True:
        chunk = yield from endpoint.recv_some()
        if chunk is None:
            break
        yield Write(display_fd, chunk)
        total += len(chunk)
    return total


def telnet_tcp_server(host, peer_ip: int, text: bytes):
    """Server side over kernel TCP: stream ``text`` in terminal bursts."""
    fd = yield Open("tcp")
    yield Ioctl(fd, SockIoctl.CONNECT, (peer_ip, TELNET_TCP_PORT))
    for offset in range(0, len(text), TELNET_BURST_CHARS):
        yield Write(fd, text[offset : offset + TELNET_BURST_CHARS])
    yield Close(fd)
    return len(text)


def telnet_tcp_user(host, display_device: str = "display"):
    """User side over kernel TCP: display every received character."""
    fd = yield Open("tcp")
    yield Ioctl(fd, SockIoctl.BIND, TELNET_TCP_PORT)
    display_fd = yield Open(display_device)
    total = 0
    while True:
        chunk = yield Read(fd)
        if not chunk:
            break
        yield Write(display_fd, chunk)
        total += len(chunk)
    return total
