"""TCP segment codec for the kernel-resident baseline.

Only what the evaluation needs: ports, 32-bit sequence/ack numbers,
SYN/ACK/FIN/PSH flags and a window.  The kernel TCP of
:mod:`repro.kernelnet.tcp` implements connection setup, sliding-window
data transfer, cumulative acks and retransmission over these segments —
"TCP in 4.3BSD uses 1078-byte packets" corresponds to the default
1024-byte MSS here (14 Ethernet + 20 IP + 20 TCP + 1024 = 1078).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["TCPFlags", "TCPSegment", "TCPError", "TCP_HEADER_BYTES",
           "DEFAULT_MSS", "SMALL_MSS"]

TCP_HEADER_BYTES = 20

DEFAULT_MSS = 1024
"""Payload per segment giving the paper's 1078-byte TCP packets."""

SMALL_MSS = 514
"""Payload per segment giving 568-byte packets — the "if TCP is forced
to use the smaller packet size" experiment of section 6.4."""


class TCPError(ValueError):
    """Malformed TCP segment."""


class TCPFlags(enum.IntFlag):
    FIN = 0x01
    SYN = 0x02
    ACK = 0x10
    PSH = 0x08


@dataclass(frozen=True)
class TCPSegment:
    """One decoded TCP segment (no options)."""

    src_port: int
    dst_port: int
    seq: int
    ack: int
    flags: TCPFlags
    window: int = 4096
    payload: bytes = b""

    def encode(self) -> bytes:
        head = bytearray(TCP_HEADER_BYTES)
        head[0:2] = self.src_port.to_bytes(2, "big")
        head[2:4] = self.dst_port.to_bytes(2, "big")
        head[4:8] = (self.seq & 0xFFFFFFFF).to_bytes(4, "big")
        head[8:12] = (self.ack & 0xFFFFFFFF).to_bytes(4, "big")
        head[12] = (TCP_HEADER_BYTES // 4) << 4
        head[13] = int(self.flags) & 0xFF
        head[14:16] = self.window.to_bytes(2, "big")
        # checksum bytes 16:18 left zero: integrity is the simulator's,
        # but its *cost* is still charged by the kernel TCP.
        return bytes(head) + self.payload

    @classmethod
    def decode(cls, data: bytes) -> "TCPSegment":
        if len(data) < TCP_HEADER_BYTES:
            raise TCPError("segment shorter than the TCP header")
        offset = (data[12] >> 4) * 4
        if offset < TCP_HEADER_BYTES or offset > len(data):
            raise TCPError("bad TCP data offset")
        return cls(
            src_port=int.from_bytes(data[0:2], "big"),
            dst_port=int.from_bytes(data[2:4], "big"),
            seq=int.from_bytes(data[4:8], "big"),
            ack=int.from_bytes(data[8:12], "big"),
            flags=TCPFlags(data[13]),
            window=int.from_bytes(data[14:16], "big"),
            payload=data[offset:],
        )

    @property
    def is_syn(self) -> bool:
        return bool(self.flags & TCPFlags.SYN)

    @property
    def is_ack(self) -> bool:
        return bool(self.flags & TCPFlags.ACK)

    @property
    def is_fin(self) -> bool:
        return bool(self.flags & TCPFlags.FIN)
