"""Data-link type values used across the reproduction.

Historically accurate where history supplies a number (IP, ARP, RARP,
Pup); the VMTP value is our own — the paper's VMTP-over-packet-filter
ran directly on the data link, so it needs a type of its own here.
"""

from __future__ import annotations

__all__ = [
    "ETHERTYPE_IP",
    "ETHERTYPE_ARP",
    "ETHERTYPE_RARP",
    "ETHERTYPE_PUP_3MB",
    "ETHERTYPE_PUP_10MB",
    "ETHERTYPE_VMTP",
]

ETHERTYPE_IP = 0x0800
ETHERTYPE_ARP = 0x0806
ETHERTYPE_RARP = 0x8035       #: RFC 903, the section 5.3 protocol
ETHERTYPE_PUP_3MB = 2         #: figure 3-8's "packet type == PUP"
ETHERTYPE_PUP_10MB = 0x0200   #: Pup encapsulated on 10 Mb/s Ethernet
ETHERTYPE_VMTP = 0x0555       #: our data-link framing for VMTP messages
