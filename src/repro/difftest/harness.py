"""The config-matrix runner: one stream, every engine configuration.

A *stream* is a flat list of events, replayed identically against every
configuration under test:

``("packet", bytes)``
    Deliver one packet (through ``deliver`` or, for batch
    configurations, buffered into the next ``deliver_batch`` burst).
``("detach", i)`` / ``("attach", i)``
    Live SETFILTER churn on port ``i`` (ports are created once, up
    front, from the rule list; detach keeps the port's queue, re-attach
    assigns a fresh bind sequence — exactly the device-layer rebind).
``("copyall", i, flag)``
    Flip port ``i``'s copy-all option and invalidate, the SETCOPYALL
    path.
``("drain",)``
    Read every port's queue to empty — frees queue space (and pool
    buffers) so overflow/nobuf outcomes keep toggling mid-stream.

Batch configurations flush their pending burst before any non-packet
event, so mutations land between the same two packets in every
configuration; within an uninterrupted packet run, bursts are cut at
``config.batch`` packets.

The one *intended* behavioral difference in the whole matrix is the
same-priority reorder tick: ``deliver_batch`` under the IR engine
defers it to the end of the burst (documented in
:meth:`repro.core.demux.PacketFilterDemux.deliver_batch`), so reorder
is disabled by default and scenario code that enables it excludes the
IR batch configuration (:func:`full_matrix` with ``reorder=True``).

Comparison rules (:func:`run_matrix`):

* per-packet outcomes — ``accepted_by``/``dropped_by``/``nobuf_by``
  port tuples — equal to the baseline configuration for every packet;
* demux and per-port lifetime counters equal across the matrix
  (predicate/instruction counts excluded: engines legitimately do
  different amounts of work);
* flow-cache hit/miss/invalidation counters equal across **all**
  cache-enabled configurations, engine and delivery path
  notwithstanding — the cache keys on the packet's header prefix and
  stores ranks, neither of which may depend on the engine;
* optionally, the baseline's outcomes equal an independent 30-line
  oracle (:func:`reference_outcomes`) that reimplements priority
  order, first-match, copy-all and queue overflow with nothing but
  ``evaluate``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..core.demux import Engine, PacketFilterDemux
from ..core.interpreter import evaluate
from ..core.port import Port
from ..core.program import FilterProgram
from ..sim.overload import BufferPool

__all__ = [
    "MatrixConfig",
    "PacketOutcome",
    "RunResult",
    "Divergence",
    "MatrixReport",
    "full_matrix",
    "run_config",
    "run_matrix",
    "reference_outcomes",
]

#: Divergences reported per configuration before truncating — enough to
#: see the shape of a break without drowning the report.
MAX_DIVERGENCES_PER_CONFIG = 5


@dataclass(frozen=True)
class MatrixConfig:
    """One cell of the configuration matrix."""

    engine: Engine
    flow_cache: int = 0        #: slots (power of two); 0 = off
    use_decision_table: bool = False
    batch: int = 0             #: burst size through deliver_batch; 0 = scalar

    @property
    def label(self) -> str:
        parts = [self.engine.value]
        if self.flow_cache:
            parts.append(f"cache{self.flow_cache}")
        if self.use_decision_table:
            parts.append("table")
        parts.append(f"batch{self.batch}" if self.batch else "scalar")
        return "+".join(parts)


def full_matrix(
    *,
    engines: Sequence[Engine] = tuple(Engine),
    cache_sizes: Sequence[int] = (0, 64),
    tables: Sequence[bool] = (False, True),
    batches: Sequence[int] = (0, 32),
    reorder: bool = False,
) -> tuple[MatrixConfig, ...]:
    """Every engine × cache × table × delivery-path combination.

    The first configuration returned is always the baseline (checked
    interpreter, nothing else enabled) when it is in the product.  With
    ``reorder=True`` the IR batch configurations are omitted — batch
    delivery defers the reorder tick to burst end by design, so under
    live reordering they are *specified* to disagree with the scalar
    loop about same-priority winners.
    """
    configs = [
        MatrixConfig(
            engine=engine,
            flow_cache=cache,
            use_decision_table=table,
            batch=batch,
        )
        for engine in engines
        for cache in cache_sizes
        for table in tables
        for batch in batches
        if not (reorder and engine is Engine.IR and batch)
    ]
    baseline = MatrixConfig(engine=Engine.CHECKED)
    configs.sort(key=lambda c: (c != baseline, c.label))
    return tuple(configs)


@dataclass(frozen=True)
class PacketOutcome:
    """What one configuration did with one packet."""

    accepted_by: tuple[int, ...]
    dropped_by: tuple[int, ...]
    nobuf_by: tuple[int, ...]


@dataclass
class RunResult:
    """One configuration's complete observable behavior over a stream."""

    config: MatrixConfig
    outcomes: tuple[PacketOutcome, ...]
    counters: dict[str, int]
    cache_stats: tuple[int, int, int] | None  #: (hits, misses, invalidations)

    def digest(self) -> str:
        """Canonical SHA-256 over everything compared — two runs of the
        same configuration must produce the same digest regardless of
        ``PYTHONHASHSEED`` (the determinism acceptance test runs this
        in subprocesses with different seeds)."""
        parts = [self.config.label]
        for outcome in self.outcomes:
            parts.append(
                f"{outcome.accepted_by}/{outcome.dropped_by}/{outcome.nobuf_by}"
            )
        for name in sorted(self.counters):
            parts.append(f"{name}={self.counters[name]}")
        parts.append(f"cache={self.cache_stats}")
        return hashlib.sha256("\n".join(parts).encode()).hexdigest()


@dataclass(frozen=True)
class Divergence:
    """One observed disagreement between two configurations."""

    config: str     #: label of the diverging configuration
    baseline: str   #: label (or "oracle") it was compared against
    what: str       #: "outcome[i]" / counter name / "cache"
    got: str
    want: str

    def __str__(self) -> str:
        return (
            f"{self.config} vs {self.baseline}: {self.what} "
            f"got {self.got}, want {self.want}"
        )


@dataclass
class MatrixReport:
    """Everything :func:`run_matrix` learned."""

    results: list[RunResult] = field(default_factory=list)
    divergences: list[Divergence] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences

    def summary(self) -> str:
        lines = [
            f"{len(self.results)} configurations, "
            f"{len(self.results[0].outcomes) if self.results else 0} packets, "
            f"{len(self.divergences)} divergences"
        ]
        lines.extend(str(d) for d in self.divergences)
        return "\n".join(lines)


def _build_ports(
    programs: Sequence[FilterProgram],
    queue_limit: int,
    copy_all: Sequence[bool],
    pool: BufferPool | None,
) -> list[Port]:
    ports = []
    for index, program in enumerate(programs):
        port = Port(index, queue_limit=queue_limit)
        port.bind_filter(program)
        if index < len(copy_all):
            port.copy_all = bool(copy_all[index])
        port.pool = pool
        ports.append(port)
    return ports


def run_config(
    programs: Sequence[FilterProgram],
    stream: Iterable[tuple],
    config: MatrixConfig,
    *,
    queue_limit: int = 8,
    copy_all: Sequence[bool] = (),
    pool_capacity: int = 0,
    port_share: int | None = None,
    reorder: bool = False,
    reorder_interval: int | None = None,
) -> RunResult:
    """Replay ``stream`` through one configuration.

    Port ``i`` binds ``programs[i]``; all ports attach up front in
    index order, so bind-sequence tie-breaks are identical everywhere.
    ``pool_capacity`` > 0 wires a shared :class:`BufferPool` under the
    ports so the nobuf outcome is reachable.
    """
    pool = (
        BufferPool(pool_capacity, port_share=port_share)
        if pool_capacity
        else None
    )
    ports = _build_ports(programs, queue_limit, copy_all, pool)
    demux = PacketFilterDemux(
        engine=config.engine,
        use_decision_table=config.use_decision_table,
        flow_cache=config.flow_cache or False,
        reorder_same_priority=reorder,
    )
    if reorder_interval is not None:
        demux.REORDER_INTERVAL = reorder_interval
    for port in ports:
        demux.attach(port)

    outcomes: list[PacketOutcome] = []
    pending: list[bytes] = []

    def flush() -> None:
        if not pending:
            return
        for report in demux.deliver_batch(list(pending)):
            outcomes.append(
                PacketOutcome(
                    report.accepted_by, report.dropped_by, report.nobuf_by
                )
            )
        pending.clear()

    for event in stream:
        kind = event[0]
        if kind == "packet":
            if config.batch:
                pending.append(event[1])
                if len(pending) >= config.batch:
                    flush()
            else:
                report = demux.deliver(event[1])
                outcomes.append(
                    PacketOutcome(
                        report.accepted_by,
                        report.dropped_by,
                        report.nobuf_by,
                    )
                )
            continue
        flush()
        if kind == "detach":
            demux.detach(ports[event[1]])
        elif kind == "attach":
            demux.attach(ports[event[1]])
        elif kind == "copyall":
            ports[event[1]].copy_all = bool(event[2])
            demux.invalidate()
        elif kind == "drain":
            for port in ports:
                port.read_packets()
        else:
            raise ValueError(f"unknown stream event {event!r}")
    flush()

    counters: dict[str, int] = {
        "packets_seen": demux.packets_seen,
        "packets_unclaimed": demux.packets_unclaimed,
    }
    for port in ports:
        stats = port.stats
        for name in (
            "accepted",
            "delivered",
            "dropped_overflow",
            "dropped_nobuf",
            "read",
        ):
            counters[f"port{port.port_id}.{name}"] = getattr(stats, name)
        counters[f"port{port.port_id}.queued"] = port.queued
    if pool is not None:
        counters["pool.in_use"] = pool.in_use
    cache_stats = None
    if demux.flow_cache is not None:
        cache = demux.flow_cache
        cache_stats = (cache.hits, cache.misses, cache.invalidations)
    return RunResult(
        config=config,
        outcomes=tuple(outcomes),
        counters=counters,
        cache_stats=cache_stats,
    )


def reference_outcomes(
    programs: Sequence[FilterProgram],
    stream: Iterable[tuple],
    *,
    queue_limit: int = 8,
    copy_all: Sequence[bool] = (),
) -> list[PacketOutcome]:
    """An independent oracle: the figure 4-1 loop over ``evaluate``.

    Deliberately naive — priority order recomputed per packet, queue
    depths tracked as integers, no demultiplexer code involved — so a
    demux-wide bug cannot hide by infecting every engine equally.
    Buffer pools are out of scope (scenarios using one compare the
    matrix internally).
    """
    n = len(programs)
    flags = [
        bool(copy_all[i]) if i < len(copy_all) else False for i in range(n)
    ]
    sequence = dict.fromkeys(range(n))
    for i in range(n):
        sequence[i] = i
    next_seq = n
    queues = [0] * n
    outcomes: list[PacketOutcome] = []
    for event in stream:
        kind = event[0]
        if kind == "packet":
            packet = event[1]
            order = sorted(
                (i for i in range(n) if sequence[i] is not None),
                key=lambda i: (-programs[i].priority, sequence[i]),
            )
            accepted: list[int] = []
            dropped: list[int] = []
            for i in order:
                if not evaluate(programs[i], packet).accepted:
                    continue
                if queues[i] < queue_limit:
                    queues[i] += 1
                    accepted.append(i)
                else:
                    dropped.append(i)
                if not flags[i]:
                    break
            outcomes.append(
                PacketOutcome(tuple(accepted), tuple(dropped), ())
            )
        elif kind == "detach":
            sequence[event[1]] = None
        elif kind == "attach":
            sequence[event[1]] = next_seq
            next_seq += 1
        elif kind == "copyall":
            flags[event[1]] = bool(event[2])
        elif kind == "drain":
            queues = [0] * n
        else:
            raise ValueError(f"unknown stream event {event!r}")
    return outcomes


def run_matrix(
    programs: Sequence[FilterProgram],
    stream: Sequence[tuple],
    configs: Sequence[MatrixConfig] | None = None,
    *,
    oracle: bool = True,
    **run_kwargs,
) -> MatrixReport:
    """Replay ``stream`` through every configuration and cross-check.

    ``run_kwargs`` pass through to :func:`run_config`.  The oracle leg
    is skipped automatically for pool scenarios (it does not model the
    buffer pool) and can be turned off for large rule sets where the
    checked engine already is the semantic reference.
    """
    if configs is None:
        configs = full_matrix()
    stream = list(stream)
    report = MatrixReport()
    baseline: RunResult | None = None
    cache_refs: dict[int, RunResult] = {}
    for config in configs:
        result = run_config(programs, stream, config, **run_kwargs)
        report.results.append(result)
        if result.cache_stats is not None:
            reference = cache_refs.setdefault(config.flow_cache, result)
            if reference is not result:
                _compare_cache(report, result, reference)
        if baseline is None:
            baseline = result
            if oracle and not run_kwargs.get("pool_capacity"):
                expected = reference_outcomes(
                    programs,
                    stream,
                    queue_limit=run_kwargs.get("queue_limit", 8),
                    copy_all=run_kwargs.get("copy_all", ()),
                )
                _compare_outcomes(
                    report, result, expected, baseline_label="oracle"
                )
            continue
        _compare_outcomes(report, result, list(baseline.outcomes),
                          baseline_label=baseline.config.label)
        _compare_counters(report, result, baseline)
    return report


def _compare_outcomes(
    report: MatrixReport,
    result: RunResult,
    expected: Sequence[PacketOutcome],
    *,
    baseline_label: str,
) -> None:
    budget = MAX_DIVERGENCES_PER_CONFIG
    if len(result.outcomes) != len(expected):
        report.divergences.append(
            Divergence(
                config=result.config.label,
                baseline=baseline_label,
                what="outcome count",
                got=str(len(result.outcomes)),
                want=str(len(expected)),
            )
        )
        return
    for i, (got, want) in enumerate(zip(result.outcomes, expected)):
        if got != want:
            report.divergences.append(
                Divergence(
                    config=result.config.label,
                    baseline=baseline_label,
                    what=f"outcome[{i}]",
                    got=str(got),
                    want=str(want),
                )
            )
            budget -= 1
            if not budget:
                return


def _compare_counters(
    report: MatrixReport, result: RunResult, baseline: RunResult
) -> None:
    budget = MAX_DIVERGENCES_PER_CONFIG
    for name in sorted(set(result.counters) | set(baseline.counters)):
        got = result.counters.get(name)
        want = baseline.counters.get(name)
        if got != want:
            report.divergences.append(
                Divergence(
                    config=result.config.label,
                    baseline=baseline.config.label,
                    what=name,
                    got=str(got),
                    want=str(want),
                )
            )
            budget -= 1
            if not budget:
                return


def _compare_cache(
    report: MatrixReport, result: RunResult, reference: RunResult
) -> None:
    if result.cache_stats != reference.cache_stats:
        report.divergences.append(
            Divergence(
                config=result.config.label,
                baseline=reference.config.label,
                what="cache",
                got=str(result.cache_stats),
                want=str(reference.cache_stats),
            )
        )
