"""The sharding oracle: canonical digests over a merged topology run.

The conservative parallel simulator's whole claim is *partition
independence*: running a topology on one process or on N is not allowed
to change a single observable — not a counter, not a float, not a
packet's fate.  These helpers reduce a merged
:class:`~repro.sim.orchestrator.TopologyResult` to canonical strings and
SHA-256 digests so that claim becomes a one-line assertion:

``run_digest(run_topology(spec, shards=1)) ==
run_digest(run_topology(spec, shards=4))``

Floats are rendered with ``repr`` — the shortest string that
round-trips the exact IEEE-754 value — so two digests agree iff every
float is *bitwise* equal, which is the acceptance bar (merge order is
fixed to segment-declaration order precisely so float sums reproduce).

Like :meth:`repro.difftest.harness.RunResult.digest`, nothing here
depends on ``hash()`` ordering, so digests are also stable across
``PYTHONHASHSEED`` values (the determinism suite runs them in
subprocesses to prove it).
"""

from __future__ import annotations

import hashlib
from dataclasses import fields

__all__ = [
    "stats_fingerprint",
    "span_fingerprint",
    "alert_timeline_fingerprint",
    "stats_digest",
    "outcome_digest",
    "alert_timeline_digest",
    "run_digest",
    "flow_storm_digest",
    "partition_storm_digest",
]


def _scalar(value) -> str:
    """Canonical text for one leaf value (repr floats bitwise)."""
    if isinstance(value, float):
        return repr(value)
    return str(value)


def stats_fingerprint(result) -> list[str]:
    """One line per (host, counter): the merged per-host stats view."""
    lines = []
    for host in sorted(result.stats):
        stats = result.stats[host]
        for f in fields(stats):
            lines.append(f"{host}.{f.name}={_scalar(getattr(stats, f.name))}")
    return lines


def span_fingerprint(result) -> list[str]:
    """One line per packet span: id, host, flow, stages, fate.

    Span ids are globally unique after the merge and the merge order is
    deterministic, so the same packet gets the same id on any shard
    count; sorting by id makes the listing canonical without relying on
    dict order.
    """
    lines = []
    for packet_id in sorted(result.ledger.spans):
        span = result.ledger.spans[packet_id]
        stages = ";".join(
            f"{stage}@{_scalar(when)}" for stage, when in span.stages
        )
        lines.append(
            f"{packet_id}:{span.host}:{span.flow!r}:[{stages}]"
            f":{span.outcome}@{_scalar(span.closed_at)}"
        )
    return lines


def alert_timeline_fingerprint(result) -> list[str]:
    """One line per watchdog alert: rule, host, fire/clear times, the
    triggering values.

    The merged telemetry re-sorts alerts by ``(fired_at, host)``, so a
    1-shard and an N-shard run must produce the identical timeline —
    watchdogs evaluate per-world state, which partitioning may not
    change.  ``shard_restart`` records are excluded: revivals are
    supervisor events, deliberately outside every digest.
    """
    if result.telemetry is None:
        return []
    lines = []
    for alert in result.telemetry.alerts:
        if alert["rule"] == "shard_restart":
            continue
        values = ",".join(
            f"{name}={_scalar(alert['values'][name])}"
            for name in sorted(alert.get("values", {}))
        )
        lines.append(
            f"{alert['rule']}:{alert['host']}"
            f"@{_scalar(alert['fired_at'])}"
            f"..{_scalar(alert.get('cleared_at'))}:[{values}]"
        )
    return lines


def _digest(lines: list[str]) -> str:
    return hashlib.sha256("\n".join(lines).encode()).hexdigest()


def stats_digest(result) -> str:
    """SHA-256 over the merged per-host counters (floats bitwise)."""
    return _digest(stats_fingerprint(result))


def outcome_digest(result) -> str:
    """SHA-256 over every packet's per-stage timeline and fate."""
    return _digest(span_fingerprint(result))


def alert_timeline_digest(result) -> str:
    """SHA-256 over the merged watchdog alert timeline (restarts
    excluded) — the sharded-telemetry parity oracle."""
    return _digest(alert_timeline_fingerprint(result))


def run_digest(result) -> str:
    """The full oracle: stats + spans + wire counters + segment reports.

    Everything a run observably produced, except wall-clock time and the
    shard count itself (the two things partitioning *is allowed* to
    change).
    """
    lines = [
        f"events_fired={result.events_fired}",
        f"now={_scalar(result.now)}",
        f"windows={result.windows}",
    ]
    lines.extend(stats_fingerprint(result))
    lines.extend(span_fingerprint(result))
    for segment in sorted(result.wire):
        counters = result.wire[segment]
        for name in sorted(counters):
            lines.append(f"wire.{segment}.{name}={_scalar(counters[name])}")
    for segment in sorted(result.reports):
        report = result.reports[segment]
        for key in sorted(report):
            value = report[key]
            if isinstance(value, dict):
                rendered = ",".join(
                    f"{k}={_scalar(value[k])}" for k in sorted(value)
                )
            else:
                rendered = _scalar(value)
            lines.append(f"report.{segment}.{key}={rendered}")
    return _digest(lines)


def flow_storm_digest(
    *,
    segments: int = 2,
    shards: int = 1,
    seed: int = 0,
    duration: float = 0.1,
    **options,
) -> str:
    """Run the flow-cache miss storm and digest it — the one-call form
    the subprocess determinism tests and the shard-count sweep share."""
    from ..bench.scenarios import run_flow_storm

    outcome = run_flow_storm(
        segments=segments,
        shards=shards,
        seed=seed,
        duration=duration,
        **options,
    )
    return run_digest(outcome["result"])


def partition_storm_digest(
    *,
    segments: int = 2,
    shards: int = 1,
    seed: int = 0,
    duration: float = 1.2,
    **options,
) -> str:
    """Run the partition storm and digest it.

    Link faults and (when ``recovery``/``hazards`` options inject them)
    shard crashes must both be invisible to this digest's
    shard-count/fault-free comparisons: dropped frames land in the
    ledger identically no matter who owns the segment, and a recovered
    shard replays to bitwise-identical state.
    """
    from ..bench.scenarios import run_partition_storm

    outcome = run_partition_storm(
        segments=segments,
        shards=shards,
        seed=seed,
        duration=duration,
        **options,
    )
    return run_digest(outcome["result"])
