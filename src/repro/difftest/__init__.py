"""Differential correctness harness for the classification engines.

The demultiplexer can classify a packet five different ways (checked,
prevalidated, compiled, fused, IR), through an optional decision table,
an optional flow cache, and two delivery paths (scalar ``deliver`` vs
``deliver_batch``) — forty configurations that all claim to implement
the one figure 4-1 contract.  This package runs the same rule set and
packet stream through every configuration and asserts they cannot be
told apart: identical per-packet accept/drop/nobuf outcomes, reconciled
port and demux counters, and identical flow-cache hit/miss statistics
across engines and delivery paths.

See :mod:`repro.difftest.harness` for the matrix runner and
:mod:`repro.difftest.mutations` for the adversarial stream builders
(attach/detach churn, copy-all flips, truncated frames, engineered
flow-cache collision floods).
"""

from .harness import (
    Divergence,
    MatrixConfig,
    MatrixReport,
    PacketOutcome,
    RunResult,
    full_matrix,
    reference_outcomes,
    run_config,
    run_matrix,
)
from .mutations import (
    cache_key_bytes,
    churn_stream,
    collision_flood,
    packets_only,
    truncation_stream,
    with_drains,
)

__all__ = [
    "MatrixConfig",
    "PacketOutcome",
    "RunResult",
    "Divergence",
    "MatrixReport",
    "full_matrix",
    "run_config",
    "run_matrix",
    "reference_outcomes",
    "packets_only",
    "with_drains",
    "churn_stream",
    "collision_flood",
    "truncation_stream",
    "cache_key_bytes",
]
