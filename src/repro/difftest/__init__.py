"""Differential correctness harness for the classification engines.

The demultiplexer can classify a packet five different ways (checked,
prevalidated, compiled, fused, IR), through an optional decision table,
an optional flow cache, and two delivery paths (scalar ``deliver`` vs
``deliver_batch``) — forty configurations that all claim to implement
the one figure 4-1 contract.  This package runs the same rule set and
packet stream through every configuration and asserts they cannot be
told apart: identical per-packet accept/drop/nobuf outcomes, reconciled
port and demux counters, and identical flow-cache hit/miss statistics
across engines and delivery paths.

See :mod:`repro.difftest.harness` for the matrix runner,
:mod:`repro.difftest.mutations` for the adversarial stream builders
(attach/detach churn, copy-all flips, truncated frames, engineered
flow-cache collision floods), and :mod:`repro.difftest.sharding` for
the partition-independence oracle of the sharded multi-segment
simulator (1-shard vs N-shard runs must digest identically).
"""

from .harness import (
    Divergence,
    MatrixConfig,
    MatrixReport,
    PacketOutcome,
    RunResult,
    full_matrix,
    reference_outcomes,
    run_config,
    run_matrix,
)
from .sharding import (
    flow_storm_digest,
    outcome_digest,
    run_digest,
    span_fingerprint,
    stats_digest,
    stats_fingerprint,
)
from .mutations import (
    cache_key_bytes,
    churn_stream,
    collision_flood,
    packets_only,
    truncation_stream,
    with_drains,
)

__all__ = [
    "MatrixConfig",
    "PacketOutcome",
    "RunResult",
    "Divergence",
    "MatrixReport",
    "full_matrix",
    "run_config",
    "run_matrix",
    "reference_outcomes",
    "packets_only",
    "with_drains",
    "churn_stream",
    "collision_flood",
    "truncation_stream",
    "cache_key_bytes",
    "stats_fingerprint",
    "span_fingerprint",
    "stats_digest",
    "outcome_digest",
    "run_digest",
    "flow_storm_digest",
]
