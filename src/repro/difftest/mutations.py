"""Adversarial stream builders for the differential matrix.

Each builder returns a flat event stream (see
:mod:`repro.difftest.harness`) engineered to stress one divergence
surface:

* :func:`churn_stream` — mid-stream SETFILTER attach/detach toggles and
  copy-all flips, so every derived artifact (decision table, fused
  dispatch, IR set, flow cache, rank assignment) is repeatedly torn
  down and rebuilt while packets are in flight;
* :func:`collision_flood` — packets reordered so consecutive distinct
  flows index the *same* direct-mapped flow-cache slot, maximizing
  evictions (the exact shape that exposed the batch-path hit/miss
  drift);
* :func:`truncation_stream` — frames cut at every interesting boundary
  (inside the flow-cache key, at ``min_packet_bytes`` ± 1, odd lengths
  that exercise the zero-padded tail word), where the checked
  interpreter's bounds handling and the prevalidated/compiled/fused/IR
  engines' hoisted pre-checks must still agree packet for packet;
* :func:`with_drains` — periodic full queue drains so overflow
  outcomes keep toggling instead of saturating.

Everything is seeded through ``random.Random`` (Mersenne Twister —
independent of ``PYTHONHASHSEED``), so the same seed yields the same
stream in every process.
"""

from __future__ import annotations

from random import Random
from typing import Iterable, Sequence
from zlib import crc32

from ..core.program import FilterProgram

__all__ = [
    "cache_key_bytes",
    "churn_stream",
    "collision_flood",
    "packets_only",
    "truncation_stream",
    "with_drains",
]


def packets_only(packets: Iterable[bytes]) -> list[tuple]:
    """The trivial stream: every packet, no mutations."""
    return [("packet", bytes(p)) for p in packets]


def with_drains(stream: Sequence[tuple], every: int = 32) -> list[tuple]:
    """Insert a full queue drain after every ``every`` packet events."""
    if every < 1:
        raise ValueError("every must be >= 1")
    out: list[tuple] = []
    count = 0
    for event in stream:
        out.append(event)
        if event[0] == "packet":
            count += 1
            if count % every == 0:
                out.append(("drain",))
    return out


def churn_stream(
    packets: Sequence[bytes],
    n_ports: int,
    *,
    seed: int = 0,
    churn_every: int = 16,
    copyall_every: int | None = None,
    drain_every: int | None = None,
) -> list[tuple]:
    """Interleave packets with deterministic attach/detach churn.

    Every ``churn_every`` packets one pseudo-randomly chosen port is
    toggled: detached if attached, re-attached (with a fresh bind
    sequence, i.e. demoted within its priority class) if not.  With
    ``copyall_every`` set, copy-all flags flip on the same cadence.
    All detached ports are re-attached at the end so every
    configuration finishes over the same filter set.
    """
    if n_ports < 1:
        return packets_only(packets)
    rng = Random(seed)
    detached: set[int] = set()
    out: list[tuple] = []
    for i, packet in enumerate(packets):
        if i and churn_every and i % churn_every == 0:
            target = rng.randrange(n_ports)
            if target in detached:
                detached.discard(target)
                out.append(("attach", target))
            else:
                detached.add(target)
                out.append(("detach", target))
        if copyall_every and i and i % copyall_every == 0:
            out.append(("copyall", rng.randrange(n_ports), rng.random() < 0.5))
        if drain_every and i and i % drain_every == 0:
            out.append(("drain",))
        out.append(("packet", bytes(packet)))
    for target in sorted(detached):
        out.append(("attach", target))
    return out


def cache_key_bytes(programs: Iterable[FilterProgram]) -> int | None:
    """The flow-cache key width the demultiplexer would compute for
    this filter set (mirrors its rekey logic), or None when any filter
    uses indirect loads and the cache would disable itself."""
    max_index = -1
    for program in programs:
        for ins in program.instructions:
            if ins.is_indirect:
                return None
            if ins.is_pushword:
                index = ins.push_index
                if index > max_index:
                    max_index = index
    return 2 * (max_index + 1)


def collision_flood(
    packets: Sequence[bytes],
    key_bytes: int,
    cache_slots: int,
    *,
    min_group: int = 2,
) -> list[bytes]:
    """Reorder ``packets`` into a worst case for a direct-mapped cache
    of ``cache_slots`` slots.

    Packets are bucketed by the slot their key prefix indexes
    (``crc32(key) & (slots - 1)`` — the cache's own, seed-independent
    placement).  Buckets holding at least ``min_group`` *distinct* keys
    are emitted first, alternating between their keys so every store
    evicts the previous occupant and the next lookup of the evicted key
    misses again; remaining packets follow unchanged.  Same-prefix
    packets (identical key, different payload) stay adjacent, so hits
    still occur — the stream exercises hit, miss and evict transitions
    rather than only thrashing.
    """
    if cache_slots & (cache_slots - 1):
        raise ValueError("cache_slots must be a power of two")
    buckets: dict[int, dict[bytes, list[bytes]]] = {}
    for packet in packets:
        packet = bytes(packet)
        key = packet[:key_bytes]
        slot = crc32(key) & (cache_slots - 1)
        buckets.setdefault(slot, {}).setdefault(key, []).append(packet)

    flood: list[bytes] = []
    rest: list[bytes] = []
    for slot in sorted(buckets):
        by_key = buckets[slot]
        if len(by_key) >= min_group:
            lanes = [list(group) for group in by_key.values()]
            while any(lanes):
                for lane in lanes:
                    if lane:
                        flood.append(lane.pop(0))
        else:
            for group in by_key.values():
                rest.extend(group)
    return flood + rest


def truncation_stream(
    packets: Sequence[bytes],
    key_bytes: int,
    *,
    min_packet_bytes: int = 0,
    seed: int = 0,
) -> list[bytes]:
    """Each packet followed by truncated copies cut at every boundary
    that matters: the empty frame, single-byte, just inside and at the
    flow-cache key width, around the filter set's ``min_packet_bytes``
    pre-check, odd lengths (the zero-padded tail-word case), and one
    pseudo-random cut.  Engines disagree about truncated frames only if
    a hoisted bounds check is unsound — exactly what this stream hunts.
    """
    rng = Random(seed)
    out: list[bytes] = []
    for packet in packets:
        packet = bytes(packet)
        out.append(packet)
        cuts = {
            0,
            1,
            2,
            3,
            key_bytes - 1,
            key_bytes,
            key_bytes + 1,
            min_packet_bytes - 1,
            min_packet_bytes,
            min_packet_bytes + 1,
            len(packet) - 1,
        }
        if len(packet) > 1:
            cuts.add(rng.randrange(1, len(packet)))
        for cut in sorted(c for c in cuts if 0 <= c < len(packet)):
            out.append(packet[:cut])
    return out
