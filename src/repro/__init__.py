"""repro — a full reproduction of Mogul/Rashid/Accetta, SOSP 1987:
"The Packet Filter: An Efficient Mechanism for User-level Network Code".

Package map (see DESIGN.md for the complete inventory):

* :mod:`repro.core` — the packet filter: language, interpreter,
  validator, JIT, decision table, compiler library, demultiplexer,
  ports, and the pseudo-device driver.
* :mod:`repro.sim` — the host/kernel substrate: a deterministic
  discrete-event simulator with coroutine processes, syscalls, pipes,
  signals, select, and a cost model calibrated to the paper's numbers.
* :mod:`repro.net` — Ethernet segments (3 and 10 Mbit/s) and NICs.
* :mod:`repro.kernelnet` — the kernel-resident baseline protocol stack
  (IP, UDP, TCP, kernel VMTP) the paper compares against.
* :mod:`repro.protocols` — user-level protocols over the packet filter
  (Pup, BSP, VMTP, RARP, telnet) and shared packet codecs.
* :mod:`repro.baselines` — the user-level demultiplexing process.
* :mod:`repro.apps` — the integrated network monitor of section 5.4.
* :mod:`repro.bench` — workload generators and the table harness the
  benchmarks under ``benchmarks/`` are built on.
"""

from . import core

__version__ = "1.0.0"

__all__ = ["core", "__version__"]
