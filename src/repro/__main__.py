"""``python -m repro`` — a small front door.

Subcommands:

* ``info``      — version, package map, experiment inventory
* ``demo``      — run the quickstart scenario inline
* ``trace``     — with no argument, trace the figure 3-9 filter on a
                  matching and a missing packet (the tracer as a party
                  trick); with a scenario name and ``-o``, run it under
                  the ledger + telemetry and export a Chrome
                  trace-event / Perfetto JSON file; with a *topology*
                  name (``--shards N``), export the stitched N-shard
                  trace — process track per shard, flow events across
                  bridges
* ``profile``   — run a canned scenario under the charge ledger and
                  print the attributed cost/latency/drop/alert profile
                  (``--json`` for the machine-readable report,
                  ``--trace FILE`` to also export the Perfetto trace);
                  with a *topology* name, profile the synchronization
                  protocol instead: per-shard grant waits, null grants,
                  egress depth, checkpoint costs
* ``top``       — run a topology with the observability plane armed and
                  render the live cluster dashboard (per-shard window
                  index, sim-time skew, egress backlog, checkpoint age,
                  watchdog alerts as they fire)
* ``shard``     — run a named multi-segment topology partitioned over N
                  worker processes (``--shards 1`` is the in-process
                  fallback and the bitwise oracle for any other count);
                  ``--timeout`` bounds each shard reply and turns a hung
                  worker into a distinct exit code; ``--trace FILE``
                  exports the stitched Perfetto trace
* ``chaos-topo``— run a named topology under a declarative link-fault
                  schedule (``--faults``) with the crash-recovery
                  supervisor armed; prints drops, watchdog alerts and
                  shard restarts

Exit codes for the sharded commands: 0 on success, 3 when a shard died
(:class:`~repro.sim.shard.ShardDiedError`), 4 when a shard blew its
reply deadline (:class:`~repro.sim.shard.ShardTimeoutError`).
"""

from __future__ import annotations

import argparse
import sys

EXIT_SHARD_DIED = 3
EXIT_SHARD_TIMEOUT = 4


def cmd_info() -> int:
    import repro
    from repro.bench.report import TITLES

    print(f"repro {repro.__version__} — Mogul/Rashid/Accetta, SOSP 1987")
    print("packages: core, sim, net, kernelnet, protocols, baselines, "
          "apps, bench")
    print(f"\n{len(TITLES)} reproduced experiments:")
    for key, title in TITLES.items():
        print(f"  {key:24} {title}")
    print("\nrun them:  pytest benchmarks/ --benchmark-only")
    print("report:    python -m repro.bench.report")
    return 0


def cmd_demo() -> int:
    from repro.core import PFIoctl, compile_expr, word
    from repro.sim import Ioctl, Open, Read, Sleep, World, Write

    world = World()
    alice = world.host("alice")
    bob = world.host("bob")
    alice.install_packet_filter()
    bob.install_packet_filter()

    def receiver():
        fd = yield Open("pf")
        yield Ioctl(fd, PFIoctl.SETFILTER, compile_expr(word(6) == 0x0C47))
        [packet] = yield Read(fd)
        return bob.link.payload_of(packet.data)

    def sender():
        fd = yield Open("pf")
        yield Sleep(0.01)
        yield Write(fd, alice.link.frame(
            bob.address, alice.address, 0x0C47, b"it works"
        ))

    rx = bob.spawn("rx", receiver())
    alice.spawn("tx", sender())
    world.run_until_done(rx)
    print(f"received {rx.result!r} in {world.now * 1000:.2f} simulated ms")
    return 0


def cmd_trace() -> int:
    from repro.core import figure_3_9_pup_socket_35, trace_evaluation
    from repro.core.words import pack_words

    program = figure_3_9_pup_socket_35()
    matching = pack_words([0x0102, 2, 30, 0x0132, 0, 0, 0x0101, 0, 35])
    missing = pack_words([0x0102, 2, 30, 0x0132, 0, 0, 0x0101, 0, 36])
    for label, packet in (("MATCHING", matching), ("MISSING", missing)):
        print(f"--- figure 3-9 on a {label} packet ---")
        print(trace_evaluation(program, packet).format())
        print()
    return 0


def cmd_profile(
    scenario: str, *, as_json: bool = False, trace_path: str | None = None
) -> int:
    import json

    from repro.bench.profile import profile_report, render_profile, run_scenario
    from repro.bench.traceout import write_trace

    result = run_scenario(scenario)
    world, host = result["world"], result["host"]
    if as_json:
        print(json.dumps(
            profile_report(world, host, scenario=scenario), indent=2
        ))
    else:
        print(render_profile(world, host))
    if trace_path is not None:
        doc = write_trace(world, trace_path)
        print(
            f"wrote {len(doc['traceEvents'])} trace events to {trace_path} "
            "(load it at https://ui.perfetto.dev)",
            file=sys.stderr,
        )
    return 0


def cmd_trace_scenario(scenario: str, output: str) -> int:
    from repro.bench.profile import run_scenario
    from repro.bench.traceout import write_trace

    result = run_scenario(scenario)
    doc = write_trace(result["world"], output)
    print(
        f"{scenario}: {result['world'].now * 1000.0:.1f} simulated ms, "
        f"{len(doc['traceEvents'])} trace events -> {output}"
    )
    print("load it at https://ui.perfetto.dev (or chrome://tracing)")
    return 0


def _run_named_topology(
    topology: str,
    *,
    shards: int,
    segments: int,
    duration: float,
    seed: int,
    timeout: float | None = None,
    observability=None,
):
    """Resolve and run a registry topology; returns the result or an
    exit code (the shared front half of ``top``/``profile``/``trace``/
    ``shard``)."""
    from repro.bench.registry import resolve_topology
    from repro.sim.orchestrator import run_topology
    from repro.sim.shard import ShardDiedError, ShardTimeoutError

    spec = resolve_topology(
        topology, segments=segments, seed=seed, duration=duration
    )
    try:
        return run_topology(
            spec, shards=shards, timeout=timeout, observability=observability
        )
    except ShardDiedError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_SHARD_DIED
    except ShardTimeoutError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_SHARD_TIMEOUT


def cmd_profile_topology(
    topology: str,
    *,
    shards: int,
    segments: int,
    duration: float,
    seed: int,
    as_json: bool,
) -> int:
    import json

    result = _run_named_topology(
        topology,
        shards=shards,
        segments=segments,
        duration=duration,
        seed=seed,
    )
    if isinstance(result, int):
        return result
    span_latency = (
        result.span_hist.percentiles() if result.span_hist else None
    )
    if as_json:
        print(json.dumps(
            {
                "topology": topology,
                "segments": segments,
                "shards": result.shards,
                "seed": seed,
                "windows": result.windows,
                "wall_seconds": result.wall_seconds,
                "wall_per_window": result.wall_per_window,
                "recovered_shards": result.recovered_shards,
                "sync": result.sync.as_dict() if result.sync else None,
                "span_latency": span_latency,
                "shard_details": result.shard_details,
            },
            indent=2,
        ))
        return 0
    print(
        f"{topology}: {segments} segments on {result.shards} shard(s), "
        f"seed {seed}"
    )
    if result.sync is not None:
        print(result.sync.render())
    if span_latency:
        print(
            "span latency: "
            + " ".join(
                f"{name}={value * 1000.0:.3f}ms"
                for name, value in span_latency.items()
                if value is not None
            )
        )
    return 0


def cmd_trace_topology(
    topology: str,
    output: str,
    *,
    shards: int,
    segments: int,
    duration: float,
    seed: int,
) -> int:
    from repro.bench.traceout import write_topology_trace

    result = _run_named_topology(
        topology,
        shards=shards,
        segments=segments,
        duration=duration,
        seed=seed,
    )
    if isinstance(result, int):
        return result
    doc = write_topology_trace(result, output)
    print(
        f"{topology}: {result.now * 1000.0:.1f} simulated ms on "
        f"{result.shards} shard(s), {len(doc['traceEvents'])} trace "
        f"events -> {output}"
    )
    print("load it at https://ui.perfetto.dev (or chrome://tracing)")
    return 0


def cmd_top(
    topology: str,
    *,
    shards: int,
    segments: int,
    duration: float,
    seed: int,
    refresh: float,
    plain: bool,
) -> int:
    import time

    from repro.sim.obsplane import ObservabilityPlane

    last_paint = [0.0]

    def repaint(plane) -> None:
        if plain:
            return  # plain mode: alerts stream live, one frame at exit
        now = time.monotonic()
        if now - last_paint[0] < refresh:
            return
        last_paint[0] = now
        sys.stdout.write("\x1b[2J\x1b[H" + plane.render() + "\n")
        sys.stdout.flush()

    def announce(alert: dict) -> None:
        print(
            f"ALERT [{alert['rule']}] {alert['host']} "
            f"fired {alert['fired_at'] * 1000.0:.1f} ms",
            file=sys.stderr,
        )

    plane = ObservabilityPlane(on_update=repaint, on_alert=announce)
    result = _run_named_topology(
        topology,
        shards=shards,
        segments=segments,
        duration=duration,
        seed=seed,
        observability=plane,
    )
    if isinstance(result, int):
        return result
    if not plain:
        sys.stdout.write("\x1b[2J\x1b[H")
    print(plane.render())
    print(
        f"done: {result.events_fired} events over {result.windows} "
        f"windows; sim {result.now * 1000.0:.1f} ms in wall "
        f"{result.wall_seconds:.3f} s"
    )
    return 0


def cmd_shard(
    topology: str,
    *,
    shards: int,
    segments: int,
    duration: float,
    seed: int,
    as_json: bool,
    timeout: float | None = None,
    trace_path: str | None = None,
) -> int:
    import json

    result = _run_named_topology(
        topology,
        shards=shards,
        segments=segments,
        duration=duration,
        seed=seed,
        timeout=timeout,
    )
    if isinstance(result, int):
        return result
    total = result.total
    # The machine-readable run summary; docs/OBSERVABILITY.md documents
    # this schema, keep them in sync.
    summary = {
        "topology": topology,
        "segments": segments,
        "shards": result.shards,
        "seed": seed,
        "duration": duration,
        "windows": result.windows,
        "events_fired": result.events_fired,
        "sim_seconds": result.now,
        "wall_seconds": result.wall_seconds,
        "wall_per_window": result.wall_per_window,
        "recovered_shards": result.recovered_shards,
        "shard_details": result.shard_details,
        "sync": result.sync.as_dict() if result.sync else None,
        "span_latency": (
            result.span_hist.percentiles() if result.span_hist else None
        ),
        "frames_received": total.frames_received,
        "frames_sent": total.frames_sent,
        "cpu_time": total.cpu_time,
        "hosts": {
            host: {
                "frames_received": stats.frames_received,
                "frames_sent": stats.frames_sent,
                "cpu_time": stats.cpu_time,
            }
            for host, stats in sorted(result.stats.items())
        },
        "wire": result.wire,
        "reports": result.reports,
    }
    if trace_path is not None:
        from repro.bench.traceout import write_topology_trace

        doc = write_topology_trace(result, trace_path)
        print(
            f"wrote {len(doc['traceEvents'])} stitched trace events to "
            f"{trace_path} (load it at https://ui.perfetto.dev)",
            file=sys.stderr,
        )
    if as_json:
        print(json.dumps(summary, indent=2, default=str))
        return 0
    print(
        f"{topology}: {segments} segments on {result.shards} shard(s), "
        f"seed {seed}"
    )
    print(
        f"  {result.events_fired} events over {result.windows} windows; "
        f"sim {result.now * 1000.0:.1f} ms in wall "
        f"{result.wall_seconds:.3f} s "
        f"({result.wall_per_window * 1000.0:.2f} ms/window)"
    )
    print(
        f"  totals: {total.frames_sent} frames sent, "
        f"{total.frames_received} received, "
        f"{total.cpu_time * 1000.0:.2f} ms simulated CPU"
    )
    for detail in result.shard_details:
        print(
            f"  shard {detail['shard']}: {','.join(detail['segments'])} — "
            f"{detail['events_fired']} events over {detail['windows']} "
            f"windows, {detail['restarts']} restart(s)"
        )
    for name, report in result.reports.items():
        print(f"  {name}: {report}")
    return 0


def cmd_chaos_topo(
    topology: str,
    *,
    shards: int,
    segments: int,
    duration: float,
    seed: int,
    faults: str | None,
    timeout: float | None,
    checkpoint_interval: int,
    as_json: bool,
) -> int:
    import dataclasses
    import json

    from repro.bench.registry import resolve_topology
    from repro.sim.faults import parse_fault_spec
    from repro.sim.orchestrator import RecoveryConfig, run_topology
    from repro.sim.shard import ShardDiedError, ShardTimeoutError

    spec = resolve_topology(
        topology, segments=segments, seed=seed, duration=duration
    )
    if faults is not None:
        try:
            schedule = parse_fault_spec(faults, seed=seed)
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        spec = dataclasses.replace(spec, faults=schedule)
    if not spec.telemetry:
        # Watchdog alerts are the point of a chaos run.
        spec = dataclasses.replace(spec, telemetry=True)
    recovery = RecoveryConfig(
        checkpoint_interval=checkpoint_interval or None,
        recv_timeout=timeout,
    )
    try:
        result = run_topology(
            spec, shards=shards, recovery=recovery, timeout=timeout
        )
    except ShardDiedError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_SHARD_DIED
    except ShardTimeoutError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_SHARD_TIMEOUT
    alerts = list(result.telemetry.alerts) if result.telemetry else []
    dropped = {
        name: wire.get("frames_dropped_link_down", 0)
        for name, wire in result.wire.items()
    }
    summary = {
        "topology": topology,
        "segments": segments,
        "shards": result.shards,
        "seed": seed,
        "duration": duration,
        "faults": [
            {
                "link_id": fault.link_id,
                "start": fault.start,
                "end": fault.end,
                "direction": fault.direction,
            }
            for fault in spec.faults
        ],
        "windows": result.windows,
        "events_fired": result.events_fired,
        "sim_seconds": result.now,
        "wall_seconds": result.wall_seconds,
        "dropped_link_down": dropped,
        "alerts": alerts,
        "restarts": result.restarts,
        "reports": result.reports,
    }
    if as_json:
        print(json.dumps(summary, indent=2, default=str))
        return 0
    print(
        f"{topology}: {segments} segments on {result.shards} shard(s), "
        f"seed {seed}, {len(spec.faults)} scheduled fault(s)"
    )
    print(
        f"  {result.events_fired} events over {result.windows} windows; "
        f"sim {result.now * 1000.0:.1f} ms in wall "
        f"{result.wall_seconds:.3f} s"
    )
    for fault in spec.faults:
        print(
            f"  fault: {fault.link_id} down "
            f"[{fault.start:.3f}, {fault.end:.3f}) {fault.direction}"
        )
    total_dropped = sum(dropped.values())
    print(f"  dropped_link_down: {total_dropped} ({dropped})")
    if alerts:
        print(f"  {len(alerts)} alert(s):")
        for alert in alerts:
            cleared = alert.get("cleared_at")
            cleared_text = (
                f"cleared {cleared:.3f}" if cleared is not None else "open"
            )
            print(
                f"    [{alert['rule']}] {alert['host']} "
                f"fired {alert['fired_at']:.3f} {cleared_text}"
            )
    else:
        print("  no alerts fired")
    if result.restarts:
        for record in result.restarts:
            print(
                f"  restart: shard {record['shard']} {record['reason']} at "
                f"window {record['window']}, resumed from "
                f"{record['resumed_from']} (replayed {record['replayed']})"
            )
    return 0


def main(argv: list[str] | None = None) -> int:
    from repro.bench.registry import runnable_names, topology_names

    parser = argparse.ArgumentParser(prog="python -m repro")
    subcommands = parser.add_subparsers(dest="command")
    subcommands.add_parser("info", help="version and experiment inventory")
    subcommands.add_parser("demo", help="run the quickstart scenario")
    trace = subcommands.add_parser(
        "trace",
        help=(
            "no argument: trace the figure 3-9 filter; with a scenario "
            "and -o: export a Perfetto/Chrome trace JSON; with a "
            "topology and --shards: export the stitched N-shard trace"
        ),
    )
    trace.add_argument(
        "scenario",
        nargs="?",
        choices=runnable_names(),
        help=(
            "scenario or topology to run and export (omit for the "
            "filter tracer)"
        ),
    )
    trace.add_argument(
        "-o",
        "--output",
        help="output file for the trace-event JSON",
    )
    trace.add_argument(
        "--shards", type=int, default=2,
        help="worker processes for a topology trace (default 2)",
    )
    trace.add_argument(
        "--segments", type=int, default=2,
        help="Ethernet segments for a topology trace (default 2)",
    )
    trace.add_argument(
        "--duration", type=float, default=0.5,
        help="simulated seconds for a topology trace (default 0.5)",
    )
    trace.add_argument("--seed", type=int, default=0)
    profile = subcommands.add_parser(
        "profile",
        help=(
            "profile a scenario through the charge ledger, or a "
            "topology through the sync-protocol profiler"
        ),
    )
    profile.add_argument("scenario", choices=runnable_names())
    profile.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable report instead of the table",
    )
    profile.add_argument(
        "--trace",
        metavar="FILE",
        help="also export the run as Perfetto/Chrome trace JSON",
    )
    profile.add_argument(
        "--shards", type=int, default=2,
        help="worker processes for a topology profile (default 2)",
    )
    profile.add_argument(
        "--segments", type=int, default=2,
        help="Ethernet segments for a topology profile (default 2)",
    )
    profile.add_argument(
        "--duration", type=float, default=0.5,
        help="simulated seconds for a topology profile (default 0.5)",
    )
    profile.add_argument("--seed", type=int, default=0)
    top = subcommands.add_parser(
        "top",
        help=(
            "run a topology with the observability plane armed and "
            "render the live cluster dashboard"
        ),
    )
    top.add_argument("topology", choices=topology_names())
    top.add_argument(
        "--shards", type=int, default=2,
        help="worker processes (default 2)",
    )
    top.add_argument(
        "--segments", type=int, default=2,
        help="Ethernet segments in the topology (default 2)",
    )
    top.add_argument(
        "--duration", type=float, default=0.5,
        help="simulated seconds of offered load (default 0.5)",
    )
    top.add_argument("--seed", type=int, default=0)
    top.add_argument(
        "--refresh", type=float, default=0.25,
        help="minimum seconds between dashboard repaints (default 0.25)",
    )
    top.add_argument(
        "--plain", action="store_true",
        help=(
            "no ANSI repaints: stream alerts as they fire, print one "
            "final frame (for logs and tests)"
        ),
    )
    shard = subcommands.add_parser(
        "shard",
        help="run a multi-segment topology over N worker processes",
    )
    shard.add_argument("topology", choices=topology_names())
    shard.add_argument(
        "--shards", type=int, default=1,
        help="worker processes (1 = in-process fallback; default 1)",
    )
    shard.add_argument(
        "--segments", type=int, default=2,
        help="Ethernet segments in the topology (default 2)",
    )
    shard.add_argument(
        "--duration", type=float, default=0.5,
        help="simulated seconds of offered load (default 0.5)",
    )
    shard.add_argument("--seed", type=int, default=0)
    shard.add_argument(
        "--timeout", type=float, default=None,
        help=(
            "per-window shard reply deadline in seconds "
            f"(exit {EXIT_SHARD_TIMEOUT} when blown; default: wait forever)"
        ),
    )
    shard.add_argument(
        "--json", action="store_true",
        help="emit a machine-readable summary",
    )
    shard.add_argument(
        "--trace",
        metavar="FILE",
        help="also export the stitched Perfetto trace JSON",
    )
    chaos = subcommands.add_parser(
        "chaos-topo",
        help=(
            "run a topology under a link-fault schedule with the "
            "crash-recovery supervisor armed"
        ),
    )
    chaos.add_argument("topology", choices=topology_names())
    chaos.add_argument(
        "--faults",
        help=(
            "comma-separated fault clauses: down:LINK:START:END[:DIR] "
            "or flap:LINK:START:END:MEAN_DOWN:MEAN_UP[:DIR] "
            "(DIR: both|a2b|b2a; omit for the scenario's default schedule)"
        ),
    )
    chaos.add_argument(
        "--shards", type=int, default=2,
        help="worker processes (default 2)",
    )
    chaos.add_argument(
        "--segments", type=int, default=2,
        help="Ethernet segments in the topology (default 2)",
    )
    chaos.add_argument(
        "--duration", type=float, default=1.2,
        help="simulated seconds of offered load (default 1.2)",
    )
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument(
        "--timeout", type=float, default=30.0,
        help="per-window shard reply deadline in seconds (default 30)",
    )
    chaos.add_argument(
        "--checkpoint-interval", type=int, default=8,
        help="windows between shard checkpoints (0 disables; default 8)",
    )
    chaos.add_argument(
        "--json", action="store_true",
        help="emit a machine-readable summary",
    )
    args = parser.parse_args(argv)
    if args.command == "shard":
        return cmd_shard(
            args.topology,
            shards=args.shards,
            segments=args.segments,
            duration=args.duration,
            seed=args.seed,
            as_json=args.json,
            timeout=args.timeout,
            trace_path=args.trace,
        )
    if args.command == "chaos-topo":
        return cmd_chaos_topo(
            args.topology,
            shards=args.shards,
            segments=args.segments,
            duration=args.duration,
            seed=args.seed,
            faults=args.faults,
            timeout=args.timeout,
            checkpoint_interval=args.checkpoint_interval,
            as_json=args.json,
        )
    if args.command == "top":
        return cmd_top(
            args.topology,
            shards=args.shards,
            segments=args.segments,
            duration=args.duration,
            seed=args.seed,
            refresh=args.refresh,
            plain=args.plain,
        )
    if args.command == "profile":
        if args.scenario in topology_names():
            return cmd_profile_topology(
                args.scenario,
                shards=args.shards,
                segments=args.segments,
                duration=args.duration,
                seed=args.seed,
                as_json=args.json,
            )
        return cmd_profile(
            args.scenario, as_json=args.json, trace_path=args.trace
        )
    if args.command == "trace" and args.scenario is not None:
        if args.output is None:
            parser.error("trace <scenario> needs -o/--output FILE")
        if args.scenario in topology_names():
            return cmd_trace_topology(
                args.scenario,
                args.output,
                shards=args.shards,
                segments=args.segments,
                duration=args.duration,
                seed=args.seed,
            )
        return cmd_trace_scenario(args.scenario, args.output)
    command = args.command or "info"
    return {"info": cmd_info, "demo": cmd_demo, "trace": cmd_trace}[command]()


if __name__ == "__main__":
    sys.exit(main())
