"""The filter interpreter — section 3.1 / figure 3-6, faithfully.

"The heart of the packet filter is an interpreter ... It simply iterates
through the 'instruction words' of a filter (there are no branch
instructions), evaluating the filter predicate using a small stack.  When
it reaches the end of the filter, or a short-circuit conditional is
satisfied, or an error is detected, it returns the predicate value."

Semantics implemented here:

* Each instruction runs its stack action first, then its binary operator.
* Comparisons compare ``T2 <op> T1`` (T1 = top of stack) and push 1 or 0.
* Logical AND/OR/XOR are bitwise; any nonzero word is "true", which is
  consistent with the acceptance rule below.
* The four short-circuit operators evaluate ``R := (T1 == T2)``, and:

  =======  ======================  =============
  op       returns immediately...  ...if R is
  =======  ======================  =============
  COR      TRUE                    TRUE
  CAND     FALSE                   FALSE
  CNOR     FALSE                   TRUE
  CNAND    TRUE                    FALSE
  =======  ======================  =============

  Otherwise the paper says they "push the result R on the stack" and the
  program continues (:data:`ShortCircuitMode.PUSH_RESULT`, the default).
  The historical BSD/CMU C code continued *without* pushing;
  :data:`ShortCircuitMode.NO_PUSH` reproduces that for comparison.

* At the end of the program the packet is accepted iff the word on top
  of the stack is nonzero; an empty stack rejects.
* Runtime faults — invalid instruction, stack overflow/underflow,
  out-of-packet reference, (extension) division by zero — reject the
  packet.  Section 7 notes all but the bounds checks on indirect pushes
  can be hoisted to bind time; :mod:`repro.core.validator` implements
  that, and ``checked=False`` here is the corresponding fast path.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .instructions import (
    CLASSIC_OPERATORS,
    CONSTANT_ACTIONS,
    EXTENDED_ACTIONS,
    FALSE,
    TRUE,
    BinaryOp,
    StackAction,
)
from .program import FilterProgram
from .words import get_byte, get_word

__all__ = [
    "ShortCircuitMode",
    "LanguageLevel",
    "FaultCode",
    "FilterResult",
    "evaluate",
    "DEFAULT_STACK_DEPTH",
]

DEFAULT_STACK_DEPTH = 32
"""Evaluation stack slots; generous for real filters (fig 3-8 needs 3)."""


class ShortCircuitMode(enum.Enum):
    """What a non-terminating short-circuit operator leaves on the stack."""

    PUSH_RESULT = "push-result"  #: figure 3-6 as written: push R, continue
    NO_PUSH = "no-push"          #: historical BSD/CMU C code: continue bare


class LanguageLevel(enum.Enum):
    """Which instruction set is permitted."""

    CLASSIC = "classic"    #: exactly figure 3-6
    EXTENDED = "extended"  #: + section 7 indirect pushes and arithmetic


class FaultCode(enum.Enum):
    """Why evaluation rejected a packet abnormally (section 4 checks)."""

    NONE = "none"
    BAD_INSTRUCTION = "bad-instruction"    #: opcode outside the active level
    STACK_OVERFLOW = "stack-overflow"
    STACK_UNDERFLOW = "stack-underflow"
    PACKET_BOUNDS = "packet-bounds"        #: PUSHWORD/PUSHIND past the packet
    EMPTY_STACK = "empty-stack"            #: program ended with nothing on top
    DIVIDE_BY_ZERO = "divide-by-zero"      #: extension DIV with T1 == 0


@dataclass(frozen=True)
class FilterResult:
    """Outcome of applying one filter to one packet.

    ``instructions_executed`` counts instruction words actually evaluated
    (literal words excluded) — the quantity the cost model charges for,
    and what table 6-10 and the figure 3-9 discussion are about.
    """

    accepted: bool
    fault: FaultCode = FaultCode.NONE
    instructions_executed: int = 0
    short_circuited: bool = False

    def __bool__(self) -> bool:
        return self.accepted


# Short-circuit behaviour table: operator -> (terminate_when_R, value_returned).
_SHORT_CIRCUIT = {
    BinaryOp.COR: (True, True),
    BinaryOp.CAND: (False, False),
    BinaryOp.CNOR: (True, False),
    BinaryOp.CNAND: (False, True),
}

_COMPARISONS = {
    BinaryOp.EQ: lambda t2, t1: t2 == t1,
    BinaryOp.NEQ: lambda t2, t1: t2 != t1,
    BinaryOp.LT: lambda t2, t1: t2 < t1,
    BinaryOp.LE: lambda t2, t1: t2 <= t1,
    BinaryOp.GT: lambda t2, t1: t2 > t1,
    BinaryOp.GE: lambda t2, t1: t2 >= t1,
}

_BITWISE = {
    BinaryOp.AND: lambda t2, t1: t2 & t1,
    BinaryOp.OR: lambda t2, t1: t2 | t1,
    BinaryOp.XOR: lambda t2, t1: t2 ^ t1,
}

_ARITHMETIC = {
    BinaryOp.ADD: lambda t2, t1: (t2 + t1) & 0xFFFF,
    BinaryOp.SUB: lambda t2, t1: (t2 - t1) & 0xFFFF,
    BinaryOp.MUL: lambda t2, t1: (t2 * t1) & 0xFFFF,
    BinaryOp.LSH: lambda t2, t1: (t2 << min(t1, 16)) & 0xFFFF,
    BinaryOp.RSH: lambda t2, t1: t2 >> min(t1, 16),
}


def evaluate(
    program: FilterProgram,
    packet: bytes,
    *,
    mode: ShortCircuitMode = ShortCircuitMode.PUSH_RESULT,
    level: LanguageLevel = LanguageLevel.CLASSIC,
    max_stack: int = DEFAULT_STACK_DEPTH,
    checked: bool = True,
) -> FilterResult:
    """Apply ``program`` to ``packet`` and decide acceptance.

    ``checked=True`` performs every per-instruction validity check the
    original interpreter performed (section 4).  ``checked=False`` is the
    section 7 fast path for programs already cleared by
    :func:`repro.core.validator.validate`: stack and opcode checks are
    skipped, and only the unavoidable packet-bounds checks remain.
    """
    if checked:
        return _evaluate_checked(program, packet, mode, level, max_stack)
    return _evaluate_unchecked(program, packet, mode)


def _evaluate_checked(
    program: FilterProgram,
    packet: bytes,
    mode: ShortCircuitMode,
    level: LanguageLevel,
    max_stack: int,
) -> FilterResult:
    stack: list[int] = []
    executed = 0
    for ins in program.instructions:
        executed += 1
        action = ins.action_code

        # --- stack action ---
        if action == StackAction.NOPUSH:
            pass
        elif action == StackAction.PUSHLIT:
            if len(stack) >= max_stack:
                return _fault(FaultCode.STACK_OVERFLOW, executed)
            stack.append(ins.literal)  # type: ignore[arg-type]
        elif action in CONSTANT_ACTIONS:
            if len(stack) >= max_stack:
                return _fault(FaultCode.STACK_OVERFLOW, executed)
            stack.append(CONSTANT_ACTIONS[StackAction(action)])
        elif action in EXTENDED_ACTIONS:
            if level is not LanguageLevel.EXTENDED:
                return _fault(FaultCode.BAD_INSTRUCTION, executed)
            if not stack:
                return _fault(FaultCode.STACK_UNDERFLOW, executed)
            index = stack.pop()
            try:
                if action == StackAction.PUSHIND:
                    stack.append(get_word(packet, index))
                else:
                    stack.append(get_byte(packet, index))
            except IndexError:
                return _fault(FaultCode.PACKET_BOUNDS, executed)
        else:  # PUSHWORD+n
            if len(stack) >= max_stack:
                return _fault(FaultCode.STACK_OVERFLOW, executed)
            try:
                stack.append(get_word(packet, ins.push_index))  # type: ignore[arg-type]
            except IndexError:
                return _fault(FaultCode.PACKET_BOUNDS, executed)

        # --- binary operator ---
        op = ins.operator
        if op == BinaryOp.NOP:
            continue
        if level is not LanguageLevel.EXTENDED and op not in CLASSIC_OPERATORS:
            return _fault(FaultCode.BAD_INSTRUCTION, executed)
        if len(stack) < 2:
            return _fault(FaultCode.STACK_UNDERFLOW, executed)
        t1 = stack.pop()
        t2 = stack.pop()

        if op in _SHORT_CIRCUIT:
            result = t1 == t2
            terminate_when, returns = _SHORT_CIRCUIT[op]
            if result == terminate_when:
                return FilterResult(
                    accepted=returns,
                    instructions_executed=executed,
                    short_circuited=True,
                )
            if mode is ShortCircuitMode.PUSH_RESULT:
                stack.append(TRUE if result else FALSE)
        elif op in _COMPARISONS:
            stack.append(TRUE if _COMPARISONS[op](t2, t1) else FALSE)
        elif op in _BITWISE:
            stack.append(_BITWISE[op](t2, t1))
        elif op == BinaryOp.DIV:
            if t1 == 0:
                return _fault(FaultCode.DIVIDE_BY_ZERO, executed)
            stack.append(t2 // t1)
        else:  # remaining extension arithmetic
            stack.append(_ARITHMETIC[op](t2, t1))

    if not stack:
        return _fault(FaultCode.EMPTY_STACK, executed)
    return FilterResult(accepted=stack[-1] != 0, instructions_executed=executed)


def _evaluate_unchecked(
    program: FilterProgram,
    packet: bytes,
    mode: ShortCircuitMode,
) -> FilterResult:
    """Fast path: no stack/opcode checks (they were proven unnecessary
    at bind time); packet-bounds faults are still caught and reject."""
    stack: list[int] = []
    executed = 0
    push_on_continue = mode is ShortCircuitMode.PUSH_RESULT
    try:
        for ins in program.instructions:
            executed += 1
            action = ins.action_code

            if action >= 16:  # PUSHWORD+n — the common case, tested first
                stack.append(get_word(packet, action - 16))
            elif action == StackAction.NOPUSH:
                pass
            elif action == StackAction.PUSHLIT:
                stack.append(ins.literal)  # type: ignore[arg-type]
            elif action in (StackAction.PUSHIND, StackAction.PUSHBYTEIND):
                index = stack.pop()
                if action == StackAction.PUSHIND:
                    stack.append(get_word(packet, index))
                else:
                    stack.append(get_byte(packet, index))
            else:
                stack.append(CONSTANT_ACTIONS[StackAction(action)])

            op = ins.operator
            if op == BinaryOp.NOP:
                continue
            t1 = stack.pop()
            t2 = stack.pop()
            if op in _SHORT_CIRCUIT:
                result = t1 == t2
                terminate_when, returns = _SHORT_CIRCUIT[op]
                if result == terminate_when:
                    return FilterResult(
                        accepted=returns,
                        instructions_executed=executed,
                        short_circuited=True,
                    )
                if push_on_continue:
                    stack.append(TRUE if result else FALSE)
            elif op in _COMPARISONS:
                stack.append(TRUE if _COMPARISONS[op](t2, t1) else FALSE)
            elif op in _BITWISE:
                stack.append(_BITWISE[op](t2, t1))
            elif op == BinaryOp.DIV:
                if t1 == 0:
                    return _fault(FaultCode.DIVIDE_BY_ZERO, executed)
                stack.append(t2 // t1)
            else:
                stack.append(_ARITHMETIC[op](t2, t1))
    except IndexError:
        return _fault(FaultCode.PACKET_BOUNDS, executed)

    if not stack:
        return _fault(FaultCode.EMPTY_STACK, executed)
    return FilterResult(accepted=stack[-1] != 0, instructions_executed=executed)


def _fault(code: FaultCode, executed: int) -> FilterResult:
    return FilterResult(accepted=False, fault=code, instructions_executed=executed)
