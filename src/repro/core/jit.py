"""Filter-to-native compilation — the second section 7 improvement.

"Even more speed could be gained by compiling filters into machine code,
at the cost of greatly increased implementation complexity."

The Python stand-in for "machine code" is a generated Python function
compiled with :func:`compile`/``exec``.  Because the language has no
branches, the evaluation stack has a statically known shape at every
instruction (see :mod:`repro.core.validator`), so the compiler
*registerizes* the stack: every stack slot becomes a local variable, and
the interpreter's per-instruction dispatch, stack manipulation and
validity checks all disappear.  Short-circuit operators become early
``return`` statements, and the value they would push on the continue
path is a compile-time constant (COR/CNOR continue only when the
comparison was false; CAND/CNAND only when true), so it is constant-folded.

Semantic equivalence with :func:`repro.core.interpreter.evaluate` on the
accept/reject decision is enforced by property-based tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Callable

from .interpreter import LanguageLevel, ShortCircuitMode
from .ir import lower_program
from .irgen import emit_ir_body
from .program import FilterProgram
from .validator import ValidationReport, validate
from .words import get_byte, get_word

__all__ = ["CompiledFilter", "compile_filter", "emit_filter_body"]


@dataclass(frozen=True)
class CompiledFilter:
    """A filter program lowered to a Python function.

    ``accepts(packet)`` returns the same accept/reject decision the
    checked interpreter would (runtime faults reject).  ``source`` keeps
    the generated code for inspection and tests.
    """

    program: FilterProgram
    report: ValidationReport
    source: str
    _function: object

    def accepts(self, packet: bytes) -> bool:
        return self._function(packet)  # type: ignore[operator]

    def __call__(self, packet: bytes) -> bool:
        return self.accepts(packet)


def compile_filter(
    program: FilterProgram,
    *,
    mode: ShortCircuitMode = ShortCircuitMode.PUSH_RESULT,
    level: LanguageLevel = LanguageLevel.CLASSIC,
) -> CompiledFilter:
    """Validate ``program`` and lower it to a Python function.

    Raises :class:`repro.core.validator.ValidationError` for programs the
    kernel would refuse to bind — compilation implies validation, just as
    in the paper's sketch (both happen once, at ioctl time).

    Memoized on (program, mode, level): programs hash by value and the
    compiled artifact is immutable, so rebinding the same filter — or an
    ACL-scale set shared by several demultiplexers — pays one
    ``compile``/``exec`` total, not one per bind.
    """
    return _compile_filter_cached(program, mode, level)


@lru_cache(maxsize=16384)
def _compile_filter_cached(
    program: FilterProgram,
    mode: ShortCircuitMode,
    level: LanguageLevel,
) -> CompiledFilter:
    report = validate(program, level=level, mode=mode)
    source = _generate(program, report, mode)
    namespace = {"_get_word": get_word, "_get_byte": get_byte}
    exec(compile(source, f"<filter priority={program.priority}>", "exec"), namespace)
    return CompiledFilter(
        program=program,
        report=report,
        source=source,
        _function=namespace["_filter"],
    )


def emit_filter_body(
    program: FilterProgram,
    report: ValidationReport,
    mode: ShortCircuitMode,
    emit: Callable[[str], None],
    indent: str,
    *,
    terminate: Callable[[str], str],
    length_expr: str = "len(packet)",
    name_prefix: str = "t",
) -> None:
    """Lower ``program``'s instructions to Python statements.

    Shared between the single-filter JIT below and the fused filter-set
    compiler (:mod:`repro.core.fused`).  ``emit`` receives one generated
    line at a time; ``terminate(expr)`` must return a single statement
    (semicolons allowed) that ends evaluation with the truth value of
    ``expr`` — ``return {expr}`` for a standalone function, an
    assignment plus ``break`` for a body inlined into a dispatch chain.
    ``length_expr`` names an expression (or precomputed local) holding
    the packet length; ``name_prefix`` keeps temporaries of co-inlined
    filters from colliding.

    Since the IR middle-end landed this is a thin front door: the
    program is lowered to :class:`repro.core.ir.FilterIR` (which
    constant-folds and value-numbers on the way) and emitted by
    :func:`repro.core.irgen.emit_ir_body`.  The contract the old
    stack-walking emitter established is unchanged: one up-front
    length check covers every access provably reachable before an
    early-TRUE exit, and later/deeper accesses get their own inline
    checks at the exact execution point the interpreter would fault
    at (so "accept before touching the deep word" programs behave
    identically — hypothesis found this one).
    """
    fir = lower_program(program, report, mode)
    emit_ir_body(
        fir, emit, indent,
        terminate=terminate,
        length_expr=length_expr,
        name_prefix=name_prefix,
    )


def _generate(
    program: FilterProgram,
    report: ValidationReport,
    mode: ShortCircuitMode,
) -> str:
    lines = ["def _filter(packet):"]
    indent = "    "
    emit = lines.append

    guarded = report.needs_runtime_bounds_check or report.may_divide_by_zero
    if guarded:
        emit(f"{indent}try:")
        indent += "    "

    emit_filter_body(
        program, report, mode, emit, indent,
        terminate=lambda expr: f"return {expr}",
    )

    if guarded:
        emit("    except (IndexError, ZeroDivisionError):")
        emit("        return False")
    return "\n".join(lines) + "\n"
