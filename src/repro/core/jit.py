"""Filter-to-native compilation — the second section 7 improvement.

"Even more speed could be gained by compiling filters into machine code,
at the cost of greatly increased implementation complexity."

The Python stand-in for "machine code" is a generated Python function
compiled with :func:`compile`/``exec``.  Because the language has no
branches, the evaluation stack has a statically known shape at every
instruction (see :mod:`repro.core.validator`), so the compiler
*registerizes* the stack: every stack slot becomes a local variable, and
the interpreter's per-instruction dispatch, stack manipulation and
validity checks all disappear.  Short-circuit operators become early
``return`` statements, and the value they would push on the continue
path is a compile-time constant (COR/CNOR continue only when the
comparison was false; CAND/CNAND only when true), so it is constant-folded.

Semantic equivalence with :func:`repro.core.interpreter.evaluate` on the
accept/reject decision is enforced by property-based tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from .instructions import BinaryOp, StackAction
from .interpreter import LanguageLevel, ShortCircuitMode
from .program import FilterProgram
from .validator import ValidationReport, validate
from .words import get_byte, get_word

__all__ = ["CompiledFilter", "compile_filter", "emit_filter_body"]


@dataclass(frozen=True)
class CompiledFilter:
    """A filter program lowered to a Python function.

    ``accepts(packet)`` returns the same accept/reject decision the
    checked interpreter would (runtime faults reject).  ``source`` keeps
    the generated code for inspection and tests.
    """

    program: FilterProgram
    report: ValidationReport
    source: str
    _function: object

    def accepts(self, packet: bytes) -> bool:
        return self._function(packet)  # type: ignore[operator]

    def __call__(self, packet: bytes) -> bool:
        return self.accepts(packet)


_SC_TERMINATION = {
    # operator: (return value on termination, constant pushed on continue)
    BinaryOp.COR: ("True", 0),
    BinaryOp.CAND: ("False", 1),
    BinaryOp.CNOR: ("False", 0),
    BinaryOp.CNAND: ("True", 1),
}

_SC_CONDITION = {
    # COR/CNOR terminate when the comparison is TRUE; CAND/CNAND when FALSE.
    BinaryOp.COR: "==",
    BinaryOp.CNOR: "==",
    BinaryOp.CAND: "!=",
    BinaryOp.CNAND: "!=",
}

_COMPARE = {
    BinaryOp.EQ: "==",
    BinaryOp.NEQ: "!=",
    BinaryOp.LT: "<",
    BinaryOp.LE: "<=",
    BinaryOp.GT: ">",
    BinaryOp.GE: ">=",
}

_BITWISE = {BinaryOp.AND: "&", BinaryOp.OR: "|", BinaryOp.XOR: "^"}

_CONSTANTS = {
    StackAction.PUSHZERO: 0x0000,
    StackAction.PUSHONE: 0x0001,
    StackAction.PUSHFFFF: 0xFFFF,
    StackAction.PUSHFF00: 0xFF00,
    StackAction.PUSH00FF: 0x00FF,
}


def compile_filter(
    program: FilterProgram,
    *,
    mode: ShortCircuitMode = ShortCircuitMode.PUSH_RESULT,
    level: LanguageLevel = LanguageLevel.CLASSIC,
) -> CompiledFilter:
    """Validate ``program`` and lower it to a Python function.

    Raises :class:`repro.core.validator.ValidationError` for programs the
    kernel would refuse to bind — compilation implies validation, just as
    in the paper's sketch (both happen once, at ioctl time).
    """
    report = validate(program, level=level, mode=mode)
    source = _generate(program, report, mode)
    namespace = {"_get_word": get_word, "_get_byte": get_byte}
    exec(compile(source, f"<filter priority={program.priority}>", "exec"), namespace)
    return CompiledFilter(
        program=program,
        report=report,
        source=source,
        _function=namespace["_filter"],
    )


def emit_filter_body(
    program: FilterProgram,
    report: ValidationReport,
    mode: ShortCircuitMode,
    emit: Callable[[str], None],
    indent: str,
    *,
    terminate: Callable[[str], str],
    length_expr: str = "len(packet)",
    name_prefix: str = "t",
) -> None:
    """Lower ``program``'s instructions to Python statements.

    Shared between the single-filter JIT below and the fused filter-set
    compiler (:mod:`repro.core.fused`).  ``emit`` receives one generated
    line at a time; ``terminate(expr)`` must return a single statement
    (semicolons allowed) that ends evaluation with the truth value of
    ``expr`` — ``return {expr}`` for a standalone function, an
    assignment plus ``break`` for a body inlined into a dispatch chain.
    ``length_expr`` names an expression (or precomputed local) holding
    the packet length; ``name_prefix`` keeps temporaries of co-inlined
    filters from colliding.
    """
    # One up-front length check covers every access provably reachable
    # before an early-TRUE exit; later/deeper accesses get their own
    # inline checks at the exact execution point the interpreter would
    # fault at (so "accept before touching the deep word" programs
    # behave identically — hypothesis found this one).
    guaranteed = report.min_packet_bytes
    if guaranteed:
        emit(f"{indent}if {length_expr} < {guaranteed}: {terminate('False')}")

    stack: list[str] = []
    temp = 0

    def fresh() -> str:
        nonlocal temp
        temp += 1
        return f"{name_prefix}{temp}"

    def assign(expression: str) -> None:
        name = fresh()
        emit(f"{indent}{name} = {expression}")
        stack.append(name)

    for ins in program.instructions:
        action = ins.action_code

        if action == StackAction.NOPUSH:
            pass
        elif action == StackAction.PUSHLIT:
            stack.append(str(ins.literal))
        elif action in _CONSTANTS:
            stack.append(str(_CONSTANTS[StackAction(action)]))
        elif action == StackAction.PUSHIND:
            assign(f"_get_word(packet, {stack.pop()})")
        elif action == StackAction.PUSHBYTEIND:
            assign(f"_get_byte(packet, {stack.pop()})")
        else:  # PUSHWORD+n — open-coded big-endian load
            offset = 2 * ins.push_index  # type: ignore[operator]
            if offset + 1 > guaranteed:
                emit(
                    f"{indent}if {length_expr} < {offset + 1}: "
                    f"{terminate('False')}"
                )
                guaranteed = offset + 1
            if offset + 2 <= guaranteed:
                assign(f"(packet[{offset}] << 8) | packet[{offset + 1}]")
            else:
                # The word may be the zero-padded odd tail byte.
                assign(
                    f"(packet[{offset}] << 8) | "
                    f"(packet[{offset + 1}] if {length_expr} > {offset + 1} else 0)"
                )

        op = ins.operator
        if op == BinaryOp.NOP:
            continue
        t1 = stack.pop()
        t2 = stack.pop()

        if op in _SC_TERMINATION:
            returns, continue_constant = _SC_TERMINATION[op]
            emit(
                f"{indent}if {t1} {_SC_CONDITION[op]} {t2}: "
                f"{terminate(returns)}"
            )
            if mode is ShortCircuitMode.PUSH_RESULT:
                stack.append(str(continue_constant))
        elif op in _COMPARE:
            assign(f"1 if {t2} {_COMPARE[op]} {t1} else 0")
        elif op in _BITWISE:
            assign(f"{t2} {_BITWISE[op]} {t1}")
        elif op == BinaryOp.DIV:
            assign(f"{t2} // {t1}")
        elif op == BinaryOp.RSH:
            assign(f"{t2} >> min({t1}, 16)")
        elif op == BinaryOp.LSH:
            assign(f"({t2} << min({t1}, 16)) & 0xFFFF")
        else:  # ADD/SUB/MUL
            symbol = {BinaryOp.ADD: "+", BinaryOp.SUB: "-", BinaryOp.MUL: "*"}[op]
            assign(f"({t2} {symbol} {t1}) & 0xFFFF")

    emit(f"{indent}{terminate(f'{stack[-1]} != 0')}")


def _generate(
    program: FilterProgram,
    report: ValidationReport,
    mode: ShortCircuitMode,
) -> str:
    lines = ["def _filter(packet):"]
    indent = "    "
    emit = lines.append

    guarded = report.needs_runtime_bounds_check or report.may_divide_by_zero
    if guarded:
        emit(f"{indent}try:")
        indent += "    "

    emit_filter_body(
        program, report, mode, emit, indent,
        terminate=lambda expr: f"return {expr}",
    )

    if guarded:
        emit("    except (IndexError, ZeroDivisionError):")
        emit("        return False")
    return "\n".join(lines) + "\n"
