"""Instruction set and 16-bit encoding of the filter language (figure 3-6).

Each filter instruction is one 16-bit word with two fields::

        10 bits                 6 bits
    +------------------------+--------------+
    |    Binary Operator     | Stack Action |
    +------------------------+--------------+

followed, only when the stack action is ``PUSHLIT``, by one literal
constant word.  The paper gives these field widths (figure 3-6) but not
the numeric opcode assignments of the DEC/CMU implementation, so this
module defines and documents its own stable encoding:

* stack actions ``NOPUSH..PUSH00FF`` occupy action codes 0..6;
* ``PUSHWORD+n`` is action code ``16 + n`` for ``0 <= n <= 47``, which
  exactly fills the remainder of the 6-bit field — the same 48-word
  reach the historical 6-bit encodings had;
* binary operators are numbered 0..13 for the figure 3-6 set, with the
  section 7 extension arithmetic placed at 16+ (see
  :mod:`repro.core.extensions` for the semantics and the opt-in gate).

The instruction *execution order* is: the stack action runs first (it may
push one word), then the binary operator runs (it may pop two words and
push one).  This matches the paper's examples — ``PUSHLIT | EQ, 2`` pushes
the literal 2 and then compares it with the previously pushed word.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = [
    "StackAction",
    "BinaryOp",
    "PUSHWORD_BASE",
    "PUSHWORD_MAX_INDEX",
    "ACTION_FIELD_BITS",
    "OPERATOR_FIELD_BITS",
    "Instruction",
    "pushword",
    "encode_instruction_word",
    "decode_instruction_word",
    "EncodingError",
    "TRUE",
    "FALSE",
]

ACTION_FIELD_BITS = 6
OPERATOR_FIELD_BITS = 10
_ACTION_MASK = (1 << ACTION_FIELD_BITS) - 1

PUSHWORD_BASE = 16
"""Stack-action code of ``PUSHWORD+0``."""

PUSHWORD_MAX_INDEX = _ACTION_MASK - PUSHWORD_BASE
"""Largest packet word index addressable by ``PUSHWORD+n`` (47)."""

TRUE = 1
"""The word the language pushes for a true comparison."""

FALSE = 0
"""The word the language pushes for a false comparison."""


class StackAction(enum.IntEnum):
    """The stack-action field values of figure 3-6.

    ``PUSHWORD+n`` is not a member here — it is the open-ended family of
    action codes ``PUSHWORD_BASE + n``; see :func:`pushword` and
    :attr:`Instruction.push_index`.
    """

    NOPUSH = 0      #: no push; the instruction is pure binary operation
    PUSHLIT = 1     #: push the literal constant in the following word
    PUSHZERO = 2    #: push constant 0
    PUSHONE = 3     #: push constant 1
    PUSHFFFF = 4    #: push constant 0xFFFF
    PUSHFF00 = 5    #: push constant 0xFF00
    PUSH00FF = 6    #: push constant 0x00FF
    # --- section 7 extensions (LanguageLevel.EXTENDED only) ---
    PUSHIND = 7     #: pop a word index, push that packet word ("indirect push")
    PUSHBYTEIND = 8  #: pop a byte index, push that byte zero-extended
    # 9..15 reserved; 16..63 are PUSHWORD+n.


#: Stack actions that push a fixed constant, and the constant they push.
CONSTANT_ACTIONS: dict[StackAction, int] = {
    StackAction.PUSHZERO: 0x0000,
    StackAction.PUSHONE: 0x0001,
    StackAction.PUSHFFFF: 0xFFFF,
    StackAction.PUSHFF00: 0xFF00,
    StackAction.PUSH00FF: 0x00FF,
}


class BinaryOp(enum.IntEnum):
    """The binary-operator field values of figure 3-6 (plus extensions).

    All operators except ``NOP`` pop two words — the top of stack ``T1``
    and the word below it ``T2`` — and push one result ``R``.  Comparison
    operators compare ``T2 <op> T1`` and push 1/0.  Logical operators
    treat nonzero as true.  The four short-circuit operators evaluate
    ``R := (T1 == T2)`` and may terminate the whole program early.
    """

    NOP = 0     #: no effect on the stack
    EQ = 1      #: R := T2 == T1
    NEQ = 2     #: R := T2 != T1
    LT = 3      #: R := T2 <  T1
    LE = 4      #: R := T2 <= T1
    GT = 5      #: R := T2 >  T1
    GE = 6      #: R := T2 >= T1
    AND = 7     #: R := T2 & T1 (bitwise; doubles as logical AND)
    OR = 8      #: R := T2 | T1
    XOR = 9     #: R := T2 ^ T1
    COR = 10    #: R := T1 == T2; return TRUE now if R is true
    CAND = 11   #: R := T1 == T2; return FALSE now if R is false
    CNOR = 12   #: R := T1 == T2; return FALSE now if R is true
    CNAND = 13  #: R := T1 == T2; return TRUE now if R is false
    # --- section 7 extensions (LanguageLevel.EXTENDED only) ---
    ADD = 16    #: R := (T2 + T1) mod 2^16
    SUB = 17    #: R := (T2 - T1) mod 2^16
    MUL = 18    #: R := (T2 * T1) mod 2^16
    DIV = 19    #: R := T2 // T1 (T1 == 0 is a runtime fault)
    LSH = 20    #: R := (T2 << T1) mod 2^16
    RSH = 21    #: R := T2 >> T1


#: Operators in the original figure 3-6 language (LanguageLevel.CLASSIC).
CLASSIC_OPERATORS = frozenset(
    {
        BinaryOp.NOP,
        BinaryOp.EQ,
        BinaryOp.NEQ,
        BinaryOp.LT,
        BinaryOp.LE,
        BinaryOp.GT,
        BinaryOp.GE,
        BinaryOp.AND,
        BinaryOp.OR,
        BinaryOp.XOR,
        BinaryOp.COR,
        BinaryOp.CAND,
        BinaryOp.CNOR,
        BinaryOp.CNAND,
    }
)

#: The four short-circuit operators of figure 3-6.
SHORT_CIRCUIT_OPERATORS = frozenset(
    {BinaryOp.COR, BinaryOp.CAND, BinaryOp.CNOR, BinaryOp.CNAND}
)

#: Section 7 extension arithmetic (rejected at LanguageLevel.CLASSIC).
EXTENDED_OPERATORS = frozenset(
    {BinaryOp.ADD, BinaryOp.SUB, BinaryOp.MUL, BinaryOp.DIV,
     BinaryOp.LSH, BinaryOp.RSH}
)

#: Section 7 extension stack actions (rejected at LanguageLevel.CLASSIC).
EXTENDED_ACTIONS = frozenset(
    {StackAction.PUSHIND, StackAction.PUSHBYTEIND}
)


class EncodingError(ValueError):
    """An instruction or program cannot be encoded/decoded as 16-bit words."""


@dataclass(frozen=True)
class Instruction:
    """One decoded filter instruction.

    ``action_code`` is the raw 6-bit stack-action field; for
    ``PUSHWORD+n`` it is ``PUSHWORD_BASE + n``.  ``literal`` must be
    present exactly when the action is ``PUSHLIT``.
    """

    action_code: int
    operator: BinaryOp = BinaryOp.NOP
    literal: int | None = None

    def __post_init__(self) -> None:
        if not 0 <= self.action_code <= _ACTION_MASK:
            raise EncodingError(
                f"stack action code {self.action_code} outside 6-bit field"
            )
        if self.is_pushlit:
            if self.literal is None:
                raise EncodingError("PUSHLIT instruction requires a literal")
            if not 0 <= self.literal <= 0xFFFF:
                raise EncodingError(
                    f"literal {self.literal:#x} does not fit in 16 bits"
                )
        elif self.literal is not None:
            raise EncodingError(
                "literal given but stack action is not PUSHLIT"
            )

    # -- classification -------------------------------------------------

    @property
    def is_pushlit(self) -> bool:
        return self.action_code == StackAction.PUSHLIT

    @property
    def is_pushword(self) -> bool:
        return self.action_code >= PUSHWORD_BASE

    @property
    def push_index(self) -> int | None:
        """Packet word index pushed, for ``PUSHWORD+n``; else ``None``."""
        if self.is_pushword:
            return self.action_code - PUSHWORD_BASE
        return None

    @property
    def is_indirect(self) -> bool:
        """True for the extension indirect pushes (pop index, push field)."""
        return self.action_code in (StackAction.PUSHIND, StackAction.PUSHBYTEIND)

    @property
    def pushes(self) -> bool:
        """True when the stack action leaves one *new* word on the stack.

        Indirect pushes pop their index first, so their net stack effect
        is zero; this property reports the net growth contributed by the
        action (1 for plain pushes, 0 for NOPUSH and the indirect family).
        """
        return self.action_code != StackAction.NOPUSH and not self.is_indirect

    @property
    def pops(self) -> bool:
        """True when the binary operator pops two words (all but NOP)."""
        return self.operator != BinaryOp.NOP

    @property
    def encoded_length(self) -> int:
        """Number of 16-bit words this instruction occupies (1 or 2)."""
        return 2 if self.is_pushlit else 1

    # -- display ---------------------------------------------------------

    def action_name(self) -> str:
        if self.is_pushword:
            return f"PUSHWORD+{self.push_index}"
        return StackAction(self.action_code).name

    def __str__(self) -> str:
        parts = [self.action_name()]
        if self.operator != BinaryOp.NOP:
            parts.append(f"| {self.operator.name}")
        if self.literal is not None:
            parts.append(f", {self.literal}")
        return " ".join(parts)


def pushword(index: int) -> int:
    """Return the stack-action code for ``PUSHWORD+index``.

    Mirrors the C idiom ``ENF_PUSHWORD + n`` in the original header; kept
    as a function so the 6-bit field limit is enforced at build time.
    """
    if not 0 <= index <= PUSHWORD_MAX_INDEX:
        raise EncodingError(
            f"PUSHWORD index {index} outside 0..{PUSHWORD_MAX_INDEX}"
        )
    return PUSHWORD_BASE + index


def encode_instruction_word(instruction: Instruction) -> int:
    """Pack the action/operator fields into the 16-bit instruction word.

    The PUSHLIT literal, when present, is a *separate* following word and
    is handled by :meth:`repro.core.program.FilterProgram.encode`.
    """
    return (instruction.operator << ACTION_FIELD_BITS) | instruction.action_code


def decode_instruction_word(word: int, literal: int | None = None) -> Instruction:
    """Unpack a 16-bit instruction word (plus its literal, if PUSHLIT).

    Raises :class:`EncodingError` for operator codes outside the defined
    set — the interpreter treats such words as invalid instructions and
    rejects the packet, per section 4's runtime validity check.
    """
    if not 0 <= word <= 0xFFFF:
        raise EncodingError(f"instruction word {word:#x} is not 16 bits")
    action_code = word & _ACTION_MASK
    operator_code = word >> ACTION_FIELD_BITS
    try:
        operator = BinaryOp(operator_code)
    except ValueError as exc:
        raise EncodingError(f"unknown binary operator code {operator_code}") from exc
    if 8 < action_code < PUSHWORD_BASE:
        raise EncodingError(f"reserved stack action code {action_code}")
    if action_code != StackAction.PUSHLIT:
        literal = None
    return Instruction(action_code=action_code, operator=operator, literal=literal)
