"""The packet-filter pseudo-device driver (section 4).

"The packet filter is implemented in 4.3BSD Unix as a 'character
special device' driver.  Just as the Unix terminal driver is layered
above communications device drivers to provide a uniform abstraction,
the packet filter is layered above network interface device drivers.
As with any character device driver, it is called from user code via
open, close, read, write, and ioctl system calls.  The packet filter is
called from the network interface drivers upon receipt of packets not
destined for kernel-resident protocols."

This module is that driver, for the simulated kernel:

* ``Open("pf")`` allocates a port (a minor device);
* ``Ioctl`` implements the whole section 3.3 control surface
  (:class:`repro.core.ioctl.PFIoctl`);
* ``Read`` returns queued packets — one per call, or all of them when
  batching is enabled (figure 3-5) — blocking per the port's timeout
  policy;
* ``Write`` transmits a complete frame, data-link header included,
  returning "once the packet is queued for transmission";
* :meth:`PacketFilterDevice.packet_arrived` is the interrupt-side hook
  the kernel's NIC linkage calls; it runs the figure 4-1 demultiplexer
  and charges the cost model for exactly the work done (per-filter
  dispatch, per-instruction interpretation, per-packet bookkeeping,
  the 70 µs ``microtime`` when timestamping is on).
"""

from __future__ import annotations

from typing import Any

from ..sim.errors import DeviceBusy, InvalidArgument, WouldBlock
from ..sim.kernel import DeviceDriver, DeviceHandle, SimKernel, WaitQueue
from ..sim.process import Ioctl, Process, Read, Write
from .demux import PacketFilterDemux
from .ioctl import DataLinkInfo, PFIoctl, PortStatus
from .port import Port, ReadTimeoutPolicy
from .program import FilterProgram
from .validator import ValidationError

__all__ = ["PacketFilterDevice", "PacketFilterHandle"]


class PacketFilterDevice(DeviceDriver):
    """The driver: demultiplexer plus a table of open ports."""

    def __init__(self, host, *, max_ports: int = 64, **demux_options: Any) -> None:
        self.host = host
        self.kernel: SimKernel = host.kernel
        self.demux = PacketFilterDemux(**demux_options)
        self.max_ports = max_ports
        self._handles: dict[int, PacketFilterHandle] = {}  # port_id -> handle
        self._next_port_id = 0
        self.packets_processed = 0
        self.packets_accepted = 0

    # -- character-device entry points ------------------------------------

    def open(self, kernel: SimKernel, process: Process) -> "PacketFilterHandle":
        if len(self._handles) >= self.max_ports:
            raise DeviceBusy("all packet filter ports are in use")
        port = Port(self._next_port_id)
        self._next_port_id += 1
        handle = PacketFilterHandle(self, port, process)
        self._handles[port.port_id] = handle
        return handle

    def _release(self, handle: "PacketFilterHandle") -> None:
        if handle.attached:
            self.demux.detach(handle.port)
            handle.attached = False
        self._handles.pop(handle.port.port_id, None)

    # -- interrupt side -------------------------------------------------------

    def packet_arrived(self, nic, frame: bytes) -> bool:
        """NIC linkage hook: demultiplex one received frame.

        Returns True when some port accepted it (the kernel uses this
        to decide whether the frame went unclaimed).
        """
        self.packets_processed += 1
        report = self.demux.deliver(frame, timestamp=self.kernel.scheduler.now)

        costs = self.kernel.costs
        self.kernel.stats.filter_predicates += report.predicates_tested
        self.kernel.stats.filter_instructions += report.instructions_executed
        charge = costs.pf_fixed + costs.filter_cost(
            report.predicates_tested, report.instructions_executed
        )
        for port_id in report.accepted_by:
            if self._handles[port_id].port.timestamping:
                charge += costs.microtime
        self.kernel.charge(charge)

        if not report.accepted:
            return False
        self.packets_accepted += 1
        for port_id in report.accepted_by:
            handle = self._handles[port_id]
            handle.readers.wake_all()
            if handle.port.signal is not None:
                self.kernel.post_signal(handle.owner, handle.port.signal)
        self.kernel.readiness_changed()
        return True

    def packets_arrived(self, nic, frames: list[bytes]) -> list[bool]:
        """Batched NIC linkage hook: demultiplex a burst in one call.

        Per-packet delivery semantics match ``len(frames)`` calls of
        :meth:`packet_arrived`, but the fixed dispatch overhead
        (``pf_fixed``) is charged once for the burst and reader wakeups,
        signals and select() readiness are coalesced to one notification
        per port — the section 6.4 batching argument applied to the
        receive path.  Returns one accepted-flag per frame.
        """
        if not frames:
            return []
        self.packets_processed += len(frames)
        now = self.kernel.scheduler.now
        reports = self.demux.deliver_batch(frames, timestamp=now)

        costs = self.kernel.costs
        charge = costs.pf_fixed
        notify: dict[int, "PacketFilterHandle"] = {}
        accepted_flags: list[bool] = []
        for report in reports:
            self.kernel.stats.filter_predicates += report.predicates_tested
            self.kernel.stats.filter_instructions += (
                report.instructions_executed
            )
            charge += costs.filter_cost(
                report.predicates_tested, report.instructions_executed
            )
            for port_id in report.accepted_by:
                handle = self._handles[port_id]
                if handle.port.timestamping:
                    charge += costs.microtime
                notify[port_id] = handle
            if report.accepted:
                self.packets_accepted += 1
            accepted_flags.append(report.accepted)
        self.kernel.charge(charge)

        for handle in notify.values():
            handle.readers.wake_all()
            if handle.port.signal is not None:
                self.kernel.post_signal(handle.owner, handle.port.signal)
        if notify:
            self.kernel.readiness_changed()
        return accepted_flags


class PacketFilterHandle(DeviceHandle):
    """One open packet-filter port."""

    def __init__(
        self, device: PacketFilterDevice, port: Port, owner: Process
    ) -> None:
        self.device = device
        self.port = port
        self.owner = owner
        self.attached = False      # bound into the demux?
        self.write_batching = False
        self.readers = WaitQueue(device.kernel)

    # -- read --------------------------------------------------------------

    def read(self, process: Process, call: Read) -> None:
        kernel = self.device.kernel
        if self.port.readable():
            limit = None if self.port.batching else 1
            if call.size is not None:
                limit = call.size if limit is None else min(limit, call.size)
            batch = self.port.read_packets(limit)
            for packet in batch:
                kernel.charge_copy(len(packet.data))
            kernel.complete(process, batch)
            return
        policy = self.port.read_policy
        if not policy.blocking:
            kernel.fail(process, WouldBlock("no packets queued"))
            return
        self.readers.block(
            process,
            lambda proc: self.read(proc, call),
            timeout=policy.timeout,
        )

    def poll_readable(self) -> bool:
        return self.port.readable()

    # -- write ----------------------------------------------------------------

    def write(self, process: Process, call: Write) -> None:
        kernel = self.device.kernel
        frames = call.data
        if isinstance(frames, (bytes, bytearray)):
            frames = (bytes(frames),)
        elif not self.write_batching:
            kernel.fail(
                process,
                InvalidArgument(
                    "multiple frames per write need SETWRITEBATCH"
                ),
            )
            return

        link = self.device.host.link
        total = 0
        for frame in frames:
            if len(frame) < link.header_length:
                kernel.fail(
                    process,
                    InvalidArgument(
                        "frame must include the data-link header"
                    ),
                )
                return
            if len(frame) > link.max_frame_bytes:
                kernel.fail(
                    process,
                    InvalidArgument(f"frame exceeds {link.name} maximum"),
                )
                return
        for frame in frames:
            kernel.charge(kernel.costs.pf_send_fixed)
            kernel.charge_copy(len(frame))
            kernel.network_output(self.device.host.nic, frame)
            total += len(frame)
        # "control returns to the user once the packet is queued for
        # transmission" — no blocking, no delivery guarantee.
        kernel.complete(process, total)

    # -- ioctl -------------------------------------------------------------------

    def ioctl(self, process: Process, call: Ioctl) -> None:
        kernel = self.device.kernel
        command, argument = call.command, call.argument
        result: Any = None

        if command == PFIoctl.SETFILTER:
            if not isinstance(argument, FilterProgram):
                raise InvalidArgument("SETFILTER needs a FilterProgram")
            if self.attached:
                self.device.demux.detach(self.port)
                self.attached = False
            previous = self.port.program
            self.port.bind_filter(argument)
            try:
                self.device.demux.attach(self.port)
            except ValidationError as exc:
                # Bad programs are an ioctl error, never a packet-time
                # surprise; the old filter (if any) stays unbound.
                self.port.bind_filter(previous)
                raise InvalidArgument(f"filter rejected: {exc}") from exc
            self.attached = True
            kernel.charge(kernel.costs.filter_bind)
        elif command == PFIoctl.SETTIMEOUT:
            if not isinstance(argument, ReadTimeoutPolicy):
                raise InvalidArgument("SETTIMEOUT needs a ReadTimeoutPolicy")
            self.port.read_policy = argument
        elif command == PFIoctl.SETSIGNAL:
            self.port.signal = argument
        elif command == PFIoctl.SETQUEUELEN:
            self.port.set_queue_limit(int(argument))
        elif command == PFIoctl.SETTIMESTAMP:
            self.port.timestamping = bool(argument)
        elif command == PFIoctl.SETCOPYALL:
            changed = self.port.copy_all != bool(argument)
            self.port.copy_all = bool(argument)
            if changed and self.attached:
                # The fused program and flow cache bake the copy-all
                # continuation in at bind time — re-derive them.
                self.device.demux.invalidate()
        elif command == PFIoctl.SETBATCH:
            self.port.batching = bool(argument)
        elif command == PFIoctl.SETWRITEBATCH:
            self.write_batching = bool(argument)
        elif command == PFIoctl.FLUSH:
            result = self.port.flush()
        elif command == PFIoctl.GETINFO:
            link = self.device.host.link
            result = DataLinkInfo(
                datalink_type=link.name,
                address_length=link.address_length,
                header_length=link.header_length,
                max_packet_bytes=link.max_frame_bytes,
                local_address=self.device.host.address,
                broadcast_address=link.broadcast,
            )
        elif command == PFIoctl.GETSTATS:
            result = PortStatus(
                queued=self.port.queued,
                accepted=self.port.stats.accepted,
                delivered=self.port.stats.delivered,
                dropped_queue_overflow=self.port.stats.dropped_overflow,
                dropped_interface=self.device.host.nic.frames_dropped,
                dropped_resize=self.port.stats.dropped_resize,
            )
        else:
            raise InvalidArgument(f"unknown packet-filter ioctl {command!r}")

        kernel.complete(process, result)

    # -- close ----------------------------------------------------------------------

    def close(self, process: Process) -> None:
        self.device._release(self)
