"""The packet-filter pseudo-device driver (section 4).

"The packet filter is implemented in 4.3BSD Unix as a 'character
special device' driver.  Just as the Unix terminal driver is layered
above communications device drivers to provide a uniform abstraction,
the packet filter is layered above network interface device drivers.
As with any character device driver, it is called from user code via
open, close, read, write, and ioctl system calls.  The packet filter is
called from the network interface drivers upon receipt of packets not
destined for kernel-resident protocols."

This module is that driver, for the simulated kernel:

* ``Open("pf")`` allocates a port (a minor device);
* ``Ioctl`` implements the whole section 3.3 control surface
  (:class:`repro.core.ioctl.PFIoctl`);
* ``Read`` returns queued packets — one per call, or all of them when
  batching is enabled (figure 3-5) — blocking per the port's timeout
  policy;
* ``Write`` transmits a complete frame, data-link header included,
  returning "once the packet is queued for transmission";
* :meth:`PacketFilterDevice.packet_arrived` is the interrupt-side hook
  the kernel's NIC linkage calls; it runs the figure 4-1 demultiplexer
  and charges the cost model for exactly the work done (per-filter
  dispatch, per-instruction interpretation, per-packet bookkeeping,
  the 70 µs ``microtime`` when timestamping is on).
"""

from __future__ import annotations

from typing import Any

from ..sim.errors import (
    BadFileDescriptor,
    DeviceBusy,
    InvalidArgument,
    WouldBlock,
)
from ..sim.kernel import DeviceDriver, DeviceHandle, SimKernel, WaitQueue
from ..sim.ledger import (
    Primitive,
    STAGE_COPY_OUT,
    STAGE_DEQUEUE,
    STAGE_ENQUEUE,
    STAGE_FILTER_EVAL,
    STAGE_SYSCALL_RETURN,
    STAGE_WAKEUP,
)
from ..sim.process import Ioctl, Process, Read, Write
from .demux import Engine, PacketFilterDemux
from .ioctl import DataLinkInfo, PFIoctl, PortStatus
from .port import Port, ReadTimeoutPolicy
from .program import FilterProgram
from .validator import ValidationError

__all__ = ["PacketFilterDevice", "PacketFilterHandle"]


def cache_gauge(demux: PacketFilterDemux, field: str):
    """A gauge reading one flow-cache statistic, robust to the cache
    being rebuilt (SETCOPYALL, attach churn) or turned off after
    publication."""

    def read() -> float:
        cache = demux.flow_cache
        return 0.0 if cache is None else float(getattr(cache, field))

    return read


def ir_gauge(demux: PacketFilterDemux, field: str):
    """A gauge reading one IR-compiler statistic; 0 until the first
    attach compiles the set (stats appear lazily)."""

    def read() -> float:
        stats = demux.ir_stats
        return 0.0 if stats is None else float(getattr(stats, field))

    return read


class PacketFilterDevice(DeviceDriver):
    """The driver: demultiplexer plus a table of open ports."""

    def __init__(self, host, *, max_ports: int = 64, **demux_options: Any) -> None:
        self.host = host
        self.kernel: SimKernel = host.kernel
        self.demux = PacketFilterDemux(**demux_options)
        self.max_ports = max_ports
        self._handles: dict[int, PacketFilterHandle] = {}  # port_id -> handle
        self._next_port_id = 0
        self.packets_processed = 0
        self.packets_accepted = 0
        self.packets_delivered = 0         #: packets handed to readers
        self.packets_dropped_overflow = 0  #: port-queue overflow drops
        register = getattr(self.kernel, "register_rx_classifier", None)
        if register is not None:
            register(self._admission_full)
        publish = getattr(self.kernel, "publish_gauges", None)
        if publish is not None:
            # Device-wide delivery/overflow counters: what the
            # receive-livelock watchdog computes its rates from.
            publish(
                "pf.",
                {
                    "delivered": lambda: self.packets_delivered,
                    "drop_overflow": lambda: self.packets_dropped_overflow,
                },
                unit="packets",
            )
            cache = self.demux.flow_cache
            if cache is not None:
                publish(
                    "pf.flowcache.",
                    {
                        "hit_rate": cache_gauge(self.demux, "hit_rate"),
                        "hits": cache_gauge(self.demux, "hits"),
                        "misses": cache_gauge(self.demux, "misses"),
                        "invalidations": cache_gauge(
                            self.demux, "invalidations"
                        ),
                    },
                    unit="",
                )
            if self.demux.engine is Engine.IR:
                publish(
                    "pf.ir.",
                    {
                        "nodes_before_cse": ir_gauge(
                            self.demux, "nodes_before_cse"
                        ),
                        "nodes_after_cse": ir_gauge(
                            self.demux, "nodes_after_cse"
                        ),
                        "dispatch_depth": ir_gauge(
                            self.demux, "dispatch_depth"
                        ),
                    },
                    unit="nodes",
                )

    def _admission_full(self, frame: bytes) -> bool:
        """Early-shed query for the kernel's admission control: does
        this frame's *cached* classification say every target port is
        already full (queue limit or pool share)?

        Unknown — no flow cache, a miss, or a cached no-match (the
        frame might still belong to a kernel-resident protocol) — is
        False: the kernel never sheds blind.
        """
        targets = self.demux.cached_targets(frame)
        if not targets:
            return False
        for port in targets:
            if port.queued < port.queue_limit and not (
                port.pool is not None and port.pool.at_share(port.pool_owner)
            ):
                return False
        return True

    # -- character-device entry points ------------------------------------

    def open(self, kernel: SimKernel, process: Process) -> "PacketFilterHandle":
        if len(self._handles) >= self.max_ports:
            raise DeviceBusy("all packet filter ports are in use")
        port = Port(self._next_port_id)
        port.on_drop = self._port_drop
        port.pool = getattr(kernel, "buffer_pool", None)
        self._next_port_id += 1
        handle = PacketFilterHandle(self, port, process)
        self._handles[port.port_id] = handle
        publish = getattr(kernel, "publish_gauges", None)
        if publish is not None:
            publish(
                f"pf.port{port.port_id}.",
                port.telemetry_gauges(),
                unit="packets",
            )
        return handle

    def _release(self, handle: "PacketFilterHandle") -> None:
        """Tear one port down — close, process exit, or kill.

        Crash-safety happens here: detach the filter so the demux stops
        delivering, return every queued buffer to the shared pool, close
        the pending packets' ledger spans, and error out any reader
        still blocked on the port so a peer process can't wedge forever
        on a dead consumer's queue.
        """
        if handle.attached:
            self.demux.detach(handle.port)
            handle.attached = False
        pending = handle.port.teardown()
        ledger = self.kernel.ledger
        if ledger is not None:
            now = self.kernel.scheduler.now
            for packet in pending:
                if packet.packet_id is not None:
                    ledger.close_packet(packet.packet_id, "closed_port", now)
        self._handles.pop(handle.port.port_id, None)
        retract = getattr(self.kernel, "retract_gauges", None)
        if retract is not None:
            retract(f"pf.port{handle.port.port_id}.")
        handle.readers.fail_all(
            BadFileDescriptor(f"packet-filter port {handle.port.port_id} closed")
        )

    def _port_drop(self, packet, reason: str) -> None:
        """Port callback: a queued packet was discarded administratively
        (queue-limit shrink or FLUSH) — account the drop and close its
        span."""
        if reason == "resize":
            primitive, outcome = Primitive.DROP_RESIZE, "dropped_resize"
        else:
            primitive, outcome = Primitive.DROP_FLUSH, "flushed"
        self.kernel.account(
            primitive, component="pf", packet_id=packet.packet_id
        )
        ledger = self.kernel.ledger
        if ledger is not None and packet.packet_id is not None:
            ledger.close_packet(
                packet.packet_id, outcome, self.kernel.scheduler.now
            )

    # -- interrupt side -------------------------------------------------------

    def packet_arrived(
        self, nic, frame: bytes, packet_id: int | None = None
    ) -> bool:
        """NIC linkage hook: demultiplex one received frame.

        Returns True when some port accepted it (the kernel uses this
        to decide whether the frame went unclaimed).
        """
        self.packets_processed += 1
        kernel = self.kernel
        ledger = kernel.ledger
        now = kernel.scheduler.now
        report = self.demux.deliver(frame, timestamp=now, packet_id=packet_id)

        costs = kernel.costs
        kernel.account(
            Primitive.PF_FIXED, costs.pf_fixed, component="pf",
            packet_id=packet_id,
        )
        if report.predicates_tested:
            kernel.account(
                Primitive.FILTER_PREDICATE,
                costs.filter_cost(report.predicates_tested, 0),
                quantity=report.predicates_tested,
                component="pf",
                packet_id=packet_id,
            )
        if report.instructions_executed:
            kernel.account(
                Primitive.FILTER_INSTRUCTION,
                costs.filter_cost(0, report.instructions_executed),
                quantity=report.instructions_executed,
                component="pf",
                packet_id=packet_id,
            )
        if ledger is not None and packet_id is not None:
            ledger.stage(packet_id, STAGE_FILTER_EVAL, now)
        for port_id in report.accepted_by:
            if self._handles[port_id].port.timestamping:
                kernel.account(
                    Primitive.MICROTIME, costs.microtime, component="pf",
                    packet_id=packet_id,
                )
        if ledger is not None and packet_id is not None:
            if report.accepted_by:
                ledger.stage(packet_id, STAGE_ENQUEUE, now)
        self.packets_dropped_overflow += len(report.dropped_by)
        for port_id in report.dropped_by:
            kernel.account(
                Primitive.DROP_OVERFLOW, component="pf",
                packet_id=packet_id, flow=port_id,
            )
        for port_id in report.nobuf_by:
            kernel.account(
                Primitive.DROP_NOBUF, component="pf",
                packet_id=packet_id, flow=port_id,
            )
        if (
            ledger is not None
            and packet_id is not None
            and (report.dropped_by or report.nobuf_by)
            and not report.accepted_by
        ):
            outcome = (
                "dropped_overflow" if report.dropped_by else "dropped_nobuf"
            )
            ledger.close_packet(packet_id, outcome, now)

        if not report.accepted:
            return False
        self.packets_accepted += 1
        woke = False
        for port_id in report.accepted_by:
            handle = self._handles[port_id]
            if len(handle.readers):
                woke = True
            handle.readers.wake_all()
            if handle.port.signal is not None:
                kernel.post_signal(handle.owner, handle.port.signal)
        if woke and ledger is not None and packet_id is not None:
            ledger.stage(packet_id, STAGE_WAKEUP, kernel.scheduler.now)
        kernel.readiness_changed()
        return True

    def packets_arrived(
        self,
        nic,
        frames: list[bytes],
        packet_ids: list[int | None] | None = None,
    ) -> list[bool]:
        """Batched NIC linkage hook: demultiplex a burst in one call.

        Per-packet delivery semantics match ``len(frames)`` calls of
        :meth:`packet_arrived`, but the fixed dispatch overhead
        (``pf_fixed``) is charged once for the burst and reader wakeups,
        signals and select() readiness are coalesced to one notification
        per port — the section 6.4 batching argument applied to the
        receive path.  Returns one accepted-flag per frame.
        """
        if not frames:
            return []
        self.packets_processed += len(frames)
        kernel = self.kernel
        ledger = kernel.ledger
        now = kernel.scheduler.now
        if packet_ids is None:
            packet_ids = [None] * len(frames)
        reports = self.demux.deliver_batch(
            frames, timestamp=now, packet_ids=packet_ids
        )

        costs = kernel.costs
        kernel.account(Primitive.PF_FIXED, costs.pf_fixed, component="pf")
        notify: dict[int, "PacketFilterHandle"] = {}
        accepted_flags: list[bool] = []
        for report, pid in zip(reports, packet_ids):
            if report.predicates_tested:
                kernel.account(
                    Primitive.FILTER_PREDICATE,
                    costs.filter_cost(report.predicates_tested, 0),
                    quantity=report.predicates_tested,
                    component="pf",
                    packet_id=pid,
                )
            if report.instructions_executed:
                kernel.account(
                    Primitive.FILTER_INSTRUCTION,
                    costs.filter_cost(0, report.instructions_executed),
                    quantity=report.instructions_executed,
                    component="pf",
                    packet_id=pid,
                )
            if ledger is not None and pid is not None:
                ledger.stage(pid, STAGE_FILTER_EVAL, now)
            for port_id in report.accepted_by:
                handle = self._handles[port_id]
                if handle.port.timestamping:
                    kernel.account(
                        Primitive.MICROTIME, costs.microtime,
                        component="pf", packet_id=pid,
                    )
                notify[port_id] = handle
            if ledger is not None and pid is not None and report.accepted_by:
                ledger.stage(pid, STAGE_ENQUEUE, now)
            self.packets_dropped_overflow += len(report.dropped_by)
            for port_id in report.dropped_by:
                kernel.account(
                    Primitive.DROP_OVERFLOW, component="pf",
                    packet_id=pid, flow=port_id,
                )
            for port_id in report.nobuf_by:
                kernel.account(
                    Primitive.DROP_NOBUF, component="pf",
                    packet_id=pid, flow=port_id,
                )
            if (
                ledger is not None
                and pid is not None
                and (report.dropped_by or report.nobuf_by)
                and not report.accepted_by
            ):
                outcome = (
                    "dropped_overflow" if report.dropped_by else "dropped_nobuf"
                )
                ledger.close_packet(pid, outcome, now)
            if report.accepted:
                self.packets_accepted += 1
            accepted_flags.append(report.accepted)

        woken_ports: set[int] = set()
        for port_id, handle in notify.items():
            if len(handle.readers):
                woken_ports.add(port_id)
            handle.readers.wake_all()
            if handle.port.signal is not None:
                kernel.post_signal(handle.owner, handle.port.signal)
        if ledger is not None and woken_ports:
            wake_at = kernel.scheduler.now
            for report, pid in zip(reports, packet_ids):
                if pid is not None and any(
                    port_id in woken_ports for port_id in report.accepted_by
                ):
                    ledger.stage(pid, STAGE_WAKEUP, wake_at)
        if notify:
            kernel.readiness_changed()
        return accepted_flags


class PacketFilterHandle(DeviceHandle):
    """One open packet-filter port."""

    def __init__(
        self, device: PacketFilterDevice, port: Port, owner: Process
    ) -> None:
        self.device = device
        self.port = port
        self.owner = owner
        self.attached = False      # bound into the demux?
        self.write_batching = False
        self.readers = WaitQueue(device.kernel, component="pf")

    # -- read --------------------------------------------------------------

    def read(self, process: Process, call: Read) -> None:
        kernel = self.device.kernel
        if self.port.readable():
            limit = None if self.port.batching else 1
            if call.size is not None:
                limit = call.size if limit is None else min(limit, call.size)
            batch = self.port.read_packets(limit)
            self.device.packets_delivered += len(batch)
            ledger = kernel.ledger
            now = kernel.scheduler.now
            for packet in batch:
                if ledger is not None and packet.packet_id is not None:
                    ledger.stage(packet.packet_id, STAGE_DEQUEUE, now)
                copy_done = kernel.charge_copy(
                    len(packet.data), component="pf",
                    packet_id=packet.packet_id,
                )
                if ledger is not None and packet.packet_id is not None:
                    ledger.stage(packet.packet_id, STAGE_COPY_OUT, copy_done)
            kernel.complete(process, batch)
            if ledger is not None:
                done_at = kernel.cpu_available_at
                for packet in batch:
                    if packet.packet_id is not None:
                        ledger.stage(
                            packet.packet_id, STAGE_SYSCALL_RETURN, done_at
                        )
                        ledger.close_packet(
                            packet.packet_id, "delivered", done_at
                        )
            return
        policy = self.port.read_policy
        if not policy.blocking:
            kernel.fail(process, WouldBlock("no packets queued"))
            return
        self.readers.block(
            process,
            lambda proc: self.read(proc, call),
            timeout=policy.timeout,
        )

    def poll_readable(self) -> bool:
        return self.port.readable()

    # -- write ----------------------------------------------------------------

    def write(self, process: Process, call: Write) -> None:
        kernel = self.device.kernel
        frames = call.data
        if isinstance(frames, (bytes, bytearray)):
            frames = (bytes(frames),)
        elif not self.write_batching:
            kernel.fail(
                process,
                InvalidArgument(
                    "multiple frames per write need SETWRITEBATCH"
                ),
            )
            return

        link = self.device.host.link
        total = 0
        for frame in frames:
            if len(frame) < link.header_length:
                kernel.fail(
                    process,
                    InvalidArgument(
                        "frame must include the data-link header"
                    ),
                )
                return
            if len(frame) > link.max_frame_bytes:
                kernel.fail(
                    process,
                    InvalidArgument(f"frame exceeds {link.name} maximum"),
                )
                return
        for frame in frames:
            kernel.account(
                Primitive.PF_SEND_FIXED,
                kernel.costs.pf_send_fixed,
                component="pf",
            )
            kernel.charge_copy(len(frame), component="pf")
            kernel.network_output(self.device.host.nic, frame)
            total += len(frame)
        # "control returns to the user once the packet is queued for
        # transmission" — no blocking, no delivery guarantee.
        kernel.complete(process, total)

    # -- ioctl -------------------------------------------------------------------

    def ioctl(self, process: Process, call: Ioctl) -> None:
        kernel = self.device.kernel
        command, argument = call.command, call.argument
        result: Any = None

        if command == PFIoctl.SETFILTER:
            if not isinstance(argument, FilterProgram):
                raise InvalidArgument("SETFILTER needs a FilterProgram")
            if self.attached:
                self.device.demux.detach(self.port)
                self.attached = False
            previous = self.port.program
            self.port.bind_filter(argument)
            try:
                self.device.demux.attach(self.port)
            except ValidationError as exc:
                # Bad programs are an ioctl error, never a packet-time
                # surprise; the old filter (if any) stays unbound.
                self.port.bind_filter(previous)
                raise InvalidArgument(f"filter rejected: {exc}") from exc
            self.attached = True
            kernel.account(
                Primitive.FILTER_BIND, kernel.costs.filter_bind,
                component="pf",
            )
        elif command == PFIoctl.SETTIMEOUT:
            if not isinstance(argument, ReadTimeoutPolicy):
                raise InvalidArgument("SETTIMEOUT needs a ReadTimeoutPolicy")
            self.port.read_policy = argument
        elif command == PFIoctl.SETSIGNAL:
            self.port.signal = argument
        elif command == PFIoctl.SETQUEUELEN:
            # Validate here, not in Port: a Port ValueError is a Python
            # exception, and anything but a SimError out of an ioctl
            # would crash the event loop instead of erroring the caller.
            try:
                limit = int(argument)
            except (TypeError, ValueError):
                raise InvalidArgument(
                    f"SETQUEUELEN needs an integer, got {argument!r}"
                ) from None
            if limit < 1:
                raise InvalidArgument(
                    f"queue limit must be at least 1, got {limit}"
                )
            self.port.set_queue_limit(limit)
        elif command == PFIoctl.SETTIMESTAMP:
            self.port.timestamping = bool(argument)
        elif command == PFIoctl.SETCOPYALL:
            changed = self.port.copy_all != bool(argument)
            self.port.copy_all = bool(argument)
            if changed and self.attached:
                # The fused program and flow cache bake the copy-all
                # continuation in at bind time — re-derive them.
                self.device.demux.invalidate()
        elif command == PFIoctl.SETBATCH:
            self.port.batching = bool(argument)
        elif command == PFIoctl.SETWRITEBATCH:
            self.write_batching = bool(argument)
        elif command == PFIoctl.FLUSH:
            result = self.port.flush()
        elif command == PFIoctl.GETINFO:
            link = self.device.host.link
            result = DataLinkInfo(
                datalink_type=link.name,
                address_length=link.address_length,
                header_length=link.header_length,
                max_packet_bytes=link.max_frame_bytes,
                local_address=self.device.host.address,
                broadcast_address=link.broadcast,
            )
        elif command == PFIoctl.GETSTATS:
            result = PortStatus(
                queued=self.port.queued,
                accepted=self.port.stats.accepted,
                delivered=self.port.stats.delivered,
                dropped_queue_overflow=self.port.stats.dropped_overflow,
                dropped_interface=self.device.host.nic.frames_dropped,
                dropped_resize=self.port.stats.dropped_resize,
                dropped_nobuf=self.port.stats.dropped_nobuf,
            )
        else:
            raise InvalidArgument(f"unknown packet-filter ioctl {command!r}")

        kernel.complete(process, result)

    # -- close ----------------------------------------------------------------------

    def close(self, process: Process) -> None:
        self.device._release(self)
