"""Filter programs: priority + instruction array, and their wire encoding.

A *filter* is "a data structure including an array of 16-bit words"
(section 3.1) bound to a port by ``ioctl``; this module is that data
structure.  The wire form mirrors the ``struct enfilter`` of the paper's
figures 3-8/3-9: a priority word, a length word (in 16-bit words,
counting PUSHLIT literal words), then the instruction words themselves.

Programs contain no branches, so their static structure is fully
analyzable — :mod:`repro.core.validator` exploits that (a section 7
improvement), and :meth:`FilterProgram.words_examined` lets the
demultiplexer know how deep into a packet a filter can look.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import Iterable, Iterator

from .instructions import (
    BinaryOp,
    EncodingError,
    Instruction,
    StackAction,
    decode_instruction_word,
    encode_instruction_word,
    pushword,
)

__all__ = ["FilterProgram", "DEFAULT_PRIORITY", "MAX_PRIORITY", "asm"]

DEFAULT_PRIORITY = 0
MAX_PRIORITY = 255
"""Priorities are small non-negative integers; higher is applied first."""


def asm(*items: int | str | tuple) -> list[Instruction]:
    """Tiny assembler for writing programs the way the paper's figures do.

    Accepts a flat sequence shaped like the C initializers in figures
    3-8/3-9, e.g.::

        asm(
            ("PUSHWORD", 1), ("PUSHLIT", "EQ", 2),   # packet type == PUP
            ("PUSHWORD", 3), ("PUSH00FF", "AND"),    # mask low byte
            ("PUSHZERO", "GT"),
        )

    Each tuple is ``(action[, operator][, literal])`` where action is a
    :class:`StackAction` name or ``("PUSHWORD", n)``; a bare string is an
    action or operator-only instruction (``"AND"`` means ``NOPUSH | AND``).
    Exists mostly for tests and examples; real clients use
    :class:`repro.core.compiler.FilterBuilder`.
    """
    out: list[Instruction] = []
    for item in items:
        if isinstance(item, str):
            item = (item,)
        if not isinstance(item, tuple):
            raise EncodingError(f"asm item {item!r} must be a str or tuple")
        parts = list(item)
        head = parts.pop(0)
        if head == "PUSHWORD":
            action_code = pushword(int(parts.pop(0)))
        elif head in StackAction.__members__:
            action_code = int(StackAction[head])
        elif head in BinaryOp.__members__:
            action_code = int(StackAction.NOPUSH)
            parts.insert(0, head)
        else:
            raise EncodingError(f"unknown asm mnemonic {head!r}")
        operator = BinaryOp.NOP
        if parts and isinstance(parts[0], str):
            operator = BinaryOp[parts.pop(0)]
        literal = None
        if parts:
            literal = int(parts.pop(0))
        if parts:
            raise EncodingError(f"trailing asm operands in {item!r}")
        out.append(Instruction(action_code, operator, literal))
    return out


@dataclass(frozen=True)
class FilterProgram:
    """An immutable filter: a priority and a sequence of instructions.

    Instances compare and hash by value, so demultiplexer bookkeeping and
    decision-table construction can use programs as dictionary keys.
    """

    instructions: tuple[Instruction, ...]
    priority: int = DEFAULT_PRIORITY

    def __init__(
        self,
        instructions: Iterable[Instruction],
        priority: int = DEFAULT_PRIORITY,
    ) -> None:
        instructions = tuple(instructions)
        if not 0 <= priority <= MAX_PRIORITY:
            raise EncodingError(
                f"priority {priority} outside 0..{MAX_PRIORITY}"
            )
        object.__setattr__(self, "instructions", instructions)
        object.__setattr__(self, "priority", priority)

    # -- structural properties -------------------------------------------

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    @property
    def encoded_length(self) -> int:
        """Length in 16-bit words of the instruction stream (the paper's
        ``struct enfilter`` length field counts literal words too)."""
        return sum(ins.encoded_length for ins in self.instructions)

    def words_examined(self) -> int:
        """1 + the highest packet word any ``PUSHWORD`` can touch.

        Used by the demultiplexer to reject too-short packets cheaply and
        by tests as a structural invariant.  Indirect pushes (extension)
        are unbounded and make this return ``-1``.
        """
        highest = -1
        for ins in self.instructions:
            index = ins.push_index
            if index is not None:
                highest = max(highest, index)
        return highest + 1

    def uses_short_circuit(self) -> bool:
        from .instructions import SHORT_CIRCUIT_OPERATORS

        return any(ins.operator in SHORT_CIRCUIT_OPERATORS for ins in self)

    # -- wire encoding ----------------------------------------------------

    def encode(self) -> array:
        """Pack to the ``struct enfilter`` wire form.

        Layout: ``[priority, length, word0, word1, ...]`` where *length*
        counts the instruction words (PUSHLIT literals included), exactly
        as in the figure 3-8 initializer ``{ 10, 12, ... }``.
        """
        words = array("H", [self.priority, self.encoded_length])
        for ins in self.instructions:
            words.append(encode_instruction_word(ins))
            if ins.is_pushlit:
                words.append(ins.literal)  # type: ignore[arg-type]
        return words

    @classmethod
    def decode(cls, words: Iterable[int]) -> "FilterProgram":
        """Unpack the wire form produced by :meth:`encode`.

        Raises :class:`EncodingError` on truncation, bad length fields,
        or undefined opcodes — the kernel performs this check once, when
        the filter is bound with ``ioctl``, not per packet.
        """
        words = list(words)
        if len(words) < 2:
            raise EncodingError("filter shorter than its priority+length header")
        priority, length = words[0], words[1]
        body = words[2:]
        if length != len(body):
            raise EncodingError(
                f"length field says {length} words, got {len(body)}"
            )
        instructions: list[Instruction] = []
        i = 0
        while i < len(body):
            word = body[i]
            i += 1
            literal = None
            if (word & 0x3F) == StackAction.PUSHLIT:
                if i >= len(body):
                    raise EncodingError("PUSHLIT at end of program lacks literal")
                literal = body[i]
                i += 1
            instructions.append(decode_instruction_word(word, literal))
        return cls(instructions, priority=priority)

    # -- display ------------------------------------------------------------

    def disassemble(self) -> str:
        """Human-readable listing, one instruction per line."""
        header = f"priority={self.priority} length={self.encoded_length}"
        lines = [header]
        offset = 0
        for ins in self.instructions:
            lines.append(f"  [{offset:2}] {ins}")
            offset += ins.encoded_length
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.disassemble()

    # -- derivation -----------------------------------------------------------

    def with_priority(self, priority: int) -> "FilterProgram":
        """Copy of this program at a different priority."""
        return FilterProgram(self.instructions, priority=priority)
