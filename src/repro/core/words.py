"""16-bit word view of packets — the filter language's addressing unit.

The filter language of Mogul/Rashid/Accetta (figure 3-6) addresses the
received packet as an array of 16-bit words, a bias the paper attributes
to "accidents of history" (the Alto and the 3 Mbit experimental Ethernet
were 16-bit-word oriented).  ``PUSHWORD+n`` pushes the *n*-th 16-bit word
of the packet, counting from the first byte of the data-link header.

Words are big-endian (network byte order), matching the wire order the
original VAX implementation saw after ``ntohs``.  A trailing odd byte is
treated as the high byte of a zero-padded final word, mirroring how the
original interpreter read a short-aligned mbuf with a zeroed pad byte.
"""

from __future__ import annotations

__all__ = [
    "WORD_SIZE",
    "word_count",
    "get_word",
    "get_byte",
    "get_long",
    "words_of",
    "pack_words",
]

WORD_SIZE = 2
"""Bytes per filter-language word (the language is 16-bit biased)."""

_U16_MAX = 0xFFFF


def word_count(packet: bytes) -> int:
    """Number of addressable 16-bit words in ``packet``.

    An odd trailing byte still yields one (zero-padded) word, so a 5-byte
    packet has 3 addressable words.
    """
    return (len(packet) + 1) // WORD_SIZE


def get_word(packet: bytes, index: int) -> int:
    """Return the ``index``-th big-endian 16-bit word of ``packet``.

    Raises :class:`IndexError` if the word is entirely outside the packet
    (the interpreter turns that into a packet rejection, per section 4:
    "it doesn't refer to a field outside the current packet").
    """
    if index < 0:
        raise IndexError(f"negative word index {index}")
    offset = index * WORD_SIZE
    if offset >= len(packet):
        raise IndexError(
            f"word {index} out of range for {len(packet)}-byte packet"
        )
    hi = packet[offset]
    lo = packet[offset + 1] if offset + 1 < len(packet) else 0
    return (hi << 8) | lo


def get_byte(packet: bytes, index: int) -> int:
    """Return the ``index``-th byte (section 7 extension: narrow loads)."""
    if index < 0:
        raise IndexError(f"negative byte index {index}")
    if index >= len(packet):
        raise IndexError(
            f"byte {index} out of range for {len(packet)}-byte packet"
        )
    return packet[index]


def get_long(packet: bytes, word_index: int) -> int:
    """Return the 32-bit value at word ``word_index`` (section 7 extension).

    Two adjacent 16-bit words combined big-endian; the second word may be
    the zero-padded tail word.
    """
    hi = get_word(packet, word_index)
    lo = get_word(packet, word_index + 1)
    return (hi << 16) | lo


def words_of(packet: bytes) -> list[int]:
    """Decode the whole packet into its list of 16-bit words."""
    return [get_word(packet, i) for i in range(word_count(packet))]


def pack_words(words: list[int]) -> bytes:
    """Inverse of :func:`words_of` for even-length packets.

    Each value must fit in 16 bits; used heavily by tests and workload
    generators to author packets word-by-word the way the paper's figures
    describe them.
    """
    out = bytearray()
    for i, value in enumerate(words):
        if not 0 <= value <= _U16_MAX:
            raise ValueError(f"word {i} value {value:#x} does not fit in 16 bits")
        out.append(value >> 8)
        out.append(value & 0xFF)
    return bytes(out)
