"""Section 7 language extensions, gathered in one place.

The paper closes with a list of filter-language deficiencies and the
extensions that would fix them; this module implements the program-
construction side of each (the execution side lives in the interpreter
and JIT behind ``LanguageLevel.EXTENDED``):

* **Indirect push** — "the filter language needs to be extended to
  include an 'indirect push' operator, as well as arithmetic operators
  to assist in addressing-unit conversions."  ``PUSHIND`` pops a word
  index off the stack and pushes that packet word; ``ADD``/``SUB``/
  ``MUL``/``DIV``/``LSH``/``RSH`` are the arithmetic.  Together they let
  a filter follow variable-length headers — the motivating case is IP
  options making higher-layer fields float (see
  :func:`ip_udp_port_filter_variable_ihl`).

* **Other field sizes** — "the current filter mechanism deals with
  16-bit values, requiring multiple filter instructions to load packet
  fields that are wider or narrower."  ``PUSHBYTEIND`` loads a single
  byte; 32-bit comparisons use the existing two-word idiom, for which
  :func:`long_equals` emits the standard sequence.
"""

from __future__ import annotations

from .program import FilterProgram, asm

__all__ = [
    "long_equals",
    "ip_udp_port_filter_variable_ihl",
]


def long_equals(word_index: int, value: int, priority: int = 0) -> FilterProgram:
    """Classic-language test of a 32-bit field via two 16-bit compares.

    This is the figure 3-9 idiom ("The DstSocket field occupies two
    words, so the filter must test both words and combine them"),
    packaged: the low word short-circuits, the high word concludes.
    """
    if not 0 <= value <= 0xFFFFFFFF:
        raise ValueError("value must fit in 32 bits")
    high = (value >> 16) & 0xFFFF
    low = value & 0xFFFF
    return FilterProgram(
        asm(
            ("PUSHWORD", word_index + 1), ("PUSHLIT", "CAND", low),
            ("PUSHWORD", word_index), ("PUSHLIT", "EQ", high),
        ),
        priority=priority,
    )


def ip_udp_port_filter_variable_ihl(
    dst_port: int,
    *,
    ether_header_words: int = 7,
    priority: int = 0,
) -> FilterProgram:
    """EXTENDED-language filter for a UDP destination port under IP
    options — the exact case section 7 says the classic language handles
    "only with considerable awkwardness and inefficiency".

    The UDP header's position depends on the IP header length (IHL),
    carried in the low nibble of the first IP byte as a count of 32-bit
    words.  The filter computes, at match time::

        udp_word_offset = ether_header_words + IHL * 2
        accept iff packet_word[udp_word_offset + 1] == dst_port

    (word +0 is the source port, +1 the destination port).

    Instruction sequence (requires ``LanguageLevel.EXTENDED``)::

        PUSHWORD+E        ; Version/IHL | TOS word of the IP header
        PUSHLIT | AND 0x0F00  ; isolate IHL (high byte's low nibble)
        PUSHLIT | RSH 8   ; IHL as a small integer
        PUSHLIT | MUL 2   ; 32-bit words -> 16-bit words
        PUSHLIT | ADD E+1 ; + ethernet header words + 1 (dst port word)
        PUSHIND           ; fetch the UDP destination port
        PUSHLIT | EQ port
    """
    if not 0 <= dst_port <= 0xFFFF:
        raise ValueError("UDP port must be a 16-bit value")
    e = ether_header_words
    return FilterProgram(
        asm(
            ("PUSHWORD", e),
            ("PUSHLIT", "AND", 0x0F00),
            ("PUSHLIT", "RSH", 8),
            ("PUSHLIT", "MUL", 2),
            ("PUSHLIT", "ADD", e + 1),
            "PUSHIND",
            ("PUSHLIT", "EQ", dst_port),
        ),
        priority=priority,
    )
