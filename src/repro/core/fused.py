"""Fused compilation of the whole bound filter *set*, and the flow cache.

Section 7's closing conjecture — "it might be possible to compile the
set of active filters into a decision table, which should provide the
best possible performance" — taken to its conclusion: instead of
pruning candidates and then looping over them in Python
(:mod:`repro.core.decision`), the entire active filter set is lowered
into **one generated dispatch function**:

* the discriminating header field shared by the bound filters (the
  Ethernet type word, a Pup socket — found by the same
  necessary-equality analysis the decision table uses) is loaded once;
* a dict probe on its value selects a straight-line *chain* of inlined,
  registerized filter bodies (the :mod:`repro.core.jit` lowering,
  re-targeted to fall through instead of returning), merged in global
  priority order with the filters the analysis could not bucket;
* the chain returns the accepting ranks directly, with the number of
  predicates evaluated at each exit point folded to a compile-time
  constant — a packet resolves in one function call with zero
  per-binding interpreter or loop overhead.

Layered beside it, and usable by *every* engine, is the
:class:`FlowCache`: a direct-mapped memo of classification results
keyed by the packet's discriminating header prefix, for the common case
where thousands of consecutive packets belong to a handful of flows.
The demultiplexer (:mod:`repro.core.demux`) owns the invalidation
discipline; this module keeps the cache itself dumb and fast.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence
from zlib import crc32

from .decision import necessary_equalities
from .interpreter import LanguageLevel, ShortCircuitMode
from .jit import emit_filter_body
from .program import FilterProgram
from .validator import ValidationReport
from .words import get_byte, get_word

__all__ = ["FusedEntry", "FusedFilterSet", "fuse_filter_set", "FlowCache"]


@dataclass(frozen=True)
class FusedEntry:
    """One bound filter as the fuser sees it.

    ``rank`` is the filter's position in global application order
    (priority descending, then bind sequence); ``copy_all`` is baked in
    at fuse time, so flipping it on a live port must re-fuse (the
    demultiplexer's ``invalidate()`` does).
    """

    rank: int
    program: FilterProgram
    report: ValidationReport
    copy_all: bool


@dataclass(frozen=True)
class FusedFilterSet:
    """The whole filter set as one compiled dispatch function.

    ``classify(packet)`` returns ``(ranks, predicates)``: the ranks of
    the accepting filters in delivery order (first-match unless an
    accepting filter opted into copy-all), and how many filter bodies
    were entered before resolution — the figure-of-merit the cost model
    charges for.  ``source`` keeps the generated module for inspection
    and tests.
    """

    source: str
    size: int
    discriminant: tuple[int, int] | None  #: (word index, mask) dispatched on
    _function: object

    def classify(self, packet: bytes) -> tuple[Sequence[int], int]:
        return self._function(packet)  # type: ignore[operator]


_FUSE_MEMO: dict = {}
_FUSE_MEMO_MAX = 8


def _set_memo_key(entries, mode, level) -> tuple:
    """Cache key for a whole-set compilation.

    The validation report is a pure function of (program, mode, level),
    so it stays out of the key; everything the generated code bakes in —
    rank order, program identity, copy-all — is in it.
    """
    return (
        tuple((e.rank, e.program, e.copy_all) for e in entries),
        mode,
        level,
    )


def fuse_filter_set(
    entries: Sequence[FusedEntry],
    *,
    mode: ShortCircuitMode = ShortCircuitMode.PUSH_RESULT,
    level: LanguageLevel = LanguageLevel.CLASSIC,
) -> FusedFilterSet:
    """Compile ``entries`` (already validated, in rank order) into one
    dispatch function.

    The necessary-equality analysis assumes the figure 3-6 push-result
    stack discipline, so under ``ShortCircuitMode.NO_PUSH`` the set is
    fused as a single chain with no field dispatch — still one call,
    still no per-binding loop, just no bucketing.

    Compiled sets are memoized (small LRU) on the set's value: an
    attach/detach pair that restores a previously-seen filter set — or
    two demultiplexers bound to identical sets — reuses the generated
    function instead of recompiling, which is what makes live
    SETFILTER churn affordable at firewall scale.  The artifact is
    immutable and stateless, so sharing is safe.
    """
    entries = sorted(entries, key=lambda e: e.rank)
    memo_key = _set_memo_key(entries, mode, level)
    cached = _FUSE_MEMO.pop(memo_key, None)
    if cached is not None:
        _FUSE_MEMO[memo_key] = cached  # re-insert: dict order is LRU order
        return cached
    discriminant = (
        _choose_discriminant(entries)
        if mode is ShortCircuitMode.PUSH_RESULT
        else None
    )
    lines: list[str] = []

    if discriminant is None:
        _emit_chain(lines, "_chain_all", entries, mode)
        lines.append("def _fused(packet):")
        lines.append("    return _chain_all(packet, len(packet))")
        chain_map: dict[int, str] = {}
    else:
        buckets: dict[int, list[FusedEntry]] = {}
        fallback: list[FusedEntry] = []
        for entry in entries:
            value = _required_value(entry.program, discriminant)
            if value is None:
                fallback.append(entry)
            else:
                buckets.setdefault(value, []).append(entry)
        chain_map = {}
        for number, (value, group) in enumerate(sorted(buckets.items())):
            name = f"_chain_{number}"
            chain_map[value] = name
            merged = sorted(group + fallback, key=lambda e: e.rank)
            _emit_chain(lines, name, merged, mode)
        _emit_chain(lines, "_fallback", fallback, mode)
        index, mask = discriminant
        offset = 2 * index
        lines.append("def _fused(packet):")
        lines.append("    _n = len(packet)")
        lines.append(f"    if _n > {offset + 1}:")
        lines.append(
            f"        _w = ((packet[{offset}] << 8)"
            f" | packet[{offset + 1}]) & {mask:#x}"
        )
        lines.append(f"    elif _n > {offset}:")
        lines.append(f"        _w = (packet[{offset}] << 8) & {mask:#x}")
        lines.append("    else:")
        # Field entirely outside the packet: every bucketed filter's
        # necessary PUSHWORD would fault, so only fallbacks apply.
        lines.append("        return _fallback(packet, _n)")
        lines.append("    _c = _CHAINS.get(_w)")
        lines.append("    if _c is None:")
        lines.append("        return _fallback(packet, _n)")
        lines.append("    return _c(packet, _n)")
        mapping = ", ".join(
            f"{value:#x}: {name}" for value, name in sorted(chain_map.items())
        )
        lines.append(f"_CHAINS = {{{mapping}}}")

    source = "\n".join(lines) + "\n"
    namespace = {"_get_word": get_word, "_get_byte": get_byte, "_ONE": (0,)}
    exec(compile(source, f"<fused set of {len(entries)}>", "exec"), namespace)
    fused = FusedFilterSet(
        source=source,
        size=len(entries),
        discriminant=discriminant,
        _function=namespace["_fused"],
    )
    if len(_FUSE_MEMO) >= _FUSE_MEMO_MAX:
        _FUSE_MEMO.pop(next(iter(_FUSE_MEMO)))
    _FUSE_MEMO[memo_key] = fused
    return fused


def _choose_discriminant(
    entries: Sequence[FusedEntry],
) -> tuple[int, int] | None:
    """Pick the (word, mask) with the most distinct required values,
    coverage breaking ties — the same heuristic the decision table
    uses, over the same necessary-equality analysis."""
    values: dict[tuple[int, int], set[int]] = {}
    coverage: dict[tuple[int, int], int] = {}
    for entry in entries:
        for test in necessary_equalities(entry.program):
            values.setdefault(test.key, set()).add(test.value)
            coverage[test.key] = coverage.get(test.key, 0) + 1
    if not coverage:
        return None
    key = max(coverage, key=lambda k: (len(values[k]), coverage[k], -k[0]))
    if coverage[key] < 2:
        return None
    return key


def _required_value(
    program: FilterProgram, key: tuple[int, int]
) -> int | None:
    for test in necessary_equalities(program):
        if test.key == key:
            return test.value
    return None


def _emit_chain(
    lines: list[str],
    name: str,
    entries: Sequence[FusedEntry],
    mode: ShortCircuitMode,
) -> None:
    """One straight-line sequence of inlined filter bodies.

    Each body runs inside a one-iteration ``for`` so the jit lowering's
    early exits become ``break`` instead of ``return``; its accept flag
    then drives the (compile-time-resolved) first-match/copy-all
    delivery decision.  Every exit returns a constant predicate count —
    how many bodies were entered is statically known at each point.
    """
    lines.append(f"def {name}(packet, _n):")
    has_copy_all = any(entry.copy_all for entry in entries)
    if has_copy_all:
        lines.append("    _res = []")
    examined = 0
    for entry in entries:
        examined += 1
        accept = f"_a{entry.rank}"
        report = entry.report
        guarded = (
            report.needs_runtime_bounds_check or report.may_divide_by_zero
        )
        lines.append(f"    {accept} = False")
        lines.append("    for _ in _ONE:")
        indent = "        "
        if guarded:
            lines.append(f"{indent}try:")
            indent += "    "

        def terminate(expr: str, _accept: str = accept) -> str:
            if expr == "False":
                return "break"
            return f"{_accept} = {expr}; break"

        emit_filter_body(
            entry.program, report, mode, lines.append, indent,
            terminate=terminate,
            length_expr="_n",
            name_prefix=f"t{entry.rank}_",
        )
        if guarded:
            lines.append("        except (IndexError, ZeroDivisionError):")
            lines.append("            break")
        lines.append(f"    if {accept}:")
        if entry.copy_all:
            lines.append(f"        _res.append({entry.rank})")
        elif has_copy_all:
            lines.append(f"        _res.append({entry.rank})")
            lines.append(f"        return _res, {examined}")
        else:
            lines.append(f"        return (({entry.rank},), {examined})")
    if has_copy_all:
        lines.append(f"    return _res, {examined}")
    else:
        lines.append(f"    return ((), {examined})")


class FlowCache:
    """Direct-mapped memo of packet-classification results.

    Keyed by the packet's discriminating header prefix (extracted by the
    demultiplexer at bind time: every byte any bound filter can read),
    each slot memoizes the full delivery decision — the accepting ranks,
    copy-all continuation included.  Identical prefixes provably
    classify identically, so a hit skips filter evaluation entirely;
    the paper's observation that consecutive packets overwhelmingly
    belong to the same few conversations does the rest.

    The cache is deliberately ignorant of *when* its contents go stale:
    the demultiplexer calls :meth:`invalidate` from its single
    order-mutation hook (attach/detach/reorder/copy-all).  Hit, miss
    and invalidation counters are public for benchmarks and tests.

    Slot indexing uses ``zlib.crc32``, **not** Python's ``hash``:
    ``hash(bytes)`` is salted per process (``PYTHONHASHSEED``), so a
    hash-indexed cache would make collision and eviction patterns — and
    with them the hit/miss counters, the ledger-derived costs, and any
    admission decision guided by :meth:`peek` — differ between
    identically-seeded runs, violating the simulator's bitwise
    determinism guarantee.  CRC32 is stable across processes, platforms
    and Python versions.
    """

    DEFAULT_SIZE = 1024

    def __init__(self, size: int = DEFAULT_SIZE) -> None:
        if size < 1 or size & (size - 1):
            raise ValueError("flow cache size must be a power of two")
        self.size = size
        self._mask = size - 1
        self._keys: list[bytes | None] = [None] * size
        self._values: list[tuple[int, ...] | None] = [None] * size
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def slot(self, key: bytes) -> int:
        """The direct-mapped slot ``key`` indexes — seed-independent,
        so colliding-flow eviction patterns are reproducible."""
        return crc32(key) & self._mask

    def lookup(self, key: bytes) -> tuple[int, ...] | None:
        """Cached accepting ranks for ``key``, or None on a miss."""
        slot = crc32(key) & self._mask
        if self._keys[slot] == key:
            self.hits += 1
            return self._values[slot]
        self.misses += 1
        return None

    def peek(self, key: bytes) -> tuple[int, ...] | None:
        """Like :meth:`lookup` but without touching the hit/miss
        counters — for admission-control peeks that precede (and must
        not distort the statistics of) the real classification."""
        slot = crc32(key) & self._mask
        if self._keys[slot] == key:
            return self._values[slot]
        return None

    def store(self, key: bytes, ranks: tuple[int, ...]) -> None:
        slot = crc32(key) & self._mask
        self._keys[slot] = key
        self._values[slot] = ranks

    def invalidate(self) -> None:
        """Drop every entry (the bound filter set changed under us)."""
        self._keys = [None] * self.size
        self._values = [None] * self.size
        self.invalidations += 1

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
