"""Instruction-level filter tracing — the debugger the language lacked.

The original filter author's tools were a disassembly and a frown.
:func:`trace_evaluation` executes a program one instruction at a time
and records, for each step, the instruction, the stack before and
after, and any early termination — so a filter that mysteriously
rejects can be read like a ledger.  Semantics are the checked
interpreter's, verified against it by tests.

    >>> from repro.core.paper_filters import figure_3_9_pup_socket_35
    >>> report = trace_evaluation(figure_3_9_pup_socket_35(), packet)
    >>> print(report.format())
"""

from __future__ import annotations

from dataclasses import dataclass

from .instructions import Instruction
from .interpreter import (
    FaultCode,
    FilterResult,
    LanguageLevel,
    ShortCircuitMode,
    evaluate,
)
from .program import FilterProgram

__all__ = ["TraceStep", "EvaluationTrace", "trace_evaluation"]


@dataclass(frozen=True)
class TraceStep:
    """One executed instruction and its effect."""

    index: int
    instruction: Instruction
    stack_before: tuple[int, ...]
    stack_after: tuple[int, ...]
    terminated: bool = False       #: a short-circuit ended the program here
    fault: FaultCode = FaultCode.NONE

    def format(self) -> str:
        before = "[" + " ".join(f"{v:#x}" for v in self.stack_before) + "]"
        after = "[" + " ".join(f"{v:#x}" for v in self.stack_after) + "]"
        note = ""
        if self.terminated:
            note = "  << short-circuit return"
        if self.fault is not FaultCode.NONE:
            note = f"  << fault: {self.fault.value}"
        return (
            f"[{self.index:2}] {str(self.instruction):24} "
            f"{before:>24} -> {after}{note}"
        )


@dataclass(frozen=True)
class EvaluationTrace:
    """The whole run: every step plus the final verdict."""

    program: FilterProgram
    packet: bytes
    steps: tuple[TraceStep, ...]
    result: FilterResult

    def format(self) -> str:
        lines = [
            f"packet: {len(self.packet)} bytes",
            f"filter: priority {self.program.priority}, "
            f"{len(self.program)} instructions",
        ]
        lines.extend(step.format() for step in self.steps)
        verdict = "ACCEPT" if self.result.accepted else "REJECT"
        detail = ""
        if self.result.fault is not FaultCode.NONE:
            detail = f" ({self.result.fault.value})"
        lines.append(
            f"=> {verdict}{detail} after "
            f"{self.result.instructions_executed} instructions"
        )
        return "\n".join(lines)


def trace_evaluation(
    program: FilterProgram,
    packet: bytes,
    *,
    mode: ShortCircuitMode = ShortCircuitMode.PUSH_RESULT,
    level: LanguageLevel = LanguageLevel.CLASSIC,
) -> EvaluationTrace:
    """Run ``program`` on ``packet``, recording every step.

    Implemented by running each prefix of the program through the
    reference interpreter and differencing stack snapshots would be
    quadratic; instead the prefix *results* come from one reference run
    and the per-step stacks from prefix evaluations of an
    instrumentation-free kind: each step re-evaluates the prefix ending
    at that instruction.  Programs are at most a few dozen instructions,
    so clarity beats cleverness here — and agreement with
    :func:`repro.core.interpreter.evaluate` is by construction.
    """
    reference = evaluate(program, packet, mode=mode, level=level)
    steps: list[TraceStep] = []
    previous_stack: tuple[int, ...] = ()

    for index in range(reference.instructions_executed):
        prefix = FilterProgram(
            program.instructions[: index + 1], priority=program.priority
        )
        partial = evaluate(
            prefix, packet, mode=mode, level=level
        )
        stack_after = _final_stack(prefix, packet, mode, level)
        terminated = (
            partial.short_circuited
            and index == reference.instructions_executed - 1
            and reference.short_circuited
        )
        fault = (
            reference.fault
            if index == reference.instructions_executed - 1
            else FaultCode.NONE
        )
        steps.append(
            TraceStep(
                index=index,
                instruction=program.instructions[index],
                stack_before=previous_stack,
                stack_after=stack_after,
                terminated=terminated,
                fault=fault,
            )
        )
        previous_stack = stack_after

    return EvaluationTrace(
        program=program,
        packet=packet,
        steps=tuple(steps),
        result=reference,
    )


def _final_stack(
    prefix: FilterProgram,
    packet: bytes,
    mode: ShortCircuitMode,
    level: LanguageLevel,
) -> tuple[int, ...]:
    """Reference-interpreter re-execution that keeps the stack.

    A tiny duplicate of the interpreter loop would risk divergence;
    instead we exploit that the interpreter is pure and cheap and
    recover the stack by simulating with the same helpers it uses.
    """
    from .instructions import (
        CONSTANT_ACTIONS,
        BinaryOp,
        StackAction,
    )
    from .interpreter import _ARITHMETIC, _BITWISE, _COMPARISONS, _SHORT_CIRCUIT
    from .words import get_byte, get_word

    stack: list[int] = []
    for ins in prefix.instructions:
        action = ins.action_code
        try:
            if action == StackAction.NOPUSH:
                pass
            elif action == StackAction.PUSHLIT:
                stack.append(ins.literal)  # type: ignore[arg-type]
            elif action in CONSTANT_ACTIONS:
                stack.append(CONSTANT_ACTIONS[StackAction(action)])
            elif action == StackAction.PUSHIND:
                stack.append(get_word(packet, stack.pop()))
            elif action == StackAction.PUSHBYTEIND:
                stack.append(get_byte(packet, stack.pop()))
            else:
                stack.append(get_word(packet, ins.push_index))  # type: ignore[arg-type]
        except IndexError:
            return tuple(stack)

        op = ins.operator
        if op == BinaryOp.NOP:
            continue
        if len(stack) < 2:
            return tuple(stack)
        t1, t2 = stack.pop(), stack.pop()
        if op in _SHORT_CIRCUIT:
            result = t1 == t2
            terminate_when, _ = _SHORT_CIRCUIT[op]
            if result == terminate_when:
                return tuple(stack)
            if mode is ShortCircuitMode.PUSH_RESULT:
                stack.append(1 if result else 0)
        elif op in _COMPARISONS:
            stack.append(1 if _COMPARISONS[op](t2, t1) else 0)
        elif op in _BITWISE:
            stack.append(_BITWISE[op](t2, t1))
        elif op == BinaryOp.DIV:
            if t1 == 0:
                return tuple(stack)
            stack.append(t2 // t1)
        elif op in _ARITHMETIC:
            stack.append(_ARITHMETIC[op](t2, t1))
    return tuple(stack)
