"""Bind-time filter validation — the first section 7 improvement.

"During evaluation of each filter instruction, the interpreter verifies
that the instruction is valid, that it doesn't overflow or underflow the
evaluation stack, and that it doesn't refer to a field outside the
current packet.  Since the filter language does not include branching
instructions, all these tests can be performed ahead of time (except for
indirect-push instructions); this might significantly speed filter
evaluation."

Because the language is branch-free, stack depth after each instruction
is a *single* statically-known integer, so overflow/underflow are decided
exactly, not conservatively.  Direct ``PUSHWORD+n`` bounds reduce to a
minimum packet length the demultiplexer can test once per packet; only
extension indirect pushes need per-evaluation bounds checks.

A program that passes :func:`validate` is safe to run with
``evaluate(..., checked=False)`` on any packet at least
``report.min_packet_bytes`` long; the only faults it can then raise are
the irreducible dynamic ones the report declares
(``needs_runtime_bounds_check`` / ``may_divide_by_zero``).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from .instructions import (
    CLASSIC_OPERATORS,
    EXTENDED_ACTIONS,
    EXTENDED_OPERATORS,
    SHORT_CIRCUIT_OPERATORS,
    BinaryOp,
    StackAction,
)
from .interpreter import DEFAULT_STACK_DEPTH, LanguageLevel, ShortCircuitMode
from .program import FilterProgram

__all__ = ["ValidationError", "ValidationReport", "validate"]


class ValidationError(ValueError):
    """Raised when a filter must be rejected at bind time.

    The kernel raises this from the ``BIOCSETF``-style ioctl, so a bad
    filter is an error returned to the caller once — never a silent
    per-packet rejection.
    """


@dataclass(frozen=True)
class ValidationReport:
    """Everything bind-time analysis learns about a program."""

    max_stack_depth: int
    """Deepest the evaluation stack gets on the non-terminating path."""

    min_packet_bytes: int
    """Sound pre-check: packets shorter than this are *guaranteed* to be
    rejected, so the demux may skip evaluation entirely.  Only direct
    PUSHWORDs reachable before any possible early-TRUE exit (COR/CNAND)
    count — a program that can accept before touching its deepest word
    must not be pre-rejected on that word's account."""

    max_packet_bytes_touched: int
    """Shortest packet length under which *no* direct PUSHWORD can
    fault anywhere in the program (the full figure for fast paths)."""

    uses_extensions: bool
    """Program uses section 7 extension actions or operators."""

    needs_runtime_bounds_check: bool
    """Program contains indirect pushes, whose bounds cannot be hoisted."""

    may_divide_by_zero: bool
    """Program contains DIV, whose operand check cannot be hoisted."""

    uses_short_circuit: bool
    """Program contains COR/CAND/CNOR/CNAND."""


def validate(
    program: FilterProgram,
    *,
    level: LanguageLevel = LanguageLevel.CLASSIC,
    mode: ShortCircuitMode = ShortCircuitMode.PUSH_RESULT,
    max_stack: int = DEFAULT_STACK_DEPTH,
) -> ValidationReport:
    """Statically check ``program``; raise :class:`ValidationError` or
    return the :class:`ValidationReport` the fast path relies on.

    Memoized: programs are immutable and hash by value, the report is
    frozen, and the demultiplexer validates on every attach — at
    firewall scale (10k rules churned across many configurations) the
    repeat validations would otherwise dominate bind time.  Programs
    that *fail* validation are not cached (``lru_cache`` does not cache
    exceptions), which is fine: rejecting is the rare path.
    """
    return _validate_cached(program, level, mode, max_stack)


@lru_cache(maxsize=65536)
def _validate_cached(
    program: FilterProgram,
    level: LanguageLevel,
    mode: ShortCircuitMode,
    max_stack: int,
) -> ValidationReport:
    depth = 0
    max_depth = 0
    max_word_index = -1        # words reachable before an early-TRUE exit
    max_word_anywhere = -1     # words reachable anywhere in the program
    early_true_possible = False
    uses_extensions = False
    needs_runtime_bounds = False
    may_div_zero = False
    uses_short_circuit = False

    for position, ins in enumerate(program.instructions):
        where = f"instruction {position} ({ins})"
        action = ins.action_code

        # --- stack action effects ---
        if action == StackAction.NOPUSH:
            pass
        elif action in EXTENDED_ACTIONS:
            if level is not LanguageLevel.EXTENDED:
                raise ValidationError(
                    f"{where}: indirect push requires LanguageLevel.EXTENDED"
                )
            uses_extensions = True
            needs_runtime_bounds = True
            if depth < 1:
                raise ValidationError(f"{where}: indirect push underflows stack")
            # net effect 0: pops the index, pushes the field
        else:
            if ins.is_pushword:
                index = ins.push_index
                max_word_anywhere = max(max_word_anywhere, index)  # type: ignore[arg-type]
                if not early_true_possible:
                    max_word_index = max(max_word_index, index)  # type: ignore[arg-type]
            depth += 1
            if depth > max_stack:
                raise ValidationError(
                    f"{where}: stack depth {depth} exceeds limit {max_stack}"
                )

        max_depth = max(max_depth, depth)

        # --- operator effects ---
        op = ins.operator
        if op == BinaryOp.NOP:
            continue
        if op in EXTENDED_OPERATORS:
            if level is not LanguageLevel.EXTENDED:
                raise ValidationError(
                    f"{where}: operator {op.name} requires LanguageLevel.EXTENDED"
                )
            uses_extensions = True
            if op == BinaryOp.DIV:
                may_div_zero = True
        elif op not in CLASSIC_OPERATORS:
            raise ValidationError(f"{where}: unknown operator {op!r}")
        if depth < 2:
            raise ValidationError(
                f"{where}: operator {op.name} underflows stack (depth {depth})"
            )
        if op in SHORT_CIRCUIT_OPERATORS:
            uses_short_circuit = True
            if op in (BinaryOp.COR, BinaryOp.CNAND):
                # From here on the program may already have accepted, so
                # later packet accesses must not feed the pre-check.
                early_true_possible = True
            depth -= 2 if mode is ShortCircuitMode.NO_PUSH else 1
        else:
            depth -= 1

    if depth < 1:
        raise ValidationError(
            "program can end with an empty stack (no predicate value)"
        )

    # Word n is readable when the packet covers its first byte (2n),
    # because an odd tail byte is zero-padded into a full word.
    min_packet_bytes = 0 if max_word_index < 0 else 2 * max_word_index + 1
    max_touched = 0 if max_word_anywhere < 0 else 2 * max_word_anywhere + 1

    return ValidationReport(
        max_stack_depth=max_depth,
        min_packet_bytes=min_packet_bytes,
        max_packet_bytes_touched=max_touched,
        uses_extensions=uses_extensions,
        needs_runtime_bounds_check=needs_runtime_bounds,
        may_divide_by_zero=may_div_zero,
        uses_short_circuit=uses_short_circuit,
    )
