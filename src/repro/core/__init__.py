"""The packet filter itself — the paper's primary contribution.

Layered exactly as the paper describes it:

* the **language** (:mod:`.instructions`, :mod:`.program`) — figure 3-6;
* the **interpreter** (:mod:`.interpreter`) with the section 4 runtime
  checks, plus the section 7 fast paths (:mod:`.validator`, :mod:`.jit`,
  :mod:`.decision`) and language extensions (:mod:`.extensions`);
* the **compiler library** (:mod:`.compiler`) that user code builds
  filters with;
* the **demultiplexer** (:mod:`.demux`, :mod:`.port`) — figure 4-1 and
  the section 3.2/3.3 port machinery;
* the **device** (:mod:`.device`, :mod:`.ioctl`) that exposes it all as
  a character special device inside the simulated kernel.
"""

from .compiler import And, Expr, Field, Or, Test, compile_expr, word
from .decision import DecisionTable, necessary_equalities
from .demux import DeliveryReport, Engine, PacketFilterDemux
from .fused import FlowCache, FusedEntry, FusedFilterSet, fuse_filter_set
from .instructions import (
    BinaryOp,
    EncodingError,
    Instruction,
    StackAction,
    pushword,
)
from .interpreter import (
    FaultCode,
    FilterResult,
    LanguageLevel,
    ShortCircuitMode,
    evaluate,
)
from .ioctl import DataLinkInfo, PFIoctl, PortStatus
from .jit import CompiledFilter, compile_filter
from .library import (
    ethertype_filter,
    ip_conversation_filter,
    ip_host_filter,
    ip_protocol_filter,
    tcp_port_filter,
    udp_port_filter,
)
from .paper_filters import (
    figure_3_8_pup_type_range,
    figure_3_9_pup_socket_35,
    pup_socket_filter,
)
from .port import DeliveredPacket, Port, ReadTimeoutPolicy
from .program import FilterProgram, asm
from .trace import EvaluationTrace, TraceStep, trace_evaluation
from .validator import ValidationError, ValidationReport, validate

__all__ = [
    # language
    "Instruction", "StackAction", "BinaryOp", "pushword", "EncodingError",
    "FilterProgram", "asm",
    # evaluation
    "evaluate", "FilterResult", "FaultCode", "ShortCircuitMode",
    "LanguageLevel",
    # bind-time machinery
    "validate", "ValidationError", "ValidationReport",
    "compile_filter", "CompiledFilter",
    "DecisionTable", "necessary_equalities",
    "fuse_filter_set", "FusedFilterSet", "FusedEntry", "FlowCache",
    # compiler library
    "word", "compile_expr", "Field", "Test", "And", "Or", "Expr",
    # demux + ports
    "PacketFilterDemux", "DeliveryReport", "Engine",
    "Port", "DeliveredPacket", "ReadTimeoutPolicy",
    # device surface
    "PFIoctl", "DataLinkInfo", "PortStatus",
    # paper examples
    "figure_3_8_pup_type_range", "figure_3_9_pup_socket_35",
    "pup_socket_filter",
    # filter library & debugging
    "ethertype_filter", "ip_protocol_filter", "ip_host_filter",
    "udp_port_filter", "tcp_port_filter", "ip_conversation_filter",
    "trace_evaluation", "EvaluationTrace", "TraceStep",
]
