"""The example filter programs from the paper, verbatim (figures 3-8, 3-9).

Both operate on Pup packets carried on the 3 Mbit/s Experimental
Ethernet, whose data-link header is 4 bytes (two 16-bit words) with the
packet type in the second word (figure 3-7):

    word 0  EtherDst | EtherSrc (one byte each)
    word 1  EtherType            (2 = Pup)
    word 2  PupLength
    word 3  HopCount | PupType
    word 4  Pup identifier (high)
    word 5  Pup identifier (low)
    word 6  DstNet | DstHost
    word 7  DstSocket (high)
    word 8  DstSocket (low)
    word 9  SrcNet | SrcHost
    word 10 SrcSocket (high)
    word 11 SrcSocket (low)
    word 12 first data word

These constants are used by tests and by the figure 3-8/3-9 benchmark,
and double as executable documentation of the language.
"""

from __future__ import annotations

from .program import FilterProgram, asm

__all__ = [
    "ETHERTYPE_PUP_3MB",
    "figure_3_8_pup_type_range",
    "figure_3_9_pup_socket_35",
    "pup_socket_filter",
]

ETHERTYPE_PUP_3MB = 2
"""Experimental-Ethernet type value for Pup (figure 3-8's comment)."""


def figure_3_8_pup_type_range() -> FilterProgram:
    """Figure 3-8: accept Pup packets with 1 <= PupType <= 100.

    Original C initializer::

        struct enfilter f = {
            10, 12,                       /* priority and length */
            PUSHWORD+1, PUSHLIT | EQ, 2,  /* packet type == PUP */
            PUSHWORD+3, PUSH00FF | AND,   /* mask low byte */
            PUSHZERO | GT,                /* PupType > 0 */
            PUSHWORD+3, PUSH00FF | AND,   /* mask low byte */
            PUSHLIT | LE, 100,            /* PupType <= 100 */
            AND,                          /* 0 < PupType <= 100 */
            AND                           /* && packet type == PUP */
        };
    """
    return FilterProgram(
        asm(
            ("PUSHWORD", 1), ("PUSHLIT", "EQ", ETHERTYPE_PUP_3MB),
            ("PUSHWORD", 3), ("PUSH00FF", "AND"),
            ("PUSHZERO", "GT"),
            ("PUSHWORD", 3), ("PUSH00FF", "AND"),
            ("PUSHLIT", "LE", 100),
            "AND",
            "AND",
        ),
        priority=10,
    )


def figure_3_9_pup_socket_35() -> FilterProgram:
    """Figure 3-9: accept Pup packets with DstSocket == 35, short-circuited.

    "The DstSocket field is checked before the packet type field, since
    in most packets the DstSocket is likely not to match and so the
    short-circuit operation will exit immediately."

    Original C initializer::

        struct enfilter f = {
            10, 8,                           /* priority and length */
            PUSHWORD+8, PUSHLIT | CAND, 35,  /* low word of socket == 35 */
            PUSHWORD+7, PUSHZERO | CAND,     /* high word of socket == 0 */
            PUSHWORD+1, PUSHLIT | EQ, 2      /* packet type == Pup */
        };
    """
    return FilterProgram(
        asm(
            ("PUSHWORD", 8), ("PUSHLIT", "CAND", 35),
            ("PUSHWORD", 7), ("PUSHZERO", "CAND"),
            ("PUSHWORD", 1), ("PUSHLIT", "EQ", ETHERTYPE_PUP_3MB),
        ),
        priority=10,
    )


def pup_socket_filter(socket: int, priority: int = 10) -> FilterProgram:
    """Figure 3-9 generalized to any 32-bit Pup destination socket."""
    high = (socket >> 16) & 0xFFFF
    low = socket & 0xFFFF
    return FilterProgram(
        asm(
            ("PUSHWORD", 8), ("PUSHLIT", "CAND", low),
            ("PUSHWORD", 7), ("PUSHLIT", "CAND", high),
            ("PUSHWORD", 1), ("PUSHLIT", "EQ", ETHERTYPE_PUP_3MB),
        ),
        priority=priority,
    )
