"""Packet-filter ports: the per-process receive endpoint (section 3).

"The packet filter manages some number of ports, each of which may be
opened by a Unix program as a 'character special device'.  Associated
with each port is a filter, a user-specified predicate on received
packets.  If a filter accepts a packet, the packet is queued for
delivery to the associated port."

A :class:`Port` here is the kernel-side object: the bounded input queue,
the bound filter, and the per-port control state of section 3.3 (queue
length, timestamping, copy-all, signal).  Blocking, timeouts and signal
*delivery* are the simulated kernel's job (:mod:`repro.core.device`);
this module stays kernel-agnostic so it can be unit-tested directly and
reused by the real-time examples.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from .program import FilterProgram

__all__ = [
    "DeliveredPacket",
    "Port",
    "PortStats",
    "DEFAULT_QUEUE_LIMIT",
    "ReadTimeoutPolicy",
]

DEFAULT_QUEUE_LIMIT = 8
"""Default maximum per-port input queue length — deliberately small, as
the historical driver's was; section 3.3 lets the user raise it (and a
batching client should, or bursts overflow: see table 6-4's analysis)."""


@dataclass(frozen=True)
class DeliveredPacket:
    """One packet as handed to a reading process.

    "The entire packet, including the data-link layer header, is
    returned" — ``data`` is the whole frame.  ``timestamp`` and
    ``drops_before`` are the optional per-packet marks of section 3.3
    (receive time, and the count of packets lost to queue overflows
    before this one was queued)."""

    data: bytes
    timestamp: float | None = None
    drops_before: int = 0
    packet_id: int | None = None  #: ledger span id, when tracing is on

    def __len__(self) -> int:
        return len(self.data)


@dataclass
class ReadTimeoutPolicy:
    """Section 3.3 read-blocking control.

    ``timeout`` > 0 blocks for at most that many simulated seconds;
    ``timeout`` = 0 with ``blocking`` False returns immediately;
    ``timeout`` None with ``blocking`` True blocks indefinitely.
    """

    blocking: bool = True
    timeout: float | None = None

    @classmethod
    def immediate(cls) -> "ReadTimeoutPolicy":
        return cls(blocking=False, timeout=0.0)

    @classmethod
    def forever(cls) -> "ReadTimeoutPolicy":
        return cls(blocking=True, timeout=None)

    @classmethod
    def after(cls, seconds: float) -> "ReadTimeoutPolicy":
        if seconds < 0:
            raise ValueError("timeout must be non-negative")
        return cls(blocking=True, timeout=seconds)


@dataclass
class PortStats:
    """Lifetime counters for one port."""

    accepted: int = 0          #: packets the filter accepted
    delivered: int = 0         #: packets actually queued
    dropped_overflow: int = 0  #: packets lost to a full queue
    dropped_nobuf: int = 0     #: packets refused by the kernel buffer pool
    dropped_resize: int = 0    #: packets discarded by a queue-limit shrink
    read: int = 0              #: packets handed to the reader
    reads: int = 0             #: read operations (batch = 1 read)

    @property
    def packets_per_read(self) -> float:
        """Average batch size — the figure 3-5 amortization factor."""
        if self.reads == 0:
            return 0.0
        return self.read / self.reads


class Port:
    """One packet-filter port.

    The port accepts whatever its bound :class:`FilterProgram` accepts;
    binding and rebinding happen through the device ioctl (section 3:
    "a new filter can be bound at any time, at a cost comparable to that
    of receiving a packet").
    """

    def __init__(
        self,
        port_id: int,
        *,
        queue_limit: int = DEFAULT_QUEUE_LIMIT,
    ) -> None:
        if queue_limit < 1:
            raise ValueError("queue limit must be at least 1")
        self.port_id = port_id
        self.program: FilterProgram | None = None
        self.queue_limit = queue_limit
        self.copy_all = False          #: submit accepted packets onward too
        self.timestamping = False      #: mark packets with receive time
        self.signal: int | None = None  #: signal to post on reception
        self.read_policy = ReadTimeoutPolicy.forever()
        self.batching = False          #: return all queued packets per read
        self.stats = PortStats()
        self._queue: deque[DeliveredPacket] = deque()
        #: optional callback ``(packet, reason)`` fired for each queued
        #: packet discarded administratively (``"resize"``/``"flush"``)
        #: — the device uses it to close the packet's ledger span.  The
        #: port itself stays kernel- and ledger-agnostic.
        self.on_drop = None
        #: optional shared :class:`repro.sim.overload.BufferPool` —
        #: every queued packet holds one reservation under
        #: :attr:`pool_owner`, taken at enqueue and released at read,
        #: discard, or teardown.  The device wires this at open time.
        self.pool = None
        #: why the most recent :meth:`enqueue` returned False
        #: (``"overflow"`` or ``"nobuf"``) — the demultiplexer reads it
        #: to attribute the drop to the right primitive.
        self.last_drop_cause: str | None = None

    @property
    def pool_owner(self) -> tuple:
        """This port's reservation tag in the shared buffer pool."""
        return ("port", self.port_id)

    def telemetry_gauges(self) -> dict:
        """Gauge callables for the telemetry sampler — instantaneous
        queue depth plus the lifetime delivery/drop counters.  The
        device publishes these at open and retracts them at close; the
        port itself stays kernel- and telemetry-agnostic."""
        return {
            "depth": lambda: len(self._queue),
            "read": lambda: self.stats.read,
            "dropped_overflow": lambda: self.stats.dropped_overflow,
            "dropped_nobuf": lambda: self.stats.dropped_nobuf,
        }

    # -- configuration (the ioctl surface calls these) -----------------------

    def bind_filter(self, program: FilterProgram | None) -> None:
        """Bind (or clear) the port's filter predicate."""
        self.program = program

    def set_queue_limit(self, limit: int) -> None:
        if limit < 1:
            raise ValueError("queue limit must be at least 1")
        self.queue_limit = limit
        while len(self._queue) > limit:
            packet = self._queue.pop()
            # Shrink discards are an administrative act, not wire-time
            # congestion: counting them as overflow would inflate the
            # section 3.3 ``drops_before`` mark on every packet queued
            # afterwards, so they get their own counter.
            self.stats.dropped_resize += 1
            if self.pool is not None:
                self.pool.release(self.pool_owner)
            if self.on_drop is not None:
                self.on_drop(packet, "resize")

    @property
    def priority(self) -> int:
        """Priority of the bound filter (ports with no filter sort last)."""
        return self.program.priority if self.program is not None else -1

    # -- kernel side -----------------------------------------------------------

    def enqueue(
        self,
        data: bytes,
        timestamp: float | None = None,
        packet_id: int | None = None,
    ) -> bool:
        """Queue an accepted packet; returns False when it was dropped.

        The drop count carried by the *next* successfully queued packet
        reports losses, as section 3.3 describes.
        """
        self.stats.accepted += 1
        if len(self._queue) >= self.queue_limit:
            self.stats.dropped_overflow += 1
            self.last_drop_cause = "overflow"
            return False
        if self.pool is not None and not self.pool.reserve(self.pool_owner):
            # The shared pool (or this port's share of it) is exhausted:
            # the filter's work is sunk, but no buffer is consumed.  Kept
            # out of ``dropped_overflow`` so the section 3.3
            # ``drops_before`` mark keeps meaning queue congestion.
            self.stats.dropped_nobuf += 1
            self.last_drop_cause = "nobuf"
            return False
        self._queue.append(
            DeliveredPacket(
                data=data,
                timestamp=timestamp if self.timestamping else None,
                drops_before=self.stats.dropped_overflow,
                packet_id=packet_id,
            )
        )
        self.stats.delivered += 1
        return True

    # -- reader side ---------------------------------------------------------

    @property
    def queued(self) -> int:
        return len(self._queue)

    def readable(self) -> bool:
        return bool(self._queue)

    def read_packets(self, max_packets: int | None = None) -> list[DeliveredPacket]:
        """Dequeue up to ``max_packets`` packets (all queued if None).

        One call models one read(2): with batching enabled the device
        passes ``None`` so "all pending packets [are] returned in a
        batch", amortizing the system call (figure 3-5).
        """
        if max_packets is None:
            max_packets = len(self._queue)
        batch: list[DeliveredPacket] = []
        while self._queue and len(batch) < max_packets:
            batch.append(self._queue.popleft())
        if batch:
            self.stats.reads += 1
            self.stats.read += len(batch)
            if self.pool is not None:
                self.pool.release(self.pool_owner, len(batch))
        return batch

    def flush(self) -> int:
        """Discard all queued packets; returns how many were dropped."""
        count = len(self._queue)
        if self.on_drop is not None:
            for packet in self._queue:
                self.on_drop(packet, "flush")
        if self.pool is not None and count:
            self.pool.release(self.pool_owner, count)
        self._queue.clear()
        return count

    def teardown(self) -> tuple[DeliveredPacket, ...]:
        """Release every queued buffer and clear the queue — the close
        and kill path.  Returns what was pending so the caller (the
        device) can close the packets' ledger spans; after this the
        port holds nothing in the shared pool.
        """
        pending = tuple(self._queue)
        if self.pool is not None:
            self.pool.release_all(self.pool_owner)
        self._queue.clear()
        return pending

    def pending(self) -> tuple[DeliveredPacket, ...]:
        """The queued-but-unread packets (closing ports reports these)."""
        return tuple(self._queue)

    def __repr__(self) -> str:
        return (
            f"Port({self.port_id}, queued={self.queued}, "
            f"priority={self.priority}, copy_all={self.copy_all})"
        )
