"""A small SSA/DAG intermediate representation for filter programs.

The section 7 conjecture — "it might be possible to compile the set of
active filters into a decision table, which should provide the best
possible performance" — needs a real compiler middle-end to go past the
chain concatenation of :mod:`repro.core.fused`: something that can see
that thirty bound filters all load the same Ethernet-type word, fold
their shared subexpressions, and reorder their predicates.  Stack
programs are a poor substrate for that, so this module lifts validated
:class:`repro.core.program.FilterProgram` stack code into a
value-numbered DAG:

* **Nodes** (:class:`Node`) are pure 16-bit values: packet word loads,
  literal constants, the figure 3-6 ALU/compare operators, and the
  section 7 extension indirect loads.  The graph (:class:`ValueGraph`)
  hash-conses on construction, so two pushes of the same word — in one
  filter or across *different* filters sharing a graph — are one node.
  Constant folding and 16-bit algebraic identities happen in the
  constructors, so a folded program never materializes dead nodes.

* **Steps** are the residual control: branch-free stack programs have
  no joins, so control is exactly a linear sequence of side exits —
  short-circuit operators (:class:`ExitIf`), packet-length guards at
  the program points where a ``PUSHWORD`` would fault
  (:class:`Bound`), and ordering anchors for the two faultable value
  kinds, indirect loads and ``DIV`` (:class:`Anchor`), which must not
  drift across an exit.

* A :class:`FilterIR` is one lowered filter: its steps in program
  order plus the node whose nonzero-ness is the final verdict.

Node identity is the whole point: everything downstream — the
cross-filter CSE pass (:mod:`repro.core.opt`), the dispatch-tree
backend and the batch evaluator (:mod:`repro.core.irgen`), and the
single-filter JIT (:mod:`repro.core.jit`, re-based onto this lowering)
— works on node ids, and semantic equivalence with the section 4
interpreter is pinned by the hypothesis engine-equivalence suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from .instructions import BinaryOp, StackAction
from .interpreter import ShortCircuitMode
from .program import FilterProgram
from .validator import ValidationReport

__all__ = [
    "Node",
    "ValueGraph",
    "Bound",
    "Anchor",
    "ExitIf",
    "Step",
    "FilterIR",
    "lower_program",
    "CONST",
    "LOAD",
    "INDW",
    "INDB",
    "COMPARE_KINDS",
    "COMMUTATIVE_KINDS",
]

# -- node kinds --------------------------------------------------------------

CONST = "const"  #: arg0 = the literal value (0..0xFFFF)
LOAD = "load"    #: arg0 = packet word index (big-endian 16-bit load)
INDW = "indw"    #: arg0 = node id of the word index (extension PUSHIND)
INDB = "indb"    #: arg0 = node id of the byte index (extension PUSHBYTEIND)

#: BinaryOp -> node kind for the value-producing operators.
_OP_KINDS = {
    BinaryOp.EQ: "eq",
    BinaryOp.NEQ: "ne",
    BinaryOp.LT: "lt",
    BinaryOp.LE: "le",
    BinaryOp.GT: "gt",
    BinaryOp.GE: "ge",
    BinaryOp.AND: "and",
    BinaryOp.OR: "or",
    BinaryOp.XOR: "xor",
    BinaryOp.ADD: "add",
    BinaryOp.SUB: "sub",
    BinaryOp.MUL: "mul",
    BinaryOp.DIV: "div",
    BinaryOp.LSH: "lsh",
    BinaryOp.RSH: "rsh",
}

COMPARE_KINDS = frozenset({"eq", "ne", "lt", "le", "gt", "ge"})
"""Kinds whose value is always 0 or 1."""

COMMUTATIVE_KINDS = frozenset({"eq", "ne", "and", "or", "xor", "add", "mul"})
"""Kinds where operand order is irrelevant — canonicalized for CSE."""

_FAULTABLE_KINDS = frozenset({INDW, INDB, "div"})
"""Kinds that can raise at run time (IndexError / ZeroDivisionError).

Their evaluation order relative to exits is observable (a fault rejects
the packet), so lowering pins them with :class:`Anchor` steps and no
pass may hoist them."""

#: Constant evaluation for each binary kind (operands already 16-bit).
_FOLD = {
    "eq": lambda a, b: 1 if a == b else 0,
    "ne": lambda a, b: 1 if a != b else 0,
    "lt": lambda a, b: 1 if a < b else 0,
    "le": lambda a, b: 1 if a <= b else 0,
    "gt": lambda a, b: 1 if a > b else 0,
    "ge": lambda a, b: 1 if a >= b else 0,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "add": lambda a, b: (a + b) & 0xFFFF,
    "sub": lambda a, b: (a - b) & 0xFFFF,
    "mul": lambda a, b: (a * b) & 0xFFFF,
    "lsh": lambda a, b: (a << min(b, 16)) & 0xFFFF,
    "rsh": lambda a, b: a >> min(b, 16),
    # "div" deliberately absent: a constant zero divisor is a runtime
    # fault (reject), not a value — folding it would change semantics.
}


@dataclass(frozen=True)
class Node:
    """One value in the DAG.

    ``arg0``/``arg1`` are node ids for operator kinds, the literal for
    ``CONST``, the word index for ``LOAD``, and the index node id for
    the indirect kinds.  Frozen and hashable — the graph's hash-consing
    key is the node itself.
    """

    kind: str
    arg0: int
    arg1: int | None = None


class ValueGraph:
    """An append-only, hash-consed collection of :class:`Node`.

    Construction *is* local value numbering: asking for a node that
    already exists returns the existing id, so identical loads and
    repeated subexpressions collapse at build time.  When several
    filters are lowered into one shared graph, the same mechanism is
    cross-filter common-subexpression elimination (see
    :func:`repro.core.opt.cse_filter_set`).
    """

    def __init__(self) -> None:
        self.nodes: list[Node] = []
        self._ids: dict[Node, int] = {}
        self._faultable: list[bool] = []

    def __len__(self) -> int:
        return len(self.nodes)

    def node(self, nid: int) -> Node:
        return self.nodes[nid]

    def _intern(self, node: Node) -> int:
        existing = self._ids.get(node)
        if existing is not None:
            return existing
        nid = len(self.nodes)
        self.nodes.append(node)
        self._ids[node] = nid
        faultable = node.kind in _FAULTABLE_KINDS
        if not faultable and node.kind not in (CONST, LOAD):
            faultable = self._faultable[node.arg0] or (
                node.arg1 is not None and self._faultable[node.arg1]
            )
        elif node.kind in (INDW, INDB):
            faultable = True
        self._faultable.append(faultable)
        return nid

    def faultable(self, nid: int) -> bool:
        """True when evaluating ``nid`` (or any operand) can raise."""
        return self._faultable[nid]

    # -- constructors ----------------------------------------------------

    def const(self, value: int) -> int:
        return self._intern(Node(CONST, value & 0xFFFF))

    def load(self, index: int) -> int:
        return self._intern(Node(LOAD, index))

    def indirect(self, kind: str, index: int) -> int:
        if kind not in (INDW, INDB):
            raise ValueError(f"not an indirect kind: {kind!r}")
        return self._intern(Node(kind, index))

    def const_value(self, nid: int) -> int | None:
        node = self.nodes[nid]
        return node.arg0 if node.kind == CONST else None

    def binop(self, kind: str, a: int, b: int) -> int:
        """``a <kind> b`` (a = T2, b = T1), folded where sound.

        All values in the graph are provably 16-bit (loads, validated
        literals, and operators that mask), which is what licenses the
        ``x & 0xFFFF -> x`` family of identities.
        """
        va, vb = self.const_value(a), self.const_value(b)
        if va is not None and vb is not None and kind in _FOLD:
            return self.const(_FOLD[kind](va, vb))
        folded = self._identity(kind, a, b, va, vb)
        if folded is not None:
            return folded
        if kind in COMMUTATIVE_KINDS and a > b:
            a, b = b, a
        return self._intern(Node(kind, a, b))

    def _identity(
        self, kind: str, a: int, b: int, va: int | None, vb: int | None
    ) -> int | None:
        """16-bit algebraic identities; None when nothing applies."""
        if kind == "and":
            if va == 0 or vb == 0:
                return self.const(0)
            if va == 0xFFFF:
                return b
            if vb == 0xFFFF:
                return a
        elif kind == "or":
            if va == 0:
                return b
            if vb == 0:
                return a
            if va == 0xFFFF or vb == 0xFFFF:
                return self.const(0xFFFF)
        elif kind == "xor":
            if va == 0:
                return b
            if vb == 0:
                return a
        elif kind in ("add", "sub") and vb == 0:
            return a
        elif kind == "add" and va == 0:
            return b
        elif kind == "mul":
            if va == 0 or vb == 0:
                return self.const(0)
            if va == 1:
                return b
            if vb == 1:
                return a
        elif kind in ("lsh", "rsh") and vb == 0:
            return a
        elif kind == "div" and vb == 1:
            return a
        elif kind in COMPARE_KINDS and a == b and not self.faultable(a):
            # x <op> x is decided — but only when x cannot fault, since
            # folding would erase the fault (which rejects the packet).
            return self.const(
                1 if kind in ("eq", "le", "ge") else 0
            )
        return None


# -- steps -------------------------------------------------------------------


@dataclass(frozen=True)
class Bound:
    """``if len(packet) < min_bytes: reject`` at this program point.

    Emitted exactly where the stack program's ``PUSHWORD`` would fault,
    so a filter that can accept *before* touching a deep word is never
    pre-rejected on that word's account (the same discipline
    :func:`repro.core.jit.emit_filter_body` always had)."""

    min_bytes: int


@dataclass(frozen=True)
class Anchor:
    """Evaluate ``node`` here — it can fault, so it must not move
    across an exit in either direction."""

    node: int


@dataclass(frozen=True)
class ExitIf:
    """Short-circuit side exit: when ``cond``'s truth equals ``when``,
    terminate the filter with verdict ``returns``."""

    cond: int
    when: bool
    returns: bool


Step = Union[Bound, Anchor, ExitIf]


@dataclass(frozen=True)
class FilterIR:
    """One filter, lowered: residual control steps plus the verdict node.

    ``result`` is the node whose nonzero-ness accepts the packet when
    no step exited first.  When lowering (or a later fold) proves an
    unconditional exit, ``steps`` is truncated there and ``result`` is
    the corresponding constant."""

    graph: ValueGraph
    steps: tuple[Step, ...]
    result: int


# -- lowering ----------------------------------------------------------------

#: operator -> (terminate when cond is, verdict on exit, continue constant)
_SC_LOWER = {
    BinaryOp.COR: (True, True, 0),
    BinaryOp.CAND: (False, False, 1),
    BinaryOp.CNOR: (True, False, 0),
    BinaryOp.CNAND: (False, True, 1),
}

_CONSTANT_ACTIONS = {
    StackAction.PUSHZERO: 0x0000,
    StackAction.PUSHONE: 0x0001,
    StackAction.PUSHFFFF: 0xFFFF,
    StackAction.PUSHFF00: 0xFF00,
    StackAction.PUSH00FF: 0x00FF,
}


def lower_program(
    program: FilterProgram,
    report: ValidationReport,
    mode: ShortCircuitMode = ShortCircuitMode.PUSH_RESULT,
    *,
    graph: ValueGraph | None = None,
) -> FilterIR:
    """Lower a *validated* stack program to :class:`FilterIR`.

    ``report`` must come from :func:`repro.core.validator.validate` on
    the same program and mode — lowering trusts its stack-shape
    guarantees and its ``min_packet_bytes`` pre-check exactly as the
    JIT does.  Passing a shared ``graph`` value-numbers this filter
    against everything already lowered into it."""
    g = graph if graph is not None else ValueGraph()
    steps: list[Step] = []
    guaranteed = report.min_packet_bytes
    if guaranteed:
        steps.append(Bound(guaranteed))

    stack: list[int] = []

    def close(result: int) -> FilterIR:
        return FilterIR(graph=g, steps=tuple(steps), result=result)

    for ins in program.instructions:
        action = ins.action_code

        if action == StackAction.NOPUSH:
            pass
        elif action == StackAction.PUSHLIT:
            stack.append(g.const(ins.literal))  # type: ignore[arg-type]
        elif action in _CONSTANT_ACTIONS:
            stack.append(g.const(_CONSTANT_ACTIONS[StackAction(action)]))
        elif action == StackAction.PUSHIND:
            nid = g.indirect(INDW, stack.pop())
            steps.append(Anchor(nid))
            stack.append(nid)
        elif action == StackAction.PUSHBYTEIND:
            nid = g.indirect(INDB, stack.pop())
            steps.append(Anchor(nid))
            stack.append(nid)
        else:  # PUSHWORD+n
            index = ins.push_index
            offset = 2 * index  # type: ignore[operator]
            if offset + 1 > guaranteed:
                steps.append(Bound(offset + 1))
                guaranteed = offset + 1
            stack.append(g.load(index))  # type: ignore[arg-type]

        op = ins.operator
        if op == BinaryOp.NOP:
            continue
        t1 = stack.pop()
        t2 = stack.pop()

        if op in _SC_LOWER:
            when, returns, continue_constant = _SC_LOWER[op]
            cond = g.binop("eq", t2, t1)
            value = g.const_value(cond)
            if value is not None:
                if bool(value) == when:
                    # Unconditional exit: the tail is dead code.
                    return close(g.const(1 if returns else 0))
                # Exit provably never taken: drop the step entirely.
            else:
                steps.append(ExitIf(cond=cond, when=when, returns=returns))
            if mode is ShortCircuitMode.PUSH_RESULT:
                stack.append(g.const(continue_constant))
        elif op == BinaryOp.DIV:
            nid = g.binop("div", t2, t1)
            if g.const_value(nid) is None:
                steps.append(Anchor(nid))
            stack.append(nid)
        else:
            stack.append(g.binop(_OP_KINDS[op], t2, t1))

    return close(stack[-1])
