"""ioctl command surface of the packet-filter device (section 3.3).

"The user can control the packet filter's action in a variety of ways,
by specifying: the filter to be associated with a packet filter port;
the timeout duration for blocking reads (or optionally, immediate return
or indefinite blocking); the signal, if any, to be delivered upon packet
reception; and the maximum length of the per-port input queue."

And the information the filter provides back: "the type of the
underlying data-link layer; the lengths of a data-link layer address and
of a data-link layer header; the maximum packet size for the data-link;
the data-link address for incoming packets; and the address used for
data-link layer broadcasts".

The numeric command values are arbitrary but stable; they exist so the
simulated ``ioctl`` syscall has a realistic shape (fd, command, argument)
rather than a Python-method shape.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["PFIoctl", "DataLinkInfo", "PortStatus"]


class PFIoctl(enum.IntEnum):
    """Command codes accepted by the packet-filter device's ioctl."""

    SETFILTER = 1     #: arg: FilterProgram — bind/replace the predicate
    SETTIMEOUT = 2    #: arg: ReadTimeoutPolicy
    SETSIGNAL = 3     #: arg: int signal number, or None to clear
    SETQUEUELEN = 4   #: arg: int maximum queued packets
    SETTIMESTAMP = 5  #: arg: bool — mark packets with receive time
    SETCOPYALL = 6    #: arg: bool — let accepted packets continue onward
    SETBATCH = 7      #: arg: bool — return all queued packets per read
    FLUSH = 8         #: arg: None — discard queued packets
    GETINFO = 9       #: returns DataLinkInfo
    GETSTATS = 10     #: returns PortStatus
    SETWRITEBATCH = 11  #: arg: bool — section 7 write-batching extension


@dataclass(frozen=True)
class DataLinkInfo:
    """GETINFO result: properties of the underlying data link."""

    datalink_type: str        #: e.g. "ethernet-10mb", "ethernet-3mb"
    address_length: int       #: bytes in a data-link address
    header_length: int        #: bytes of data-link header on each packet
    max_packet_bytes: int     #: data-link MTU including header
    local_address: bytes      #: this interface's address
    broadcast_address: bytes | None  #: None if the link has no broadcast


@dataclass(frozen=True)
class PortStatus:
    """GETSTATS result: the per-port counters of section 3.3."""

    queued: int
    accepted: int
    delivered: int
    dropped_queue_overflow: int
    dropped_interface: int    #: losses in the network interface itself
    dropped_resize: int = 0   #: discards from shrinking the queue limit
    dropped_nobuf: int = 0    #: refusals by the shared kernel buffer pool
