"""A library of ready-made filters for the common protocols.

"In normal use, the filters are not directly constructed by the
programmer" — and in normal use most programs want one of a handful of
predicates: all packets of a data-link type, one UDP/TCP port, one IP
host, one Pup socket.  This module packages those, each built through
:mod:`repro.core.compiler` with the likelihood annotations that make
the emitted code test the most discriminating field first.

Word offsets assume the 10 Mb/s Ethernet (14-byte header = 7 words)
unless a link is passed; every builder takes ``link=`` for the 3 Mb/s
experimental Ethernet.
"""

from __future__ import annotations

from ..net.ethernet import ETHERNET_10MB, LinkSpec
from .compiler import Expr, compile_expr, word
from .program import FilterProgram

__all__ = [
    "ethertype_filter",
    "ip_protocol_filter",
    "ip_host_filter",
    "udp_port_filter",
    "tcp_port_filter",
    "ip_conversation_filter",
]

_IP_ETHERTYPE = 0x0800
_PROTO_TCP = 6
_PROTO_UDP = 17


def _ether_words(link: LinkSpec) -> int:
    return link.header_length // 2


def _type_word(link: LinkSpec) -> int:
    return _ether_words(link) - 1


def ethertype_filter(
    ethertype: int, priority: int = 10, *, link: LinkSpec = ETHERNET_10MB
) -> FilterProgram:
    """All frames of one data-link type — the crude pre-packet-filter
    kernel key (§2), as one language instruction pair."""
    return compile_expr(
        word(_type_word(link)) == ethertype, priority=priority
    )


def _ip_expr(link: LinkSpec) -> Expr:
    return (word(_type_word(link)) == _IP_ETHERTYPE).likely(0.6)


def ip_protocol_filter(
    protocol: int, priority: int = 10, *, link: LinkSpec = ETHERNET_10MB
) -> FilterProgram:
    """IP datagrams carrying one transport protocol (TCP=6, UDP=17).

    The protocol byte is the low byte of IP word 4 (TTL | protocol).
    """
    base = _ether_words(link)
    return compile_expr(
        (word(base + 4).low_byte() == protocol).likely(0.3) & _ip_expr(link),
        priority=priority,
    )


def ip_host_filter(
    address: int, priority: int = 10, *, link: LinkSpec = ETHERNET_10MB
) -> FilterProgram:
    """IP datagrams to or from one 32-bit host address.

    Source address sits at IP words 6-7, destination at words 8-9; the
    filter accepts either direction — a monitor's "conversation with
    this host" predicate.
    """
    base = _ether_words(link)
    high = (address >> 16) & 0xFFFF
    low = address & 0xFFFF
    src = (word(base + 6) == high).likely(0.1) & (
        word(base + 7) == low
    ).likely(0.1)
    dst = (word(base + 8) == high).likely(0.1) & (
        word(base + 9) == low
    ).likely(0.1)
    return compile_expr((src | dst) & _ip_expr(link), priority=priority)


def _transport_port_filter(
    protocol: int,
    port: int,
    direction: str,
    priority: int,
    link: LinkSpec,
) -> FilterProgram:
    """Shared UDP/TCP port filter, assuming a 20-byte IP header.

    The classic-language caveat from section 7 applies: with IP options
    present the port moves and this filter misses — that is exactly the
    deficiency :func:`repro.core.extensions.ip_udp_port_filter_variable_ihl`
    exists to fix.  The IHL nibble is therefore *checked* here (word
    ``base`` masked to 0x0F00 must equal 5), so optioned packets are
    cleanly rejected rather than misparsed.
    """
    base = _ether_words(link)
    transport = base + 10  # after the 20-byte IP header
    if direction == "src":
        port_words = [transport]
    elif direction == "dst":
        port_words = [transport + 1]
    else:
        port_words = [transport, transport + 1]

    constraints = (
        (word(base).masked(0x0F00) == 0x0500).likely(0.9)
        & (word(base + 4).low_byte() == protocol).likely(0.3)
        & _ip_expr(link)
    )
    port_test = None
    for port_word in port_words:
        test = (word(port_word) == port).likely(0.05)
        port_test = test if port_test is None else port_test | test
    return compile_expr(port_test & constraints, priority=priority)


def udp_port_filter(
    port: int,
    direction: str = "dst",
    priority: int = 10,
    *,
    link: LinkSpec = ETHERNET_10MB,
) -> FilterProgram:
    """UDP datagrams for one port (``direction``: src/dst/either)."""
    return _transport_port_filter(_PROTO_UDP, port, direction, priority, link)


def tcp_port_filter(
    port: int,
    direction: str = "dst",
    priority: int = 10,
    *,
    link: LinkSpec = ETHERNET_10MB,
) -> FilterProgram:
    """TCP segments for one port (``direction``: src/dst/either)."""
    return _transport_port_filter(_PROTO_TCP, port, direction, priority, link)


def ip_conversation_filter(
    host_a: int,
    host_b: int,
    priority: int = 10,
    *,
    link: LinkSpec = ETHERNET_10MB,
) -> FilterProgram:
    """All IP traffic between two hosts, either direction — the §5.4
    monitor's "capture all packets between a pair of communicating
    hosts" predicate."""
    base = _ether_words(link)

    def addr(at: int, address: int) -> Expr:
        return (
            (word(at) == (address >> 16) & 0xFFFF).likely(0.1)
            & (word(at + 1) == address & 0xFFFF).likely(0.1)
        )

    a_to_b = addr(base + 6, host_a) & addr(base + 8, host_b)
    b_to_a = addr(base + 6, host_b) & addr(base + 8, host_a)
    return compile_expr((a_to_b | b_to_a) & _ip_expr(link), priority=priority)
