"""Compiling the *set* of active filters into a decision table.

The last section 7 improvement: "with a redesigned filter language it
might be possible to compile the set of active filters into a decision
table, which should provide the best possible performance."

The key observation is that most real filters are conjunctions that
include an equality test on a shared discriminating field (the Ethernet
type word, a Pup socket).  If a filter *necessarily* requires
``word[n] & mask == v`` to accept, then a packet whose field differs can
skip that filter entirely — so filters can be bucketed by field value
and found by one hash probe instead of one interpretation each.

Extraction of necessary equality conditions is done by a small symbolic
executor over the (branch-free) program.  The analysis is deliberately
*conservative*: it returns a subset of the true necessary conditions,
and any program it cannot see through simply lands in the always-checked
fallback list.  Programs containing ``COR``/``CNAND`` can return TRUE
early, which would invalidate "the rest of the program is necessary"
reasoning, so they are sent to the fallback list wholesale.

The resulting :class:`DecisionTable` is therefore an exact drop-in for
the linear scan: for every packet it yields exactly the candidate
filters whose necessary conditions the packet satisfies, in the same
priority order the figure 4-1 loop would use (a property-based test in
``tests/core/test_decision.py`` pins this equivalence down).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from heapq import merge
from typing import Iterable, Iterator, Sequence

from .instructions import BinaryOp, StackAction
from .program import FilterProgram
from .words import get_word

__all__ = [
    "NecessaryTest",
    "necessary_equalities",
    "TableEntry",
    "DecisionTable",
    "choose_discriminant",
    "required_value",
]


@dataclass(frozen=True)
class NecessaryTest:
    """``packet.word[index] & mask == value`` must hold for acceptance."""

    index: int
    mask: int
    value: int

    @property
    def key(self) -> tuple[int, int]:
        return (self.index, self.mask)

    def matches(self, packet: bytes) -> bool:
        try:
            return (get_word(packet, self.index) & self.mask) == self.value
        except IndexError:
            return False


# --- symbolic domain -------------------------------------------------------


@dataclass(frozen=True)
class _Word:
    index: int
    mask: int = 0xFFFF


@dataclass(frozen=True)
class _Const:
    value: int


@dataclass(frozen=True)
class _Truthy:
    """A value known to be nonzero *only if* all ``tests`` hold.

    This is the abstraction that makes AND-folding sound and precise:
    a bitwise AND is nonzero only when both operands are, so the result
    carries the union of both operands' test sets; an OR is nonzero when
    either is, so it carries the intersection.  A comparison result with
    no recognizable field pattern is simply ``_Truthy(frozenset())``.
    """

    tests: frozenset[NecessaryTest]


class _Opaque:
    """A value the analysis gave up on."""


_OPAQUE = _Opaque()


def _tests_of(value: object) -> frozenset[NecessaryTest] | None:
    """Test set implied by nonzero-ness, or None when nothing is known."""
    if isinstance(value, _Truthy):
        return value.tests
    return None

_CONSTANT_ACTIONS = {
    StackAction.PUSHZERO: 0x0000,
    StackAction.PUSHONE: 0x0001,
    StackAction.PUSHFFFF: 0xFFFF,
    StackAction.PUSHFF00: 0xFF00,
    StackAction.PUSH00FF: 0x00FF,
}

#: Early-TRUE operators poison "everything later is necessary" reasoning.
_EARLY_TRUE_OPS = frozenset({BinaryOp.COR, BinaryOp.CNAND})


def _as_equality(t2: object, t1: object) -> NecessaryTest | None:
    """Recognize ``word&mask == const`` in either operand order."""
    for left, right in ((t2, t1), (t1, t2)):
        if isinstance(left, _Word) and isinstance(right, _Const):
            value = right.value
            if value & ~left.mask:
                # Value has bits outside the mask: can never be equal.
                # Treat as unanalyzable rather than proving emptiness.
                return None
            return NecessaryTest(index=left.index, mask=left.mask, value=value)
    return None


@lru_cache(maxsize=65536)
def necessary_equalities(program: FilterProgram) -> frozenset[NecessaryTest]:
    """Equality conditions provably necessary for ``program`` to accept.

    Sound but incomplete: the result is always a subset of the true
    necessary conditions, possibly empty.  Memoized: programs are
    immutable, and the demultiplexer re-analyzes its whole filter set
    on every bind and reorder.
    """
    if any(ins.operator in _EARLY_TRUE_OPS for ins in program.instructions):
        return frozenset()

    stack: list[object] = []
    necessary: set[NecessaryTest] = set()

    for ins in program.instructions:
        action = ins.action_code
        if action == StackAction.NOPUSH:
            pass
        elif action == StackAction.PUSHLIT:
            stack.append(_Const(ins.literal))  # type: ignore[arg-type]
        elif action in _CONSTANT_ACTIONS:
            stack.append(_Const(_CONSTANT_ACTIONS[StackAction(action)]))
        elif ins.is_pushword:
            stack.append(_Word(index=ins.push_index))  # type: ignore[arg-type]
        elif ins.is_indirect:
            if stack:
                stack.pop()
            stack.append(_OPAQUE)
        else:
            stack.append(_OPAQUE)

        op = ins.operator
        if op == BinaryOp.NOP:
            continue
        if len(stack) < 2:
            # Malformed program; the validator would have rejected it.
            return frozenset()
        t1 = stack.pop()
        t2 = stack.pop()

        if op in (BinaryOp.CAND, BinaryOp.CNOR):
            # Continuing past CAND requires equality; past CNOR requires
            # inequality (not expressible as a NecessaryTest; skipped).
            if op == BinaryOp.CAND:
                test = _as_equality(t2, t1)
                if test is not None:
                    necessary.add(test)
            # Both push a value on the continue path (figure 3-6); its
            # truth is known (CAND: true, CNOR: false).
            stack.append(
                _Truthy(frozenset()) if op == BinaryOp.CAND else _Const(0)
            )
        elif op == BinaryOp.EQ:
            test = _as_equality(t2, t1)
            stack.append(
                _Truthy(frozenset({test} if test else ()))
            )
        elif op == BinaryOp.AND:
            stack.append(_fold_and(t2, t1))
        elif op == BinaryOp.OR:
            left, right = _tests_of(t2), _tests_of(t1)
            if left is not None and right is not None:
                stack.append(_Truthy(left & right))
            else:
                stack.append(_OPAQUE)
        elif op in (BinaryOp.NEQ, BinaryOp.LT, BinaryOp.LE,
                    BinaryOp.GT, BinaryOp.GE):
            stack.append(_Truthy(frozenset()))
        else:
            stack.append(_OPAQUE)

    if not stack:
        return frozenset()
    top = stack[-1]
    if isinstance(top, _Truthy):
        necessary.update(top.tests)
    return frozenset(necessary)


def _fold_and(t2: object, t1: object) -> object:
    """AND over the symbolic domain.

    Recognizes ``word & mask-constant`` field extraction, and otherwise
    exploits that a bitwise AND is nonzero only when both operands are:
    the result's implied-test set is the union of the operands'.
    """
    masked = _as_masked(t2, t1)
    if masked is not None:
        return masked
    union: set[NecessaryTest] = set()
    for operand in (t2, t1):
        tests = _tests_of(operand)
        if tests is not None:
            union.update(tests)
    return _Truthy(frozenset(union))


def _as_masked(t2: object, t1: object) -> _Word | None:
    for left, right in ((t2, t1), (t1, t2)):
        if isinstance(left, _Word) and isinstance(right, _Const):
            return _Word(index=left.index, mask=left.mask & right.value)
    return None


# --- the table itself --------------------------------------------------------


@dataclass(frozen=True)
class TableEntry:
    """One filter in the table, with its global application order.

    Public and stable: :meth:`DecisionTable.entries_for` yields these,
    and the IR dispatch-tree builder (:mod:`repro.core.opt`) consumes
    the same type.  ``order`` sorts ascending in application order
    (priority descending, then bind sequence); ``handle`` is whatever
    opaque payload the builder supplied; ``program`` is the bound
    filter.
    """

    order: tuple
    handle: object
    program: FilterProgram


# Backwards-compatible alias for the old private name.
_Entry = TableEntry


def choose_discriminant(
    entries: Sequence[TableEntry],
    used_keys: frozenset = frozenset(),
    *,
    min_split: int = 2,
) -> tuple[int, int] | None:
    """Pick the most discriminating (word, mask) over ``entries``: the
    one with the most distinct required values, coverage breaking ties.
    Keys in ``used_keys`` (already split on higher up a tree) are
    excluded — re-splitting on them can never separate anything
    further.  Returns None when no key covers at least ``min_split``
    entries.  Shared by :class:`DecisionTable` and the IR dispatch-tree
    builder (:func:`repro.core.opt.build_dispatch_tree`)."""
    values: dict[tuple[int, int], set[int]] = {}
    coverage: dict[tuple[int, int], int] = {}
    for entry in entries:
        for test in necessary_equalities(entry.program):
            if test.key in used_keys:
                continue
            values.setdefault(test.key, set()).add(test.value)
            coverage[test.key] = coverage.get(test.key, 0) + 1
    if not coverage:
        return None
    key = max(
        coverage,
        key=lambda k: (len(values[k]), coverage[k], -k[0]),
    )
    if coverage[key] < min_split:
        return None
    return key


class DecisionTable:
    """Hash-dispatch index over a set of filter programs.

    Build once from ``(handle, program, order)`` triples, then
    :meth:`candidates` yields, for each packet, the handles of exactly
    the programs whose necessary conditions the packet satisfies, in
    ascending ``order`` — the same sequence the naive priority loop
    would test, minus the provably futile ones.
    """

    #: Stop splitting buckets smaller than this; linear scan is cheaper.
    MIN_SPLIT = 2

    def __init__(
        self,
        entries: Sequence[_Entry],
        *,
        depth: int = 0,
        max_depth: int = 3,
        used_keys: frozenset = frozenset(),
    ) -> None:
        self._discriminant: tuple[int, int] | None = None
        self._buckets: dict[int, DecisionTable] = {}
        self._fallback: list[_Entry] = []
        self._size = len(entries)

        key = (
            self._choose_discriminant(entries, used_keys)
            if depth < max_depth
            else None
        )
        if key is None or len(entries) < self.MIN_SPLIT:
            self._fallback = sorted(entries, key=lambda e: e.order)
            return

        self._discriminant = key
        grouped: dict[int, list[_Entry]] = {}
        leftovers: list[_Entry] = []
        for entry in entries:
            value = _required_value(entry.program, key)
            if value is None:
                leftovers.append(entry)
            else:
                grouped.setdefault(value, []).append(entry)
        self._fallback = sorted(leftovers, key=lambda e: e.order)
        self._buckets = {
            value: DecisionTable(
                group,
                depth=depth + 1,
                max_depth=max_depth,
                used_keys=used_keys | {key},
            )
            for value, group in grouped.items()
        }

    # -- construction helpers ------------------------------------------------

    @classmethod
    def build(
        cls, filters: Iterable[tuple[object, FilterProgram, tuple]]
    ) -> "DecisionTable":
        """Build from ``(handle, program, order_key)`` triples.

        ``order_key`` must sort ascending in intended application order
        (the demultiplexer passes ``(-priority, sequence)``).
        """
        entries = [
            _Entry(order=order, handle=handle, program=program)
            for handle, program, order in filters
        ]
        return cls(entries)

    @staticmethod
    def _choose_discriminant(
        entries: Sequence[TableEntry], used_keys: frozenset
    ) -> tuple[int, int] | None:
        return choose_discriminant(
            entries, used_keys, min_split=DecisionTable.MIN_SPLIT
        )

    # -- queries ---------------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    @property
    def depth(self) -> int:
        """Longest chain of hash probes a lookup can take."""
        if not self._buckets:
            return 0
        return 1 + max(table.depth for table in self._buckets.values())

    def candidates(self, packet: bytes) -> Iterator[object]:
        """Handles of filters worth evaluating on ``packet``, in order."""
        for entry in self.entries_for(packet):
            yield entry.handle

    def entries_for(self, packet: bytes) -> Iterator[_Entry]:
        """Table entries worth evaluating on ``packet``, in application
        order.  Each entry carries the caller's ``handle`` plus the
        program and order key — the demultiplexer iterates these
        directly rather than re-looking handles up."""
        if self._discriminant is None:
            return iter(self._fallback)
        index, mask = self._discriminant
        try:
            value = get_word(packet, index) & mask
        except IndexError:
            # Packet too short for the field: every bucketed filter's
            # necessary PUSHWORD would fault, so only fallbacks apply.
            return iter(self._fallback)
        bucket = self._buckets.get(value)
        if bucket is None:
            return iter(self._fallback)
        return merge(bucket.entries_for(packet), iter(self._fallback),
                     key=lambda e: e.order)


def required_value(program: FilterProgram, key: tuple[int, int]) -> int | None:
    """The value ``program`` necessarily requires for ``key`` (a
    (word, mask) pair), or None when the analysis proves nothing."""
    for test in necessary_equalities(program):
        if test.key == key:
            return test.value
    return None


# Backwards-compatible alias for the old private name.
_required_value = required_value
