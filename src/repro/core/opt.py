"""Optimization passes over the filter IR.

Everything here is a *transfer*: a pass re-emits the live slice of a
:class:`repro.core.ir.FilterIR` through the :class:`~repro.core.ir.ValueGraph`
constructors, which hash-cons and constant-fold on the way in.  One
mechanism gives all four classic passes:

* **Dead-code elimination** — only nodes reachable from the steps and
  the result are re-emitted; everything else is simply never copied.
* **Constant folding** — the constructors fold, so any constants a
  rewrite exposes cascade for free (and a side exit whose condition
  folds to a constant is either deleted or turned into the filter's
  final verdict, exactly as at lowering time).
* **Cross-filter CSE** — transferring many filters into one *shared*
  graph value-numbers them against each other: thirty filters that all
  compare the Ethernet-type word own one load node and one comparison
  node between them (:func:`cse_filter_set`).
* **Dispatch specialization** — under a dispatch-tree bucket the
  discriminating field's value is known, so :func:`specialize_filter`
  rewrites the corresponding loads to constants and lets folding delete
  the now-redundant predicate the dispatch probe already paid for.

The dispatch tree itself (:func:`build_dispatch_tree`) generalizes the
section 5 decision table's necessary-equality bucketing into a
recursive plan the backend (:mod:`repro.core.irgen`) turns into nested
hash probes.  It consumes and produces the same public
:class:`repro.core.decision.TableEntry` the decision table yields, and
reorders *predicates*, never priorities: every leaf chain is sorted by
the caller's order key, so delivery order is exactly the figure 4-1
loop's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from .decision import TableEntry, choose_discriminant, required_value
from .ir import (
    CONST,
    INDB,
    INDW,
    LOAD,
    Anchor,
    Bound,
    ExitIf,
    FilterIR,
    ValueGraph,
)

__all__ = [
    "live_nodes",
    "transfer_filter",
    "optimize_filter",
    "cse_filter_set",
    "CSEStats",
    "specialize_filter",
    "DispatchTree",
    "build_dispatch_tree",
]


def live_nodes(fir: FilterIR) -> set[int]:
    """Node ids reachable from ``fir``'s steps and result."""
    graph = fir.graph
    roots = [fir.result]
    for step in fir.steps:
        if isinstance(step, Anchor):
            roots.append(step.node)
        elif isinstance(step, ExitIf):
            roots.append(step.cond)
    seen: set[int] = set()
    while roots:
        nid = roots.pop()
        if nid in seen:
            continue
        seen.add(nid)
        node = graph.node(nid)
        if node.kind in (CONST, LOAD):
            continue
        roots.append(node.arg0)
        if node.arg1 is not None:
            roots.append(node.arg1)
    return seen


def transfer_filter(
    fir: FilterIR,
    graph: ValueGraph,
    *,
    loads: Mapping[int, int] | None = None,
) -> FilterIR:
    """Re-emit ``fir`` into ``graph`` through the folding constructors.

    ``loads`` optionally maps packet word indices to known constant
    values (the dispatch-specialization context); matching ``LOAD``
    nodes are rewritten to constants and the fold cascades from there.
    A side exit whose condition becomes constant is deleted (never
    taken) or, when it is provably always taken, truncates the filter
    with its verdict — mirroring the lowering-time treatment.
    """
    src = fir.graph
    memo: dict[int, int] = {}

    def tx(nid: int) -> int:
        out = memo.get(nid)
        if out is not None:
            return out
        node = src.node(nid)
        if node.kind == CONST:
            out = graph.const(node.arg0)
        elif node.kind == LOAD:
            if loads is not None and node.arg0 in loads:
                out = graph.const(loads[node.arg0])
            else:
                out = graph.load(node.arg0)
        elif node.kind in (INDW, INDB):
            out = graph.indirect(node.kind, tx(node.arg0))
        else:
            out = graph.binop(node.kind, tx(node.arg0), tx(node.arg1))
        memo[nid] = out
        return out

    steps: list = []
    for step in fir.steps:
        if isinstance(step, Bound):
            steps.append(step)
        elif isinstance(step, Anchor):
            nid = tx(step.node)
            if graph.faultable(nid):
                steps.append(Anchor(nid))
        else:
            cond = tx(step.cond)
            value = graph.const_value(cond)
            if value is None:
                steps.append(ExitIf(cond, step.when, step.returns))
            elif bool(value) == step.when:
                # Always taken: the exit verdict is the filter's result.
                return FilterIR(
                    graph=graph,
                    steps=tuple(steps),
                    result=graph.const(1 if step.returns else 0),
                )
            # else: provably never taken — drop the step.
    return FilterIR(graph=graph, steps=tuple(steps), result=tx(fir.result))


def optimize_filter(fir: FilterIR) -> FilterIR:
    """Fold + DCE one filter into a fresh minimal graph."""
    return transfer_filter(fir, ValueGraph())


@dataclass(frozen=True)
class CSEStats:
    """Before/after accounting for the cross-filter CSE pass."""

    nodes_before: int  #: sum of per-filter live node counts
    nodes_after: int   #: live nodes in the shared graph


def cse_filter_set(
    firs: Sequence[FilterIR],
) -> tuple[list[FilterIR], CSEStats]:
    """Value-number ``firs`` against each other in one shared graph."""
    before = sum(len(live_nodes(fir)) for fir in firs)
    shared = ValueGraph()
    merged = [transfer_filter(fir, shared) for fir in firs]
    after = len(set().union(*(live_nodes(fir) for fir in merged))) if merged else 0
    return merged, CSEStats(nodes_before=before, nodes_after=after)


def specialize_filter(
    fir: FilterIR,
    graph: ValueGraph,
    context: Mapping[tuple[int, int], int],
) -> FilterIR:
    """Specialize ``fir`` for a dispatch bucket.

    ``context`` maps (word index, mask) discriminants to the value the
    dispatch probe established.  Only full-word facts (mask 0xFFFF) can
    rewrite a load outright; masked facts are left to the probe (the
    load itself is not fully known).  Soundness note: a bucket is only
    entered when the packet is long enough for the probe's (possibly
    odd-tail-padded) load, which is exactly the lowering's ``Bound``
    precondition for the same word — so the rewritten constant equals
    what the body would have loaded at every reachable use.
    """
    loads = {
        index: value & 0xFFFF
        for (index, mask), value in context.items()
        if mask == 0xFFFF
    }
    return transfer_filter(fir, graph, loads=loads or None)


@dataclass(frozen=True)
class DispatchTree:
    """A recursive dispatch plan over a filter set.

    Internal nodes carry a ``discriminant`` (word, mask), per-value
    ``buckets``, and a ``fallback`` subtree for packets matching no
    bucket (or too short for the field).  Leaves carry the ``entries``
    to evaluate in application order.  Entries the analysis could not
    bucket at a node are merged *into every bucket subtree* (and form
    the fallback), preserving total order — the same discipline the
    fused engine uses at depth one.
    """

    discriminant: tuple[int, int] | None
    buckets: Mapping[int, "DispatchTree"]
    fallback: "DispatchTree | None"
    entries: tuple[TableEntry, ...]

    @property
    def depth(self) -> int:
        if self.discriminant is None:
            return 0
        deepest = max(tree.depth for tree in self.buckets.values())
        if self.fallback is not None:
            deepest = max(deepest, self.fallback.depth)
        return 1 + deepest

    @property
    def leaves(self) -> int:
        if self.discriminant is None:
            return 1
        count = sum(tree.leaves for tree in self.buckets.values())
        if self.fallback is not None:
            count += self.fallback.leaves
        return count


#: Stop splitting below this many entries; a straight chain is cheaper.
MIN_SPLIT = 2


def build_dispatch_tree(
    entries: Sequence[TableEntry],
    *,
    max_depth: int = 3,
    min_split: int = MIN_SPLIT,
    used_keys: frozenset = frozenset(),
    _depth: int = 0,
) -> DispatchTree:
    """Generalize the section 5 bucketing into a recursive plan.

    This is the predicate-reordering pass: instead of each filter
    re-testing the discriminating fields in chain order, the shared
    probe runs once up front.  Priority order is *not* reordered —
    every leaf chain sorts by ``TableEntry.order``.
    """
    ordered = tuple(sorted(entries, key=lambda e: e.order))
    if _depth >= max_depth or len(ordered) < min_split:
        return DispatchTree(None, {}, None, ordered)
    key = choose_discriminant(ordered, used_keys, min_split=min_split)
    if key is None:
        return DispatchTree(None, {}, None, ordered)

    grouped: dict[int, list[TableEntry]] = {}
    leftovers: list[TableEntry] = []
    for entry in ordered:
        value = required_value(entry.program, key)
        if value is None:
            leftovers.append(entry)
        else:
            grouped.setdefault(value, []).append(entry)

    deeper = used_keys | {key}
    buckets = {
        value: build_dispatch_tree(
            group + leftovers,
            max_depth=max_depth,
            min_split=min_split,
            used_keys=deeper,
            _depth=_depth + 1,
        )
        for value, group in grouped.items()
    }
    fallback = build_dispatch_tree(
        leftovers,
        max_depth=max_depth,
        min_split=min_split,
        used_keys=deeper,
        _depth=_depth + 1,
    )
    return DispatchTree(key, buckets, fallback, ())
