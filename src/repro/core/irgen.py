"""IR-to-Python code generation: bodies, dispatch trees, batch entry.

Three layers, bottom up:

* :func:`emit_ir_body` turns one optimized :class:`repro.core.ir.FilterIR`
  into straight-line Python statements — the registerized lowering that
  used to live as a stack-walk in :mod:`repro.core.jit` now runs off
  the DAG, so single-use values inline into their consumers, multi-use
  values get one temp, and values a surrounding chain pre-computed
  (hoisted) are referenced by name instead of recomputed.

* :func:`compile_ir_set` compiles a whole bound filter set: lower every
  filter (:func:`repro.core.ir.lower_program`), value-number them
  against each other (:func:`repro.core.opt.cse_filter_set`), build the
  dispatch tree (:func:`repro.core.opt.build_dispatch_tree`), and emit
  one generated module — nested hash probes over the discriminating
  header words, each leaf a chain of inlined bodies *specialized* to
  the probe values above it (a filter's own test of the dispatched
  field folds away; the probe already paid for it).  Values any two
  bodies in a chain share are hoisted into the chain preamble, loaded
  through a never-faulting padded form so the preamble cannot raise on
  behalf of a body whose own length guard would have exited first.

* ``classify_batch`` is the batch-at-a-time entry: the root
  discriminant word is extracted for the whole burst first —
  structure-of-arrays, with a numpy-backed packed header matrix when
  numpy is importable, the burst is large enough, and the frames are
  uniform — then each group of same-key packets runs its (already
  resolved) subtree back to back, keeping one chain's code hot in
  cache instead of re-dispatching per packet.

numpy is strictly optional: the import is soft, and every path has a
pure-Python fallback with identical results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from .decision import TableEntry
from .interpreter import LanguageLevel, ShortCircuitMode
from .ir import CONST, INDB, INDW, LOAD, Anchor, Bound, ExitIf, FilterIR, ValueGraph
from .ir import lower_program
from .opt import (
    DispatchTree,
    build_dispatch_tree,
    cse_filter_set,
    live_nodes,
    specialize_filter,
)
from .words import get_byte, get_word

try:  # pragma: no cover - exercised by the numpy-absent CI leg
    import numpy as _np
except Exception:  # pragma: no cover
    _np = None

__all__ = ["IRStats", "CompiledIRSet", "compile_ir_set", "emit_ir_body"]

#: Below this burst size the numpy packed-matrix setup costs more than
#: the python loop it replaces.
NUMPY_BATCH_MIN = 16

_CMP = {"eq": "==", "ne": "!=", "lt": "<", "le": "<=", "gt": ">", "ge": ">="}
_CMP_NEG = {"eq": "!=", "ne": "==", "lt": ">=", "le": ">", "gt": "<=", "ge": "<"}
_BITS = {"and": "&", "or": "|", "xor": "^"}
_ARITH = {"add": "+", "sub": "-", "mul": "*"}


def _binop_src(kind: str, a: str, b: str) -> str:
    """Python expression for ``a <kind> b`` (operand strings ready)."""
    if kind in _CMP:
        return f"1 if {a} {_CMP[kind]} {b} else 0"
    if kind in _BITS:
        return f"{a} {_BITS[kind]} {b}"
    if kind in _ARITH:
        return f"({a} {_ARITH[kind]} {b}) & 0xFFFF"
    if kind == "div":
        return f"{a} // {b}"
    if kind == "rsh":
        return f"{a} >> min({b}, 16)"
    if kind == "lsh":
        return f"({a} << min({b}, 16)) & 0xFFFF"
    raise AssertionError(f"unknown binop kind {kind!r}")


def emit_ir_body(
    fir: FilterIR,
    emit: Callable[[str], None],
    indent: str,
    *,
    terminate: Callable[[str], str],
    length_expr: str = "len(packet)",
    name_prefix: str = "t",
    prebound: Mapping[int, str] | None = None,
) -> None:
    """Emit one filter body from its IR.

    Same contract as the old stack-walking emitter: ``emit`` receives
    one statement at a time, ``terminate(expr)`` ends evaluation with
    the truth of ``expr`` (``'False'``/``'True'`` are the constant
    verdicts), ``length_expr`` names the packet length.  ``prebound``
    maps node ids to local names the caller already computed (chain
    hoisting); everything else materializes lazily — at its first use,
    which is always at or after its guarding ``Bound`` step.
    """
    graph = fir.graph
    live = live_nodes(fir)
    uses: dict[int, int] = {}

    def bump(nid: int) -> None:
        uses[nid] = uses.get(nid, 0) + 1

    for nid in live:
        node = graph.node(nid)
        if node.kind in (CONST, LOAD):
            continue
        bump(node.arg0)
        if node.arg1 is not None:
            bump(node.arg1)
    bump(fir.result)
    for step in fir.steps:
        if isinstance(step, ExitIf):
            bump(step.cond)
        elif isinstance(step, Anchor):
            bump(step.node)

    names: dict[int, str] = dict(prebound) if prebound else {}
    state = {"guaranteed": 0, "temp": 0}

    def load_expr(index: int) -> str:
        offset = 2 * index
        if offset + 2 <= state["guaranteed"]:
            return f"(packet[{offset}] << 8) | packet[{offset + 1}]"
        # The word may be the zero-padded odd tail byte.
        return (
            f"(packet[{offset}] << 8) | "
            f"(packet[{offset + 1}] if {length_expr} > {offset + 1} else 0)"
        )

    def raw_expr(nid: int) -> str:
        node = graph.node(nid)
        kind = node.kind
        if kind == CONST:
            return str(node.arg0)
        if kind == LOAD:
            return load_expr(node.arg0)
        if kind == INDW:
            return f"_get_word(packet, {subexpr(node.arg0)})"
        if kind == INDB:
            return f"_get_byte(packet, {subexpr(node.arg0)})"
        return _binop_src(kind, subexpr(node.arg0), subexpr(node.arg1))

    def subexpr(nid: int) -> str:
        """Operand-position expression: a name, a literal, or a
        parenthesized inline computation (single-use values only)."""
        name = names.get(nid)
        if name is not None:
            return name
        node = graph.node(nid)
        if node.kind == CONST:
            return str(node.arg0)
        if uses.get(nid, 0) > 1:
            return materialize(nid)
        return f"({raw_expr(nid)})"

    def materialize(nid: int) -> str:
        expression = raw_expr(nid)  # emits operand temps first
        state["temp"] += 1
        name = f"{name_prefix}{state['temp']}"
        emit(f"{indent}{name} = {expression}")
        names[nid] = name
        return name

    def bool_expr(nid: int, want_true: bool) -> str:
        node = graph.node(nid)
        if (
            nid not in names
            and node.kind in _CMP
            and uses.get(nid, 0) <= 1
        ):
            table = _CMP if want_true else _CMP_NEG
            return (
                f"{subexpr(node.arg0)} {table[node.kind]} "
                f"{subexpr(node.arg1)}"
            )
        expression = subexpr(nid)
        return f"{expression} != 0" if want_true else f"{expression} == 0"

    for step in fir.steps:
        if isinstance(step, Bound):
            if step.min_bytes > state["guaranteed"]:
                emit(
                    f"{indent}if {length_expr} < {step.min_bytes}: "
                    f"{terminate('False')}"
                )
                state["guaranteed"] = step.min_bytes
        elif isinstance(step, Anchor):
            if step.node not in names:
                materialize(step.node)
        else:
            verdict = "True" if step.returns else "False"
            emit(
                f"{indent}if {bool_expr(step.cond, step.when)}: "
                f"{terminate(verdict)}"
            )

    result = graph.node(fir.result)
    if result.kind == CONST:
        emit(f"{indent}{terminate('True' if result.arg0 else 'False')}")
    else:
        emit(f"{indent}{terminate(bool_expr(fir.result, True))}")


# -- whole-set compilation ---------------------------------------------------


@dataclass(frozen=True)
class IRStats:
    """Compiler accounting, published as gauges by the device layer."""

    filters: int
    nodes_before_cse: int
    nodes_after_cse: int
    dispatch_depth: int
    chains: int
    hoisted: int


@dataclass(frozen=True)
class CompiledIRSet:
    """A bound filter set compiled through the IR pipeline.

    Same classification contract as
    :class:`repro.core.fused.FusedFilterSet` — ``classify(packet)``
    returns ``(ranks, predicates)`` — plus the batch entry point and
    the pass statistics.
    """

    source: str
    size: int
    discriminant: tuple[int, int] | None  #: root (word index, mask)
    stats: IRStats
    _function: object
    _batch_function: object

    def classify(self, packet: bytes) -> tuple[Sequence[int], int]:
        return self._function(packet)  # type: ignore[operator]

    def classify_batch(
        self, packets: Sequence[bytes]
    ) -> list[tuple[Sequence[int], int]]:
        """Classify a burst; element i is ``classify(packets[i])``."""
        return self._batch_function(packets)  # type: ignore[operator]


_IR_MEMO: dict = {}
_IR_MEMO_MAX = 8


def compile_ir_set(
    entries: Sequence,
    *,
    mode: ShortCircuitMode = ShortCircuitMode.PUSH_RESULT,
    level: LanguageLevel = LanguageLevel.CLASSIC,
    max_depth: int = 3,
) -> CompiledIRSet:
    """Compile ``entries`` (:class:`repro.core.fused.FusedEntry`-shaped:
    rank/program/report/copy_all, already validated, in rank order)
    through lower → CSE → dispatch-tree → specialize → emit.

    The necessary-equality analysis behind the dispatch tree assumes
    the figure 3-6 push-result discipline, so under ``NO_PUSH`` the set
    compiles as a single chain (still one call, no dispatch) — same
    rule as the fused engine.

    Compiled sets are memoized on set value (small LRU, same scheme as
    :func:`repro.core.fused.fuse_filter_set`): SETFILTER churn that
    restores an earlier set, or several demultiplexers bound to the
    same ACL, reuse one immutable artifact instead of re-running the
    whole middle-end — at 10k rules a fresh compile is seconds, a memo
    hit is microseconds.
    """
    del level  # validation already happened; kept for engine-call parity
    entries = sorted(entries, key=lambda e: e.rank)
    memo_key = (
        tuple((e.rank, e.program, e.copy_all) for e in entries),
        mode,
        max_depth,
    )
    cached = _IR_MEMO.pop(memo_key, None)
    if cached is not None:
        _IR_MEMO[memo_key] = cached  # re-insert: dict order is LRU order
        return cached
    firs = [lower_program(e.program, e.report, mode) for e in entries]
    merged, cse_stats = cse_filter_set(firs)

    table_entries = [
        TableEntry(order=(e.rank,), handle=(e, fir), program=e.program)
        for e, fir in zip(entries, merged)
    ]
    if mode is ShortCircuitMode.PUSH_RESULT:
        tree = build_dispatch_tree(table_entries, max_depth=max_depth)
    else:
        tree = DispatchTree(None, {}, None, tuple(table_entries))

    lines: list[str] = []
    counters = {"chain": 0, "dsp": 0, "hoisted": 0}

    def emit_chain(leaf: DispatchTree, ctx: dict[tuple[int, int], int]) -> str:
        name = f"_chain_{counters['chain']}"
        counters["chain"] += 1
        chain_graph = ValueGraph()
        bodies = [
            (entry.handle[0], specialize_filter(entry.handle[1], chain_graph, ctx))
            for entry in leaf.entries
        ]
        lines.append(f"def {name}(packet, _n):")

        # Hoist values shared by two or more bodies.  Only non-faultable
        # nodes qualify, and loads use a never-raising padded form: a
        # body whose length guard would have rejected the packet never
        # reads the (then meaningless, but harmless) hoisted value.
        body_live = [live_nodes(fir) for _, fir in bodies]
        counts: dict[int, int] = {}
        for node_set in body_live:
            for nid in node_set:
                counts[nid] = counts.get(nid, 0) + 1
        hoisted: dict[int, str] = {}

        def hoist_operand(nid: int) -> str:
            if nid in hoisted:
                return hoisted[nid]
            node = chain_graph.node(nid)
            assert node.kind == CONST, "hoisted operands are hoisted or const"
            return str(node.arg0)

        for nid in sorted(n for n, c in counts.items() if c >= 2):
            node = chain_graph.node(nid)
            if node.kind == CONST or chain_graph.faultable(nid):
                continue
            hname = f"_h{nid}"
            if node.kind == LOAD:
                off = 2 * node.arg0
                expression = (
                    f"((packet[{off}] << 8) | packet[{off + 1}]) "
                    f"if _n > {off + 1} else "
                    f"((packet[{off}] << 8) if _n > {off} else 0)"
                )
            else:
                expression = _binop_src(
                    node.kind,
                    hoist_operand(node.arg0),
                    hoist_operand(node.arg1),
                )
            lines.append(f"    {hname} = {expression}")
            hoisted[nid] = hname
            counters["hoisted"] += 1

        has_copy_all = any(e.copy_all for e, _ in bodies)
        if has_copy_all:
            lines.append("    _res = []")
        examined = 0
        for entry, fir in bodies:
            examined += 1
            accept = f"_a{entry.rank}"
            guarded = any(
                chain_graph.faultable(n) for n in live_nodes(fir)
            )
            lines.append(f"    {accept} = False")
            lines.append("    for _ in _ONE:")
            indent = "        "
            if guarded:
                lines.append(f"{indent}try:")
                indent += "    "

            def terminate(expr: str, _accept: str = accept) -> str:
                if expr == "False":
                    return "break"
                return f"{_accept} = {expr}; break"

            emit_ir_body(
                fir, lines.append, indent,
                terminate=terminate,
                length_expr="_n",
                name_prefix=f"t{entry.rank}_",
                prebound=hoisted,
            )
            if guarded:
                lines.append("        except (IndexError, ZeroDivisionError):")
                lines.append("            break")
            lines.append(f"    if {accept}:")
            if entry.copy_all:
                lines.append(f"        _res.append({entry.rank})")
            elif has_copy_all:
                lines.append(f"        _res.append({entry.rank})")
                lines.append(f"        return _res, {examined}")
            else:
                lines.append(f"        return (({entry.rank},), {examined})")
        if has_copy_all:
            lines.append(f"    return _res, {examined}")
        else:
            lines.append(f"    return ((), {examined})")
        return name

    def emit_tree(
        node: DispatchTree, ctx: dict[tuple[int, int], int]
    ) -> str:
        if node.discriminant is None:
            return emit_chain(node, ctx)
        targets = {
            value: emit_tree(subtree, {**ctx, node.discriminant: value})
            for value, subtree in sorted(node.buckets.items())
        }
        fallback = emit_tree(node.fallback, ctx)
        name = f"_dsp_{counters['dsp']}"
        counters["dsp"] += 1
        index, mask = node.discriminant
        offset = 2 * index
        lines.append(f"def {name}(packet, _n):")
        lines.append(f"    if _n > {offset + 1}:")
        lines.append(
            f"        _w = ((packet[{offset}] << 8)"
            f" | packet[{offset + 1}]) & {mask:#x}"
        )
        lines.append(f"    elif _n > {offset}:")
        lines.append(f"        _w = (packet[{offset}] << 8) & {mask:#x}")
        lines.append("    else:")
        # Field entirely outside the packet: every bucketed filter's
        # necessary PUSHWORD would fault, so only fallbacks apply.
        lines.append(f"        return {fallback}(packet, _n)")
        lines.append(f"    _c = {name}_MAP.get(_w)")
        lines.append("    if _c is None:")
        lines.append(f"        return {fallback}(packet, _n)")
        lines.append("    return _c(packet, _n)")
        mapping = ", ".join(
            f"{value:#x}: {fn}" for value, fn in sorted(targets.items())
        )
        lines.append(f"{name}_MAP = {{{mapping}}}")
        lines.append(f"{name}_FB = {fallback}")
        return name

    root = emit_tree(tree, {})
    lines.append("def _classify(packet):")
    lines.append(f"    return {root}(packet, len(packet))")

    _emit_batch(lines, tree, root)

    source = "\n".join(lines) + "\n"
    namespace = {
        "_get_word": get_word,
        "_get_byte": get_byte,
        "_ONE": (0,),
        "_np": _np,
        "_NUMPY_BATCH_MIN": NUMPY_BATCH_MIN,
    }
    exec(compile(source, f"<ir set of {len(entries)}>", "exec"), namespace)
    stats = IRStats(
        filters=len(entries),
        nodes_before_cse=cse_stats.nodes_before,
        nodes_after_cse=cse_stats.nodes_after,
        dispatch_depth=tree.depth,
        chains=counters["chain"],
        hoisted=counters["hoisted"],
    )
    compiled = CompiledIRSet(
        source=source,
        size=len(entries),
        discriminant=tree.discriminant,
        stats=stats,
        _function=namespace["_classify"],
        _batch_function=namespace["_classify_batch"],
    )
    if len(_IR_MEMO) >= _IR_MEMO_MAX:
        _IR_MEMO.pop(next(iter(_IR_MEMO)))
    _IR_MEMO[memo_key] = compiled
    return compiled


def _emit_batch(lines: list[str], tree: DispatchTree, root: str) -> None:
    """Emit ``_classify_batch``: SoA extraction of the root
    discriminant for the whole burst (numpy-bulk when available), then
    one direct dispatch probe per packet with the probe callables bound
    to locals — measurably cheaper than materializing per-value groups
    first, since a group saves only one dict probe per member."""
    if tree.discriminant is None:
        lines.append("def _classify_batch(packets):")
        lines.append(f"    return [{root}(p, len(p)) for p in packets]")
        return

    index, mask = tree.discriminant
    offset = 2 * index
    lines.append("def _batch_keys(packets):")
    lines.append("    if _np is not None and len(packets) >= _NUMPY_BATCH_MIN:")
    lines.append("        _L = len(packets[0])")
    lines.append(
        f"        if _L > {offset + 1} and"
        " all(len(p) == _L for p in packets):"
    )
    lines.append(
        "            _m = _np.frombuffer(b''.join(packets),"
        " dtype=_np.uint8).reshape(len(packets), _L)"
    )
    lines.append(
        f"            return (((_m[:, {offset}].astype(_np.int32) << 8)"
        f" | _m[:, {offset + 1}]) & {mask:#x}).tolist()"
    )
    lines.append("    _keys = []")
    lines.append("    _ap = _keys.append")
    lines.append("    for p in packets:")
    lines.append("        _n = len(p)")
    lines.append(f"        if _n > {offset + 1}:")
    lines.append(
        f"            _ap(((p[{offset}] << 8) | p[{offset + 1}]) & {mask:#x})"
    )
    lines.append(f"        elif _n > {offset}:")
    lines.append(f"            _ap((p[{offset}] << 8) & {mask:#x})")
    lines.append("        else:")
    lines.append("            _ap(None)")
    lines.append("    return _keys")
    lines.append("def _classify_batch(packets):")
    lines.append(f"    _get = {root}_MAP.get")
    lines.append(f"    _fb = {root}_FB")
    lines.append("    return [")
    lines.append("        _get(_k, _fb)(_p, len(_p))")
    lines.append("        for _k, _p in zip(_batch_keys(packets), packets)")
    lines.append("    ]")
