"""Run-time filter compilation — the paper's "library procedure".

"In normal use, the filters are not directly constructed by the
programmer, but are 'compiled' at run time by a library procedure."
(section 3.1)

This module is that library.  Clients describe a predicate over packet
fields with a small expression language::

    from repro.core.compiler import word

    expr = (word(1) == 0x0002) & (word(3).masked(0x00FF) <= 100)
    program = compile_expr(expr, priority=10)

and the compiler emits a figure 3-6 instruction sequence, applying the
two optimizations the paper describes:

* **short-circuiting** — conjunctions of equality tests are chained with
  ``CAND`` so a mismatch stops evaluation immediately (figure 3-9);
* **most-discriminating test first** — within a conjunction, equality
  tests are ordered so the test least likely to match runs first ("the
  DstSocket field is checked before the packet type field, since in most
  packets the DstSocket is likely not to match").  Callers express
  likelihood with :meth:`Test.likely`; untagged equality tests on deeper
  words are assumed rarer than tests on early (type-field) words.

Masks that happen to be 0x00FF or 0xFF00 use the dedicated one-word push
actions; other masks cost a PUSHLIT.  16-bit fields need no mask at all.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Union

from .instructions import BinaryOp, Instruction, StackAction, pushword
from .program import DEFAULT_PRIORITY, FilterProgram

__all__ = [
    "word",
    "Field",
    "Test",
    "And",
    "Or",
    "Expr",
    "compile_expr",
    "CompileError",
]


class CompileError(ValueError):
    """The expression cannot be rendered in the (classic) filter language."""


_COMPARE_OPS = {
    "==": BinaryOp.EQ,
    "!=": BinaryOp.NEQ,
    "<": BinaryOp.LT,
    "<=": BinaryOp.LE,
    ">": BinaryOp.GT,
    ">=": BinaryOp.GE,
}

_MASK_ACTIONS = {
    0x00FF: StackAction.PUSH00FF,
    0xFF00: StackAction.PUSHFF00,
}

_LITERAL_ACTIONS = {
    0x0000: StackAction.PUSHZERO,
    0x0001: StackAction.PUSHONE,
    0xFFFF: StackAction.PUSHFFFF,
    0xFF00: StackAction.PUSHFF00,
    0x00FF: StackAction.PUSH00FF,
}


@dataclass(frozen=True)
class Field:
    """A (word index, mask) view of one packet field."""

    index: int
    mask: int = 0xFFFF

    def masked(self, mask: int) -> "Field":
        """Restrict the field to ``mask`` (e.g. 0x00FF for a low byte)."""
        if not 0 <= mask <= 0xFFFF:
            raise CompileError(f"mask {mask:#x} does not fit in 16 bits")
        return replace(self, mask=self.mask & mask)

    def low_byte(self) -> "Field":
        return self.masked(0x00FF)

    def high_byte(self) -> "Field":
        return self.masked(0xFF00)

    # Comparison operators build Test leaves.
    def __eq__(self, value: object) -> "Test":  # type: ignore[override]
        return self._test("==", value)

    def __ne__(self, value: object) -> "Test":  # type: ignore[override]
        return self._test("!=", value)

    def __lt__(self, value: int) -> "Test":
        return self._test("<", value)

    def __le__(self, value: int) -> "Test":
        return self._test("<=", value)

    def __gt__(self, value: int) -> "Test":
        return self._test(">", value)

    def __ge__(self, value: int) -> "Test":
        return self._test(">=", value)

    def _test(self, op: str, value: object) -> "Test":
        if not isinstance(value, int):
            raise CompileError(f"can only compare fields with ints, not {value!r}")
        if not 0 <= value <= 0xFFFF:
            raise CompileError(f"comparison value {value:#x} not a 16-bit word")
        return Test(field=self, op=op, value=value)

    __hash__ = None  # type: ignore[assignment]  # == builds Tests, not bools


@dataclass(frozen=True)
class Test:
    """Leaf predicate: ``field <op> value``."""

    field: Field
    op: str
    value: int
    match_likelihood: float = 0.5
    """Caller's estimate of how often this test matches; the compiler
    orders equality tests in a conjunction by ascending likelihood."""

    def likely(self, probability: float) -> "Test":
        """Annotate how often this test is expected to match (0..1)."""
        if not 0.0 <= probability <= 1.0:
            raise CompileError("likelihood must be within 0..1")
        return replace(self, match_likelihood=probability)

    def __and__(self, other: "Expr") -> "And":
        return And(_operands(self, other, And))

    def __or__(self, other: "Expr") -> "Or":
        return Or(_operands(self, other, Or))


@dataclass(frozen=True)
class And:
    """Conjunction of sub-expressions."""

    operands: tuple["Expr", ...]

    def __and__(self, other: "Expr") -> "And":
        return And(_operands(self, other, And))

    def __or__(self, other: "Expr") -> "Or":
        return Or(_operands(self, other, Or))


@dataclass(frozen=True)
class Or:
    """Disjunction of sub-expressions."""

    operands: tuple["Expr", ...]

    def __and__(self, other: "Expr") -> "And":
        return And(_operands(self, other, And))

    def __or__(self, other: "Or") -> "Or":
        return Or(_operands(self, other, Or))


Expr = Union[Test, And, Or]


def _operands(left: Expr, right: Expr, cls: type) -> tuple[Expr, ...]:
    """Flatten same-class nesting so And(And(a,b),c) becomes And(a,b,c)."""
    if not isinstance(right, (Test, And, Or)):
        raise CompileError(f"cannot combine filter expression with {right!r}")
    parts: list[Expr] = []
    for item in (left, right):
        if isinstance(item, cls):
            parts.extend(item.operands)
        else:
            parts.append(item)
    return tuple(parts)


def word(index: int) -> Field:
    """The ``index``-th 16-bit word of the packet, data-link header first."""
    if index < 0:
        raise CompileError("word index must be non-negative")
    return Field(index=index)


# ---------------------------------------------------------------------------
# code generation
# ---------------------------------------------------------------------------


def compile_expr(
    expr: Expr,
    priority: int = DEFAULT_PRIORITY,
    *,
    short_circuit: bool = True,
    reorder: bool = True,
) -> FilterProgram:
    """Compile an expression tree into a :class:`FilterProgram`.

    ``short_circuit=False`` disables CAND chaining (producing figure 3-8
    style code); ``reorder=False`` keeps the caller's test order.  Both
    knobs exist so the benchmarks can measure exactly what each
    optimization buys (the figure 3-8 vs 3-9 comparison).
    """
    code: list[Instruction] = []
    _emit(expr, code, top_level=True, short_circuit=short_circuit, reorder=reorder)
    return FilterProgram(code, priority=priority)


def _emit(
    expr: Expr,
    code: list[Instruction],
    *,
    top_level: bool,
    short_circuit: bool,
    reorder: bool,
) -> None:
    """Append instructions leaving the expression's truth value on top."""
    if isinstance(expr, Test):
        _emit_test(expr, code, combine=None)
        return

    if isinstance(expr, Or):
        first = True
        for operand in expr.operands:
            _emit(operand, code, top_level=False,
                  short_circuit=short_circuit, reorder=reorder)
            if not first:
                code.append(Instruction(StackAction.NOPUSH, BinaryOp.OR))
            first = False
        return

    if not isinstance(expr, And):
        raise CompileError(f"cannot compile {expr!r}")

    # Conjunction: CAND-chain the equality leaves, AND-fold the rest.
    eq_tests = [op for op in expr.operands
                if isinstance(op, Test) and op.op == "=="]
    others = [op for op in expr.operands
              if not (isinstance(op, Test) and op.op == "==")]

    if reorder:
        # Least likely to match first (fig 3-9's DstSocket-before-type);
        # deeper words break ties because type-ish fields live early.
        eq_tests.sort(key=lambda t: (t.match_likelihood, -t.field.index))

    use_cand = bool(short_circuit and top_level and eq_tests)
    if use_cand:
        # When the conjunction is nothing but equality tests, the final
        # one uses a plain EQ — terminating on the last test saves
        # nothing, and this matches figure 3-9's final "packet type ==
        # Pup" test.  CAND leaves a TRUE on the stack each time it
        # continues (figure 3-6 semantics), so the final value lands
        # above a pile of TRUEs and the top of stack is still the
        # predicate value.
        if others:
            chain, tail = eq_tests, None
        else:
            chain, tail = eq_tests[:-1], eq_tests[-1]
        for test in chain:
            _emit_test(test, code, combine=BinaryOp.CAND)
        if tail is not None:
            _emit_test(tail, code, combine=None)
        remaining: list[Expr] = others
    else:
        remaining = list(expr.operands)

    for index, operand in enumerate(remaining):
        _emit(operand, code, top_level=False,
              short_circuit=short_circuit, reorder=reorder)
        if index > 0:
            code.append(Instruction(StackAction.NOPUSH, BinaryOp.AND))

    if not code:
        raise CompileError("empty conjunction")


def _emit_test(test: Test, code: list[Instruction], combine: BinaryOp | None) -> None:
    """Emit one field test.

    Leaves the boolean on the stack; if ``combine`` is CAND, the final
    push of the comparison value carries the CAND so failure terminates
    the program (the two-instruction idiom of figure 3-9).
    """
    field = test.field
    # Push (and mask) the field.
    code.append(Instruction(pushword(field.index)))
    if field.mask != 0xFFFF:
        mask_action = _MASK_ACTIONS.get(field.mask)
        if mask_action is not None:
            code.append(Instruction(mask_action, BinaryOp.AND))
        else:
            code.append(
                Instruction(StackAction.PUSHLIT, BinaryOp.AND, literal=field.mask)
            )

    operator = _COMPARE_OPS[test.op] if combine is None else combine
    if combine is not None and test.op != "==":
        raise CompileError("short-circuit chaining only supports equality")

    value_action = _LITERAL_ACTIONS.get(test.value)
    if value_action is not None:
        code.append(Instruction(value_action, operator))
    else:
        code.append(
            Instruction(StackAction.PUSHLIT, operator, literal=test.value)
        )
