"""The kernel demultiplexer — the figure 4-1 application loop.

"When a packet is received, it is checked against each filter, in order
of decreasing priority, until it is accepted or until all filters have
rejected it."

Responsibilities implemented here, straight from sections 3.2 and 4:

* priority-ordered application, first-match delivery;
* the copy-all option: an accepting port may let the packet continue to
  lower-priority filters ("multiple copies of such packets may be
  delivered");
* same-priority reordering: "the interpreter may occasionally reorder
  such filters to place the busier ones first" — every
  ``REORDER_INTERVAL`` deliveries, filters within one priority class are
  re-sorted by how often they have accepted;
* accounting: predicates tested and filter instructions executed per
  packet, the quantities behind the section 6.1 cost estimate
  ``0.8 mSec + 0.122 mSec × predicates`` and table 6-10;
* engine selection — the baseline checked interpreter, the section 7
  prevalidated fast path, the compiled-closure "machine code" path, the
  optional decision-table index over the whole filter set, the fused
  engine that compiles the entire set into one dispatch function
  (:mod:`repro.core.fused`), and the IR engine that lowers the set
  through a real compiler middle-end — cross-filter CSE, dispatch-tree
  predicate reordering, batch-at-a-time classification
  (:mod:`repro.core.ir` / :mod:`repro.core.opt` /
  :mod:`repro.core.irgen`);
* the opt-in **flow cache** (any engine): a direct-mapped memo of
  classification results keyed by the packet's discriminating header
  prefix, invalidated whenever the filter set or its order changes;
* batched delivery (:meth:`PacketFilterDemux.deliver_batch`) so the
  receive path can charge one dispatch overhead per burst — the
  section 6.4 batching argument applied to demultiplexing itself.
"""

from __future__ import annotations

import enum
from bisect import insort
from dataclasses import dataclass
from typing import Iterable, Sequence

from .decision import DecisionTable
from .fused import FlowCache, FusedEntry, FusedFilterSet, fuse_filter_set
from .irgen import CompiledIRSet, IRStats, compile_ir_set
from .interpreter import (
    LanguageLevel,
    ShortCircuitMode,
    evaluate,
)
from .jit import CompiledFilter, compile_filter
from .port import Port
from .program import FilterProgram
from .validator import ValidationReport, validate

__all__ = ["Engine", "DeliveryReport", "PacketFilterDemux"]


class Engine(enum.Enum):
    """How bound filters are evaluated against packets."""

    CHECKED = "checked"          #: section 4 interpreter, all runtime checks
    PREVALIDATED = "prevalidated"  #: section 7: checks hoisted to bind time
    COMPILED = "compiled"        #: section 7: filters lowered to closures
    FUSED = "fused"              #: whole filter set fused into one dispatch
    IR = "ir"                    #: set compiled through the SSA/DAG middle-end


@dataclass(frozen=True)
class DeliveryReport:
    """What happened to one received packet."""

    accepted_by: tuple[int, ...] = ()   #: port ids, in delivery order
    dropped_by: tuple[int, ...] = ()    #: accepted but queue-overflowed
    nobuf_by: tuple[int, ...] = ()      #: accepted but the buffer pool refused
    predicates_tested: int = 0          #: filters applied before resolution
    instructions_executed: int = 0      #: total interpreter steps (0 for JIT)

    @property
    def accepted(self) -> bool:
        return (
            bool(self.accepted_by)
            or bool(self.dropped_by)
            or bool(self.nobuf_by)
        )


@dataclass
class _Binding:
    """A port, its filter, and everything computed at bind time."""

    port: Port
    program: FilterProgram
    sequence: int
    report: ValidationReport | None = None
    compiled: CompiledFilter | None = None
    accepts: int = 0
    rank: int = 0
    """Current position in application order; reassigned after each
    attach/detach/reorder so the decision table, the fused program and
    the linear scan always agree on ordering."""

    @property
    def order(self) -> tuple[int, int]:
        """Ascending sort = application order (priority high first)."""
        return (-self.program.priority, self.sequence)


class PacketFilterDemux:
    """Priority-ordered packet demultiplexer over a set of ports.

    ``use_decision_table=True`` additionally indexes the bound filter
    set (rebuilt at each bind/unbind — bind time, not packet time) so a
    received packet only visits filters whose necessary equality
    conditions it satisfies.  The table requires the default
    ``ShortCircuitMode.PUSH_RESULT`` semantics; with ``NO_PUSH`` the
    demultiplexer silently stays on the linear scan.  ``Engine.FUSED``
    subsumes the table: the whole set compiles into one dispatch
    function at bind time (under ``NO_PUSH`` it fuses without field
    dispatch).

    ``flow_cache=True`` (or an explicit power-of-two size) memoizes
    classification per discriminating header prefix for any engine; the
    cache flushes through :meth:`invalidate` whenever the filter set,
    its order, or a port's copy-all flag changes, and disables itself
    while any bound filter uses indirect (computed-offset) loads, since
    those can read outside the bind-time key.
    """

    REORDER_INTERVAL = 64
    """Deliveries between busier-filter-first reorder passes."""

    def __init__(
        self,
        *,
        engine: Engine = Engine.CHECKED,
        mode: ShortCircuitMode = ShortCircuitMode.PUSH_RESULT,
        level: LanguageLevel = LanguageLevel.CLASSIC,
        use_decision_table: bool = False,
        reorder_same_priority: bool = True,
        flow_cache: bool | int = False,
    ) -> None:
        # Accept the enum or its string value ("ir", "fused", ...):
        # every engine check below is an identity test, so a raw string
        # would silently degrade to the checked-interpreter fallback.
        self.engine = engine if isinstance(engine, Engine) else Engine(engine)
        self.mode = mode
        self.level = level
        self.reorder_same_priority = reorder_same_priority
        self._use_table = (
            use_decision_table and mode is ShortCircuitMode.PUSH_RESULT
        )
        if flow_cache:
            size = (
                flow_cache
                if isinstance(flow_cache, int) and flow_cache is not True
                else FlowCache.DEFAULT_SIZE
            )
            self.flow_cache: FlowCache | None = FlowCache(size)
        else:
            self.flow_cache = None
        self._cache_usable = True
        self._cache_key_bytes = 0
        self._bindings: dict[int, _Binding] = {}  # port_id -> binding
        self._order: list[_Binding] = []          # application order
        self._table: DecisionTable | None = None
        self._fused: FusedFilterSet | None = None
        self._ir: CompiledIRSet | None = None
        self._hot_classify = None
        self._reports: dict = {}
        self._stale = False
        self._sequence = 0
        self._deliveries = 0
        self.packets_seen = 0
        self.packets_unclaimed = 0
        self.total_predicates_tested = 0

    # -- binding ----------------------------------------------------------

    def attach(self, port: Port) -> None:
        """Bind ``port`` (which must have a filter) into the demux.

        Validation happens here — bad programs raise
        :class:`repro.core.validator.ValidationError` out of the ioctl,
        never at packet time.  Rebinding an attached port's filter is
        done by detaching and attaching again (the device layer wraps
        this as the single SETFILTER ioctl).
        """
        if port.program is None:
            raise ValueError(f"port {port.port_id} has no filter bound")
        if port.port_id in self._bindings:
            raise ValueError(f"port {port.port_id} is already attached")
        binding = _Binding(
            port=port, program=port.program, sequence=self._sequence
        )
        self._sequence += 1
        # Structural validation happens for every engine — a program
        # the interpreter could only ever fault on is an ioctl error,
        # not a per-packet surprise.  Only the non-CHECKED engines
        # additionally *rely* on the report to skip runtime checks.
        binding.report = validate(
            port.program, level=self.level, mode=self.mode
        )
        if self.engine is Engine.COMPILED:
            binding.compiled = compile_filter(
                port.program, mode=self.mode, level=self.level
            )
        self._bindings[port.port_id] = binding
        # Insertion keeps the list sorted in O(log n) comparisons plus
        # one memmove; a per-attach full sort re-evaluates the key for
        # every binding, which made a 10k-rule SETFILTER storm
        # quadratic in practice (tens of seconds at firewall scale).
        insort(self._order, binding, key=lambda b: b.order)
        self._invalidate()

    def detach(self, port: Port) -> None:
        binding = self._bindings.pop(port.port_id, None)
        if binding is None:
            raise ValueError(f"port {port.port_id} is not attached")
        self._order.remove(binding)
        self._invalidate()

    def attached_ports(self) -> list[Port]:
        return [binding.port for binding in self._order]

    def invalidate(self) -> None:
        """Recompute everything derived from the bound filter set.

        The device layer calls this when per-port state the compiled
        artifacts bake in changes out-of-band (a live copy-all flip);
        attach/detach/reorder route through it internally.
        """
        self._invalidate()

    def _invalidate(self) -> None:
        """The single choke point for order mutations.

        Every attach, detach and reorder lands here, so the rank
        assignment, the decision table, the fused dispatch function and
        the flow cache can never disagree about the filter set: they
        all go stale together.  Construction of the derived artifacts
        — including rank assignment, which walks every binding — is
        deferred to the first classification (:meth:`_refresh`):
        binding N filters costs one validation each, not N whole-set
        recompilations or N rank sweeps — without the deferral, an
        ACL-scale SETFILTER storm is quadratic.
        """
        self._table = None
        self._fused = None
        self._ir = None
        self._hot_classify = None
        self._stale = True
        if self.flow_cache is not None:
            self.flow_cache.invalidate()

    def _refresh(self) -> None:
        """Build whatever the last mutation tore down, exactly once."""
        if not self._stale:
            return
        self._stale = False
        for rank, binding in enumerate(self._order):
            binding.rank = rank
        if self._use_table:
            self._table = DecisionTable.build(
                (binding, binding.program, (binding.rank,))
                for binding in self._order
            )
        if self.engine in (Engine.FUSED, Engine.IR):
            entries = [
                FusedEntry(
                    rank=binding.rank,
                    program=binding.program,
                    report=binding.report,
                    copy_all=binding.port.copy_all,
                )
                for binding in self._order
            ]
            if self.engine is Engine.FUSED:
                self._fused = fuse_filter_set(
                    entries, mode=self.mode, level=self.level
                )
                self._hot_classify = self._fused._function
            else:
                self._ir = compile_ir_set(
                    entries, mode=self.mode, level=self.level
                )
                self._hot_classify = self._ir._function
        if self.flow_cache is not None:
            self._rekey_cache()

    def _rekey_cache(self) -> None:
        """Recompute the flow-cache key width: every byte any bound
        filter can statically read.  Indirect loads compute offsets at
        packet time — no bind-time prefix bounds them, so they disable
        the cache until the offending filter detaches."""
        max_index = -1
        usable = True
        for binding in self._order:
            for ins in binding.program.instructions:
                if ins.is_indirect:
                    usable = False
                elif ins.is_pushword:
                    index = ins.push_index
                    if index > max_index:
                        max_index = index
        self._cache_usable = usable
        self._cache_key_bytes = 2 * (max_index + 1)

    # -- the application loop (figure 4-1) ------------------------------------

    def deliver(
        self,
        packet: bytes,
        timestamp: float | None = None,
        packet_id: int | None = None,
    ) -> DeliveryReport:
        """Run the received packet through the filters; queue on accept.

        Returns the per-packet accounting the cost model charges for.
        A flow-cache hit skips classification entirely and reports zero
        predicates/instructions — the work genuinely not done.
        """
        if self._stale:
            self._refresh()
        ranks: Sequence[int] | None = None
        predicates = instructions = 0
        cache = self.flow_cache
        key = None
        if cache is not None and self._cache_usable:
            key = bytes(packet[: self._cache_key_bytes])
            ranks = cache.lookup(key)
        if ranks is None:
            # The compiled whole-set engines expose their generated
            # function directly; calling it here skips two wrapper
            # frames on the per-packet path.
            hot = self._hot_classify
            if hot is not None:
                ranks, predicates = hot(packet)
            else:
                ranks, predicates, instructions = self._classify(packet)
            if key is not None:
                cache.store(key, tuple(ranks))
        return self._finish(
            packet, ranks, predicates, instructions, timestamp, packet_id
        )

    def _finish(
        self,
        packet: bytes,
        ranks: Sequence[int],
        predicates: int,
        instructions: int,
        timestamp: float | None,
        packet_id: int | None,
        *,
        reorder: bool = True,
    ) -> DeliveryReport:
        """Queue an already-classified packet and account for it — the
        non-memoizable tail of :meth:`deliver`, shared with the batch
        path (which defers the reorder tick to the end of the burst so
        classification and delivery order stay consistent batch-wide).
        """
        self.packets_seen += 1
        self.total_predicates_tested += predicates
        self._deliveries += 1
        tick = (
            reorder
            and self.reorder_same_priority
            and self._deliveries % self.REORDER_INTERVAL == 0
        )

        # Fast path: exactly one accepting filter whose enqueue succeeds
        # — the overwhelming steady-state case.  No per-packet list
        # churn, and since DeliveryReport is frozen, identical outcomes
        # share one cached instance instead of paying the (slow) frozen
        # dataclass constructor every packet.
        if len(ranks) == 1:
            binding = self._order[ranks[0]]
            port = binding.port
            binding.accepts += 1
            if port.enqueue(packet, timestamp, packet_id):
                if tick:
                    self._reorder()
                key = (port.port_id, predicates, instructions)
                report = self._reports.get(key)
                if report is None:
                    report = DeliveryReport(
                        accepted_by=(port.port_id,),
                        predicates_tested=predicates,
                        instructions_executed=instructions,
                    )
                    if len(self._reports) < 4096:
                        self._reports[key] = report
                return report
            # Single-filter drop: same caching as the accept path —
            # this is the steady state of every overload scenario, so
            # it must not be slower than acceptance.
            if tick:
                self._reorder()
            if getattr(port, "last_drop_cause", None) == "nobuf":
                self.packets_unclaimed += 1
                key = (port.port_id, predicates, instructions, "nobuf")
                report = self._reports.get(key)
                if report is None:
                    report = DeliveryReport(
                        nobuf_by=(port.port_id,),
                        predicates_tested=predicates,
                        instructions_executed=instructions,
                    )
                    if len(self._reports) < 4096:
                        self._reports[key] = report
                return report
            key = (port.port_id, predicates, instructions, "overflow")
            report = self._reports.get(key)
            if report is None:
                report = DeliveryReport(
                    dropped_by=(port.port_id,),
                    predicates_tested=predicates,
                    instructions_executed=instructions,
                )
                if len(self._reports) < 4096:
                    self._reports[key] = report
            return report
        else:
            accepted_by, dropped_by, nobuf_by = [], [], []
            order = self._order
            for rank in ranks:
                binding = order[rank]
                binding.accepts += 1
                if binding.port.enqueue(packet, timestamp, packet_id):
                    accepted_by.append(binding.port.port_id)
                elif getattr(binding.port, "last_drop_cause", None) == "nobuf":
                    nobuf_by.append(binding.port.port_id)
                else:
                    dropped_by.append(binding.port.port_id)

        if not accepted_by and not dropped_by:
            self.packets_unclaimed += 1
        if tick:
            self._reorder()

        return DeliveryReport(
            accepted_by=tuple(accepted_by),
            dropped_by=tuple(dropped_by),
            nobuf_by=tuple(nobuf_by),
            predicates_tested=predicates,
            instructions_executed=instructions,
        )

    def cached_targets(self, packet: bytes) -> tuple[Port, ...] | None:
        """Flow-cache peek for admission control: the ports ``packet``'s
        cached classification would deliver to, or None when the cache
        cannot say (no cache, cache unusable, miss).

        Uses :meth:`FlowCache.peek`, so the hit/miss statistics of the
        real classification stay undistorted; an empty tuple is a
        *positive* answer (cached as matching no filter).
        """
        if self._stale:
            self._refresh()
        cache = self.flow_cache
        if cache is None or not self._cache_usable:
            return None
        ranks = cache.peek(bytes(packet[: self._cache_key_bytes]))
        if ranks is None:
            return None
        return tuple(self._order[rank].port for rank in ranks)

    def deliver_batch(
        self,
        packets: Iterable[bytes],
        timestamp: float | None = None,
        packet_ids: Sequence[int | None] | None = None,
    ) -> list[DeliveryReport]:
        """Deliver a burst of packets in one call.

        The per-packet contract (ordering, copy-all, accounting) is
        identical to calling :meth:`deliver` in a loop; the point is
        the caller's side — the device layer charges its fixed dispatch
        overhead once per batch instead of once per packet, mirroring
        the section 6.4 batching argument on the read path.

        Under :attr:`Engine.IR` the burst is classified batch-at-a-time
        (``classify_batch``: the discriminating header word is
        extracted for the whole burst up front — numpy-bulk when
        available — then each packet takes one direct dispatch probe),
        with one difference from the loop: the same-priority reorder
        tick is deferred to the end of the burst, so every packet in it
        is classified by the same compiled set.
        """
        if self._stale:
            self._refresh()
        packets = list(packets)
        if packet_ids is None:
            packet_ids = [None] * len(packets)
        if self.engine is not Engine.IR or self._ir is None:
            deliver = self.deliver
            return [
                deliver(packet, timestamp, pid)
                for packet, pid in zip(packets, packet_ids)
            ]

        cache = self.flow_cache
        usable = cache is not None and self._cache_usable
        results: list[tuple[Sequence[int], int] | None] = [None] * len(packets)
        if usable:
            keys = [bytes(p[: self._cache_key_bytes]) for p in packets]
            # Replay the scalar loop's cache schedule exactly: packet
            # i's lookup must see the cache as it stands after every
            # store from packets < i of the same burst.  (An earlier
            # version did all lookups before any store, so a pre-cached
            # entry evicted by an earlier in-burst colliding store
            # still counted as a hit — hit/miss parity with deliver()
            # drifted; pinned by tests/difftest/test_flowcache_parity.)
            # In-burst stores are simulated as a slot overlay so the
            # missing keys can still be classified in one
            # classify_batch call; the real stores are applied
            # afterwards in scalar order.
            overlay: dict[int, bytes] = {}  # slot -> key last "stored"
            need: dict[bytes, int] = {}     # missing key -> first index
            pend_hit: list[int] = []        # resolve with 0 predicates
            pend_miss: list[int] = []       # resolve with full predicates
            store_order: list[int] = []     # miss indices, packet order
            hits = misses = 0
            for i, key in enumerate(keys):
                slot = cache.slot(key)
                burst_key = overlay.get(slot)
                if burst_key is not None:
                    hit = burst_key == key
                    ranks = None
                else:
                    ranks = cache.peek(key)
                    hit = ranks is not None
                if hit:
                    hits += 1
                    if ranks is not None:
                        results[i] = (ranks, 0)
                    else:
                        pend_hit.append(i)
                else:
                    misses += 1
                    need.setdefault(key, i)
                    overlay[slot] = key
                    store_order.append(i)
                    pend_miss.append(i)
            classified = self._ir.classify_batch(
                [packets[i] for i in need.values()]
            )
            by_key = dict(zip(need, classified))
            cache.hits += hits
            cache.misses += misses
            for i in store_order:
                cache.store(keys[i], tuple(by_key[keys[i]][0]))
            for i in pend_miss:
                results[i] = by_key[keys[i]]
            for i in pend_hit:
                results[i] = (by_key[keys[i]][0], 0)
        else:
            for i, outcome in enumerate(self._ir.classify_batch(packets)):
                results[i] = outcome

        start = self._deliveries
        # Inlined single-accept tail: same accounting and caching as
        # :meth:`_finish`'s fast path, minus one Python call frame per
        # packet — the difference between the batch evaluator beating
        # the scalar loop and merely matching it.  Anything but the
        # plain one-filter case falls back to :meth:`_finish`;
        # equivalence with the deliver() loop is pinned by the
        # property suite and tests/sim/test_batched_input.py.
        order = self._order
        report_cache = self._reports
        finish = self._finish
        reports: list[DeliveryReport] = []
        append = reports.append
        for packet, pid, (ranks, predicates) in zip(
            packets, packet_ids, results
        ):
            if len(ranks) != 1:
                append(
                    finish(
                        packet, ranks, predicates, 0, timestamp, pid,
                        reorder=False,
                    )
                )
                continue
            binding = order[ranks[0]]
            port = binding.port
            binding.accepts += 1
            self.packets_seen += 1
            self.total_predicates_tested += predicates
            self._deliveries += 1
            if port.enqueue(packet, timestamp, pid):
                key = (port.port_id, predicates, 0)
            elif getattr(port, "last_drop_cause", None) == "nobuf":
                self.packets_unclaimed += 1
                key = (port.port_id, predicates, 0, "nobuf")
            else:
                key = (port.port_id, predicates, 0, "overflow")
            report = report_cache.get(key)
            if report is None:
                if len(key) == 3:
                    report = DeliveryReport(
                        accepted_by=(port.port_id,),
                        predicates_tested=predicates,
                    )
                elif key[3] == "nobuf":
                    report = DeliveryReport(
                        nobuf_by=(port.port_id,),
                        predicates_tested=predicates,
                    )
                else:
                    report = DeliveryReport(
                        dropped_by=(port.port_id,),
                        predicates_tested=predicates,
                    )
                if len(report_cache) < 4096:
                    report_cache[key] = report
            append(report)
        if (
            self.reorder_same_priority
            and self._deliveries // self.REORDER_INTERVAL
            != start // self.REORDER_INTERVAL
        ):
            self._reorder()
        return reports

    def _classify(self, packet: bytes) -> tuple[Sequence[int], int, int]:
        """Which bindings accept ``packet``, and what it cost to learn.

        Returns ``(ranks, predicates, instructions)`` with ranks in
        delivery order — the memoizable core of :meth:`deliver`,
        independent of queueing."""
        if self._stale:
            self._refresh()
        if self.engine is Engine.FUSED:
            assert self._fused is not None
            ranks, predicates = self._fused.classify(packet)
            return ranks, predicates, 0

        if self.engine is Engine.IR:
            assert self._ir is not None
            ranks, predicates = self._ir.classify(packet)
            return ranks, predicates, 0

        if self._table is not None:
            scan: Iterable[_Binding] = (
                entry.handle for entry in self._table.entries_for(packet)
            )
        else:
            scan = self._order

        ranks_out: list[int] = []
        predicates = 0
        instructions = 0
        for binding in scan:
            predicates += 1
            matched, executed = self._apply(binding, packet)
            instructions += executed
            if not matched:
                continue
            ranks_out.append(binding.rank)
            # "Normally, once a packet has been accepted ... it will not
            # be submitted to the filters of any other processes" unless
            # the accepting port opted into copy-all.
            if not binding.port.copy_all:
                break
        return ranks_out, predicates, instructions

    def _apply(self, binding: _Binding, packet: bytes) -> tuple[bool, int]:
        """Evaluate one filter; returns (accepted, instructions executed)."""
        if self.engine is Engine.COMPILED:
            assert binding.compiled is not None
            return binding.compiled.accepts(packet), 0
        if self.engine is Engine.PREVALIDATED:
            assert binding.report is not None
            if len(packet) < binding.report.min_packet_bytes:
                # The one check the fast path still needs, done once per
                # (filter, packet) instead of once per PUSHWORD.
                return False, 0
            result = evaluate(
                binding.program, packet, mode=self.mode, checked=False
            )
            return result.accepted, result.instructions_executed
        result = evaluate(
            binding.program, packet, mode=self.mode, level=self.level
        )
        return result.accepted, result.instructions_executed

    def _reorder(self) -> None:
        """Busier-filters-first within each priority class (section 3.2).

        Only the relative order of *equal-priority* filters changes, so
        the reorder "occasionally" applied by the interpreter never
        alters which port wins when priorities differ.
        """
        before = list(self._order)
        self._order.sort(
            key=lambda b: (-b.program.priority, -b.accepts, b.sequence)
        )
        if self._order != before:
            self._invalidate()

    # -- statistics -------------------------------------------------------

    @property
    def mean_predicates_tested(self) -> float:
        """The section 6.1 statistic (paper measured 6.3)."""
        if self.packets_seen == 0:
            return 0.0
        return self.total_predicates_tested / self.packets_seen

    @property
    def ir_stats(self) -> IRStats | None:
        """Compiler statistics for the current IR set (None unless the
        IR engine is active and a set has been compiled)."""
        if self._stale and self.engine is Engine.IR:
            self._refresh()
        if self._ir is None:
            return None
        return self._ir.stats
