"""Named multi-segment topologies: builders for the sharded simulator.

Segment builders here are referenced by dotted path
(``"repro.bench.topologies:flow_storm_segment"``) so a
:class:`~repro.sim.topology.TopologySpec` stays picklable into shard
subprocesses under any ``multiprocessing`` start method.

The workhorse is the **flow-cache miss storm**: every segment runs a
zero-cost blaster offering a multiple of the receiver's saturation rate
while cycling through more spoofed source addresses than the receiver's
flow cache has slots — the "millions of short flows" regime where a
direct-mapped memo thrashes.  A slice of the traffic crosses segments
(over the bridges), so the storm also exercises the conservative
synchronization path and gives the sharding difftest oracle real
cross-shard events to get wrong.
"""

from __future__ import annotations

from ..core.ioctl import PFIoctl
from ..sim import Ioctl, Open, Read, Sleep, Write
from ..sim.costs import FREE
from ..sim.topology import BridgeSpec, SegmentSpec, TopologySpec
from .scenarios import TEST_ETHERTYPE, _test_filter, receive_saturation_pps

__all__ = [
    "flow_storm_segment",
    "flow_storm_topology",
    "TOPOLOGIES",
    "named_topology",
]


def _spoofed_source(segment_index: int, flow: int) -> bytes:
    """A distinct source address per (segment, flow).

    Spoofed sources live under the ``0xEE`` prefix, far from the
    station-address namespace; each distinct source gives the flow
    cache a distinct key for the same matching filter — the miss storm.
    """
    return (
        b"\xee"
        + segment_index.to_bytes(2, "big")
        + flow.to_bytes(3, "big")
    )


def flow_storm_segment(
    ctx,
    *,
    duration: float = 0.5,
    offered_multiplier: float = 2.0,
    flows: int = 256,
    cache_size: int = 64,
    frame_bytes: int = 128,
    cross_every: int = 16,
    cross_target: str | None = None,
    queue_limit: int = 64,
    input_queue_limit: int = 64,
) -> None:
    """One segment of the flow-cache miss storm.

    A receiver with a ``cache_size``-slot flow cache reads everything
    matching the test filter; a free-CPU blaster offers
    ``offered_multiplier`` times the receiver's saturation rate for
    ``duration`` simulated seconds, rotating through ``flows`` spoofed
    source addresses (``flows > cache_size`` guarantees steady-state
    misses).  Every ``cross_every``-th frame goes to ``cross_target``'s
    receiver instead — bridged, cross-shard traffic.
    """
    receiver = ctx.host("receiver", input_queue_limit=input_queue_limit)
    receiver.install_packet_filter(flow_cache=cache_size)
    blaster = ctx.host("blaster", costs=FREE)
    blaster.install_packet_filter()

    saturation = receive_saturation_pps(ctx.world.costs, frame_bytes)
    pace = 1.0 / (saturation * offered_multiplier)
    rng = ctx.rng("flow-storm", "pace")
    body = bytes(max(0, frame_bytes - receiver.link.header_length))
    local_frames = [
        blaster.link.frame(
            receiver.address,
            _spoofed_source(ctx.index, flow),
            TEST_ETHERTYPE,
            body,
        )
        for flow in range(flows)
    ]
    cross_frame = None
    if cross_target is not None:
        cross_frame = blaster.link.frame(
            ctx.address_of(cross_target, 1),
            blaster.address,
            TEST_ETHERTYPE,
            body,
        )
    sent = {"local": 0, "cross": 0}

    def blast():
        fd = yield Open("pf")
        yield Sleep(0.02)  # let the reader bind its filter first
        sequence = 0
        while ctx.world.now < duration:
            if cross_frame is not None and sequence % cross_every == (
                cross_every - 1
            ):
                yield Write(fd, cross_frame)
                sent["cross"] += 1
            else:
                yield Write(fd, local_frames[sequence % flows])
                sent["local"] += 1
            sequence += 1
            # Jittered pacing from the segment's derived stream: the
            # same draws no matter which process runs this segment.
            yield Sleep(pace * (0.75 + 0.5 * rng.random()))

    def read_loop():
        fd = yield Open("pf")
        yield Ioctl(fd, PFIoctl.SETFILTER, _test_filter())
        yield Ioctl(fd, PFIoctl.SETBATCH, True)
        yield Ioctl(fd, PFIoctl.SETQUEUELEN, queue_limit)
        while True:
            yield Read(fd)

    receiver.spawn("reader", read_loop())
    blaster.spawn("blaster", blast())

    cache = receiver.packet_filter.demux.flow_cache

    def cache_report() -> dict:
        return {
            "hits": cache.hits,
            "misses": cache.misses,
            "hit_rate": cache.hit_rate,
            "size": cache_size,
            "flows": flows,
        }

    ctx.report("flow_cache", cache_report)
    ctx.report("sent", lambda: dict(sent))
    ctx.report(
        "received", lambda: receiver.kernel.stats.frames_received
    )


def flow_storm_topology(
    *,
    segments: int = 2,
    seed: int = 0,
    duration: float = 0.5,
    bridge_delay: float = 2e-3,
    ledger: bool = True,
    telemetry: bool = False,
    **options,
) -> TopologySpec:
    """A chain of ``segments`` flow-storm segments.

    Segment ``lan{i}`` bridges to ``lan{i+1}``; cross traffic aims at
    the next segment around the chain (the last segment's crosses the
    whole chain back to the first — multi-hop forwarding).  Extra
    keyword ``options`` pass through to every
    :func:`flow_storm_segment`.
    """
    if segments < 1:
        raise ValueError("need at least one segment")
    names = [f"lan{index}" for index in range(segments)]
    specs = []
    for index, name in enumerate(names):
        cross = names[(index + 1) % segments] if segments > 1 else None
        specs.append(
            SegmentSpec(
                name,
                "repro.bench.topologies:flow_storm_segment",
                {
                    "duration": duration,
                    "cross_target": cross,
                    **options,
                },
            )
        )
    bridges = tuple(
        BridgeSpec(names[index], names[index + 1], delay=bridge_delay)
        for index in range(segments - 1)
    )
    return TopologySpec(
        segments=tuple(specs),
        bridges=bridges,
        seed=seed,
        ledger=ledger,
        telemetry=telemetry,
    )


TOPOLOGIES = {
    "flow_storm": flow_storm_topology,
}
"""Topology factories the ``python -m repro shard`` CLI can name."""


def named_topology(name: str, **kwargs) -> TopologySpec:
    """Build a named topology (see :data:`TOPOLOGIES`)."""
    try:
        factory = TOPOLOGIES[name]
    except KeyError:
        known = ", ".join(sorted(TOPOLOGIES))
        raise LookupError(f"unknown topology {name!r} (have: {known})")
    return factory(**kwargs)
