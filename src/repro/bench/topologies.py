"""Named multi-segment topologies: builders for the sharded simulator.

Segment builders here are referenced by dotted path
(``"repro.bench.topologies:flow_storm_segment"``) so a
:class:`~repro.sim.topology.TopologySpec` stays picklable into shard
subprocesses under any ``multiprocessing`` start method.

The workhorse is the **flow-cache miss storm**: every segment runs a
zero-cost blaster offering a multiple of the receiver's saturation rate
while cycling through more spoofed source addresses than the receiver's
flow cache has slots — the "millions of short flows" regime where a
direct-mapped memo thrashes.  A slice of the traffic crosses segments
(over the bridges), so the storm also exercises the conservative
synchronization path and gives the sharding difftest oracle real
cross-shard events to get wrong.
"""

from __future__ import annotations

from ..core.ioctl import PFIoctl
from ..protocols.vmtp import VMTPClient, VMTPServer
from ..sim import Ioctl, Open, Read, Sleep, Write
from ..sim.costs import FREE
from ..sim.faults import link_partition
from ..sim.topology import BridgeSpec, SegmentSpec, TopologySpec
from .scenarios import TEST_ETHERTYPE, _test_filter, receive_saturation_pps

__all__ = [
    "flow_storm_segment",
    "flow_storm_topology",
    "partition_storm_segment",
    "partition_storm_topology",
    "TOPOLOGIES",
    "named_topology",
]


def _spoofed_source(segment_index: int, flow: int) -> bytes:
    """A distinct source address per (segment, flow).

    Spoofed sources live under the ``0xEE`` prefix, far from the
    station-address namespace; each distinct source gives the flow
    cache a distinct key for the same matching filter — the miss storm.
    """
    return (
        b"\xee"
        + segment_index.to_bytes(2, "big")
        + flow.to_bytes(3, "big")
    )


def flow_storm_segment(
    ctx,
    *,
    duration: float = 0.5,
    offered_multiplier: float = 2.0,
    flows: int = 256,
    cache_size: int = 64,
    frame_bytes: int = 128,
    cross_every: int = 16,
    cross_target: str | None = None,
    queue_limit: int = 64,
    input_queue_limit: int = 64,
) -> None:
    """One segment of the flow-cache miss storm.

    A receiver with a ``cache_size``-slot flow cache reads everything
    matching the test filter; a free-CPU blaster offers
    ``offered_multiplier`` times the receiver's saturation rate for
    ``duration`` simulated seconds, rotating through ``flows`` spoofed
    source addresses (``flows > cache_size`` guarantees steady-state
    misses).  Every ``cross_every``-th frame goes to ``cross_target``'s
    receiver instead — bridged, cross-shard traffic.
    """
    receiver = ctx.host("receiver", input_queue_limit=input_queue_limit)
    receiver.install_packet_filter(flow_cache=cache_size)
    blaster = ctx.host("blaster", costs=FREE)
    blaster.install_packet_filter()

    saturation = receive_saturation_pps(ctx.world.costs, frame_bytes)
    pace = 1.0 / (saturation * offered_multiplier)
    rng = ctx.rng("flow-storm", "pace")
    body = bytes(max(0, frame_bytes - receiver.link.header_length))
    local_frames = [
        blaster.link.frame(
            receiver.address,
            _spoofed_source(ctx.index, flow),
            TEST_ETHERTYPE,
            body,
        )
        for flow in range(flows)
    ]
    cross_frame = None
    if cross_target is not None:
        cross_frame = blaster.link.frame(
            ctx.address_of(cross_target, 1),
            blaster.address,
            TEST_ETHERTYPE,
            body,
        )
    sent = {"local": 0, "cross": 0}

    def blast():
        fd = yield Open("pf")
        yield Sleep(0.02)  # let the reader bind its filter first
        sequence = 0
        while ctx.world.now < duration:
            if cross_frame is not None and sequence % cross_every == (
                cross_every - 1
            ):
                yield Write(fd, cross_frame)
                sent["cross"] += 1
            else:
                yield Write(fd, local_frames[sequence % flows])
                sent["local"] += 1
            sequence += 1
            # Jittered pacing from the segment's derived stream: the
            # same draws no matter which process runs this segment.
            yield Sleep(pace * (0.75 + 0.5 * rng.random()))

    def read_loop():
        fd = yield Open("pf")
        yield Ioctl(fd, PFIoctl.SETFILTER, _test_filter())
        yield Ioctl(fd, PFIoctl.SETBATCH, True)
        yield Ioctl(fd, PFIoctl.SETQUEUELEN, queue_limit)
        while True:
            yield Read(fd)

    receiver.spawn("reader", read_loop())
    blaster.spawn("blaster", blast())

    cache = receiver.packet_filter.demux.flow_cache

    def cache_report() -> dict:
        return {
            "hits": cache.hits,
            "misses": cache.misses,
            "hit_rate": cache.hit_rate,
            "size": cache_size,
            "flows": flows,
        }

    ctx.report("flow_cache", cache_report)
    ctx.report("sent", lambda: dict(sent))
    ctx.report(
        "received", lambda: receiver.kernel.stats.frames_received
    )


def flow_storm_topology(
    *,
    segments: int = 2,
    seed: int = 0,
    duration: float = 0.5,
    bridge_delay: float = 2e-3,
    ledger: bool = True,
    telemetry: bool = False,
    **options,
) -> TopologySpec:
    """A chain of ``segments`` flow-storm segments.

    Segment ``lan{i}`` bridges to ``lan{i+1}``; cross traffic aims at
    the next segment around the chain (the last segment's crosses the
    whole chain back to the first — multi-hop forwarding).  Extra
    keyword ``options`` pass through to every
    :func:`flow_storm_segment`.
    """
    if segments < 1:
        raise ValueError("need at least one segment")
    names = [f"lan{index}" for index in range(segments)]
    specs = []
    for index, name in enumerate(names):
        cross = names[(index + 1) % segments] if segments > 1 else None
        specs.append(
            SegmentSpec(
                name,
                "repro.bench.topologies:flow_storm_segment",
                {
                    "duration": duration,
                    "cross_target": cross,
                    **options,
                },
            )
        )
    bridges = tuple(
        BridgeSpec(names[index], names[index + 1], delay=bridge_delay)
        for index in range(segments - 1)
    )
    return TopologySpec(
        segments=tuple(specs),
        bridges=bridges,
        seed=seed,
        ledger=ledger,
        telemetry=telemetry,
    )


def _storm_blob(segment_bytes: int) -> bytes:
    """The reply payload both sides derive independently (the client
    verifies responses byte-for-byte without shipping the blob)."""
    return bytes(index % 251 for index in range(segment_bytes))


def partition_storm_segment(
    ctx,
    *,
    duration: float = 1.2,
    role: str = "relay",
    peer: str | None = None,
    segment_bytes: int = 2048,
    max_retries: int = 64,
    local_pace: float = 2e-3,
    frame_bytes: int = 128,
) -> None:
    """One segment of the adaptive-RTO partition storm.

    The ``client`` segment runs a VMTP client hammering the ``server``
    segment's responder across the bridges; a scheduled link partition
    drops the exchange mid-run, driving the client's Jacobson timer
    into exponential backoff (the *storm*) until the link heals and the
    backed-off retry finally lands.  Every segment — relays included —
    also paces purely local packet-filter traffic for the whole run:
    that keeps the telemetry sampler ticking through the outage and
    supplies the "local traffic stays healthy" half of the partition
    watchdog's predicate.
    """
    world = ctx.world
    blob = _storm_blob(segment_bytes)
    counters = {"calls": 0, "intact": 0, "retries": 0, "timeouts": 0}

    if role == "client":
        if peer is None:
            raise ValueError("client segment needs a peer to call")
        protocol = ctx.host("client")
        protocol.install_packet_filter()

        def client():
            endpoint = VMTPClient(
                protocol,
                client_id=7,
                server_station=ctx.address_of(peer, 1),
                server_id=35,
                adaptive_rto=True,
                max_retries=max_retries,
            )
            yield from endpoint.start()
            while world.now < duration:
                response = yield from endpoint.call(b"read")
                counters["calls"] += 1
                if response == blob:
                    counters["intact"] += 1
                counters["retries"] = endpoint.retries
                counters["timeouts"] = (
                    endpoint.rto.timeouts if endpoint.rto else 0
                )

        protocol.spawn("vmtp-client", client())
        ctx.report("vmtp", lambda: dict(counters))
    elif role == "server":
        protocol = ctx.host("server")
        protocol.install_packet_filter()

        def server():
            endpoint = VMTPServer(protocol, server_id=35)
            yield from endpoint.start()
            while True:
                request, reply = yield from endpoint.receive()
                counters["calls"] += 1
                yield from reply(blob)

        protocol.spawn("vmtp-server", server())
        ctx.report("vmtp", lambda: dict(counters))
    elif role != "relay":
        raise ValueError(f"unknown partition-storm role {role!r}")

    reader = ctx.host("local-rx")
    reader.install_packet_filter()
    pacer = ctx.host("local-tx", costs=FREE)
    pacer.install_packet_filter()
    body = bytes(max(0, frame_bytes - pacer.link.header_length))
    frame = pacer.link.frame(
        reader.address, pacer.address, TEST_ETHERTYPE, body
    )
    rng = ctx.rng("partition-storm", "local")
    received = {"frames": 0}

    def pace():
        fd = yield Open("pf")
        yield Sleep(0.01)  # let the reader bind its filter first
        while world.now < duration:
            yield Write(fd, frame)
            yield Sleep(local_pace * (0.75 + 0.5 * rng.random()))

    def read_loop():
        fd = yield Open("pf")
        yield Ioctl(fd, PFIoctl.SETFILTER, _test_filter())
        while True:
            yield Read(fd)
            received["frames"] += 1

    reader.spawn("local-reader", read_loop())
    pacer.spawn("local-pacer", pace())
    ctx.report("local", lambda: dict(received))


def partition_storm_topology(
    *,
    segments: int = 2,
    seed: int = 0,
    duration: float = 1.2,
    bridge_delay: float = 2e-3,
    partition_at: float = 0.2,
    heal_at: float = 0.55,
    ledger: bool = True,
    telemetry: bool = True,
    telemetry_interval: float = 5e-3,
    faults: tuple | None = None,
    **options,
) -> TopologySpec:
    """A VMTP exchange across a chain that partitions and heals.

    The client lives on ``lan0``, the server on the last segment, and
    (unless an explicit ``faults`` schedule is given) the chain's middle
    link goes down over ``[partition_at, heal_at)``.  Telemetry defaults
    *on* — the partition watchdog and RTO backoff storm alerts are the
    point of this scenario.
    """
    if segments < 2:
        raise ValueError("a partition storm needs at least two segments")
    names = [f"lan{index}" for index in range(segments)]
    specs = []
    for index, name in enumerate(names):
        if index == 0:
            role, peer = "client", names[-1]
        elif index == segments - 1:
            role, peer = "server", None
        else:
            role, peer = "relay", None
        specs.append(
            SegmentSpec(
                name,
                "repro.bench.topologies:partition_storm_segment",
                {
                    "duration": duration,
                    "role": role,
                    "peer": peer,
                    **options,
                },
            )
        )
    bridges = tuple(
        BridgeSpec(names[index], names[index + 1], delay=bridge_delay)
        for index in range(segments - 1)
    )
    if faults is None:
        middle = bridges[(len(bridges) - 1) // 2]
        faults = link_partition(middle.link_id, partition_at, heal_at)
    return TopologySpec(
        segments=tuple(specs),
        bridges=bridges,
        seed=seed,
        ledger=ledger,
        telemetry=telemetry,
        telemetry_interval=telemetry_interval,
        faults=faults,
    )


TOPOLOGIES = {
    "flow_storm": flow_storm_topology,
    "partition_storm": partition_storm_topology,
}
"""Topology factories the ``python -m repro shard`` CLI can name."""


def named_topology(name: str, **kwargs) -> TopologySpec:
    """Build a named topology (see :data:`TOPOLOGIES`)."""
    try:
        factory = TOPOLOGIES[name]
    except KeyError:
        known = ", ".join(sorted(TOPOLOGIES))
        raise LookupError(f"unknown topology {name!r} (have: {known})")
    return factory(**kwargs)
